//! # coalloc-workload — the workload model of the co-allocation study
//!
//! Everything between a raw log and the simulator:
//!
//! * [`JobSizeDist`] — total-size distributions (DAS-s-128, DAS-s-64,
//!   from-trace, custom);
//! * [`ServiceDist`] — base service-time distributions (DAS-t-900,
//!   exponential/deterministic for validation);
//! * [`mod@split`] — the component-splitting rule of §2.4, including the
//!   paper's size-64 worked example;
//! * [`JobRequest`] / [`component_count_fractions`] — unordered requests
//!   and the analytic Table 2;
//! * [`ArrivalProcess`] — Poisson arrivals and the rate ↔ utilization
//!   conversion;
//! * [`QueueRouting`] — balanced / unbalanced (40/20/20/20) local-queue
//!   routing;
//! * [`Workload`] — the assembled model, with the §4 gross/net closed
//!   form and the 1.25 wide-area extension factor
//!   ([`EXTENSION_FACTOR`]).

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod arrival;
pub mod config;
pub mod jobsize;
pub mod request;
pub mod routing;
pub mod service;
pub mod split;

pub use arrival::{rate_for_utilization, utilization_for_rate, ArrivalProcess};
pub use config::{JobDisposition, JobSpec, Workload, EXTENSION_FACTOR};
pub use jobsize::JobSizeDist;
pub use request::{component_count_fractions, multi_component_fraction, JobRequest, RequestKind};
pub use routing::QueueRouting;
pub use service::ServiceDist;
pub use split::{component_count, split, split_evenly};
