//! Total-job-size distributions (§2.4): DAS-s-128, DAS-s-64, or any
//! distribution derived from a log or supplied by the user.

use coalloc_trace::Trace;
use desim::{EmpiricalDiscrete, RngStream};

/// A distribution of total job sizes (processor counts).
#[derive(Clone, Debug)]
pub struct JobSizeDist {
    name: String,
    dist: EmpiricalDiscrete,
    max: u32,
}

impl JobSizeDist {
    /// The paper's **DAS-s-128** distribution: the job-size distribution
    /// of the (synthetic) DAS1 log of the largest, 128-processor cluster.
    pub fn das_s_128() -> Self {
        let pmf = coalloc_trace::das1_size_pmf();
        JobSizeDist::custom("DAS-s-128", &pmf)
    }

    /// The paper's **DAS-s-64** distribution: DAS-s-128 cut at 64
    /// processors and renormalized, introduced "to check whether limiting
    /// the total job size improves the performance".
    pub fn das_s_64() -> Self {
        let base = Self::das_s_128();
        let dist = base.dist.truncated(64);
        JobSizeDist { name: "DAS-s-64".to_string(), max: 64, dist }
    }

    /// Derives the size distribution from a workload log by resampling the
    /// observed sizes (the paper's method).
    pub fn from_trace(name: impl Into<String>, trace: &Trace) -> Self {
        assert!(!trace.is_empty(), "cannot derive a distribution from an empty log");
        let sizes: Vec<u32> = trace.jobs.iter().map(|j| j.size).collect();
        let dist = EmpiricalDiscrete::from_observations(&sizes);
        let max = *sizes.iter().max().expect("non-empty");
        JobSizeDist { name: name.into(), dist, max }
    }

    /// A uniform distribution over `lo..=hi` processors.
    pub fn uniform(lo: u32, hi: u32) -> Self {
        assert!(lo >= 1 && lo <= hi, "need 1 <= lo <= hi");
        let pmf: Vec<(u32, f64)> = (lo..=hi).map(|v| (v, 1.0)).collect();
        JobSizeDist::custom(format!("uniform[{lo},{hi}]"), &pmf)
    }

    /// A pure powers-of-two distribution up to `max` (which must itself
    /// be a power of two), with geometric weight `decay` per doubling
    /// (`decay = 1` is uniform over the powers).
    pub fn powers_of_two(max: u32, decay: f64) -> Self {
        assert!(max.is_power_of_two(), "max must be a power of two");
        assert!(decay > 0.0 && decay.is_finite());
        let mut pmf = Vec::new();
        let mut v = 1u32;
        let mut w = 1.0;
        while v <= max {
            pmf.push((v, w));
            w *= decay;
            if v == max {
                break;
            }
            v *= 2;
        }
        JobSizeDist::custom(format!("pow2[..={max}]"), &pmf)
    }

    /// Builds a distribution from explicit `(size, weight)` pairs.
    pub fn custom(name: impl Into<String>, pmf: &[(u32, f64)]) -> Self {
        assert!(pmf.iter().all(|&(v, _)| v > 0), "job sizes must be positive");
        let dist = EmpiricalDiscrete::new(pmf);
        let max =
            pmf.iter().filter(|&&(_, w)| w > 0.0).map(|&(v, _)| v).max().expect("non-empty pmf");
        JobSizeDist { name: name.into(), dist, max }
    }

    /// This distribution cut at `max_size` and renormalized.
    pub fn truncated(&self, max_size: u32) -> Self {
        JobSizeDist {
            name: format!("{} (cut at {max_size})", self.name),
            dist: self.dist.truncated(max_size),
            max: self.max.min(max_size),
        }
    }

    /// Draws a total job size.
    #[inline]
    pub fn sample(&self, rng: &mut RngStream) -> u32 {
        self.dist.sample_value(rng)
    }

    /// The distribution's display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// The largest size with positive mass.
    pub fn max_size(&self) -> u32 {
        self.max
    }

    /// Mean total job size.
    pub fn mean(&self) -> f64 {
        self.dist.mean_value()
    }

    /// Coefficient of variation of the total job size.
    pub fn cv(&self) -> f64 {
        self.dist.cv()
    }

    /// Probability mass at `size`.
    pub fn pmf(&self, size: u32) -> f64 {
        self.dist.pmf(size)
    }

    /// `(size, probability)` pairs over the support, ascending by size.
    pub fn support(&self) -> Vec<(u32, f64)> {
        let mut v: Vec<(u32, f64)> =
            self.dist.values().iter().zip(self.dist.probs()).map(|(&s, &p)| (s, p)).collect();
        v.sort_unstable_by_key(|&(s, _)| s);
        v
    }

    /// Expectation of `f(size)` under the distribution.
    pub fn expect(&self, mut f: impl FnMut(u32) -> f64) -> f64 {
        self.dist.values().iter().zip(self.dist.probs()).map(|(&s, &p)| p * f(s)).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das_s_128_matches_table1() {
        let d = JobSizeDist::das_s_128();
        assert_eq!(d.max_size(), 128);
        assert!((d.pmf(64) - 0.190).abs() < 1e-12);
        assert!((d.pmf(128) - 0.012).abs() < 1e-12);
        assert_eq!(d.support().len(), 58);
        // The paper's log has mean around two dozen processors.
        let m = d.mean();
        assert!(m > 15.0 && m < 35.0, "mean {m}");
    }

    #[test]
    fn das_s_64_drops_the_tail() {
        let d = JobSizeDist::das_s_64();
        assert_eq!(d.max_size(), 64);
        assert_eq!(d.pmf(128), 0.0);
        assert!(d.pmf(64) > 0.190, "mass renormalized upward");
        assert!(d.mean() < JobSizeDist::das_s_128().mean());
    }

    #[test]
    fn sampling_respects_support() {
        let d = JobSizeDist::das_s_64();
        let mut rng = RngStream::new(42);
        for _ in 0..10_000 {
            let s = d.sample(&mut rng);
            assert!((1..=64).contains(&s));
        }
    }

    #[test]
    fn from_trace_resamples_log() {
        let log = coalloc_trace::generate_das1_log(&coalloc_trace::DasLogConfig {
            jobs: 5_000,
            ..Default::default()
        });
        let d = JobSizeDist::from_trace("log", &log);
        assert_eq!(d.max_size(), 128);
        let m_log = coalloc_trace::size_moments(&log).mean;
        assert!((d.mean() - m_log).abs() < 1e-9, "resampled mean equals log mean");
    }

    #[test]
    fn expect_and_support_consistent() {
        let d = JobSizeDist::custom("two-point", &[(2, 0.5), (6, 0.5)]);
        assert!((d.mean() - 4.0).abs() < 1e-12);
        assert!((d.expect(|s| f64::from(s) * f64::from(s)) - 20.0).abs() < 1e-12);
        assert_eq!(d.support(), vec![(2, 0.5), (6, 0.5)]);
        assert_eq!(d.name(), "two-point");
    }

    #[test]
    fn uniform_constructor() {
        let d = JobSizeDist::uniform(4, 7);
        assert_eq!(d.max_size(), 7);
        assert!((d.mean() - 5.5).abs() < 1e-12);
        assert!((d.pmf(4) - 0.25).abs() < 1e-12);
        assert_eq!(d.pmf(8), 0.0);
    }

    #[test]
    fn powers_of_two_constructor() {
        let d = JobSizeDist::powers_of_two(8, 0.5);
        // Weights 1, 0.5, 0.25, 0.125 over 1,2,4,8.
        assert_eq!(d.support().len(), 4);
        assert!((d.pmf(1) - 1.0 / 1.875).abs() < 1e-12);
        assert!((d.pmf(8) - 0.125 / 1.875).abs() < 1e-12);
        let flat = JobSizeDist::powers_of_two(4, 1.0);
        assert!((flat.pmf(1) - flat.pmf(4)).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn powers_of_two_rejects_non_power() {
        JobSizeDist::powers_of_two(12, 0.5);
    }

    #[test]
    fn truncation_chain() {
        let d = JobSizeDist::das_s_128().truncated(32);
        assert_eq!(d.max_size(), 32);
        let total: f64 = d.support().iter().map(|&(_, p)| p).sum();
        assert!((total - 1.0).abs() < 1e-9);
    }
}
