//! Service-time distributions (§2.4): DAS-t-900 or any substitute.
//!
//! In the paper's model a job's *service time* (its runtime on fast local
//! networks) is independent of its size, drawn from the distribution of
//! the DAS1 log cut at 900 seconds. Exponential and deterministic
//! variants are provided for analytic validation of the simulator.

use coalloc_trace::Trace;
use desim::{Duration, EmpiricalContinuous, Exponential, HyperExponential, RngStream, Variate};

/// Width of the histogram bins used when deriving an empirical
/// service-time distribution from a log, in seconds.
pub const DEFAULT_BIN_WIDTH: f64 = 10.0;

enum Inner {
    Empirical(EmpiricalContinuous),
    Exponential(Exponential),
    Hyper(HyperExponential),
    Deterministic(f64),
}

impl Clone for Inner {
    fn clone(&self) -> Self {
        match self {
            Inner::Empirical(e) => Inner::Empirical(e.clone()),
            Inner::Exponential(e) => Inner::Exponential(*e),
            Inner::Hyper(h) => Inner::Hyper(*h),
            Inner::Deterministic(v) => Inner::Deterministic(*v),
        }
    }
}

impl core::fmt::Debug for Inner {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            Inner::Empirical(_) => write!(f, "Empirical"),
            Inner::Exponential(e) => write!(f, "Exponential(mean={})", e.mean()),
            Inner::Hyper(h) => write!(f, "HyperExp(mean={})", h.mean()),
            Inner::Deterministic(v) => write!(f, "Deterministic({v})"),
        }
    }
}

/// A distribution of base (non-extended) service times, optionally
/// capped at a maximum (the way the DAS-t-900 cut caps the log).
#[derive(Clone, Debug)]
pub struct ServiceDist {
    name: String,
    inner: Inner,
    cap: Option<f64>,
}

impl ServiceDist {
    /// The paper's **DAS-t-900** distribution: service times of the
    /// (synthetic) DAS1 log cut at 900 seconds. Derived once from the
    /// default synthetic log and cached.
    pub fn das_t_900() -> Self {
        static CACHE: std::sync::OnceLock<EmpiricalContinuous> = std::sync::OnceLock::new();
        let emp = CACHE.get_or_init(|| {
            let log = coalloc_trace::generate_das1_log(&coalloc_trace::DasLogConfig::default());
            let cut = coalloc_trace::cut_by_runtime(&log, coalloc_trace::KILL_LIMIT_SECS);
            empirical_from_runtimes(&cut, DEFAULT_BIN_WIDTH)
        });
        ServiceDist {
            name: "DAS-t-900".to_string(),
            inner: Inner::Empirical(emp.clone()),
            cap: None,
        }
    }

    /// Derives the service-time distribution from a log by binning the
    /// observed runtimes (`bin_width` seconds per bin).
    pub fn from_trace(name: impl Into<String>, trace: &Trace, bin_width: f64) -> Self {
        assert!(!trace.is_empty(), "cannot derive a distribution from an empty log");
        ServiceDist {
            name: name.into(),
            inner: Inner::Empirical(empirical_from_runtimes(trace, bin_width)),
            cap: None,
        }
    }

    /// An exponential service time with the given mean (for M/M/c-style
    /// validation runs).
    pub fn exponential(mean_secs: f64) -> Self {
        ServiceDist {
            name: format!("Exp(mean={mean_secs}s)"),
            inner: Inner::Exponential(Exponential::with_mean(mean_secs)),
            cap: None,
        }
    }

    /// A two-phase hyperexponential service time fitted to the given mean
    /// and squared coefficient of variation (`cv2 >= 1`), for sensitivity
    /// studies on the service-time variability.
    pub fn hyperexponential(mean_secs: f64, cv2: f64) -> Self {
        ServiceDist {
            name: format!("HyperExp(mean={mean_secs}s, cv2={cv2})"),
            inner: Inner::Hyper(HyperExponential::fit(mean_secs, cv2)),
            cap: None,
        }
    }

    /// Returns this distribution hard-capped at `cap_secs` (samples above
    /// it are clamped, producing the kill-policy spike the DAS log shows).
    pub fn with_cap(mut self, cap_secs: f64) -> Self {
        assert!(cap_secs > 0.0 && cap_secs.is_finite());
        self.name = format!("{} capped at {cap_secs}s", self.name);
        self.cap = Some(cap_secs);
        self
    }

    /// A deterministic service time (for M/D/c-style validation runs).
    pub fn deterministic(secs: f64) -> Self {
        assert!(secs > 0.0 && secs.is_finite());
        ServiceDist { name: format!("Det({secs}s)"), inner: Inner::Deterministic(secs), cap: None }
    }

    /// Draws one base service time.
    pub fn sample(&self, rng: &mut RngStream) -> Duration {
        let mut s = match &self.inner {
            Inner::Empirical(e) => e.sample(rng),
            Inner::Exponential(e) => e.sample(rng),
            Inner::Hyper(h) => h.sample(rng),
            Inner::Deterministic(v) => *v,
        };
        if let Some(cap) = self.cap {
            s = s.min(cap);
        }
        Duration::new(s.max(f64::MIN_POSITIVE))
    }

    /// Mean base service time in seconds.
    pub fn mean_secs(&self) -> f64 {
        let raw = match &self.inner {
            Inner::Empirical(e) => e.mean(),
            Inner::Exponential(e) => e.mean(),
            Inner::Hyper(h) => h.mean(),
            Inner::Deterministic(v) => *v,
        };
        match self.cap {
            // E[min(X, c)] has no closed form across all inners; a capped
            // distribution estimates its mean by quadrature over samples.
            Some(cap) => {
                let mut rng = RngStream::new(0xCA9);
                let n = 20_000;
                (0..n)
                    .map(|_| {
                        let s = match &self.inner {
                            Inner::Empirical(e) => e.sample(&mut rng),
                            Inner::Exponential(e) => e.sample(&mut rng),
                            Inner::Hyper(h) => h.sample(&mut rng),
                            Inner::Deterministic(v) => *v,
                        };
                        s.min(cap)
                    })
                    .sum::<f64>()
                    / f64::from(n)
            }
            None => raw,
        }
    }

    /// The distribution's display name.
    pub fn name(&self) -> &str {
        &self.name
    }
}

fn empirical_from_runtimes(trace: &Trace, bin_width: f64) -> EmpiricalContinuous {
    assert!(bin_width > 0.0);
    let max = trace.jobs.iter().map(|j| j.runtime).fold(0.0f64, f64::max).max(bin_width);
    let nbins = (max / bin_width).ceil() as usize;
    let hi = bin_width * nbins as f64;
    let mut weights = vec![0.0f64; nbins];
    for j in &trace.jobs {
        let idx = ((j.runtime / bin_width) as usize).min(nbins - 1);
        weights[idx] += 1.0;
    }
    let edges: Vec<f64> = (0..=nbins).map(|i| hi * i as f64 / nbins as f64).collect();
    EmpiricalContinuous::from_histogram(&edges, &weights)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das_t_900_is_bounded_and_short_biased() {
        let d = ServiceDist::das_t_900();
        let mut rng = RngStream::new(1);
        let mut under_100 = 0;
        let n = 20_000;
        for _ in 0..n {
            let s = d.sample(&mut rng).seconds();
            assert!(s > 0.0 && s <= 900.0, "sample {s} out of [0, 900]");
            if s <= 100.0 {
                under_100 += 1;
            }
        }
        // Fig. 2: the bulk of jobs are very short.
        assert!(f64::from(under_100) / f64::from(n) > 0.4);
        let m = d.mean_secs();
        assert!(m > 50.0 && m < 400.0, "mean {m}");
        assert_eq!(d.name(), "DAS-t-900");
    }

    #[test]
    fn das_t_900_is_deterministic_across_calls() {
        let a = ServiceDist::das_t_900();
        let b = ServiceDist::das_t_900();
        assert!((a.mean_secs() - b.mean_secs()).abs() < 1e-12);
    }

    #[test]
    fn exponential_service_mean() {
        let d = ServiceDist::exponential(120.0);
        assert_eq!(d.mean_secs(), 120.0);
        let mut rng = RngStream::new(2);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| d.sample(&mut rng).seconds()).sum::<f64>() / f64::from(n);
        assert!((mean - 120.0).abs() < 2.0, "sample mean {mean}");
    }

    #[test]
    fn deterministic_service() {
        let d = ServiceDist::deterministic(60.0);
        let mut rng = RngStream::new(3);
        assert_eq!(d.sample(&mut rng).seconds(), 60.0);
        assert_eq!(d.mean_secs(), 60.0);
    }

    #[test]
    fn hyperexponential_service() {
        let d = ServiceDist::hyperexponential(200.0, 4.0);
        assert!((d.mean_secs() - 200.0).abs() < 1e-6);
        let mut rng = RngStream::new(9);
        let n = 100_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut rng).seconds()).collect();
        let mean = xs.iter().sum::<f64>() / f64::from(n);
        assert!((mean - 200.0).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn cap_clamps_and_shifts_the_mean() {
        let d = ServiceDist::exponential(300.0).with_cap(900.0);
        let mut rng = RngStream::new(10);
        for _ in 0..20_000 {
            assert!(d.sample(&mut rng).seconds() <= 900.0);
        }
        // E[min(Exp(300), 900)] = 300 (1 - e^-3) ≈ 285.7.
        let exact = 300.0 * (1.0 - (-3.0f64).exp());
        assert!((d.mean_secs() - exact).abs() < 5.0, "{} vs {exact}", d.mean_secs());
        assert!(d.name().contains("capped"));
    }

    #[test]
    fn from_trace_respects_cut() {
        let log = coalloc_trace::generate_das1_log(&coalloc_trace::DasLogConfig {
            jobs: 5_000,
            ..Default::default()
        });
        let cut = coalloc_trace::cut_by_runtime(&log, 900.0);
        let d = ServiceDist::from_trace("cut", &cut, 10.0);
        let mut rng = RngStream::new(4);
        for _ in 0..5_000 {
            assert!(d.sample(&mut rng).seconds() <= 900.0 + 1e-9);
        }
        // Binned mean tracks the raw log mean within a bin width.
        let raw = coalloc_trace::runtime_moments(&cut).mean;
        assert!((d.mean_secs() - raw).abs() < 10.0, "{} vs {raw}", d.mean_secs());
    }
}
