//! The complete workload model: total-size distribution, splitting rule,
//! service-time distribution and wide-area extension factor, with the
//! closed-form gross/net analysis of §4.

use desim::{Duration, RngStream};

use crate::arrival::rate_for_utilization;
use crate::jobsize::JobSizeDist;
use crate::request::{component_count_fractions, JobRequest, RequestKind};
use crate::service::ServiceDist;
use crate::split::{component_count, split};

/// The wide-area service-time extension factor for multi-component jobs.
///
/// The paper fixes this at 1.25: measured wide-area application slowdowns
/// do not exceed it, and Ernemann et al. (CCGrid'02) conclude co-allocation
/// pays off while the extension factor stays at or below 1.25.
pub const EXTENSION_FACTOR: f64 = 1.25;

/// How much placement freedom a job grants the scheduler after
/// submission — the disposition axis of the malleability taxonomy
/// (Feitelson & Rudolph's rigid/moldable/malleable classes).
///
/// The paper's experiments are all `Rigid`; the other two are the
/// scenario extensions motivated by the malleable-scheduling literature.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum JobDisposition {
    /// The component split is fixed at submission (the paper's model).
    #[default]
    Rigid,
    /// The scheduler picks the component split at start time against the
    /// current idle processors; once started the shape is frozen.
    Moldable,
    /// Moldable, plus the shape may change *while running*: jobs grow
    /// onto idle processors at departures and shrink away from failed
    /// clusters instead of being killed.
    Malleable,
}

impl JobDisposition {
    /// Parses a disposition name as written on a command line.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "rigid" => Some(JobDisposition::Rigid),
            "moldable" => Some(JobDisposition::Moldable),
            "malleable" => Some(JobDisposition::Malleable),
            _ => None,
        }
    }

    /// The canonical lowercase label (inverse of [`JobDisposition::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            JobDisposition::Rigid => "rigid",
            JobDisposition::Moldable => "moldable",
            JobDisposition::Malleable => "malleable",
        }
    }
}

impl core::fmt::Display for JobDisposition {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

impl core::str::FromStr for JobDisposition {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        JobDisposition::parse(s)
            .ok_or_else(|| format!("unknown disposition `{s}` (rigid|moldable|malleable)"))
    }
}

/// One sampled job: its (already split) request and its base service time.
#[derive(Clone, Debug, PartialEq)]
pub struct JobSpec {
    /// The unordered request (components non-increasing).
    pub request: JobRequest,
    /// Base service time (fast local communication only).
    pub base_service: Duration,
}

impl JobSpec {
    /// The service time after the wide-area extension, which applies only
    /// to multi-component jobs.
    pub fn extended_service(&self, extension: f64) -> Duration {
        if self.request.is_multi() {
            self.base_service.scaled(extension)
        } else {
            self.base_service
        }
    }
}

/// A complete workload model.
///
/// ```
/// use coalloc_workload::Workload;
/// let w = Workload::das(16);
/// // The §4 closed form: gross/net ratio at limit 16 is 1.218.
/// assert!((w.gross_net_ratio() - 1.2181).abs() < 0.001);
/// // About half the jobs are multi-component at this limit.
/// assert!((w.multi_fraction() - 0.487).abs() < 0.005);
/// ```
#[derive(Clone, Debug)]
pub struct Workload {
    /// Distribution of total job sizes.
    pub sizes: JobSizeDist,
    /// Distribution of base service times (independent of size).
    pub service: ServiceDist,
    /// Job-component-size limit (§2.4); totals above it are split.
    pub limit: u32,
    /// Number of clusters components may be spread over.
    pub clusters: usize,
    /// Wide-area extension factor applied to multi-component jobs.
    pub extension: f64,
    /// Additional extension per component beyond the second (default 0:
    /// the paper's constant factor). With a positive penalty a job spread
    /// over `n` clusters runs `extension + penalty·(n−2)` times longer —
    /// a refinement of the communication model of the authors' JSSPP'01
    /// study, where wider spreads mean more wide-area traffic.
    pub spread_penalty: f64,
    /// The request structure jobs are submitted with. The paper's
    /// multicluster experiments use `Unordered`; `Ordered` and `Flexible`
    /// are the JSSPP-taxonomy extensions.
    pub request_kind: RequestKind,
    /// Size–service correlation exponent α (default 0: the paper's
    /// independence assumption). With α > 0 a job of size `s` draws its
    /// service time scaled by `(s / E[s])^α`, renormalized so the
    /// *mean* service time is unchanged — bigger jobs run longer, as
    /// real logs often show.
    pub size_service_exponent: f64,
}

impl Workload {
    /// The paper's baseline multicluster workload: DAS-s-128 sizes,
    /// DAS-t-900 service times, 4 clusters, extension 1.25, and the given
    /// component-size limit (16, 24 or 32 in the paper).
    pub fn das(limit: u32) -> Self {
        Workload {
            sizes: JobSizeDist::das_s_128(),
            service: ServiceDist::das_t_900(),
            limit,
            clusters: 4,
            extension: EXTENSION_FACTOR,
            spread_penalty: 0.0,
            request_kind: RequestKind::Unordered,
            size_service_exponent: 0.0,
        }
    }

    /// The DAS-s-64 variant of [`Workload::das`] (§3.2): the size
    /// distribution cut at 64 processors.
    pub fn das_cut64(limit: u32) -> Self {
        Workload { sizes: JobSizeDist::das_s_64(), ..Workload::das(limit) }
    }

    /// The single-cluster comparison workload (§2.3): total requests only,
    /// so no splitting (limit = max size), one "cluster", no extension
    /// ever applies.
    pub fn single_cluster() -> Self {
        let sizes = JobSizeDist::das_s_128();
        let limit = sizes.max_size();
        Workload {
            sizes,
            service: ServiceDist::das_t_900(),
            limit,
            clusters: 1,
            extension: EXTENSION_FACTOR,
            spread_penalty: 0.0,
            request_kind: RequestKind::Total,
            size_service_exponent: 0.0,
        }
    }

    /// Single-cluster workload over DAS-s-64.
    pub fn single_cluster_cut64() -> Self {
        let sizes = JobSizeDist::das_s_64();
        let limit = sizes.max_size();
        Workload { sizes, limit, ..Workload::single_cluster() }
    }

    /// Builds a fully custom workload with the paper's defaults for the
    /// remaining knobs (extension 1.25, no spread penalty, unordered
    /// requests). Prefer this over struct literals: new knobs get sound
    /// defaults instead of breaking your build.
    pub fn custom(sizes: JobSizeDist, service: ServiceDist, limit: u32, clusters: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        assert!(limit > 0, "component-size limit must be positive");
        Workload {
            sizes,
            service,
            limit,
            clusters,
            extension: EXTENSION_FACTOR,
            spread_penalty: 0.0,
            request_kind: if clusters == 1 { RequestKind::Total } else { RequestKind::Unordered },
            size_service_exponent: 0.0,
        }
    }

    /// Returns this workload submitting the given request structure.
    pub fn with_request_kind(mut self, kind: RequestKind) -> Self {
        self.request_kind = kind;
        self
    }

    /// Returns this workload with its component split capped at the given
    /// number of clusters — the actual cluster count of the system under
    /// test, not the paper's hard-coded 4. A job's total size is split
    /// into at most `clusters` components, so heterogeneous systems with
    /// more (or fewer) clusters than the DAS testbed sample consistently.
    pub fn with_clusters(mut self, clusters: usize) -> Self {
        assert!(clusters > 0, "need at least one cluster");
        self.clusters = clusters;
        self
    }

    /// Returns this workload with the given constant extension factor.
    pub fn with_extension(mut self, extension: f64) -> Self {
        assert!(extension >= 1.0, "extension factor must be >= 1");
        self.extension = extension;
        self
    }

    /// The size-dependent service-time multiplier: `(s/E[s])^α`
    /// normalized so the mean service time over the size distribution is
    /// unchanged. Identically 1 under the paper's independence assumption
    /// (α = 0).
    pub fn service_factor(&self, size: u32) -> f64 {
        let alpha = self.size_service_exponent;
        if alpha == 0.0 {
            return 1.0;
        }
        let mean = self.sizes.mean();
        let norm = self.sizes.expect(|s| (f64::from(s) / mean).powf(alpha));
        (f64::from(size) / mean).powf(alpha) / norm
    }

    /// The wide-area extension factor for a job spanning `components`
    /// clusters: 1 for a single cluster; `extension` for two;
    /// `extension + spread_penalty·(n−2)` beyond.
    pub fn extension_factor(&self, components: usize) -> f64 {
        if components <= 1 {
            1.0
        } else {
            self.extension + self.spread_penalty * (components as f64 - 2.0)
        }
    }

    /// Draws one job. Size and service streams are separate so that
    /// common-random-number comparisons across policies stay aligned
    /// (ordered requests additionally draw their target clusters from the
    /// size stream).
    pub fn sample(&self, size_rng: &mut RngStream, service_rng: &mut RngStream) -> JobSpec {
        let total = self.sizes.sample(size_rng);
        let request = match self.request_kind {
            RequestKind::Unordered => JobRequest::from_total(total, self.limit, self.clusters),
            RequestKind::Flexible => JobRequest::flexible(total, self.limit, self.clusters),
            RequestKind::Total => JobRequest::total_request(total),
            RequestKind::Ordered => {
                // Users pick the clusters: a uniform random set of
                // distinct clusters for the split components.
                let components = split(total, self.limit, self.clusters);
                let mut idx: Vec<usize> = (0..self.clusters).collect();
                size_rng.shuffle(&mut idx);
                idx.truncate(components.len());
                JobRequest::ordered(components, idx)
            }
        };
        let base_service = self.service.sample(service_rng).scaled(self.service_factor(total));
        JobSpec { request, base_service }
    }

    /// Whether a job of the given total size becomes multi-component.
    pub fn is_multi(&self, total: u32) -> bool {
        component_count(total, self.limit, self.clusters) > 1
    }

    /// Fraction of jobs that are multi-component (extended).
    pub fn multi_fraction(&self) -> f64 {
        self.sizes.expect(|s| if self.is_multi(s) { 1.0 } else { 0.0 })
    }

    /// The paper's Table 2 row for this workload: fractions of jobs with
    /// 1..=clusters components.
    pub fn component_count_fractions(&self) -> Vec<f64> {
        component_count_fractions(&self.sizes, self.limit, self.clusters)
    }

    /// The §4 closed form: the ratio of gross to net utilization is the
    /// size-weighted mean extension, `E[size·w(size)] / E[size]` with
    /// `w = extension` for multi-component sizes and 1 otherwise (sizes
    /// and service times being independent).
    ///
    /// The span entering `w` is the *unordered split* component count
    /// for every request kind. That is exact for [`RequestKind::Unordered`]
    /// (the split is the request), for [`RequestKind::Ordered`] (the users
    /// pick clusters but keep the same split), and for
    /// [`RequestKind::Total`] (single-cluster systems never extend). For
    /// [`RequestKind::Flexible`] it is an *upper bound*: the scheduler may
    /// coalesce a splittable request into fewer components (ultimately one
    /// cluster, dodging the extension entirely), so the measured gross
    /// utilization undershoots the offered value computed from this ratio.
    /// `tests/extensions.rs` cross-checks measured vs offered per kind.
    pub fn gross_net_ratio(&self) -> f64 {
        let weighted = self.sizes.expect(|s| {
            let n = component_count(s, self.limit, self.clusters);
            f64::from(s) * self.extension_factor(n) * self.service_factor(s)
        });
        let net = self.sizes.expect(|s| f64::from(s) * self.service_factor(s));
        weighted / net
    }

    /// Mean *gross* processor-seconds demanded per job:
    /// `E[size·w(size)] · E[S]`, with the same unordered-split span
    /// convention as [`Workload::gross_net_ratio`] (exact for ordered /
    /// unordered / total requests, an upper bound for flexible ones).
    pub fn mean_gross_work(&self) -> f64 {
        let weighted = self.sizes.expect(|s| {
            let n = component_count(s, self.limit, self.clusters);
            f64::from(s) * self.extension_factor(n) * self.service_factor(s)
        });
        weighted * self.service.mean_secs()
    }

    /// Mean *net* processor-seconds demanded per job:
    /// `E[size · E[S|size]]` (just `E[size]·E[S]` under independence).
    pub fn mean_net_work(&self) -> f64 {
        self.sizes.expect(|s| f64::from(s) * self.service_factor(s)) * self.service.mean_secs()
    }

    /// The arrival rate producing a target offered *gross* utilization on
    /// a system of `capacity` processors. Because the gross work per job
    /// uses the unordered-split spans (see [`Workload::gross_net_ratio`]),
    /// flexible workloads driven at this rate *carry* slightly less than
    /// the target whenever the scheduler coalesces requests.
    pub fn rate_for_gross_utilization(&self, utilization: f64, capacity: u32) -> f64 {
        rate_for_utilization(utilization, capacity, self.mean_gross_work())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jobspec_extension_applies_to_multi_only() {
        let single =
            JobSpec { request: JobRequest::total_request(8), base_service: Duration::new(100.0) };
        let multi = JobSpec {
            request: JobRequest::from_total(64, 16, 4),
            base_service: Duration::new(100.0),
        };
        assert_eq!(single.extended_service(1.25).seconds(), 100.0);
        assert_eq!(multi.extended_service(1.25).seconds(), 125.0);
    }

    #[test]
    fn das_workload_shape() {
        let w = Workload::das(16);
        assert_eq!(w.clusters, 4);
        assert_eq!(w.extension, 1.25);
        let mut s = RngStream::new(1).labelled("sizes");
        let mut t = RngStream::new(1).labelled("service");
        for _ in 0..2_000 {
            let job = w.sample(&mut s, &mut t);
            assert!(job.request.num_components() <= 4);
            assert!(job.base_service.seconds() > 0.0);
            if job.request.total().div_ceil(16) <= 4 {
                assert!(job.request.max_component() <= 16);
            }
        }
    }

    #[test]
    fn single_cluster_never_splits() {
        let w = Workload::single_cluster();
        assert_eq!(w.clusters, 1);
        assert_eq!(w.multi_fraction(), 0.0);
        assert!((w.gross_net_ratio() - 1.0).abs() < 1e-12);
        let mut s = RngStream::new(2).labelled("sizes");
        let mut t = RngStream::new(2).labelled("service");
        for _ in 0..500 {
            assert!(!w.sample(&mut s, &mut t).request.is_multi());
        }
    }

    #[test]
    fn gross_net_ratio_ordering() {
        // §4: the smaller the limit, the more multi-component jobs, the
        // larger the gross/net gap.
        let r16 = Workload::das(16).gross_net_ratio();
        let r24 = Workload::das(24).gross_net_ratio();
        let r32 = Workload::das(32).gross_net_ratio();
        assert!(r16 > r24 && r24 > r32, "{r16} {r24} {r32}");
        assert!(r32 > 1.0 && r16 < 1.25, "ratios bounded by 1 and the extension");
    }

    #[test]
    fn gross_net_ratio_extension_one_is_identity() {
        let mut w = Workload::das(16);
        w.extension = 1.0;
        assert!((w.gross_net_ratio() - 1.0).abs() < 1e-12);
        assert!((w.mean_gross_work() - w.mean_net_work()).abs() < 1e-9);
    }

    #[test]
    fn multi_fraction_matches_table2() {
        let w = Workload::das(16);
        let f = w.component_count_fractions();
        assert!((w.multi_fraction() - (1.0 - f[0])).abs() < 1e-12);
    }

    #[test]
    fn rate_scales_with_utilization_and_capacity() {
        let w = Workload::das(24);
        let r1 = w.rate_for_gross_utilization(0.5, 128);
        let r2 = w.rate_for_gross_utilization(1.0, 128);
        assert!((r2 / r1 - 2.0).abs() < 1e-9);
    }

    #[test]
    fn extension_factor_shape() {
        let mut w = Workload::das(16);
        assert_eq!(w.extension_factor(1), 1.0);
        assert_eq!(w.extension_factor(2), 1.25);
        assert_eq!(w.extension_factor(4), 1.25, "constant factor by default");
        w.spread_penalty = 0.1;
        assert!((w.extension_factor(3) - 1.35).abs() < 1e-12);
        assert!((w.extension_factor(4) - 1.45).abs() < 1e-12);
        assert_eq!(w.extension_factor(1), 1.0, "single-cluster jobs never pay");
        // A positive penalty raises the gross/net ratio and offered work.
        let base = Workload::das(16);
        assert!(w.gross_net_ratio() > base.gross_net_ratio());
        assert!(w.mean_gross_work() > base.mean_gross_work());
    }

    #[test]
    fn custom_builder_defaults() {
        let w = Workload::custom(JobSizeDist::das_s_64(), ServiceDist::deterministic(10.0), 16, 4);
        assert_eq!(w.extension, EXTENSION_FACTOR);
        assert_eq!(w.spread_penalty, 0.0);
        assert_eq!(w.request_kind, RequestKind::Unordered);
        let one =
            Workload::custom(JobSizeDist::das_s_64(), ServiceDist::deterministic(10.0), 64, 1);
        assert_eq!(one.request_kind, RequestKind::Total);
        let e = Workload::das(16).with_extension(1.5);
        assert_eq!(e.extension, 1.5);
    }

    #[test]
    fn size_service_correlation() {
        let mut w = Workload::das(16);
        assert_eq!(w.service_factor(1), 1.0, "alpha = 0 is the identity");
        w.size_service_exponent = 1.0;
        // Bigger jobs get longer services, smaller jobs shorter...
        assert!(w.service_factor(128) > 1.5);
        assert!(w.service_factor(1) < 0.2);
        // ...but the mean service over the size distribution is unchanged.
        let mean_factor = w.sizes.expect(|s| w.service_factor(s));
        assert!((mean_factor - 1.0).abs() < 1e-9, "normalized: {mean_factor}");
        // Net work rises: work weights sizes, and big sizes now run longer.
        assert!(w.mean_net_work() > Workload::das(16).mean_net_work());
        // Sampling respects the factor deterministically per size.
        let mut s1 = desim::RngStream::new(5).labelled("sizes");
        let mut t1 = desim::RngStream::new(5).labelled("service");
        let job = w.sample(&mut s1, &mut t1);
        assert!(job.base_service.seconds() > 0.0);
    }

    #[test]
    fn with_clusters_caps_the_component_split() {
        // An 8-cluster workload may split a 128-total job into 8
        // components of 16; the 4-cluster default stops at 4 of 32.
        let wide = Workload::das(16).with_clusters(8);
        assert_eq!(wide.clusters, 8);
        let mut s = RngStream::new(3).labelled("sizes");
        let mut t = RngStream::new(3).labelled("service");
        for _ in 0..2_000 {
            let job = wide.sample(&mut s, &mut t);
            assert!(job.request.num_components() <= 8);
            assert!(job.request.max_component() <= 16);
        }
        // More clusters ⇒ no fewer multi-component jobs at the same limit.
        assert!(wide.multi_fraction() >= Workload::das(16).multi_fraction());
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn with_clusters_rejects_zero() {
        let _ = Workload::das(16).with_clusters(0);
    }

    #[test]
    fn das_cut64_reduces_mean_work() {
        assert!(Workload::das_cut64(16).mean_net_work() < Workload::das(16).mean_net_work());
        assert_eq!(Workload::single_cluster_cut64().sizes.max_size(), 64);
    }
}
