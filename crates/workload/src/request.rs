//! Job requests (§2.3): unordered tuples of component sizes, plus the
//! analytic component-count fractions behind the paper's Table 2.
//!
//! Besides the paper's **unordered** requests (and the single-cluster
//! **total** requests), the request-structure taxonomy of the authors'
//! earlier JSSPP studies ([6, 7] in the paper) is implemented as an
//! extension: **ordered** requests pin every component to a specific
//! cluster, and **flexible** requests let the scheduler split the total
//! over the clusters any way it likes.

use crate::jobsize::JobSizeDist;
use crate::split::component_count;

/// The structure of a co-allocation request (the taxonomy of the
/// authors' JSSPP'00/'01 studies; the HPDC'03 paper evaluates
/// `Unordered` against single-cluster `Total`).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum RequestKind {
    /// Component sizes only; the scheduler picks distinct clusters.
    Unordered,
    /// Every component names its cluster (users choose, e.g. for data
    /// locality); the scheduler has no placement freedom.
    Ordered,
    /// Only the total matters; the scheduler may split it arbitrarily
    /// over the clusters' idle processors.
    Flexible,
    /// One component on one cluster (the SC baseline's requests).
    Total,
}

/// Requests of up to this many components store them inline — every
/// configuration in the paper (≤ 5 clusters) samples jobs without
/// touching the heap, which the simulator's hot arrival path relies on.
const INLINE_COMPONENTS: usize = 8;

/// Component sizes with inline storage for small tuples and a heap
/// spill for systems of more than [`INLINE_COMPONENTS`] clusters.
/// Equality and serialization see only the logical slice, so the two
/// storage forms are indistinguishable (serialized as a plain sequence,
/// exactly like the `Vec<u32>` it replaced).
#[derive(Clone, Debug)]
enum Components {
    Inline { len: u8, buf: [u32; INLINE_COMPONENTS] },
    Heap(Vec<u32>),
}

impl Components {
    fn from_vec(v: Vec<u32>) -> Self {
        if v.len() <= INLINE_COMPONENTS {
            let mut buf = [0u32; INLINE_COMPONENTS];
            buf[..v.len()].copy_from_slice(&v);
            Components::Inline { len: v.len() as u8, buf }
        } else {
            Components::Heap(v)
        }
    }

    /// The split of `total` into `n` non-increasing parts (the layout of
    /// [`split_evenly`]), built without an allocation when it fits inline.
    fn from_even_split(total: u32, n: usize) -> Self {
        if n <= INLINE_COMPONENTS {
            assert!(total as usize >= n, "cannot split {total} into {n} non-empty components");
            let base = total / n as u32;
            let rem = (total % n as u32) as usize;
            let mut buf = [0u32; INLINE_COMPONENTS];
            for (i, slot) in buf[..n].iter_mut().enumerate() {
                *slot = base + u32::from(i < rem);
            }
            Components::Inline { len: n as u8, buf }
        } else {
            Components::Heap(crate::split::split_evenly(total, n))
        }
    }

    fn as_slice(&self) -> &[u32] {
        match self {
            Components::Inline { len, buf } => &buf[..usize::from(*len)],
            Components::Heap(v) => v,
        }
    }
}

impl PartialEq for Components {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Components {}

impl serde::Serialize for Components {
    fn to_value(&self) -> serde::value::Value {
        self.as_slice().to_value()
    }
}

impl serde::Deserialize for Components {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::Error> {
        Vec::<u32>::from_value(v).map(Components::from_vec)
    }
}

/// A co-allocation request: component sizes plus the request structure.
///
/// For `Unordered`, `Flexible` and `Total` requests the components are
/// kept in non-increasing order (the placement order of §2.3); for
/// `Ordered` requests the tuple order is the cluster assignment and is
/// preserved, with [`JobRequest::targets`] naming each component's
/// cluster.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct JobRequest {
    components: Components,
    /// For `Ordered`: the cluster index of each component.
    targets: Option<Vec<usize>>,
    kind: RequestKind,
    /// User-supplied runtime estimate in seconds (trace-derived or set by
    /// the harness), consumed by the backfilling disciplines. `None` means
    /// no estimate was submitted; schedulers fall back to a multiplier on
    /// the base service time.
    estimate: Option<f64>,
}

// Estimates are finite by construction (validated in `with_estimate`),
// so float equality is total here, as for `Components` above.
impl Eq for JobRequest {}

impl JobRequest {
    /// Builds an unordered request from component sizes (sorted
    /// internally).
    ///
    /// # Panics
    /// Panics on an empty component list or a zero-size component.
    pub fn new(mut components: Vec<u32>) -> Self {
        assert!(!components.is_empty(), "a request needs at least one component");
        assert!(components.iter().all(|&c| c > 0), "components must be positive");
        components.sort_unstable_by(|a, b| b.cmp(a));
        JobRequest {
            components: Components::from_vec(components),
            targets: None,
            kind: RequestKind::Unordered,
            estimate: None,
        }
    }

    /// Builds the unordered request for a job of `total` processors under
    /// the given component-size limit on `clusters` clusters. This is the
    /// sampling hot path: the even split is written straight into the
    /// inline buffer (already non-increasing by construction), so no heap
    /// allocation happens for paper-scale systems.
    pub fn from_total(total: u32, limit: u32, clusters: usize) -> Self {
        JobRequest {
            components: Components::from_even_split(total, component_count(total, limit, clusters)),
            targets: None,
            kind: RequestKind::Unordered,
            estimate: None,
        }
    }

    /// Builds the unordered request that splits `total` evenly into
    /// exactly `n` components (non-increasing by construction) — the
    /// candidate generator of the moldable disposition, which probes
    /// successive `n` against the current idle vector.
    ///
    /// # Panics
    /// Panics when `total < n` (a component would be empty) or `n == 0`.
    pub fn even_split(total: u32, n: usize) -> Self {
        assert!(n > 0, "a request needs at least one component");
        JobRequest {
            components: Components::from_even_split(total, n),
            targets: None,
            kind: RequestKind::Unordered,
            estimate: None,
        }
    }

    /// A single-component (total) request.
    pub fn total_request(total: u32) -> Self {
        assert!(total > 0, "a request needs at least one processor");
        JobRequest {
            components: Components::from_even_split(total, 1),
            targets: None,
            kind: RequestKind::Total,
            estimate: None,
        }
    }

    /// Builds an ordered request: `components[i]` must run on cluster
    /// `targets[i]`.
    ///
    /// # Panics
    /// Panics on length mismatch, empty/zero components, or duplicate
    /// target clusters.
    pub fn ordered(components: Vec<u32>, targets: Vec<usize>) -> Self {
        assert_eq!(components.len(), targets.len(), "one target cluster per component");
        assert!(!components.is_empty(), "a request needs at least one component");
        assert!(components.iter().all(|&c| c > 0), "components must be positive");
        let mut t = targets.clone();
        t.sort_unstable();
        let before = t.len();
        t.dedup();
        assert_eq!(before, t.len(), "ordered components must name distinct clusters");
        JobRequest {
            components: Components::from_vec(components),
            targets: Some(targets),
            kind: RequestKind::Ordered,
            estimate: None,
        }
    }

    /// Builds a flexible request for `total` processors. The `limit` and
    /// `clusters` pre-split is kept only for classification (routing,
    /// offered-load accounting); the scheduler repacks at placement time.
    pub fn flexible(total: u32, limit: u32, clusters: usize) -> Self {
        JobRequest {
            components: Components::from_even_split(total, component_count(total, limit, clusters)),
            targets: None,
            kind: RequestKind::Flexible,
            estimate: None,
        }
    }

    /// The request structure.
    pub fn kind(&self) -> RequestKind {
        self.kind
    }

    /// Component sizes: non-increasing, except for `Ordered` requests
    /// where the order matches [`JobRequest::targets`].
    pub fn components(&self) -> &[u32] {
        self.components.as_slice()
    }

    /// For `Ordered` requests, the cluster index of each component.
    pub fn targets(&self) -> Option<&[usize]> {
        self.targets.as_deref()
    }

    /// Total processors requested.
    pub fn total(&self) -> u32 {
        self.components.as_slice().iter().sum()
    }

    /// Number of components.
    pub fn num_components(&self) -> usize {
        self.components.as_slice().len()
    }

    /// Whether the job is classified multi-component (for routing and
    /// offered-load accounting). The *actual* wide-area extension is
    /// decided by the placement a job receives — relevant for `Flexible`
    /// requests, which may end up in a single cluster.
    pub fn is_multi(&self) -> bool {
        self.components.as_slice().len() > 1
    }

    /// The largest component.
    pub fn max_component(&self) -> u32 {
        *self.components.as_slice().iter().max().expect("non-empty")
    }

    /// The submitted runtime estimate in seconds, if any.
    pub fn estimate(&self) -> Option<f64> {
        self.estimate
    }

    /// Returns this request carrying the given runtime estimate.
    ///
    /// # Panics
    /// Panics on a non-finite or non-positive estimate.
    pub fn with_estimate(mut self, estimate: f64) -> Self {
        assert!(estimate.is_finite() && estimate > 0.0, "estimate must be finite and positive");
        self.estimate = Some(estimate);
        self
    }

    /// Returns this request re-split into the given component layout,
    /// preserving the kind and estimate — the adoption step of the
    /// moldable disposition (targets make no sense for a re-split, so
    /// this is restricted to unadorned unordered requests).
    ///
    /// # Panics
    /// Panics when the new layout's total differs from the original, or
    /// on an `Ordered` request.
    pub fn resplit_even(&self, n: usize) -> Self {
        assert!(self.targets.is_none(), "ordered requests cannot be re-split");
        assert!(n > 0, "a request needs at least one component");
        JobRequest {
            components: Components::from_even_split(self.total(), n),
            targets: None,
            kind: self.kind,
            estimate: self.estimate,
        }
    }
}

impl core::fmt::Display for JobRequest {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self.kind {
            RequestKind::Flexible => write!(f, "flex({})", self.total()),
            RequestKind::Ordered => {
                write!(f, "[")?;
                let targets = self.targets.as_ref().expect("ordered has targets");
                for (i, (c, t)) in self.components.as_slice().iter().zip(targets).enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}@{t}")?;
                }
                write!(f, "]")
            }
            _ => {
                write!(f, "(")?;
                for (i, c) in self.components.as_slice().iter().enumerate() {
                    if i > 0 {
                        write!(f, ",")?;
                    }
                    write!(f, "{c}")?;
                }
                write!(f, ")")
            }
        }
    }
}

/// The fractions of jobs having 1..=`clusters` components under the given
/// size distribution and component-size limit — the paper's **Table 2**,
/// computed exactly from the distribution rather than by sampling.
pub fn component_count_fractions(dist: &JobSizeDist, limit: u32, clusters: usize) -> Vec<f64> {
    let mut fractions = vec![0.0f64; clusters];
    for (size, p) in dist.support() {
        let n = component_count(size, limit, clusters);
        fractions[n - 1] += p;
    }
    fractions
}

/// The fraction of jobs that become multi-component under the given limit
/// (the complement of Table 2's single-component column).
pub fn multi_component_fraction(dist: &JobSizeDist, limit: u32, clusters: usize) -> f64 {
    1.0 - component_count_fractions(dist, limit, clusters)[0]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_normalizes_order() {
        let r = JobRequest::new(vec![3, 9, 6]);
        assert_eq!(r.components(), &[9, 6, 3]);
        assert_eq!(r.total(), 18);
        assert_eq!(r.num_components(), 3);
        assert!(r.is_multi());
        assert_eq!(r.max_component(), 9);
        assert_eq!(format!("{r}"), "(9,6,3)");
    }

    #[test]
    fn total_request_is_single() {
        let r = JobRequest::total_request(64);
        assert!(!r.is_multi());
        assert_eq!(r.total(), 64);
    }

    #[test]
    fn from_total_matches_paper_example() {
        assert_eq!(JobRequest::from_total(64, 16, 4).components(), &[16, 16, 16, 16]);
        assert_eq!(JobRequest::from_total(64, 24, 4).components(), &[22, 21, 21]);
        assert_eq!(JobRequest::from_total(64, 32, 4).components(), &[32, 32]);
    }

    #[test]
    #[should_panic(expected = "at least one component")]
    fn empty_request_rejected() {
        JobRequest::new(vec![]);
    }

    #[test]
    fn table2_fractions_sum_to_one() {
        let dist = JobSizeDist::das_s_128();
        for limit in [16u32, 24, 32] {
            let f = component_count_fractions(&dist, limit, 4);
            assert_eq!(f.len(), 4);
            let total: f64 = f.iter().sum();
            assert!((total - 1.0).abs() < 1e-9, "limit {limit}: {f:?}");
            assert!(f.iter().all(|&x| (0.0..=1.0).contains(&x)));
        }
    }

    #[test]
    fn table2_qualitative_shape() {
        // Paper Table 2: the single-component fraction *grows* with the
        // limit (0.513 → 0.738 → 0.780 in the paper's log).
        let dist = JobSizeDist::das_s_128();
        let f16 = component_count_fractions(&dist, 16, 4);
        let f24 = component_count_fractions(&dist, 24, 4);
        let f32 = component_count_fractions(&dist, 32, 4);
        assert!(f16[0] < f24[0] && f24[0] < f32[0], "{} {} {}", f16[0], f24[0], f32[0]);
        // Around half the jobs are single-component at limit 16, and
        // roughly three quarters at limits 24 and 32.
        // The size pmf is reconstructed so that Table 2 is matched to
        // within a couple of thousandths (see trace::das).
        assert!((f16[0] - 0.513).abs() < 0.002, "limit16 single {:.3}", f16[0]);
        assert!((f16[1] - 0.267).abs() < 0.002, "limit16 two-comp {:.3}", f16[1]);
        assert!((f16[3] - 0.211).abs() < 0.002, "limit16 four-comp {:.3}", f16[3]);
        assert!((f24[0] - 0.738).abs() < 0.002, "limit24 single {:.3}", f24[0]);
        assert!((f24[1] - 0.051).abs() < 0.002, "limit24 two-comp {:.3}", f24[1]);
        assert!((f24[2] - 0.194).abs() < 0.003, "limit24 three-comp {:.3}", f24[2]);
        assert!((f32[0] - 0.780).abs() < 0.002, "limit32 single {:.3}", f32[0]);
        // Limit 32 sends size-64 jobs (19% of all) to exactly 2 components.
        assert!((f32[1] - 0.200).abs() < 0.002, "limit32 two-comp {:.3}", f32[1]);
        assert!((f32[2] - 0.003).abs() < 0.002, "limit32 three-comp {:.3}", f32[2]);
        assert!((f32[3] - 0.017).abs() < 0.002, "limit32 four-comp {:.3}", f32[3]);
    }

    #[test]
    fn multi_fraction_decreases_with_limit() {
        let dist = JobSizeDist::das_s_128();
        let m16 = multi_component_fraction(&dist, 16, 4);
        let m24 = multi_component_fraction(&dist, 24, 4);
        let m32 = multi_component_fraction(&dist, 32, 4);
        assert!(m16 > m24 && m24 > m32);
        // §3.1.1: ~49% multi-component at limit 16, ~26%/22% at 24/32.
        assert!((m16 - 0.487).abs() < 0.005, "m16 {m16:.3}");
        assert!((m24 - 0.262).abs() < 0.005, "m24 {m24:.3}");
        assert!((m32 - 0.220).abs() < 0.005, "m32 {m32:.3}");
    }
}
// (request-kind tests appended alongside the original unordered tests)
#[cfg(test)]
mod kind_tests {
    use super::*;

    #[test]
    fn ordered_preserves_order_and_targets() {
        let r = JobRequest::ordered(vec![8, 16, 4], vec![2, 0, 3]);
        assert_eq!(r.kind(), RequestKind::Ordered);
        assert_eq!(r.components(), &[8, 16, 4]);
        assert_eq!(r.targets(), Some(&[2usize, 0, 3][..]));
        assert_eq!(r.total(), 28);
        assert_eq!(r.max_component(), 16);
        assert_eq!(format!("{r}"), "[8@2,16@0,4@3]");
    }

    #[test]
    #[should_panic(expected = "distinct clusters")]
    fn ordered_rejects_duplicate_targets() {
        JobRequest::ordered(vec![8, 8], vec![1, 1]);
    }

    #[test]
    #[should_panic(expected = "one target cluster per component")]
    fn ordered_rejects_length_mismatch() {
        JobRequest::ordered(vec![8, 8], vec![1]);
    }

    #[test]
    fn flexible_keeps_classification_split() {
        let r = JobRequest::flexible(64, 16, 4);
        assert_eq!(r.kind(), RequestKind::Flexible);
        assert_eq!(r.components(), &[16, 16, 16, 16], "pre-split kept for classification");
        assert!(r.is_multi());
        assert_eq!(format!("{r}"), "flex(64)");
    }

    #[test]
    fn kinds_of_basic_constructors() {
        assert_eq!(JobRequest::new(vec![4, 4]).kind(), RequestKind::Unordered);
        assert_eq!(JobRequest::from_total(64, 16, 4).kind(), RequestKind::Unordered);
        assert_eq!(JobRequest::total_request(64).kind(), RequestKind::Total);
        assert_eq!(JobRequest::total_request(64).targets(), None);
    }
}
