//! The job arrival process (§2.2): Poisson arrivals, plus the conversion
//! between arrival rate and offered utilization that the experiment
//! harness sweeps over.

use desim::{Duration, Exponential, HyperExponential, RngStream, Variate};

enum Gaps {
    Exponential(Exponential),
    Hyper(HyperExponential),
}

/// A renewal arrival process: Poisson by default (the paper's model), or
/// a burstier hyperexponential-gap variant for sensitivity studies.
pub struct ArrivalProcess {
    gaps: Gaps,
    rate: f64,
}

impl ArrivalProcess {
    /// Creates a Poisson process generating `rate` jobs per second on
    /// average (the paper's exponential interarrival times).
    pub fn new(rate: f64) -> Self {
        ArrivalProcess { gaps: Gaps::Exponential(Exponential::with_rate(rate)), rate }
    }

    /// Creates a renewal process with mean rate `rate` and interarrival
    /// squared coefficient of variation `cv2` (`cv2 == 1` is Poisson;
    /// larger values give burstier arrivals via a two-phase
    /// hyperexponential).
    ///
    /// # Panics
    /// Panics if `cv2 < 1` (hypoexponential gaps are not modelled).
    pub fn with_cv2(rate: f64, cv2: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite());
        if (cv2 - 1.0).abs() < 1e-12 {
            return ArrivalProcess::new(rate);
        }
        assert!(cv2 > 1.0, "interarrival CV^2 must be >= 1, got {cv2}");
        ArrivalProcess { gaps: Gaps::Hyper(HyperExponential::fit(1.0 / rate, cv2)), rate }
    }

    /// The mean arrival rate in jobs per second.
    pub fn rate(&self) -> f64 {
        self.rate
    }

    /// Draws the gap to the next arrival.
    #[inline]
    pub fn next_gap(&self, rng: &mut RngStream) -> Duration {
        let g = match &self.gaps {
            Gaps::Exponential(e) => e.sample(rng),
            Gaps::Hyper(h) => h.sample(rng),
        };
        Duration::new(g)
    }
}

/// Converts a target *offered* utilization into the arrival rate that
/// produces it: `rate = utilization * capacity / work_per_job`, where
/// `work_per_job` is the mean processor-seconds demanded per job.
pub fn rate_for_utilization(utilization: f64, capacity: u32, work_per_job: f64) -> f64 {
    assert!(utilization > 0.0 && utilization.is_finite(), "utilization must be positive");
    assert!(capacity > 0, "capacity must be positive");
    assert!(work_per_job > 0.0 && work_per_job.is_finite(), "work per job must be positive");
    utilization * f64::from(capacity) / work_per_job
}

/// The offered utilization produced by an arrival rate (inverse of
/// [`rate_for_utilization`]).
pub fn utilization_for_rate(rate: f64, capacity: u32, work_per_job: f64) -> f64 {
    assert!(capacity > 0);
    rate * work_per_job / f64::from(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gap_mean_matches_rate() {
        let a = ArrivalProcess::new(0.5); // one job every 2 s on average
        assert!((a.rate() - 0.5).abs() < 1e-12);
        let mut rng = RngStream::new(8);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| a.next_gap(&mut rng).seconds()).sum::<f64>() / f64::from(n);
        assert!((mean - 2.0).abs() < 0.03, "mean gap {mean}");
    }

    #[test]
    fn rate_utilization_roundtrip() {
        // 128 processors, mean work 23.5 procs × 150 s = 3525 proc-s/job.
        let rate = rate_for_utilization(0.7, 128, 3525.0);
        let util = utilization_for_rate(rate, 128, 3525.0);
        assert!((util - 0.7).abs() < 1e-12);
        // Sanity: higher target utilization needs a higher rate.
        assert!(rate_for_utilization(0.9, 128, 3525.0) > rate);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_utilization_rejected() {
        rate_for_utilization(0.0, 128, 100.0);
    }

    #[test]
    fn bursty_gaps_keep_the_mean_rate() {
        let a = ArrivalProcess::with_cv2(0.25, 9.0);
        assert!((a.rate() - 0.25).abs() < 1e-12);
        let mut rng = RngStream::new(17);
        let n = 200_000;
        let xs: Vec<f64> = (0..n).map(|_| a.next_gap(&mut rng).seconds()).collect();
        let mean = xs.iter().sum::<f64>() / f64::from(n);
        assert!((mean - 4.0).abs() < 0.1, "mean gap {mean}");
        let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / f64::from(n);
        let cv2 = var / (mean * mean);
        assert!((cv2 - 9.0).abs() < 0.8, "cv2 {cv2}");
    }

    #[test]
    fn cv2_one_is_poisson() {
        let a = ArrivalProcess::with_cv2(0.5, 1.0);
        let b = ArrivalProcess::new(0.5);
        let mut r1 = RngStream::new(3);
        let mut r2 = RngStream::new(3);
        assert_eq!(a.next_gap(&mut r1), b.next_gap(&mut r2));
    }

    #[test]
    #[should_panic(expected = ">= 1")]
    fn sub_poisson_cv_rejected() {
        ArrivalProcess::with_cv2(1.0, 0.5);
    }
}
