//! Routing submitted jobs to local queues (§3).
//!
//! Policies with local queues (LS, LP) receive jobs either *balanced*
//! (every queue gets the same fraction) or *unbalanced* (one queue gets
//! 40 %, the remaining three 20 % each, in the paper's 4-cluster setup).

use desim::RngStream;

/// A probabilistic assignment of submitted jobs to local queues.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct QueueRouting {
    /// Normalized probability of each queue; cumulative form is derived
    /// on demand.
    weights: Vec<f64>,
}

impl QueueRouting {
    /// Every one of `n` queues receives the same fraction of jobs.
    pub fn balanced(n: usize) -> Self {
        assert!(n > 0);
        QueueRouting { weights: vec![1.0 / n as f64; n] }
    }

    /// The paper's unbalanced case: the first queue receives twice the
    /// share of each of the others (40/20/20/20 for four queues).
    pub fn unbalanced(n: usize) -> Self {
        assert!(n >= 2, "unbalanced routing needs at least two queues");
        let rest = 1.0 / (n as f64 + 1.0);
        let mut weights = vec![rest; n];
        weights[0] = 2.0 * rest;
        QueueRouting { weights }
    }

    /// Arbitrary non-negative weights, normalized internally.
    pub fn custom(weights: &[f64]) -> Self {
        assert!(!weights.is_empty());
        assert!(weights.iter().all(|&w| w >= 0.0 && w.is_finite()));
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "at least one weight must be positive");
        QueueRouting { weights: weights.iter().map(|w| w / total).collect() }
    }

    /// Number of queues.
    pub fn queues(&self) -> usize {
        self.weights.len()
    }

    /// The normalized share of each queue.
    pub fn shares(&self) -> &[f64] {
        &self.weights
    }

    /// Draws the queue index for one submitted job.
    pub fn pick(&self, rng: &mut RngStream) -> usize {
        let u = rng.uniform();
        let mut acc = 0.0;
        for (i, &w) in self.weights.iter().enumerate() {
            acc += w;
            if u < acc {
                return i;
            }
        }
        self.weights.len() - 1
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_shares() {
        let r = QueueRouting::balanced(4);
        assert_eq!(r.queues(), 4);
        for &s in r.shares() {
            assert!((s - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn unbalanced_is_40_20_20_20() {
        let r = QueueRouting::unbalanced(4);
        let s = r.shares();
        assert!((s[0] - 0.4).abs() < 1e-12);
        for &x in &s[1..] {
            assert!((x - 0.2).abs() < 1e-12);
        }
        assert!((s.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn custom_normalizes() {
        let r = QueueRouting::custom(&[2.0, 1.0, 1.0]);
        assert!((r.shares()[0] - 0.5).abs() < 1e-12);
    }

    #[test]
    fn pick_matches_shares() {
        let r = QueueRouting::unbalanced(4);
        let mut rng = RngStream::new(77);
        let n = 100_000;
        let mut counts = [0u32; 4];
        for _ in 0..n {
            counts[r.pick(&mut rng)] += 1;
        }
        let f0 = f64::from(counts[0]) / f64::from(n);
        assert!((f0 - 0.4).abs() < 0.01, "first queue share {f0}");
        for (i, &c) in counts.iter().enumerate().skip(1) {
            let f = f64::from(c) / f64::from(n);
            assert!((f - 0.2).abs() < 0.01, "queue {i} share {f}");
        }
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn all_zero_weights_rejected() {
        QueueRouting::custom(&[0.0, 0.0]);
    }
}
