//! Splitting a total job size into components (§2.4 of the paper).
//!
//! Given a job-component-size limit `L` and `C` clusters, the number of
//! components is the smallest `n` such that `ceil(total/n) <= L`, "as long
//! as the number of components does not exceed the number of clusters" —
//! i.e. capped at `C`, in which case components may exceed the limit.
//! The total is then split into components "of sizes as equal as
//! possible".
//!
//! The paper's own worked example (§3.3) for total size 64:
//! limit 16 → (16,16,16,16); limit 24 → (22,21,21); limit 32 → (32,32).

/// The number of components a job of `total` processors is split into
/// under component-size `limit` on a system of `clusters` clusters.
///
/// # Panics
/// Panics if `total` or `limit` is zero or `clusters` is zero.
pub fn component_count(total: u32, limit: u32, clusters: usize) -> usize {
    assert!(total > 0, "job size must be positive");
    assert!(limit > 0, "component-size limit must be positive");
    assert!(clusters > 0, "need at least one cluster");
    // Smallest n with ceil(total/n) <= limit  ⇔  n >= ceil(total/limit).
    let needed = total.div_ceil(limit) as usize;
    needed.clamp(1, clusters)
}

/// Splits `total` into `n` parts as equal as possible, in non-increasing
/// order: `total % n` parts of `ceil(total/n)` followed by parts of
/// `floor(total/n)`.
pub fn split_evenly(total: u32, n: usize) -> Vec<u32> {
    assert!(n > 0, "cannot split into zero components");
    assert!(total as usize >= n, "cannot split {total} processors into {n} non-empty components");
    let n32 = n as u32;
    let base = total / n32;
    let rem = (total % n32) as usize;
    let mut parts = Vec::with_capacity(n);
    parts.extend(std::iter::repeat_n(base + 1, rem));
    parts.extend(std::iter::repeat_n(base, n - rem));
    parts
}

/// Splits a job of `total` processors under the given component-size
/// limit: [`component_count`] followed by [`split_evenly`]. Components are
/// returned in non-increasing order (the placement order of §2.3).
///
/// The paper's own worked example:
/// ```
/// use coalloc_workload::split;
/// assert_eq!(split(64, 16, 4), vec![16, 16, 16, 16]);
/// assert_eq!(split(64, 24, 4), vec![22, 21, 21]);
/// assert_eq!(split(64, 32, 4), vec![32, 32]);
/// ```
pub fn split(total: u32, limit: u32, clusters: usize) -> Vec<u32> {
    split_evenly(total, component_count(total, limit, clusters))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_example_size_64() {
        assert_eq!(split(64, 16, 4), vec![16, 16, 16, 16]);
        assert_eq!(split(64, 24, 4), vec![22, 21, 21]);
        assert_eq!(split(64, 32, 4), vec![32, 32]);
    }

    #[test]
    fn cluster_cap_allows_oversize_components() {
        // Size 128 with limit 24 would need 6 components, but the cap at
        // 4 clusters forces components of 32 > 24 (per the paper's "as
        // long as" proviso).
        assert_eq!(component_count(128, 24, 4), 4);
        assert_eq!(split(128, 24, 4), vec![32, 32, 32, 32]);
        assert_eq!(split(128, 16, 4), vec![32, 32, 32, 32]);
    }

    #[test]
    fn small_jobs_stay_single_component() {
        for s in 1..=16 {
            assert_eq!(component_count(s, 16, 4), 1);
            assert_eq!(split(s, 16, 4), vec![s]);
        }
        assert_eq!(component_count(24, 24, 4), 1);
        assert_eq!(component_count(25, 24, 4), 2);
    }

    #[test]
    fn split_is_conservative_and_sorted() {
        for total in 1..=128u32 {
            for limit in [16u32, 24, 32] {
                let parts = split(total, limit, 4);
                assert_eq!(parts.iter().sum::<u32>(), total, "total {total} limit {limit}");
                assert!(parts.windows(2).all(|w| w[0] >= w[1]), "sorted: {parts:?}");
                assert!(parts.iter().all(|&p| p > 0));
                // Parts differ by at most one.
                let max = *parts.iter().max().expect("non-empty");
                let min = *parts.iter().min().expect("non-empty");
                assert!(max - min <= 1, "as equal as possible: {parts:?}");
                // Within the limit unless the cluster cap forced more.
                if total.div_ceil(limit) <= 4 {
                    assert!(max <= limit, "limit respected: {parts:?} (limit {limit})");
                }
            }
        }
    }

    #[test]
    fn minimality_of_component_count() {
        // n is the *smallest* count satisfying the limit.
        for total in 1..=128u32 {
            for limit in [16u32, 24, 32] {
                let n = component_count(total, limit, 4);
                if n > 1 && total.div_ceil(limit) <= 4 {
                    let fewer = split_evenly(total, n - 1);
                    assert!(
                        fewer[0] > limit,
                        "size {total} limit {limit}: {} components already suffice",
                        n - 1
                    );
                }
            }
        }
    }

    #[test]
    fn even_split_examples() {
        assert_eq!(split_evenly(10, 3), vec![4, 3, 3]);
        assert_eq!(split_evenly(12, 4), vec![3, 3, 3, 3]);
        assert_eq!(split_evenly(7, 2), vec![4, 3]);
        assert_eq!(split_evenly(1, 1), vec![1]);
    }

    #[test]
    #[should_panic(expected = "non-empty components")]
    fn cannot_split_below_one_each() {
        split_evenly(2, 3);
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_total_rejected() {
        component_count(0, 16, 4);
    }
}
