//! Placement benchmarks: the Worst-Fit rule of the paper against the
//! Best-Fit / First-Fit ablations, on random system states.

use coalloc_bench::random_idle_states;
use coalloc_core::{place_unordered, PlacementRule};
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_placement_rules(c: &mut Criterion) {
    let states = random_idle_states(1_000, 42);
    let requests: Vec<Vec<u32>> =
        vec![vec![16, 16, 16, 16], vec![22, 21, 21], vec![32, 32], vec![8], vec![30, 17]];
    let mut group = c.benchmark_group("placement");
    group.throughput(Throughput::Elements((states.len() * requests.len()) as u64));
    for rule in [PlacementRule::WorstFit, PlacementRule::BestFit, PlacementRule::FirstFit] {
        group.bench_with_input(BenchmarkId::new("rule", format!("{rule:?}")), &rule, |b, &rule| {
            b.iter(|| {
                let mut fits = 0usize;
                for idle in &states {
                    for req in &requests {
                        if place_unordered(idle, req, rule).is_some() {
                            fits += 1;
                        }
                    }
                }
                black_box(fits)
            })
        });
    }
    group.finish();
}

/// End-to-end ablation: how the placement rule changes full-simulation
/// cost (the fit rate changes the event pattern).
fn bench_placement_in_simulation(c: &mut Criterion) {
    let mut group = c.benchmark_group("placement_sim");
    group.sample_size(10);
    for rule in [PlacementRule::WorstFit, PlacementRule::BestFit, PlacementRule::FirstFit] {
        group.bench_with_input(
            BenchmarkId::new("gs_5k_jobs", format!("{rule:?}")),
            &rule,
            |b, &rule| {
                b.iter(|| {
                    let mut cfg =
                        coalloc_bench::bench_sim_config(coalloc_core::PolicyKind::Gs, 5_000);
                    cfg.rule = rule;
                    black_box(coalloc_core::SimBuilder::new(&cfg).run().completed)
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_placement_rules, bench_placement_in_simulation);
criterion_main!(benches);
