//! Engine benchmarks: future-event-list throughput (binary heap vs
//! calendar queue — the DESIGN.md calendar ablation) and raw event
//! scheduling cost.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use desim::{
    CalendarQueue, Duration, Event, EventCalendar, EventId, Exponential, HeapCalendar, RngStream,
    SimTime, Simulation, Variate,
};
use std::hint::black_box;

/// The classic "hold" model: keep `n` events pending; repeatedly pop the
/// earliest and insert a new one at a random future offset. This is the
/// steady-state access pattern of the co-allocation simulator.
fn hold<C: EventCalendar<u64>>(cal: &mut C, n: usize, ops: usize) -> f64 {
    let mut rng = RngStream::new(7);
    let exp = Exponential::with_mean(100.0);
    let mut next_id = 0u64;
    let mut now = 0.0;
    for _ in 0..n {
        let t = now + exp.sample(&mut rng);
        cal.insert(Event {
            time: SimTime::new(t),
            id: EventId::from_raw(next_id),
            payload: next_id,
        });
        next_id += 1;
    }
    for _ in 0..ops {
        let ev = cal.pop().expect("hold model never empties");
        now = ev.time.seconds();
        let t = now + exp.sample(&mut rng);
        cal.insert(Event {
            time: SimTime::new(t),
            id: EventId::from_raw(next_id),
            payload: next_id,
        });
        next_id += 1;
    }
    now
}

fn bench_calendars(c: &mut Criterion) {
    let mut group = c.benchmark_group("calendar_hold");
    for &n in &[64usize, 1024, 16384] {
        let ops = 20_000;
        group.throughput(Throughput::Elements(ops as u64));
        group.bench_with_input(BenchmarkId::new("heap", n), &n, |b, &n| {
            b.iter(|| {
                let mut cal = HeapCalendar::new();
                black_box(hold(&mut cal, n, ops))
            })
        });
        group.bench_with_input(BenchmarkId::new("calendar_queue", n), &n, |b, &n| {
            b.iter(|| {
                let mut cal = CalendarQueue::new();
                black_box(hold(&mut cal, n, ops))
            })
        });
    }
    group.finish();
}

fn bench_engine_schedule(c: &mut Criterion) {
    c.bench_function("engine_schedule_step", |b| {
        b.iter(|| {
            let mut sim: Simulation<u32> = Simulation::new();
            for i in 0..1_000u32 {
                sim.schedule_in(Duration::new(f64::from(i % 97) + 0.5), i);
            }
            let mut acc = 0u64;
            while let Some(ev) = sim.step() {
                acc = acc.wrapping_add(u64::from(ev.payload));
            }
            black_box(acc)
        })
    });
}

fn bench_rng(c: &mut Criterion) {
    let mut group = c.benchmark_group("rng");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("uniform_10k", |b| {
        let mut rng = RngStream::new(3);
        b.iter(|| {
            let mut s = 0.0;
            for _ in 0..10_000 {
                s += rng.uniform();
            }
            black_box(s)
        })
    });
    group.bench_function("exponential_10k", |b| {
        let mut rng = RngStream::new(3);
        let exp = Exponential::with_mean(100.0);
        b.iter(|| {
            let mut s = 0.0;
            for _ in 0..10_000 {
                s += exp.sample(&mut rng);
            }
            black_box(s)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_calendars, bench_engine_schedule, bench_rng);
criterion_main!(benches);
