//! Statistics-toolkit benchmarks: the metric-collection overhead per
//! simulated job must stay negligible next to the event-loop cost.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use desim::stats::{BatchMeans, TimeWeighted, Welford};
use desim::{P2Quantile, RngStream, SimTime};
use std::hint::black_box;

fn bench_streaming_estimators(c: &mut Criterion) {
    let mut rng = RngStream::new(11);
    let xs: Vec<f64> = (0..100_000).map(|_| rng.uniform() * 1e4).collect();
    let mut group = c.benchmark_group("streaming");
    group.throughput(Throughput::Elements(xs.len() as u64));
    group.bench_function("welford_100k", |b| {
        b.iter(|| {
            let mut w = Welford::new();
            for &x in &xs {
                w.add(x);
            }
            black_box(w.variance())
        })
    });
    group.bench_function("batch_means_100k", |b| {
        b.iter(|| {
            let mut bm = BatchMeans::new(500);
            for &x in &xs {
                bm.add(x);
            }
            black_box(bm.estimate().mean)
        })
    });
    group.bench_function("p2_quantile_100k", |b| {
        b.iter(|| {
            let mut q = P2Quantile::new(0.95);
            for &x in &xs {
                q.add(x);
            }
            black_box(q.estimate())
        })
    });
    group.bench_function("time_weighted_100k", |b| {
        b.iter(|| {
            let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
            for (i, &x) in xs.iter().enumerate() {
                tw.update(SimTime::new(i as f64 + 1.0), x);
            }
            black_box(tw.average(SimTime::new(xs.len() as f64 + 1.0)))
        })
    });
    group.finish();
}

fn bench_warmup_analysis(c: &mut Criterion) {
    let mut rng = RngStream::new(13);
    let xs: Vec<f64> = (0..40_000).map(|_| rng.uniform() * 1e3).collect();
    let mut group = c.benchmark_group("warmup");
    group.sample_size(10);
    group.bench_function("mser5_40k", |b| b.iter(|| black_box(desim::mser5(&xs).truncate)));
    group.bench_function("autocorrelation_lag100_40k", |b| {
        b.iter(|| black_box(desim::autocorrelation(&xs, 100)))
    });
    group.finish();
}

criterion_group!(benches, bench_streaming_estimators, bench_warmup_analysis);
criterion_main!(benches);
