//! Policy benchmarks: full-simulation throughput (jobs simulated per
//! second of wall time) for each scheduling policy, and the saturation
//! analysis cost.

use coalloc_bench::bench_sim_config;
use coalloc_core::saturation::{maximal_utilization, SaturationConfig};
use coalloc_core::PolicyKind;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;

fn bench_policies(c: &mut Criterion) {
    let jobs = 10_000u64;
    let mut group = c.benchmark_group("policy_sim");
    group.sample_size(10);
    group.throughput(Throughput::Elements(jobs));
    for policy in [PolicyKind::Gs, PolicyKind::Ls, PolicyKind::Lp, PolicyKind::Sc] {
        group.bench_with_input(
            BenchmarkId::new("run_10k_jobs", policy.label()),
            &policy,
            |b, &policy| {
                b.iter(|| {
                    black_box(
                        coalloc_core::SimBuilder::new(&bench_sim_config(policy, jobs))
                            .run()
                            .completed,
                    )
                })
            },
        );
    }
    group.finish();
}

fn bench_saturation(c: &mut Criterion) {
    let mut group = c.benchmark_group("saturation");
    group.sample_size(10);
    group.bench_function("gs_limit16_5k_departures", |b| {
        b.iter(|| {
            let mut cfg = SaturationConfig::das_gs(16);
            cfg.warmup_departures = 500;
            cfg.measured_departures = 5_000;
            black_box(maximal_utilization(&cfg).max_gross_utilization)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_policies, bench_saturation, replay::bench_replay);
criterion_main!(benches);

// Appended: trace-replay throughput (the feed path, not the stochastic
// sampler) — registered via a second criterion group below.
mod replay {
    use super::*;
    use coalloc_trace::{generate_das1_log, DasLogConfig};

    pub fn bench_replay(c: &mut Criterion) {
        let log = generate_das1_log(&DasLogConfig { jobs: 10_000, ..Default::default() });
        let mut group = c.benchmark_group("replay");
        group.sample_size(10);
        group.throughput(Throughput::Elements(log.len() as u64));
        group.bench_function("ls_10k_jobs", |b| {
            b.iter(|| {
                let mut cfg = coalloc_bench::bench_sim_config(PolicyKind::Ls, 10_000);
                cfg.warmup_jobs = 1_000;
                black_box(coalloc_core::SimBuilder::new(&cfg).run_trace(&log, 1.0).completed)
            })
        });
        group.finish();
    }
}
