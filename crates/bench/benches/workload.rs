//! Workload-model benchmarks: distribution sampling, request splitting,
//! and synthetic log generation.

use coalloc_trace::{generate_das1_log, DasLogConfig};
use coalloc_workload::{JobRequest, JobSizeDist, ServiceDist, Workload};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use desim::RngStream;
use std::hint::black_box;

fn bench_size_sampling(c: &mut Criterion) {
    let mut group = c.benchmark_group("sampling");
    group.throughput(Throughput::Elements(10_000));
    group.bench_function("das_s_128_sizes_10k", |b| {
        let dist = JobSizeDist::das_s_128();
        let mut rng = RngStream::new(1);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc += u64::from(dist.sample(&mut rng));
            }
            black_box(acc)
        })
    });
    group.bench_function("das_t_900_service_10k", |b| {
        let dist = ServiceDist::das_t_900();
        let mut rng = RngStream::new(1);
        b.iter(|| {
            let mut acc = 0.0;
            for _ in 0..10_000 {
                acc += dist.sample(&mut rng).seconds();
            }
            black_box(acc)
        })
    });
    group.bench_function("full_jobspec_10k", |b| {
        let w = Workload::das(16);
        let mut s = RngStream::new(1);
        let mut t = RngStream::new(2);
        b.iter(|| {
            let mut acc = 0u64;
            for _ in 0..10_000 {
                acc += w.sample(&mut s, &mut t).request.total() as u64;
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_splitting(c: &mut Criterion) {
    let mut group = c.benchmark_group("splitting");
    group.throughput(Throughput::Elements(128 * 3));
    group.bench_function("split_all_sizes_all_limits", |b| {
        b.iter(|| {
            let mut acc = 0usize;
            for limit in [16u32, 24, 32] {
                for total in 1..=128u32 {
                    acc += JobRequest::from_total(total, limit, 4).num_components();
                }
            }
            black_box(acc)
        })
    });
    group.finish();
}

fn bench_log_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("das1_log");
    group.sample_size(10);
    group.bench_function("generate_30k_jobs", |b| {
        b.iter(|| black_box(generate_das1_log(&DasLogConfig::default()).len()))
    });
    group.bench_function("swf_roundtrip_5k", |b| {
        let log = generate_das1_log(&DasLogConfig { jobs: 5_000, ..Default::default() });
        b.iter(|| {
            let text = coalloc_trace::write_swf(&log);
            black_box(coalloc_trace::parse_swf(&text).expect("valid").len())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_size_sampling, bench_splitting, bench_log_generation);
criterion_main!(benches);
