//! Shared helpers for the Criterion benchmarks of the co-allocation
//! simulator.

use coalloc_core::{PolicyKind, SimConfig};

/// A small but representative simulation configuration for timing runs:
/// moderate load, the paper's 4×32 system, component-size limit 16.
pub fn bench_sim_config(policy: PolicyKind, jobs: u64) -> SimConfig {
    let mut cfg = if policy == PolicyKind::Sc {
        SimConfig::das_single_cluster(0.5)
    } else {
        SimConfig::das(policy, 16, 0.5)
    };
    cfg.total_jobs = jobs;
    cfg.warmup_jobs = jobs / 10;
    cfg.batch_size = (jobs / 20).max(10);
    cfg
}

/// Pre-draws `n` random idle-state vectors for placement benchmarks.
pub fn random_idle_states(n: usize, seed: u64) -> Vec<[u32; 4]> {
    let mut rng = desim::RngStream::new(seed);
    (0..n)
        .map(|_| {
            [rng.index(33) as u32, rng.index(33) as u32, rng.index(33) as u32, rng.index(33) as u32]
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_config_is_runnable() {
        let out = coalloc_core::SimBuilder::new(&bench_sim_config(PolicyKind::Ls, 500)).run();
        assert_eq!(out.arrivals, 500);
    }

    #[test]
    fn idle_states_in_range() {
        for s in random_idle_states(100, 1) {
            assert!(s.iter().all(|&x| x <= 32));
        }
    }
}
