//! Property tests for the statistics toolkit: each streaming estimator
//! is checked against a naive reference implementation on arbitrary
//! inputs.

use desim::stats::{BatchMeans, TimeWeighted, Welford};
use desim::warmup::{mser, MserResult};
use desim::{EmpiricalContinuous, SimTime};
use proptest::prelude::*;

/// Naive MSER reference: two-pass mean/SSD per candidate truncation,
/// O(n²) overall — the definition, without the suffix-sum algebra.
fn mser_naive(series: &[f64], m: usize) -> MserResult {
    let batches: Vec<f64> =
        series.chunks_exact(m).map(|c| c.iter().sum::<f64>() / m as f64).collect();
    let n = batches.len();
    let mut best = MserResult { truncate: 0, statistic: f64::INFINITY };
    for d in 0..=n / 2 {
        let rest = &batches[d..];
        if rest.len() < 2 {
            break;
        }
        let k = rest.len() as f64;
        let mean = rest.iter().sum::<f64>() / k;
        let ssd: f64 = rest.iter().map(|x| (x - mean) * (x - mean)).sum();
        let stat = ssd.sqrt() / k;
        if stat < best.statistic {
            best = MserResult { truncate: d * m, statistic: stat };
        }
    }
    best
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Welford mean/variance equal the two-pass reference.
    #[test]
    fn welford_matches_two_pass(xs in proptest::collection::vec(-1e6f64..1e6, 1..200)) {
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        let n = xs.len() as f64;
        let mean = xs.iter().sum::<f64>() / n;
        prop_assert!((w.mean() - mean).abs() < 1e-6 * (1.0 + mean.abs()));
        if xs.len() > 1 {
            let var = xs.iter().map(|x| (x - mean) * (x - mean)).sum::<f64>() / (n - 1.0);
            prop_assert!((w.variance() - var).abs() < 1e-4 * (1.0 + var.abs()));
        }
    }

    /// Any split-merge of a Welford equals the sequential fold.
    #[test]
    fn welford_merge_associative(
        xs in proptest::collection::vec(-1e3f64..1e3, 2..100),
        cut in any::<proptest::sample::Index>()
    ) {
        let k = cut.index(xs.len() - 1) + 1;
        let mut whole = Welford::new();
        for &x in &xs {
            whole.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..k] {
            a.add(x);
        }
        for &x in &xs[k..] {
            b.add(x);
        }
        a.merge(&b);
        prop_assert_eq!(a.count(), whole.count());
        prop_assert!((a.mean() - whole.mean()).abs() < 1e-8);
        prop_assert!((a.variance() - whole.variance()).abs() < 1e-6);
    }

    /// The batch-means grand mean over complete batches equals the plain
    /// mean of those observations.
    #[test]
    fn batch_means_grand_mean(
        xs in proptest::collection::vec(0.0f64..1e4, 10..300),
        batch in 1u64..20
    ) {
        let mut bm = BatchMeans::new(batch);
        for &x in &xs {
            bm.add(x);
        }
        let complete = (xs.len() as u64 / batch * batch) as usize;
        if complete > 0 {
            let mean = xs[..complete].iter().sum::<f64>() / complete as f64;
            prop_assert!((bm.estimate().mean - mean).abs() < 1e-7 * (1.0 + mean));
        }
    }

    /// The time-weighted average equals the explicit integral of the
    /// piecewise-constant signal.
    #[test]
    fn time_weighted_matches_integral(
        steps in proptest::collection::vec((0.01f64..100.0, -50.0f64..50.0), 1..50)
    ) {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        let mut t = 0.0;
        let mut integral = 0.0;
        let mut value = 0.0;
        for &(dt, v) in &steps {
            integral += value * dt;
            t += dt;
            tw.update(SimTime::new(t), v);
            value = v;
        }
        // Close the window one unit later.
        integral += value * 1.0;
        t += 1.0;
        let avg = tw.average(SimTime::new(t));
        prop_assert!((avg - integral / t).abs() < 1e-9 * (1.0 + avg.abs()),
            "avg {} vs {}", avg, integral / t);
    }

    /// Empirical-continuous quantiles are monotone in u and stay inside
    /// the support.
    #[test]
    fn empirical_continuous_quantiles_monotone(
        weights in proptest::collection::vec(0.0f64..10.0, 1..20),
        us in proptest::collection::vec(0.0f64..=1.0, 2..20)
    ) {
        prop_assume!(weights.iter().sum::<f64>() > 0.0);
        let edges: Vec<f64> = (0..=weights.len()).map(|i| i as f64 * 5.0).collect();
        let d = EmpiricalContinuous::from_histogram(&edges, &weights);
        let mut us = us;
        us.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        let qs: Vec<f64> = us.iter().map(|&u| d.quantile(u)).collect();
        for w in qs.windows(2) {
            prop_assert!(w[0] <= w[1] + 1e-12, "quantiles must be monotone: {qs:?}");
        }
        for &q in &qs {
            prop_assert!((0.0..=d.max_value()).contains(&q));
        }
    }

    /// The suffix-sum MSER scan matches the naive two-pass definition:
    /// the minimized statistics agree to rounding, and the naive
    /// statistic evaluated at the fast scan's truncation is (near-)
    /// minimal too — ties between candidates may break either way under
    /// floating point, so the truncation points themselves are compared
    /// through their statistics, not for equality.
    #[test]
    fn mser_suffix_sums_match_naive(
        xs in proptest::collection::vec(-1e3f64..1e3, 10..400),
        m in 1usize..6
    ) {
        prop_assume!(xs.len() >= 2 * m);
        let fast = mser(&xs, m);
        let naive = mser_naive(&xs, m);
        let tol = 1e-6 * (1.0 + naive.statistic.abs());
        prop_assert!((fast.statistic - naive.statistic).abs() <= tol,
            "minimized statistics diverge: fast {fast:?} vs naive {naive:?}");
        // Re-evaluate the fast scan's pick naively: it must be as good.
        let batches: Vec<f64> =
            xs.chunks_exact(m).map(|c| c.iter().sum::<f64>() / m as f64).collect();
        let d = fast.truncate / m;
        let rest = &batches[d..];
        let k = rest.len() as f64;
        let mean = rest.iter().sum::<f64>() / k;
        let ssd: f64 = rest.iter().map(|x| (x - mean) * (x - mean)).sum();
        let at_fast = ssd.sqrt() / k;
        prop_assert!(at_fast <= naive.statistic + tol,
            "fast pick d={d} scores {at_fast}, naive best {naive:?}");
    }
}
