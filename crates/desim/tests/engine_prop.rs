//! Model-based property test: [`desim::Simulation`] against a naive
//! reference implementation (a plain sorted vector of events).

use desim::{Duration, EventId, SimTime, Simulation};
use proptest::prelude::*;

#[derive(Clone, Debug)]
enum Op {
    /// Schedule a payload this many seconds after "now".
    ScheduleIn(f64),
    /// Cancel the i-th scheduled event (modulo issued handles).
    Cancel(usize),
    /// Pop one event.
    Step,
}

fn op() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0.0f64..500.0).prop_map(Op::ScheduleIn),
        1 => any::<usize>().prop_map(Op::Cancel),
        3 => Just(Op::Step),
    ]
}

/// The reference: a vector of (time, seq, payload) with linear scans.
#[derive(Default)]
struct Reference {
    pending: Vec<(f64, u64, u64)>,
    now: f64,
}

impl Reference {
    fn schedule(&mut self, at: f64, seq: u64) {
        self.pending.push((at, seq, seq));
    }

    fn cancel(&mut self, seq: u64) -> bool {
        if let Some(pos) = self.pending.iter().position(|&(_, s, _)| s == seq) {
            self.pending.remove(pos);
            true
        } else {
            false
        }
    }

    fn step(&mut self) -> Option<(f64, u64)> {
        if self.pending.is_empty() {
            return None;
        }
        let best = self
            .pending
            .iter()
            .enumerate()
            .min_by(|(_, a), (_, b)| (a.0, a.1).partial_cmp(&(b.0, b.1)).expect("finite"))
            .map(|(i, _)| i)
            .expect("non-empty");
        let (t, _, payload) = self.pending.remove(best);
        self.now = t;
        Some((t, payload))
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// For any script of schedules, cancels, and steps the engine and the
    /// reference observe the same event sequence.
    #[test]
    fn engine_matches_reference(ops in proptest::collection::vec(op(), 0..200)) {
        let mut sim: Simulation<u64> = Simulation::new();
        let mut reference = Reference::default();
        let mut handles: Vec<EventId> = Vec::new();
        let mut seq: u64 = 0;
        for op in &ops {
            match op {
                Op::ScheduleIn(dt) => {
                    let id = sim.schedule_in(Duration::new(*dt), seq);
                    reference.schedule(sim.now().seconds() + dt, seq);
                    handles.push(id);
                    prop_assert_eq!(id.raw(), seq, "engine ids are sequential");
                    seq += 1;
                }
                Op::Cancel(i) => {
                    if handles.is_empty() {
                        continue;
                    }
                    let idx = i % handles.len();
                    let engine_ok = sim.cancel(handles[idx]);
                    let reference_ok = reference.cancel(handles[idx].raw());
                    prop_assert_eq!(engine_ok, reference_ok);
                }
                Op::Step => {
                    let got = sim.step().map(|e| (e.time, e.payload));
                    let want = reference.step().map(|(t, p)| (SimTime::new(t), p));
                    prop_assert_eq!(got, want);
                    prop_assert_eq!(sim.events_pending(), reference.pending.len());
                }
            }
        }
        // Drain both to the end.
        loop {
            let got = sim.step().map(|e| e.payload);
            let want = reference.step().map(|(_, p)| p);
            prop_assert_eq!(got, want);
            if got.is_none() {
                break;
            }
        }
    }
}
