//! Property tests: the two future-event-list implementations are
//! observationally equivalent, and both behave like a sorted multiset.

use desim::{CalendarQueue, Event, EventCalendar, EventId, HeapCalendar, SimTime};
use proptest::prelude::*;

/// A scripted operation against a calendar.
#[derive(Clone, Debug)]
enum Op {
    /// Insert an event at the given (non-negative) time.
    Insert(f64),
    /// Cancel the i-th inserted event (modulo inserts so far).
    Cancel(usize),
    /// Pop the earliest event.
    Pop,
    /// Peek at the earliest event's time without removing it.
    Peek,
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (0.0f64..1000.0).prop_map(Op::Insert),
        1 => any::<usize>().prop_map(Op::Cancel),
        2 => Just(Op::Pop),
        1 => Just(Op::Peek),
    ]
}

/// Runs a script against one calendar, returning the observable trace.
fn run<C: EventCalendar<u64>>(mut cal: C, ops: &[Op]) -> Vec<(u64, Option<(f64, u64)>)> {
    let mut trace = Vec::new();
    let mut ids: Vec<EventId> = Vec::new();
    let mut next = 0u64;
    let mut last_popped = 0.0f64;
    for op in ops {
        match op {
            Op::Insert(t) => {
                // Calendars (like the engine) only ever see non-decreasing
                // insert times relative to the last pop.
                let t = last_popped + t;
                let id = EventId::for_tests(next);
                ids.push(id);
                cal.insert(Event { time: SimTime::new(t), id, payload: next });
                next += 1;
            }
            Op::Cancel(i) => {
                if !ids.is_empty() {
                    let id = ids[i % ids.len()];
                    let ok = cal.cancel(id);
                    trace.push((u64::MAX, Some((if ok { 1.0 } else { 0.0 }, id.raw()))));
                }
            }
            Op::Pop => {
                let got = cal.pop().map(|e| {
                    last_popped = e.time.seconds();
                    (e.time.seconds(), e.id.raw())
                });
                trace.push((cal.len() as u64, got));
            }
            Op::Peek => {
                let got = cal.peek_time().map(|t| (t.seconds(), 0));
                trace.push((cal.len() as u64, got));
            }
        }
    }
    // Drain the remainder.
    while let Some(e) = cal.pop() {
        trace.push((cal.len() as u64, Some((e.time.seconds(), e.id.raw()))));
    }
    trace
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Heap calendar and calendar queue produce identical traces for any
    /// script of inserts, cancels, and pops.
    #[test]
    fn calendars_are_equivalent(ops in proptest::collection::vec(op_strategy(), 0..200)) {
        let heap_trace = run(HeapCalendar::new(), &ops);
        let cq_trace = run(CalendarQueue::new(), &ops);
        prop_assert_eq!(heap_trace, cq_trace);
    }

    /// Popping drains events in non-decreasing time order with FIFO ties.
    #[test]
    fn pops_are_time_ordered(times in proptest::collection::vec(0.0f64..1e6, 1..300)) {
        let mut cal = HeapCalendar::new();
        for (i, &t) in times.iter().enumerate() {
            cal.insert(Event { time: SimTime::new(t), id: EventId::for_tests(i as u64), payload: i });
        }
        let mut prev: Option<(f64, u64)> = None;
        while let Some(e) = cal.pop() {
            let key = (e.time.seconds(), e.id.raw());
            if let Some(p) = prev {
                prop_assert!(key > p, "out of order: {:?} after {:?}", key, p);
            }
            prev = Some(key);
        }
    }

    /// len() always equals inserted - popped - cancelled.
    #[test]
    fn len_is_consistent(ops in proptest::collection::vec(op_strategy(), 0..150)) {
        let mut cal: CalendarQueue<u64> = CalendarQueue::new();
        let mut ids = Vec::new();
        let mut live = 0usize;
        let mut next = 0u64;
        let mut last_popped = 0.0f64;
        for op in &ops {
            match op {
                Op::Insert(t) => {
                    let id = EventId::for_tests(next);
                    ids.push(id);
                    // Honor the engine's contract: never schedule into the past.
                    cal.insert(Event { time: SimTime::new(last_popped + *t), id, payload: next });
                    next += 1;
                    live += 1;
                }
                Op::Cancel(i) => {
                    if !ids.is_empty() {
                        let id = ids[i % ids.len()];
                        if cal.cancel(id) {
                            live -= 1;
                        }
                    }
                }
                Op::Pop => {
                    if let Some(e) = cal.pop() {
                        last_popped = e.time.seconds();
                        live -= 1;
                    }
                }
                Op::Peek => {
                    let _ = cal.peek_time();
                }
            }
            prop_assert_eq!(cal.len(), live);
        }
    }
}
