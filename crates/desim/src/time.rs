//! Simulation time.
//!
//! Simulated time is a non-negative, finite `f64` wrapped in a newtype so
//! that it is totally ordered (construction rejects NaN) and cannot be
//! confused with other scalar quantities such as service demands or rates.

use core::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in simulated time, in seconds since the start of the run.
///
/// `SimTime` is totally ordered; constructing one from a NaN panics, which
/// turns silent time corruption into an immediate, debuggable failure.
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
pub struct SimTime(f64);

impl SimTime {
    /// Time zero, the start of every simulation run.
    pub const ZERO: SimTime = SimTime(0.0);

    /// The largest representable time; used as an "end of time" sentinel.
    pub const MAX: SimTime = SimTime(f64::MAX);

    /// Creates a time point from seconds.
    ///
    /// # Panics
    /// Panics if `seconds` is NaN or negative; simulated time never runs
    /// backwards from the origin.
    #[inline]
    pub fn new(seconds: f64) -> Self {
        assert!(!seconds.is_nan(), "SimTime cannot be NaN");
        assert!(seconds >= 0.0, "SimTime cannot be negative: {seconds}");
        // `+ 0.0` normalizes an incoming -0.0 (which passes the `>= 0.0`
        // gate) to +0.0 and is the identity on everything else, so the
        // bitwise total order used by `Ord` below agrees with numeric
        // comparison on every constructible SimTime.
        SimTime(seconds + 0.0)
    }

    /// The raw number of seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Duration from `earlier` to `self`.
    ///
    /// # Panics
    /// Panics in debug builds if `earlier` is later than `self`.
    #[inline]
    pub fn since(self, earlier: SimTime) -> Duration {
        debug_assert!(
            earlier.0 <= self.0,
            "since() called with a later time: {} > {}",
            earlier.0,
            self.0
        );
        Duration::new((self.0 - earlier.0).max(0.0))
    }
}

impl Eq for SimTime {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for SimTime {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Construction guarantees non-NaN, non-negative (with -0.0
        // normalized away), so the branch-free bitwise total order is
        // numeric order. This comparison runs on every future-event-list
        // sift, which is why it avoids `partial_cmp().expect(..)`.
        self.0.total_cmp(&other.0)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={:.6}", self.0)
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

/// A span of simulated time, in seconds. Always non-negative and finite
/// (NaN rejected at construction).
#[derive(Clone, Copy, PartialEq, PartialOrd, Default, serde::Serialize, serde::Deserialize)]
pub struct Duration(f64);

impl Duration {
    /// The empty duration.
    pub const ZERO: Duration = Duration(0.0);

    /// Creates a duration from seconds.
    ///
    /// # Panics
    /// Panics if `seconds` is NaN or negative.
    #[inline]
    pub fn new(seconds: f64) -> Self {
        assert!(!seconds.is_nan(), "Duration cannot be NaN");
        assert!(seconds >= 0.0, "Duration cannot be negative: {seconds}");
        Duration(seconds)
    }

    /// The raw number of seconds.
    #[inline]
    pub fn seconds(self) -> f64 {
        self.0
    }

    /// Scales the duration by a non-negative factor (e.g. the wide-area
    /// communication extension factor applied to multi-component jobs).
    #[inline]
    pub fn scaled(self, factor: f64) -> Duration {
        Duration::new(self.0 * factor)
    }
}

impl Eq for Duration {}

#[allow(clippy::derive_ord_xor_partial_ord)]
impl Ord for Duration {
    #[inline]
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        self.partial_cmp(other).expect("Duration is never NaN")
    }
}

impl fmt::Debug for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.6}s", self.0)
    }
}

impl fmt::Display for Duration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3}s", self.0)
    }
}

impl Add<Duration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: Duration) -> SimTime {
        SimTime::new(self.0 + rhs.0)
    }
}

impl AddAssign<Duration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Add for Duration {
    type Output = Duration;
    #[inline]
    fn add(self, rhs: Duration) -> Duration {
        Duration::new(self.0 + rhs.0)
    }
}

impl AddAssign for Duration {
    #[inline]
    fn add_assign(&mut self, rhs: Duration) {
        *self = *self + rhs;
    }
}

impl Sub for SimTime {
    type Output = Duration;
    #[inline]
    fn sub(self, rhs: SimTime) -> Duration {
        self.since(rhs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_is_default() {
        assert_eq!(SimTime::default(), SimTime::ZERO);
        assert_eq!(Duration::default(), Duration::ZERO);
    }

    #[test]
    fn ordering_is_total() {
        let a = SimTime::new(1.0);
        let b = SimTime::new(2.0);
        assert!(a < b);
        assert_eq!(a.max(b), b);
    }

    #[test]
    fn add_duration_advances_time() {
        let t = SimTime::new(10.0) + Duration::new(5.5);
        assert_eq!(t.seconds(), 15.5);
    }

    #[test]
    fn since_computes_span() {
        let d = SimTime::new(12.0).since(SimTime::new(2.0));
        assert_eq!(d.seconds(), 10.0);
    }

    #[test]
    fn sub_is_since() {
        let d = SimTime::new(7.0) - SimTime::new(3.0);
        assert_eq!(d.seconds(), 4.0);
    }

    #[test]
    #[should_panic(expected = "NaN")]
    fn nan_time_rejected() {
        SimTime::new(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_time_rejected() {
        SimTime::new(-1.0);
    }

    #[test]
    #[should_panic(expected = "negative")]
    fn negative_duration_rejected() {
        Duration::new(-0.5);
    }

    #[test]
    fn scaled_duration() {
        assert_eq!(Duration::new(4.0).scaled(1.25).seconds(), 5.0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(format!("{}", SimTime::new(1.5)), "1.500s");
        assert_eq!(format!("{}", Duration::new(2.25)), "2.250s");
    }
}
