//! A bounded event log for debugging simulations.
//!
//! Long runs produce millions of events; when a run misbehaves you want
//! the *recent* history, not all of it. [`RingLog`] keeps the last `N`
//! entries with O(1) appends, timestamped in simulated time.

use std::collections::VecDeque;

use crate::time::SimTime;

/// A fixed-capacity ring of timestamped entries; the oldest entries are
/// evicted as new ones arrive.
#[derive(Clone, Debug)]
pub struct RingLog<T> {
    cap: usize,
    buf: VecDeque<(SimTime, T)>,
    evicted: u64,
}

impl<T> RingLog<T> {
    /// A log keeping at most `cap` entries.
    ///
    /// # Panics
    /// Panics if `cap` is zero.
    pub fn new(cap: usize) -> Self {
        assert!(cap > 0, "a zero-capacity log records nothing");
        RingLog { cap, buf: VecDeque::with_capacity(cap), evicted: 0 }
    }

    /// Appends an entry, evicting the oldest if full.
    pub fn push(&mut self, time: SimTime, entry: T) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.evicted += 1;
        }
        self.buf.push_back((time, entry));
    }

    /// Entries currently held, oldest first.
    pub fn iter(&self) -> impl Iterator<Item = &(SimTime, T)> {
        self.buf.iter()
    }

    /// Number of entries currently held.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the log is empty.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// How many entries have been evicted over the log's lifetime.
    pub fn evicted(&self) -> u64 {
        self.evicted
    }

    /// Drains the log into a vector, oldest first.
    pub fn take(&mut self) -> Vec<(SimTime, T)> {
        self.buf.drain(..).collect()
    }
}

impl<T: core::fmt::Display> RingLog<T> {
    /// Renders the held entries one per line as `t=… entry`.
    pub fn render(&self) -> String {
        let mut out = String::new();
        if self.evicted > 0 {
            out.push_str(&format!("… {} earlier entries evicted …\n", self.evicted));
        }
        for (t, e) in &self.buf {
            out.push_str(&format!("{t} {e}\n"));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::new(s)
    }

    #[test]
    fn keeps_only_the_last_n() {
        let mut log = RingLog::new(3);
        for i in 0..5u32 {
            log.push(t(f64::from(i)), i);
        }
        assert_eq!(log.len(), 3);
        assert_eq!(log.evicted(), 2);
        let held: Vec<u32> = log.iter().map(|&(_, e)| e).collect();
        assert_eq!(held, vec![2, 3, 4]);
    }

    #[test]
    fn take_drains() {
        let mut log = RingLog::new(4);
        log.push(t(1.0), "a");
        log.push(t(2.0), "b");
        let taken = log.take();
        assert_eq!(taken.len(), 2);
        assert!(log.is_empty());
        assert_eq!(taken[0].1, "a");
    }

    #[test]
    fn render_mentions_evictions() {
        let mut log = RingLog::new(1);
        log.push(t(1.0), "first");
        log.push(t(2.5), "second");
        let text = log.render();
        assert!(text.contains("1 earlier entries evicted"));
        assert!(text.contains("2.500s second"));
        assert!(!text.contains("first\n"));
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_rejected() {
        RingLog::<u32>::new(0);
    }
}
