//! Deterministic random-number streams.
//!
//! Each stochastic process in a simulation (arrivals, job sizes, service
//! times, routing, …) gets its own [`RngStream`], derived from the run's
//! master seed by mixing in a stream label. Separate streams keep the
//! processes statistically independent *and* make variance reduction by
//! common random numbers possible: two policies simulated with the same
//! master seed see exactly the same job sequence.
//!
//! The generator is **xoshiro256++** (Blackman & Vigna), seeded through a
//! SplitMix64 chain — the textbook combination for simulation work. It is
//! implemented here rather than taken from a crate so that every bit of
//! the stream is fixed by this repository: results are reproducible across
//! dependency upgrades, and streams can be cloned to replay decisions.

/// SplitMix64 finalizer: a high-quality 64-bit mixing function used to
/// derive seeds and substream labels.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A named, reproducible random stream (xoshiro256++).
#[derive(Clone, Debug)]
pub struct RngStream {
    s: [u64; 4],
    seed: u64,
}

impl RngStream {
    /// Creates a stream from a 64-bit seed. The four words of state are
    /// produced by iterating SplitMix64, as the xoshiro authors recommend.
    pub fn new(seed: u64) -> Self {
        let mut sm = seed;
        let mut s = [0u64; 4];
        for w in &mut s {
            sm = sm.wrapping_add(0x9E37_79B9_7F4A_7C15);
            *w = splitmix64(sm);
        }
        // xoshiro must not start from the all-zero state.
        if s == [0, 0, 0, 0] {
            s[0] = 0x9E37_79B9_7F4A_7C15;
        }
        RngStream { s, seed }
    }

    /// The seed this stream was created with.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Derives an independent substream labelled by an index. The same
    /// `(seed, index)` pair always yields the same substream.
    pub fn substream(&self, index: u64) -> RngStream {
        RngStream::new(splitmix64(self.seed ^ splitmix64(index.wrapping_add(1))))
    }

    /// Derives an independent substream labelled by a string (e.g.
    /// `"arrivals"`), hashing the label bytes through SplitMix64.
    pub fn labelled(&self, label: &str) -> RngStream {
        let mut h = 0xcbf2_9ce4_8422_2325u64;
        for &b in label.as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        RngStream::new(splitmix64(self.seed ^ h))
    }

    /// Raw 64 random bits — one step of xoshiro256++.
    #[inline]
    pub fn bits(&mut self) -> u64 {
        let s = &mut self.s;
        let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
        let t = s[1] << 17;
        s[2] ^= s[0];
        s[3] ^= s[1];
        s[1] ^= s[2];
        s[0] ^= s[3];
        s[2] ^= t;
        s[3] = s[3].rotate_left(45);
        result
    }

    /// Uniform variate in the half-open interval `[0, 1)` with 53 random
    /// bits of mantissa.
    #[inline]
    pub fn uniform(&mut self) -> f64 {
        (self.bits() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Uniform variate in the open-closed interval `(0, 1]`, safe as an
    /// argument to `ln` in inversion sampling.
    #[inline]
    pub fn uniform_pos(&mut self) -> f64 {
        1.0 - self.uniform()
    }

    /// Uniform variate in `[lo, hi)`.
    #[inline]
    pub fn uniform_in(&mut self, lo: f64, hi: f64) -> f64 {
        debug_assert!(lo <= hi);
        lo + (hi - lo) * self.uniform()
    }

    /// Uniform integer in `[0, n)` by Lemire's unbiased multiply-shift
    /// rejection method.
    #[inline]
    pub fn index(&mut self, n: usize) -> usize {
        assert!(n > 0, "index() on empty range");
        let n = n as u64;
        loop {
            let x = self.bits();
            let m = u128::from(x) * u128::from(n);
            let low = m as u64;
            if low >= n.wrapping_neg() % n {
                return (m >> 64) as usize;
            }
        }
    }

    /// A Bernoulli trial with success probability `p`.
    #[inline]
    pub fn chance(&mut self, p: f64) -> bool {
        self.uniform() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, xs: &mut [T]) {
        for i in (1..xs.len()).rev() {
            let j = self.index(i + 1);
            xs.swap(i, j);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_sequence() {
        let mut a = RngStream::new(42);
        let mut b = RngStream::new(42);
        for _ in 0..100 {
            assert_eq!(a.bits(), b.bits());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = RngStream::new(1);
        let mut b = RngStream::new(2);
        let same = (0..64).filter(|_| a.bits() == b.bits()).count();
        assert!(same < 4, "streams with different seeds should diverge");
    }

    #[test]
    fn zero_seed_is_usable() {
        let mut r = RngStream::new(0);
        let x = r.bits();
        let y = r.bits();
        assert_ne!(x, y);
    }

    #[test]
    fn clone_replays() {
        let mut a = RngStream::new(5);
        let _ = a.bits();
        let mut b = a.clone();
        assert_eq!(a.bits(), b.bits());
    }

    #[test]
    fn substreams_are_reproducible_and_distinct() {
        let master = RngStream::new(7);
        let mut s0a = master.substream(0);
        let mut s0b = master.substream(0);
        let s1 = master.substream(1);
        assert_eq!(s0a.bits(), s0b.bits());
        assert_ne!(s0a.seed(), s1.seed());
    }

    #[test]
    fn labelled_streams_are_reproducible() {
        let master = RngStream::new(7);
        let mut a = master.labelled("arrivals");
        let mut b = master.labelled("arrivals");
        let c = master.labelled("sizes");
        assert_eq!(a.bits(), b.bits());
        assert_ne!(a.seed(), c.seed());
    }

    #[test]
    fn uniform_in_bounds() {
        let mut r = RngStream::new(3);
        for _ in 0..10_000 {
            let u = r.uniform();
            assert!((0.0..1.0).contains(&u));
            let v = r.uniform_pos();
            assert!(v > 0.0 && v <= 1.0);
            let w = r.uniform_in(5.0, 9.0);
            assert!((5.0..9.0).contains(&w));
        }
    }

    #[test]
    fn uniform_mean_is_half() {
        let mut r = RngStream::new(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| r.uniform()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean} too far from 0.5");
    }

    #[test]
    fn bits_are_well_distributed() {
        // Count set bits over many words: should be very close to 32/64.
        let mut r = RngStream::new(13);
        let n = 10_000;
        let ones: u32 = (0..n).map(|_| r.bits().count_ones()).sum();
        let frac = f64::from(ones) / (n as f64 * 64.0);
        assert!((frac - 0.5).abs() < 0.01, "set-bit fraction {frac}");
    }

    #[test]
    fn index_covers_range_uniformly() {
        let mut r = RngStream::new(5);
        let mut counts = [0u32; 10];
        let n = 100_000;
        for _ in 0..n {
            counts[r.index(10)] += 1;
        }
        for (i, &c) in counts.iter().enumerate() {
            let f = f64::from(c) / n as f64;
            assert!((f - 0.1).abs() < 0.01, "bucket {i}: {f}");
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = RngStream::new(9);
        let mut xs: Vec<u32> = (0..50).collect();
        r.shuffle(&mut xs);
        let mut sorted = xs.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(xs, (0..50).collect::<Vec<_>>(), "astronomically unlikely identity");
    }

    #[test]
    #[should_panic(expected = "empty range")]
    fn index_zero_panics() {
        RngStream::new(1).index(0);
    }

    #[test]
    fn chance_extremes() {
        let mut r = RngStream::new(21);
        assert!(!r.chance(0.0));
        assert!(r.chance(1.0));
    }
}
