//! Random-variate generators.
//!
//! The generators mirror what the CSIM simulation package offered the
//! original study: exponential interarrival times and empirical
//! distributions resampled from a measured log. Every generator implements
//! [`Variate`] (continuous, `f64`) and/or is a concrete discrete sampler.

use crate::rng::RngStream;

/// A continuous random-variate generator.
pub trait Variate {
    /// Draws one sample.
    fn sample(&self, rng: &mut RngStream) -> f64;

    /// The theoretical mean of the distribution, used by workload
    /// calibration (e.g. converting a target utilization into an arrival
    /// rate).
    fn mean(&self) -> f64;
}

/// Exponential distribution with the given rate (1/mean), sampled by
/// inversion. The paper's model uses exponential interarrival times.
#[derive(Clone, Copy, Debug)]
pub struct Exponential {
    rate: f64,
}

impl Exponential {
    /// Creates an exponential distribution with events per unit time `rate`.
    ///
    /// # Panics
    /// Panics unless `rate` is positive and finite.
    pub fn with_rate(rate: f64) -> Self {
        assert!(rate > 0.0 && rate.is_finite(), "rate must be positive, got {rate}");
        Exponential { rate }
    }

    /// Creates an exponential distribution with the given mean.
    pub fn with_mean(mean: f64) -> Self {
        assert!(mean > 0.0 && mean.is_finite(), "mean must be positive, got {mean}");
        Exponential { rate: 1.0 / mean }
    }

    /// The rate parameter.
    pub fn rate(&self) -> f64 {
        self.rate
    }
}

impl Variate for Exponential {
    #[inline]
    fn sample(&self, rng: &mut RngStream) -> f64 {
        -rng.uniform_pos().ln() / self.rate
    }

    fn mean(&self) -> f64 {
        1.0 / self.rate
    }
}

/// A constant "distribution"; useful for validation (M/D/1) and for
/// deterministic stress workloads.
#[derive(Clone, Copy, Debug)]
pub struct Deterministic {
    value: f64,
}

impl Deterministic {
    /// Creates a point mass at `value` (must be non-negative and finite).
    pub fn new(value: f64) -> Self {
        assert!(value >= 0.0 && value.is_finite());
        Deterministic { value }
    }
}

impl Variate for Deterministic {
    #[inline]
    fn sample(&self, _rng: &mut RngStream) -> f64 {
        self.value
    }

    fn mean(&self) -> f64 {
        self.value
    }
}

/// Uniform distribution on `[lo, hi)`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform {
    lo: f64,
    hi: f64,
}

impl Uniform {
    /// Creates a uniform distribution on `[lo, hi)`.
    pub fn new(lo: f64, hi: f64) -> Self {
        assert!(lo.is_finite() && hi.is_finite() && lo < hi);
        Uniform { lo, hi }
    }
}

impl Variate for Uniform {
    #[inline]
    fn sample(&self, rng: &mut RngStream) -> f64 {
        rng.uniform_in(self.lo, self.hi)
    }

    fn mean(&self) -> f64 {
        0.5 * (self.lo + self.hi)
    }
}

/// Erlang-k distribution (sum of `k` i.i.d. exponentials), CV² = 1/k.
#[derive(Clone, Copy, Debug)]
pub struct Erlang {
    k: u32,
    stage: Exponential,
}

impl Erlang {
    /// Creates an Erlang distribution with `k` stages and overall mean
    /// `mean` (each stage has mean `mean / k`).
    pub fn with_mean(k: u32, mean: f64) -> Self {
        assert!(k >= 1, "Erlang needs at least one stage");
        Erlang { k, stage: Exponential::with_mean(mean / f64::from(k)) }
    }
}

impl Variate for Erlang {
    fn sample(&self, rng: &mut RngStream) -> f64 {
        (0..self.k).map(|_| self.stage.sample(rng)).sum()
    }

    fn mean(&self) -> f64 {
        f64::from(self.k) * self.stage.mean()
    }
}

/// Two-phase hyperexponential distribution (probabilistic mixture of two
/// exponentials), CV² ≥ 1. Used to model the high-variance service times
/// seen in production logs.
#[derive(Clone, Copy, Debug)]
pub struct HyperExponential {
    p: f64,
    a: Exponential,
    b: Exponential,
}

impl HyperExponential {
    /// With probability `p` draws from an exponential with mean `mean_a`,
    /// otherwise from one with mean `mean_b`.
    pub fn new(p: f64, mean_a: f64, mean_b: f64) -> Self {
        assert!((0.0..=1.0).contains(&p));
        HyperExponential { p, a: Exponential::with_mean(mean_a), b: Exponential::with_mean(mean_b) }
    }

    /// Fits a balanced two-phase hyperexponential to a target mean and
    /// squared coefficient of variation (`cv2 >= 1`).
    pub fn fit(mean: f64, cv2: f64) -> Self {
        assert!(cv2 >= 1.0, "hyperexponential requires CV^2 >= 1, got {cv2}");
        // Balanced-means fit: p chosen so both phases contribute equally.
        let x = ((cv2 - 1.0) / (cv2 + 1.0)).sqrt();
        let p = 0.5 * (1.0 + x);
        let mean_a = mean / (2.0 * p);
        let mean_b = mean / (2.0 * (1.0 - p));
        HyperExponential::new(p, mean_a, mean_b)
    }
}

impl Variate for HyperExponential {
    #[inline]
    fn sample(&self, rng: &mut RngStream) -> f64 {
        if rng.chance(self.p) {
            self.a.sample(rng)
        } else {
            self.b.sample(rng)
        }
    }

    fn mean(&self) -> f64 {
        self.p * self.a.mean() + (1.0 - self.p) * self.b.mean()
    }
}

// ---------------------------------------------------------------------------
// Empirical distributions
// ---------------------------------------------------------------------------

/// A discrete empirical distribution over arbitrary `u32` values, sampled
/// in O(1) with Walker's alias method. This is how the measured DAS job
/// sizes drive the simulation.
///
/// ```
/// use desim::{EmpiricalDiscrete, RngStream};
/// // 70% small jobs, 30% whole-cluster jobs.
/// let d = EmpiricalDiscrete::new(&[(4, 0.7), (32, 0.3)]);
/// assert!((d.mean_value() - 12.4).abs() < 1e-12);
/// let mut rng = RngStream::new(42);
/// let x = d.sample_value(&mut rng);
/// assert!(x == 4 || x == 32);
/// ```
#[derive(Clone, Debug)]
pub struct EmpiricalDiscrete {
    values: Vec<u32>,
    probs: Vec<f64>,
    /// Alias tables: `prob[i]` is the probability of keeping column `i`,
    /// `alias[i]` the donor column otherwise.
    alias_prob: Vec<f64>,
    alias: Vec<usize>,
}

impl EmpiricalDiscrete {
    /// Builds a distribution from `(value, weight)` pairs. Weights need not
    /// be normalized but must be non-negative with a positive sum.
    ///
    /// # Panics
    /// Panics on an empty list, a negative weight, or a zero total weight.
    pub fn new(pairs: &[(u32, f64)]) -> Self {
        assert!(!pairs.is_empty(), "empirical distribution needs at least one value");
        let total: f64 = pairs.iter().map(|&(_, w)| w).sum();
        assert!(
            pairs.iter().all(|&(_, w)| w >= 0.0 && w.is_finite()),
            "weights must be non-negative and finite"
        );
        assert!(total > 0.0, "total weight must be positive");

        let n = pairs.len();
        let values: Vec<u32> = pairs.iter().map(|&(v, _)| v).collect();
        let probs: Vec<f64> = pairs.iter().map(|&(_, w)| w / total).collect();

        // Walker/Vose alias construction.
        let mut alias_prob = vec![0.0f64; n];
        let mut alias = vec![0usize; n];
        let mut scaled: Vec<f64> = probs.iter().map(|p| p * n as f64).collect();
        let mut small: Vec<usize> = Vec::with_capacity(n);
        let mut large: Vec<usize> = Vec::with_capacity(n);
        for (i, &s) in scaled.iter().enumerate() {
            if s < 1.0 {
                small.push(i);
            } else {
                large.push(i);
            }
        }
        while !small.is_empty() && !large.is_empty() {
            let s = small.pop().expect("checked non-empty");
            let l = *large.last().expect("checked non-empty");
            alias_prob[s] = scaled[s];
            alias[s] = l;
            scaled[l] = (scaled[l] + scaled[s]) - 1.0;
            if scaled[l] < 1.0 {
                large.pop();
                small.push(l);
            }
        }
        for i in large {
            alias_prob[i] = 1.0;
        }
        for i in small {
            alias_prob[i] = 1.0; // numerical leftovers
        }

        EmpiricalDiscrete { values, probs, alias_prob, alias }
    }

    /// Builds a distribution from raw observations (each observation gets
    /// weight 1). This is "resampling the log".
    pub fn from_observations(obs: &[u32]) -> Self {
        assert!(!obs.is_empty(), "no observations");
        let mut counts: std::collections::BTreeMap<u32, f64> = std::collections::BTreeMap::new();
        for &o in obs {
            *counts.entry(o).or_insert(0.0) += 1.0;
        }
        let pairs: Vec<(u32, f64)> = counts.into_iter().collect();
        EmpiricalDiscrete::new(&pairs)
    }

    /// Draws one value.
    #[inline]
    pub fn sample_value(&self, rng: &mut RngStream) -> u32 {
        let n = self.values.len();
        let col = rng.index(n);
        if rng.uniform() < self.alias_prob[col] {
            self.values[col]
        } else {
            self.values[self.alias[col]]
        }
    }

    /// The support (distinct values), in construction order.
    pub fn values(&self) -> &[u32] {
        &self.values
    }

    /// Normalized probabilities aligned with [`Self::values`].
    pub fn probs(&self) -> &[f64] {
        &self.probs
    }

    /// Probability mass of a specific value (0 if not in the support).
    pub fn pmf(&self, value: u32) -> f64 {
        self.values.iter().zip(&self.probs).filter(|(v, _)| **v == value).map(|(_, p)| *p).sum()
    }

    /// Theoretical mean of the distribution.
    pub fn mean_value(&self) -> f64 {
        self.values.iter().zip(&self.probs).map(|(&v, &p)| f64::from(v) * p).sum()
    }

    /// Theoretical coefficient of variation.
    pub fn cv(&self) -> f64 {
        let m = self.mean_value();
        let m2: f64 = self
            .values
            .iter()
            .zip(&self.probs)
            .map(|(&v, &p)| f64::from(v) * f64::from(v) * p)
            .sum();
        let var = (m2 - m * m).max(0.0);
        var.sqrt() / m
    }

    /// A new distribution conditioned on `value <= cut` (renormalized).
    /// This is exactly how DAS-s-64 is derived from DAS-s-128 in the paper.
    ///
    /// # Panics
    /// Panics if nothing in the support is `<= cut`.
    pub fn truncated(&self, cut: u32) -> Self {
        let pairs: Vec<(u32, f64)> = self
            .values
            .iter()
            .zip(&self.probs)
            .filter(|(&v, _)| v <= cut)
            .map(|(&v, &p)| (v, p))
            .collect();
        assert!(!pairs.is_empty(), "truncation at {cut} empties the distribution");
        EmpiricalDiscrete::new(&pairs)
    }

    /// Probability that a drawn value exceeds `cut`.
    pub fn tail_mass(&self, cut: u32) -> f64 {
        self.values.iter().zip(&self.probs).filter(|(&v, _)| v > cut).map(|(_, &p)| p).sum()
    }
}

impl Variate for EmpiricalDiscrete {
    #[inline]
    fn sample(&self, rng: &mut RngStream) -> f64 {
        f64::from(self.sample_value(rng))
    }

    fn mean(&self) -> f64 {
        self.mean_value()
    }
}

/// A continuous empirical distribution defined by a piecewise-linear CDF
/// over bin edges — the continuous analogue used for service times
/// resampled from a log histogram.
#[derive(Clone, Debug)]
pub struct EmpiricalContinuous {
    /// Bin edges, strictly increasing, length `n + 1`.
    edges: Vec<f64>,
    /// Cumulative probability at each edge, `cum[0] = 0`, `cum[n] = 1`.
    cum: Vec<f64>,
    /// Quantile accelerator: `lookup[k]` is the last bin index `i` with
    /// `cum[i] <= k / LOOKUP_BINS` (clamped to the last bin), so
    /// [`Self::quantile`] starts its scan at most a few bins below the
    /// answer instead of binary-searching the whole CDF on every draw.
    lookup: Vec<u32>,
}

/// Resolution of the [`EmpiricalContinuous`] quantile lookup table.
const LOOKUP_BINS: usize = 256;

impl EmpiricalContinuous {
    /// Builds the distribution from histogram bins: `edges` are the `n+1`
    /// bin boundaries, `weights` the `n` bin masses (not necessarily
    /// normalized). Sampling is uniform within a bin.
    pub fn from_histogram(edges: &[f64], weights: &[f64]) -> Self {
        assert!(edges.len() >= 2, "need at least one bin");
        assert_eq!(edges.len(), weights.len() + 1, "edges must be weights+1");
        assert!(
            edges.windows(2).all(|w| w[0] < w[1] && w[0].is_finite() && w[1].is_finite()),
            "edges must be strictly increasing and finite"
        );
        assert!(weights.iter().all(|&w| w >= 0.0 && w.is_finite()));
        let total: f64 = weights.iter().sum();
        assert!(total > 0.0, "total weight must be positive");
        let mut cum = Vec::with_capacity(edges.len());
        cum.push(0.0);
        let mut acc = 0.0;
        for &w in weights {
            acc += w / total;
            cum.push(acc);
        }
        // Clamp the tail against floating-point drift.
        *cum.last_mut().expect("nonempty") = 1.0;
        let last = edges.len() - 2;
        let mut lookup = Vec::with_capacity(LOOKUP_BINS);
        let mut i = 0usize;
        for k in 0..LOOKUP_BINS {
            let u = k as f64 / LOOKUP_BINS as f64;
            while i + 1 < cum.len() && cum[i + 1] <= u {
                i += 1;
            }
            lookup.push(i.min(last) as u32);
        }
        EmpiricalContinuous { edges: edges.to_vec(), cum, lookup }
    }

    /// Inverse-CDF evaluation at `u ∈ [0,1]`.
    ///
    /// The bin holding `u` is the partition point (last `i` with
    /// `cum[i] <= u`, clamped to the last bin): the lookup table gives a
    /// lower bound and a short forward scan finishes. On flat CDF
    /// segments (`cum[i] == cum[i+1]`, i.e. zero-weight bins) this lands
    /// on the *last* edge of the flat run; since `u == cum[i]` there, the
    /// interpolation below degenerates to that edge either way.
    pub fn quantile(&self, u: f64) -> f64 {
        let u = u.clamp(0.0, 1.0);
        let last = self.edges.len() - 2;
        let k = ((u * LOOKUP_BINS as f64) as usize).min(LOOKUP_BINS - 1);
        let mut i = self.lookup[k] as usize;
        while i < last && self.cum[i + 1] <= u {
            i += 1;
        }
        let (c0, c1) = (self.cum[i], self.cum[i + 1]);
        let (e0, e1) = (self.edges[i], self.edges[i + 1]);
        if c1 > c0 {
            e0 + (e1 - e0) * (u - c0) / (c1 - c0)
        } else {
            e0
        }
    }

    /// The upper end of the support.
    pub fn max_value(&self) -> f64 {
        *self.edges.last().expect("nonempty")
    }
}

impl Variate for EmpiricalContinuous {
    #[inline]
    fn sample(&self, rng: &mut RngStream) -> f64 {
        self.quantile(rng.uniform())
    }

    fn mean(&self) -> f64 {
        // Uniform-within-bin => bin mean is the midpoint.
        let mut m = 0.0;
        for i in 0..self.edges.len() - 1 {
            let mass = self.cum[i + 1] - self.cum[i];
            m += mass * 0.5 * (self.edges[i] + self.edges[i + 1]);
        }
        m
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rng() -> RngStream {
        RngStream::new(20_030_622) // HPDC'03 date
    }

    fn sample_mean<V: Variate>(v: &V, n: usize) -> f64 {
        let mut r = rng();
        (0..n).map(|_| v.sample(&mut r)).sum::<f64>() / n as f64
    }

    #[test]
    fn exponential_mean() {
        let d = Exponential::with_mean(3.0);
        let m = sample_mean(&d, 200_000);
        assert!((m - 3.0).abs() < 0.05, "sample mean {m}");
        assert!((d.mean() - 3.0).abs() < 1e-12);
        assert!((Exponential::with_rate(0.5).mean() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn exponential_is_positive() {
        let d = Exponential::with_rate(1.0);
        let mut r = rng();
        for _ in 0..10_000 {
            assert!(d.sample(&mut r) > 0.0);
        }
    }

    #[test]
    fn deterministic_is_constant() {
        let d = Deterministic::new(7.0);
        let mut r = rng();
        assert_eq!(d.sample(&mut r), 7.0);
        assert_eq!(d.mean(), 7.0);
    }

    #[test]
    fn uniform_bounds_and_mean() {
        let d = Uniform::new(2.0, 6.0);
        let mut r = rng();
        for _ in 0..10_000 {
            let x = d.sample(&mut r);
            assert!((2.0..6.0).contains(&x));
        }
        assert!((sample_mean(&d, 100_000) - 4.0).abs() < 0.02);
    }

    #[test]
    fn erlang_mean_and_lower_variance() {
        let d = Erlang::with_mean(4, 2.0);
        assert!((d.mean() - 2.0).abs() < 1e-12);
        let m = sample_mean(&d, 100_000);
        assert!((m - 2.0).abs() < 0.03, "sample mean {m}");
    }

    #[test]
    fn hyperexponential_fit_matches_moments() {
        let d = HyperExponential::fit(10.0, 4.0);
        assert!((d.mean() - 10.0).abs() < 1e-9);
        let mut r = rng();
        let n = 400_000;
        let xs: Vec<f64> = (0..n).map(|_| d.sample(&mut r)).collect();
        let m = xs.iter().sum::<f64>() / n as f64;
        let var = xs.iter().map(|x| (x - m) * (x - m)).sum::<f64>() / n as f64;
        let cv2 = var / (m * m);
        assert!((m - 10.0).abs() < 0.15, "mean {m}");
        assert!((cv2 - 4.0).abs() < 0.25, "cv2 {cv2}");
    }

    #[test]
    fn empirical_discrete_pmf_recovered() {
        let d = EmpiricalDiscrete::new(&[(1, 0.2), (2, 0.3), (64, 0.5)]);
        let mut r = rng();
        let n = 300_000;
        let mut counts = std::collections::HashMap::new();
        for _ in 0..n {
            *counts.entry(d.sample_value(&mut r)).or_insert(0u32) += 1;
        }
        for (v, p) in [(1u32, 0.2), (2, 0.3), (64, 0.5)] {
            let f = f64::from(counts[&v]) / n as f64;
            assert!((f - p).abs() < 0.01, "value {v}: freq {f} vs p {p}");
        }
    }

    #[test]
    fn empirical_discrete_mean_cv() {
        let d = EmpiricalDiscrete::new(&[(2, 0.5), (4, 0.5)]);
        assert!((d.mean_value() - 3.0).abs() < 1e-12);
        assert!((d.cv() - 1.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_from_observations() {
        let d = EmpiricalDiscrete::from_observations(&[1, 1, 1, 2]);
        assert!((d.pmf(1) - 0.75).abs() < 1e-12);
        assert!((d.pmf(2) - 0.25).abs() < 1e-12);
        assert_eq!(d.pmf(3), 0.0);
    }

    #[test]
    fn empirical_truncation_renormalizes() {
        let d = EmpiricalDiscrete::new(&[(1, 0.4), (64, 0.4), (128, 0.2)]);
        let t = d.truncated(64);
        assert!((t.pmf(1) - 0.5).abs() < 1e-12);
        assert!((t.pmf(64) - 0.5).abs() < 1e-12);
        assert_eq!(t.pmf(128), 0.0);
        assert!((d.tail_mass(64) - 0.2).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "empties")]
    fn truncation_below_support_panics() {
        EmpiricalDiscrete::new(&[(10, 1.0)]).truncated(5);
    }

    #[test]
    fn empirical_continuous_quantiles() {
        let d = EmpiricalContinuous::from_histogram(&[0.0, 10.0, 20.0], &[1.0, 1.0]);
        assert!((d.quantile(0.0) - 0.0).abs() < 1e-12);
        assert!((d.quantile(0.5) - 10.0).abs() < 1e-12);
        assert!((d.quantile(1.0) - 20.0).abs() < 1e-12);
        assert!((d.quantile(0.25) - 5.0).abs() < 1e-12);
        assert!((d.mean() - 10.0).abs() < 1e-12);
    }

    #[test]
    fn empirical_continuous_sampling_stays_in_support() {
        let d = EmpiricalContinuous::from_histogram(&[0.0, 60.0, 900.0], &[0.9, 0.1]);
        let mut r = rng();
        for _ in 0..20_000 {
            let x = d.sample(&mut r);
            assert!((0.0..=900.0).contains(&x));
        }
        assert_eq!(d.max_value(), 900.0);
    }

    #[test]
    fn alias_table_handles_skewed_weights() {
        // Highly skewed weights exercise the small/large alias bookkeeping.
        let pairs: Vec<(u32, f64)> = (1..=100).map(|v| (v, 1.0 / f64::from(v))).collect();
        let d = EmpiricalDiscrete::new(&pairs);
        let mut r = rng();
        let n = 200_000;
        let ones = (0..n).filter(|_| d.sample_value(&mut r) == 1).count();
        let expect = d.pmf(1);
        let freq = ones as f64 / n as f64;
        assert!((freq - expect).abs() < 0.01, "freq {freq} vs pmf {expect}");
    }
}
