//! Event identities and calendar entries.

use crate::time::SimTime;

/// A unique handle for a scheduled event, usable to cancel it before it
/// fires. Ids are never reused within one simulation run.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct EventId(pub(crate) u64);

impl EventId {
    /// The raw sequence number. Exposed for logging and test assertions.
    #[inline]
    pub fn raw(self) -> u64 {
        self.0
    }

    /// Builds an id from a raw sequence number. Intended for code that
    /// drives an [`crate::calendar::EventCalendar`] directly (custom
    /// engines, benchmarks, tests); ids used with one [`crate::Simulation`]
    /// must come from its `schedule_*` methods.
    #[inline]
    pub fn from_raw(raw: u64) -> EventId {
        EventId(raw)
    }

    /// Alias of [`EventId::from_raw`] kept for test readability.
    #[doc(hidden)]
    pub fn for_tests(raw: u64) -> EventId {
        EventId(raw)
    }
}

/// A scheduled occurrence: a payload due at a point in simulated time.
///
/// Events at equal times fire in the order they were scheduled (FIFO
/// tie-break by `id`), which makes runs deterministic for a fixed seed and
/// keeps scheduling semantics such as "arrivals before the departure
/// scheduled later at the same instant" well-defined.
#[derive(Clone, Debug)]
pub struct Event<E> {
    /// When the event fires.
    pub time: SimTime,
    /// The cancellation handle / deterministic tie-breaker.
    pub id: EventId,
    /// The user payload.
    pub payload: E,
}

impl<E> Event<E> {
    /// Calendar ordering key: time first, then scheduling order.
    #[inline]
    pub(crate) fn key(&self) -> (SimTime, u64) {
        (self.time, self.id.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn key_orders_by_time_then_id() {
        let a = Event { time: SimTime::new(1.0), id: EventId(5), payload: () };
        let b = Event { time: SimTime::new(1.0), id: EventId(6), payload: () };
        let c = Event { time: SimTime::new(0.5), id: EventId(7), payload: () };
        assert!(a.key() < b.key());
        assert!(c.key() < a.key());
    }
}
