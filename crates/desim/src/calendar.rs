//! Future-event lists.
//!
//! Two interchangeable implementations of the pending-event set are
//! provided:
//!
//! * [`HeapCalendar`] — a binary heap, `O(log n)` per operation, the
//!   default and the right choice for the event populations this simulator
//!   produces (tens of thousands of pending events at most).
//! * [`CalendarQueue`] — R. Brown's calendar queue, amortized `O(1)` per
//!   operation under stationary event-time distributions; selectable at
//!   run time through [`CalendarKind`] (`coalloc-exp bench --calendar cq`)
//!   and property-tested for equivalence with the heap.
//!
//! Both support cancellation through [`EventId`] handles using lazy
//! deletion: a cancelled id is remembered and the entry discarded when it
//! surfaces, so cancellation is `O(1)`. The calendar queue additionally
//! purges tombstones when they outnumber live events, so cancellation-heavy
//! runs do not grow the stored set without bound.

use crate::event::{Event, EventId};
use crate::time::SimTime;
use std::collections::VecDeque;

/// Selects which future-event list a simulation runs on.
///
/// `Heap` is the default: it keeps golden outputs byte-stable and is the
/// right general-purpose choice. `CalendarQueue` trades worst-case
/// `O(log n)` for amortized `O(1)` under the stationary event flows the
/// co-allocation workloads produce; both drain in the identical
/// (time, schedule-order) sequence, so simulation results do not depend on
/// the choice.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Hash)]
pub enum CalendarKind {
    /// Binary-heap calendar ([`HeapCalendar`]) — the default.
    #[default]
    Heap,
    /// Brown's calendar queue ([`CalendarQueue`]).
    CalendarQueue,
}

impl CalendarKind {
    /// Short label used in bench output and CLI flags.
    pub fn label(self) -> &'static str {
        match self {
            CalendarKind::Heap => "heap",
            CalendarKind::CalendarQueue => "cq",
        }
    }

    /// Parses a CLI label; accepts `heap` and `cq`.
    pub fn parse(s: &str) -> Option<CalendarKind> {
        match s {
            "heap" => Some(CalendarKind::Heap),
            "cq" => Some(CalendarKind::CalendarQueue),
            _ => None,
        }
    }
}

/// Membership set for live event ids.
///
/// The engine issues ids densely from a counter, so a bitmask indexed
/// by id beats a hash set: insert/remove/contains are a shift and a
/// mask, with no hashing on the per-event hot path. Memory is one bit
/// per id ever issued (a 10M-event run costs ~1.2 MiB), which is the
/// right trade for ids that are sequential — callers synthesizing
/// sparse ids by hand (`EventId::from_raw`) pay proportionally.
#[derive(Default)]
struct IdSet {
    words: Vec<u64>,
    len: usize,
}

impl IdSet {
    fn new() -> Self {
        IdSet::default()
    }

    fn with_capacity(ids: usize) -> Self {
        IdSet { words: Vec::with_capacity(ids.div_ceil(64)), len: 0 }
    }

    /// Inserts `id`; returns `false` if it was already present.
    fn insert(&mut self, id: u64) -> bool {
        let (w, mask) = ((id / 64) as usize, 1u64 << (id % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.len += 1;
        true
    }

    /// Removes `id`; returns `false` if it was not present.
    fn remove(&mut self, id: u64) -> bool {
        let (w, mask) = ((id / 64) as usize, 1u64 << (id % 64));
        let Some(word) = self.words.get_mut(w) else { return false };
        if *word & mask == 0 {
            return false;
        }
        *word &= !mask;
        self.len -= 1;
        true
    }

    fn contains(&self, id: u64) -> bool {
        self.words.get((id / 64) as usize).is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The pending-event set abstraction used by the simulation engine.
pub trait EventCalendar<E> {
    /// Inserts a scheduled event.
    fn insert(&mut self, ev: Event<E>);

    /// Cancels a previously inserted event. Returns `true` if the event was
    /// still pending (i.e. had not fired and had not already been
    /// cancelled).
    fn cancel(&mut self, id: EventId) -> bool;

    /// Removes and returns the earliest pending event (FIFO among equal
    /// times).
    fn pop(&mut self) -> Option<Event<E>>;

    /// The time of the earliest pending event without removing it.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Number of live (non-cancelled) pending events.
    fn len(&self) -> usize;

    /// Whether no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Binary-heap calendar
// ---------------------------------------------------------------------------

struct HeapEntry<E>(Event<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other.0.key().cmp(&self.0.key())
    }
}

/// Binary-heap future-event list with lazy cancellation.
///
/// The set of live (inserted, not yet popped or cancelled) ids is tracked
/// explicitly, so cancelling a stale handle — one that already fired or
/// was already cancelled — is a safe no-op rather than a count corruption.
pub struct HeapCalendar<E> {
    heap: std::collections::BinaryHeap<HeapEntry<E>>,
    live_ids: IdSet,
}

impl<E> Default for HeapCalendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapCalendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        HeapCalendar { heap: std::collections::BinaryHeap::new(), live_ids: IdSet::new() }
    }

    /// Creates an empty calendar with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapCalendar {
            heap: std::collections::BinaryHeap::with_capacity(cap),
            live_ids: IdSet::with_capacity(cap),
        }
    }

    /// Discards cancelled entries sitting at the top of the heap.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.live_ids.contains(top.0.id.0) {
                break;
            }
            self.heap.pop();
        }
    }
}

impl<E> EventCalendar<E> for HeapCalendar<E> {
    fn insert(&mut self, ev: Event<E>) {
        assert!(self.live_ids.insert(ev.id.0), "duplicate event id {:?}", ev.id);
        self.heap.push(HeapEntry(ev));
    }

    fn cancel(&mut self, id: EventId) -> bool {
        self.live_ids.remove(id.0)
    }

    fn pop(&mut self) -> Option<Event<E>> {
        self.skim();
        let ev = self.heap.pop()?.0;
        self.live_ids.remove(ev.id.0);
        Some(ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.skim();
        self.heap.peek().map(|e| e.0.time)
    }

    fn len(&self) -> usize {
        self.live_ids.len()
    }
}

// ---------------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------------

/// Operation counters for the calendar queue's hot paths.
///
/// The counters exist so complexity fixes stay fixed: regression tests pin
/// them to bounds the pre-fix algorithms necessarily violate (a full-scan
/// peek, a memmove-per-pop bucket). They are always compiled in — each is
/// a single integer increment on a path that already touches the counted
/// data. Any future code that removes or inserts mid-bucket must account
/// its element moves in [`CalendarProbes::bucket_moves`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CalendarProbes {
    /// Bucket front entries examined while searching for the minimum
    /// (peek/pop day scans and direct-search fallbacks).
    pub min_scan_entries: u64,
    /// Stored entries relocated by bucket insertions and removals. Front
    /// pops move nothing; sorted insertion moves `min(pos, len - pos)`
    /// entries toward the nearer deque end.
    pub bucket_moves: u64,
    /// Bucket-array resizes performed.
    pub resizes: u64,
    /// Tombstone purges performed.
    pub purges: u64,
}

/// R. Brown's calendar queue: an array of time buckets (days) cycled like a
/// wall calendar, with automatic resizing to keep about one event per
/// bucket. Amortized `O(1)` insert/pop for stationary event-time
/// distributions.
///
/// Like the engine that drives it, the queue assumes events are never
/// inserted before the last popped time ([`crate::Simulation::schedule_at`]
/// asserts exactly this); the day cursor only ever needs to rewind as far
/// as the last pop. Debug builds check the resulting invariant.
pub struct CalendarQueue<E> {
    /// `buckets[i]` holds events with `floor(t / width) % nbuckets == i`,
    /// each bucket sorted by (time, id). Deques, so the common removal —
    /// popping the front — moves no other entries.
    buckets: Vec<VecDeque<Event<E>>>,
    width: f64,
    /// Index of the bucket the next pop scans first.
    cursor: usize,
    /// Start time of the cursor bucket's current "day".
    bucket_top: f64,
    /// Ids inserted and not yet popped or cancelled.
    live_ids: IdSet,
    /// Resize thresholds: grow above `live > 2*nbuckets`, shrink below
    /// `live < nbuckets/2`.
    resize_enabled: bool,
    last_popped: f64,
    /// Total entries across buckets, including cancelled tombstones.
    stored: usize,
    /// Key of the earliest live event, when known. Peeks populate it and
    /// then cost `O(1)`; it is invalidated by popping or cancelling the
    /// minimum and improved in place by inserts that undercut it.
    cached_min: Option<(SimTime, u64)>,
    probes: CalendarProbes,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue with a small initial bucket array.
    pub fn new() -> Self {
        Self::with_parameters(8, 1.0)
    }

    /// Creates an empty queue with an explicit bucket count and width;
    /// mostly useful for tests and benchmarks.
    pub fn with_parameters(nbuckets: usize, width: f64) -> Self {
        assert!(nbuckets > 0, "need at least one bucket");
        assert!(width > 0.0 && width.is_finite(), "bucket width must be positive");
        CalendarQueue {
            buckets: (0..nbuckets).map(|_| VecDeque::new()).collect(),
            width,
            cursor: 0,
            bucket_top: 0.0,
            live_ids: IdSet::new(),
            resize_enabled: true,
            last_popped: 0.0,
            stored: 0,
            cached_min: None,
            probes: CalendarProbes::default(),
        }
    }

    /// Total entries including not-yet-purged cancelled ones. Bounded at
    /// `O(live)` by the tombstone purge even with resizing disabled.
    pub fn stored(&self) -> usize {
        self.stored
    }

    /// Enables or disables automatic bucket-array resizing (on by default).
    /// Disabling pins the bucket count and width — useful for ablations and
    /// adversarial tests; the tombstone purge keeps memory bounded even then.
    pub fn set_resize_enabled(&mut self, enabled: bool) {
        self.resize_enabled = enabled;
    }

    /// Operation counters for complexity regression tests and diagnostics.
    pub fn probes(&self) -> CalendarProbes {
        self.probes
    }

    fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_index(&self, t: f64) -> usize {
        ((t / self.width) as u64 % self.nbuckets() as u64) as usize
    }

    fn insert_sorted(bucket: &mut VecDeque<Event<E>>, ev: Event<E>) {
        let key = ev.key();
        let pos = bucket.partition_point(|e| e.key() <= key);
        bucket.insert(pos, ev);
    }

    /// Re-buckets every live event into `new_n` buckets of `new_width`,
    /// dropping cancelled tombstones along the way.
    fn resize(&mut self, new_n: usize, new_width: f64) {
        let mut all: Vec<Event<E>> = Vec::with_capacity(self.live_ids.len());
        for b in &mut self.buckets {
            for ev in b.drain(..) {
                if self.live_ids.contains(ev.id.0) {
                    all.push(ev);
                }
            }
        }
        self.buckets = (0..new_n).map(|_| VecDeque::new()).collect();
        self.width = new_width;
        self.stored = all.len();
        for ev in all {
            let idx = self.bucket_index(ev.time.seconds());
            Self::insert_sorted(&mut self.buckets[idx], ev);
        }
        // Restart the scan from the day that contains the last popped time.
        // `cached_min` survives: it names a key, not a position.
        self.cursor = self.bucket_index(self.last_popped);
        self.bucket_top = (self.last_popped / self.width).floor() * self.width;
        self.probes.resizes += 1;
    }

    /// Picks a new bucket width as a multiple of the mean gap between the
    /// earliest pending events (Brown's heuristic). The sample is the true
    /// k-minimum of the live set, taken by a k-way merge over the sorted
    /// buckets — not the first entries in bucket array order, which would
    /// let a dense far-future cluster in a low-numbered bucket collapse the
    /// width estimate and thrash resizes.
    fn estimate_width(&self) -> f64 {
        let sample: usize = 25.min(self.live_ids.len().max(2));
        let mut heads = vec![0usize; self.nbuckets()];
        let mut times: Vec<f64> = Vec::with_capacity(sample);
        while times.len() < sample {
            let mut best: Option<(usize, (SimTime, u64))> = None;
            for (bi, bucket) in self.buckets.iter().enumerate() {
                let mut h = heads[bi];
                while h < bucket.len() && !self.live_ids.contains(bucket[h].id.0) {
                    h += 1;
                }
                heads[bi] = h;
                if let Some(ev) = bucket.get(h) {
                    let key = ev.key();
                    if best.is_none_or(|(_, bk)| key < bk) {
                        best = Some((bi, key));
                    }
                }
            }
            let Some((bi, key)) = best else { break };
            heads[bi] += 1;
            times.push(key.0.seconds());
        }
        if times.len() < 2 {
            return self.width;
        }
        // The merge yields `times` already sorted ascending.
        let span = times[times.len() - 1] - times[0];
        let mean_gap = span / (times.len() - 1) as f64;
        if mean_gap > 0.0 {
            mean_gap * 3.0
        } else {
            self.width
        }
    }

    fn maybe_resize(&mut self) {
        if !self.resize_enabled {
            return;
        }
        let n = self.nbuckets();
        let live = self.live_ids.len();
        if live > 2 * n {
            let w = self.estimate_width();
            self.resize(2 * n, w);
        } else if n > 8 && live < n / 2 {
            let w = self.estimate_width();
            self.resize((n / 2).max(8), w);
        }
    }

    /// Sweeps cancelled tombstones out of every bucket once they outnumber
    /// live events `PURGE_RATIO`-fold past a small floor. Cancellation
    /// itself stays `O(1)`; the sweep is `O(stored)` and amortizes against
    /// the cancels that accumulated the garbage, keeping `stored()` at
    /// `O(live)` even when resizing (the other purge point) is disabled.
    fn maybe_purge(&mut self) {
        const PURGE_RATIO: usize = 2;
        const PURGE_FLOOR: usize = 64;
        let live = self.live_ids.len();
        let cancelled = self.stored - live;
        if cancelled <= PURGE_FLOOR || cancelled <= live * PURGE_RATIO {
            return;
        }
        let live_ids = &self.live_ids;
        for b in &mut self.buckets {
            b.retain(|ev| live_ids.contains(ev.id.0));
        }
        self.stored = live;
        self.probes.purges += 1;
    }

    /// Drops cancelled entries from the front of a bucket in place.
    fn skim_bucket(bucket: &mut VecDeque<Event<E>>, live_ids: &IdSet, stored: &mut usize) {
        while let Some(first) = bucket.front() {
            if live_ids.contains(first.id.0) {
                break;
            }
            bucket.pop_front();
            *stored -= 1;
        }
    }

    /// Finds the bucket and key of the earliest live event by direct
    /// search — the fallback when a full calendar year passes without
    /// finding one.
    fn direct_min(&mut self) -> Option<(usize, (SimTime, u64))> {
        let mut best: Option<(usize, (SimTime, u64))> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for ev in bucket.iter() {
                if !self.live_ids.contains(ev.id.0) {
                    continue;
                }
                self.probes.min_scan_entries += 1;
                let key = ev.key();
                if best.is_none_or(|(_, bk)| key < bk) {
                    best = Some((bi, key));
                }
                break; // buckets are sorted; first live entry is the bucket min
            }
        }
        best
    }

    /// Positions the cursor at the day containing the earliest live event
    /// and returns that event's bucket and key. After this returns, the
    /// front of the named bucket is the global minimum (tombstones already
    /// skimmed), so `pop` is a plain `pop_front`.
    fn locate_min(&mut self) -> Option<(usize, (SimTime, u64))> {
        if self.live_ids.is_empty() {
            return None;
        }
        if let Some(key) = self.cached_min {
            // A previous peek pinned the minimum: jump straight to its day.
            let t = key.0.seconds();
            self.cursor = self.bucket_index(t);
            self.bucket_top = (t / self.width).floor() * self.width;
            let cursor = self.cursor;
            Self::skim_bucket(&mut self.buckets[cursor], &self.live_ids, &mut self.stored);
            debug_assert_eq!(self.buckets[cursor].front().map(Event::key), Some(key));
            return Some((cursor, key));
        }
        let n = self.nbuckets();
        // Scan at most one full year; events further out are found directly.
        for _ in 0..n {
            let cursor = self.cursor;
            let day_end = self.bucket_top + self.width;
            Self::skim_bucket(&mut self.buckets[cursor], &self.live_ids, &mut self.stored);
            if let Some(first) = self.buckets[cursor].front() {
                self.probes.min_scan_entries += 1;
                if first.time.seconds() < day_end {
                    return Some((cursor, first.key()));
                }
            }
            self.cursor = (cursor + 1) % n;
            self.bucket_top = day_end;
        }
        // Sparse regime: jump straight to the global minimum.
        let (bi, key) = self.direct_min()?;
        let t = key.0.seconds();
        self.cursor = bi;
        self.bucket_top = (t / self.width).floor() * self.width;
        Some((bi, key))
    }
}

impl<E> EventCalendar<E> for CalendarQueue<E> {
    fn insert(&mut self, ev: Event<E>) {
        assert!(self.live_ids.insert(ev.id.0), "duplicate event id {:?}", ev.id);
        let key = ev.key();
        if let Some(min) = &mut self.cached_min {
            if key < *min {
                *min = key;
            }
        } else if self.live_ids.len() == 1 {
            // The calendar held no live events: the newcomer is the minimum.
            self.cached_min = Some(key);
        }
        let idx = self.bucket_index(ev.time.seconds());
        let bucket = &mut self.buckets[idx];
        let pos = bucket.partition_point(|e| e.key() <= key);
        self.probes.bucket_moves += pos.min(bucket.len() - pos) as u64;
        bucket.insert(pos, ev);
        self.stored += 1;
        self.maybe_resize();
    }

    fn cancel(&mut self, id: EventId) -> bool {
        if !self.live_ids.remove(id.0) {
            return false;
        }
        if self.cached_min.is_some_and(|(_, mid)| mid == id.0) {
            // A peek may have advanced the cursor to the cancelled
            // minimum's day. Rewind to the last popped event's day so the
            // next scan cannot skip an event scheduled in between — the
            // engine only inserts at or after the last popped time.
            self.cached_min = None;
            self.cursor = self.bucket_index(self.last_popped);
            self.bucket_top = (self.last_popped / self.width).floor() * self.width;
        }
        self.maybe_purge();
        true
    }

    fn pop(&mut self) -> Option<Event<E>> {
        let (bi, _key) = self.locate_min()?;
        let ev = self.buckets[bi].pop_front().expect("locate_min leaves the minimum in front");
        self.stored -= 1;
        self.live_ids.remove(ev.id.0);
        self.last_popped = ev.time.seconds();
        self.cached_min = None;
        self.maybe_resize();
        Some(ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if let Some((t, _)) = self.cached_min {
            return Some(t);
        }
        let (_bi, key) = self.locate_min()?;
        self.cached_min = Some(key);
        Some(key.0)
    }

    fn len(&self) -> usize {
        self.live_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, id: u64) -> Event<u32> {
        Event { time: SimTime::new(t), id: EventId(id), payload: id as u32 }
    }

    fn drain<C: EventCalendar<u32>>(cal: &mut C) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = cal.pop() {
            out.push((e.time.seconds(), e.id.raw()));
        }
        out
    }

    #[test]
    fn heap_orders_by_time() {
        let mut c = HeapCalendar::new();
        c.insert(ev(3.0, 0));
        c.insert(ev(1.0, 1));
        c.insert(ev(2.0, 2));
        assert_eq!(drain(&mut c), vec![(1.0, 1), (2.0, 2), (3.0, 0)]);
    }

    #[test]
    fn heap_fifo_among_equal_times() {
        let mut c = HeapCalendar::new();
        c.insert(ev(1.0, 0));
        c.insert(ev(1.0, 1));
        c.insert(ev(1.0, 2));
        assert_eq!(drain(&mut c), vec![(1.0, 0), (1.0, 1), (1.0, 2)]);
    }

    #[test]
    fn heap_cancel_removes_event() {
        let mut c = HeapCalendar::new();
        c.insert(ev(1.0, 0));
        c.insert(ev(2.0, 1));
        assert!(c.cancel(EventId(0)));
        assert!(!c.cancel(EventId(0)), "double cancel must fail");
        assert_eq!(c.len(), 1);
        assert_eq!(drain(&mut c), vec![(2.0, 1)]);
    }

    #[test]
    fn heap_peek_skips_cancelled() {
        let mut c = HeapCalendar::new();
        c.insert(ev(1.0, 0));
        c.insert(ev(2.0, 1));
        c.cancel(EventId(0));
        assert_eq!(c.peek_time(), Some(SimTime::new(2.0)));
    }

    #[test]
    fn heap_empty_pop_is_none() {
        let mut c: HeapCalendar<u32> = HeapCalendar::new();
        assert!(c.pop().is_none());
        assert!(c.peek_time().is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn calendar_queue_orders_by_time() {
        let mut c = CalendarQueue::new();
        c.insert(ev(3.0, 0));
        c.insert(ev(1.0, 1));
        c.insert(ev(2.0, 2));
        c.insert(ev(0.5, 3));
        assert_eq!(drain(&mut c), vec![(0.5, 3), (1.0, 1), (2.0, 2), (3.0, 0)]);
    }

    #[test]
    fn calendar_queue_handles_far_future_events() {
        let mut c = CalendarQueue::with_parameters(4, 1.0);
        c.insert(ev(1000.0, 0));
        c.insert(ev(0.5, 1));
        assert_eq!(drain(&mut c), vec![(0.5, 1), (1000.0, 0)]);
    }

    #[test]
    fn calendar_queue_cancel() {
        let mut c = CalendarQueue::new();
        c.insert(ev(1.0, 0));
        c.insert(ev(2.0, 1));
        c.insert(ev(3.0, 2));
        assert!(c.cancel(EventId(1)));
        assert_eq!(c.len(), 2);
        assert_eq!(drain(&mut c), vec![(1.0, 0), (3.0, 2)]);
    }

    #[test]
    fn calendar_queue_resizes_under_load() {
        let mut c = CalendarQueue::with_parameters(8, 0.1);
        for i in 0..1000u64 {
            c.insert(ev(i as f64 * 0.37, i));
        }
        assert!(c.nbuckets() > 8, "queue should have grown");
        let out = drain(&mut c);
        assert_eq!(out.len(), 1000);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0), "must pop in time order");
    }

    #[test]
    fn calendar_queue_fifo_among_equal_times() {
        let mut c = CalendarQueue::new();
        for id in 0..5 {
            c.insert(ev(2.0, id));
        }
        assert_eq!(drain(&mut c).iter().map(|x| x.1).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn calendar_queue_peek_matches_pop() {
        let mut c = CalendarQueue::new();
        c.insert(ev(5.0, 0));
        c.insert(ev(3.0, 1));
        assert_eq!(c.peek_time(), Some(SimTime::new(3.0)));
        assert_eq!(c.pop().map(|e| e.id.raw()), Some(1));
    }

    // Defect regressions. Each of the four tests below fails on the
    // pre-fix CalendarQueue (full-scan peek, Vec::remove(0) buckets,
    // array-order width sampling, unbounded tombstones) when that
    // implementation is instrumented with the same operation accounting.

    #[test]
    fn repeated_peeks_do_not_rescan() {
        let mut c = CalendarQueue::with_parameters(64, 1.0);
        for i in 0..512u64 {
            c.insert(ev(i as f64 * 0.5, i));
        }
        let first = c.peek_time();
        assert!(first.is_some());
        let after_first = c.probes().min_scan_entries;
        for _ in 0..1_000 {
            assert_eq!(c.peek_time(), first);
        }
        // The old peek ran a direct_min full scan per call — ~one entry
        // examined per non-empty bucket, every time. Cached, the thousand
        // repeats examine nothing.
        assert_eq!(c.probes().min_scan_entries, after_first, "repeated peeks must be O(1)");
    }

    #[test]
    fn peek_tracks_cancellation_of_the_minimum() {
        let mut c = CalendarQueue::new();
        c.insert(ev(1.0, 0));
        c.insert(ev(2.0, 1));
        assert_eq!(c.peek_time(), Some(SimTime::new(1.0)));
        c.cancel(EventId(0));
        assert_eq!(c.peek_time(), Some(SimTime::new(2.0)));
        c.insert(ev(0.5, 2));
        assert_eq!(c.peek_time(), Some(SimTime::new(0.5)));
        assert_eq!(c.pop().map(|e| e.id.raw()), Some(2));
        assert_eq!(c.peek_time(), Some(SimTime::new(2.0)));
    }

    #[test]
    fn draining_a_bucket_moves_no_entries() {
        // 256 equal-time events land in one bucket. FIFO inserts append at
        // the back and pops take the front, so no stored entry is ever
        // relocated; the pre-VecDeque implementation memmoved the whole
        // remaining bucket on every pop (O(n²) for the drain).
        let mut c = CalendarQueue::with_parameters(8, 1.0);
        c.set_resize_enabled(false);
        for id in 0..256u64 {
            c.insert(ev(2.5, id));
        }
        let ids: Vec<u64> = drain(&mut c).iter().map(|x| x.1).collect();
        assert_eq!(ids, (0..256).collect::<Vec<_>>());
        assert_eq!(c.probes().bucket_moves, 0, "FIFO drain must not shift bucket entries");
    }

    #[test]
    fn width_estimate_samples_earliest_events_not_bucket_zero() {
        let mut c = CalendarQueue::with_parameters(8, 1.0);
        c.set_resize_enabled(false);
        // A dense far-future cluster that happens to land in bucket 0 …
        for i in 0..25u64 {
            c.insert(ev(1000.0 + i as f64 * 1e-6, i));
        }
        // … and the genuinely earliest events, ~1s apart, in later buckets.
        for (j, t) in [1.5, 2.5, 3.5].iter().enumerate() {
            c.insert(ev(*t, 100 + j as u64));
        }
        // Sampling in bucket array order sees only the microsecond-spaced
        // cluster and proposes a ~3e-6 width; sampling the earliest pending
        // events spans the real gaps and proposes a width well above 1.
        let w = c.estimate_width();
        assert!(w > 1.0, "width {w} must reflect earliest-event gaps, not a far-future cluster");
    }

    #[test]
    fn cancellation_heavy_runs_keep_stored_bounded() {
        let mut c = CalendarQueue::with_parameters(8, 1.0);
        c.set_resize_enabled(false);
        for i in 0..10_000u64 {
            c.insert(ev(i as f64 * 0.25, i));
        }
        for i in 0..9_990u64 {
            assert!(c.cancel(EventId(i)));
        }
        assert_eq!(c.len(), 10);
        // Without the ratio purge every tombstone stays resident until it
        // surfaces or a resize rebuckets (disabled here): stored() == 10_000.
        assert!(c.probes().purges > 0, "purge must have triggered");
        assert!(c.stored() < 1_000, "tombstones must be purged, stored = {}", c.stored());
        let tail = drain(&mut c);
        assert_eq!(tail.len(), 10);
        assert_eq!(tail.first().map(|x| x.1), Some(9_990));
    }

    #[test]
    fn resize_drops_tombstones() {
        let mut c = CalendarQueue::with_parameters(8, 1.0);
        for i in 0..32u64 {
            c.insert(ev(i as f64, i));
        }
        for i in 0..16u64 {
            c.cancel(EventId(i));
        }
        // Force a grow: the rebucket keeps only live entries.
        for i in 100..200u64 {
            c.insert(ev(i as f64, i));
        }
        assert!(c.probes().resizes > 0);
        assert_eq!(c.stored(), c.len());
    }

    #[test]
    fn calendar_queue_interleaved_matches_heap() {
        // Deterministic interleaving of inserts, cancels, pops and peeks;
        // both calendars must agree at every step.
        let mut cq = CalendarQueue::with_parameters(4, 0.5);
        let mut heap = HeapCalendar::new();
        let mut x: u64 = 0x2003_1973;
        let mut next = move || {
            // xorshift64 — deterministic, no external RNG needed here.
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x
        };
        let mut id = 0u64;
        // Like the engine, never schedule before the last popped time.
        let mut now = 0.0f64;
        for step in 0..4_000 {
            match next() % 10 {
                0..=4 => {
                    let t = now + (next() % 1_000) as f64 / 16.0;
                    cq.insert(ev(t, id));
                    heap.insert(ev(t, id));
                    id += 1;
                }
                5 => {
                    let victim = EventId(next() % id.max(1));
                    assert_eq!(cq.cancel(victim), heap.cancel(victim), "step {step}");
                }
                6..=7 => {
                    assert_eq!(cq.peek_time(), heap.peek_time(), "step {step}");
                }
                _ => {
                    let a = cq.pop().map(|e| (e.time, e.id));
                    let b = heap.pop().map(|e| (e.time, e.id));
                    assert_eq!(a, b, "step {step}");
                    if let Some((t, _)) = a {
                        now = t.seconds();
                    }
                }
            }
            assert_eq!(cq.len(), heap.len(), "step {step}");
        }
        loop {
            let a = cq.pop().map(|e| (e.time, e.id));
            let b = heap.pop().map(|e| (e.time, e.id));
            assert_eq!(a, b);
            if a.is_none() {
                break;
            }
        }
        assert_eq!(cq.stored(), 0);
    }
}
