//! Future-event lists.
//!
//! Two interchangeable implementations of the pending-event set are
//! provided:
//!
//! * [`HeapCalendar`] — a binary heap, `O(log n)` per operation, the
//!   default and the right choice for the event populations this simulator
//!   produces (tens of thousands of pending events at most).
//! * [`CalendarQueue`] — R. Brown's calendar queue, amortized `O(1)` per
//!   operation under stationary event-time distributions; kept as an
//!   ablation target (see the `calendar` Criterion bench) and property-
//!   tested for equivalence with the heap.
//!
//! Both support cancellation through [`EventId`] handles using lazy
//! deletion: a cancelled id is remembered and the entry discarded when it
//! surfaces, so cancellation is `O(1)`.

use crate::event::{Event, EventId};
use crate::time::SimTime;

/// Membership set for live event ids.
///
/// The engine issues ids densely from a counter, so a bitmask indexed
/// by id beats a hash set: insert/remove/contains are a shift and a
/// mask, with no hashing on the per-event hot path. Memory is one bit
/// per id ever issued (a 10M-event run costs ~1.2 MiB), which is the
/// right trade for ids that are sequential — callers synthesizing
/// sparse ids by hand (`EventId::from_raw`) pay proportionally.
#[derive(Default)]
struct IdSet {
    words: Vec<u64>,
    len: usize,
}

impl IdSet {
    fn new() -> Self {
        IdSet::default()
    }

    fn with_capacity(ids: usize) -> Self {
        IdSet { words: Vec::with_capacity(ids.div_ceil(64)), len: 0 }
    }

    /// Inserts `id`; returns `false` if it was already present.
    fn insert(&mut self, id: u64) -> bool {
        let (w, mask) = ((id / 64) as usize, 1u64 << (id % 64));
        if w >= self.words.len() {
            self.words.resize(w + 1, 0);
        }
        if self.words[w] & mask != 0 {
            return false;
        }
        self.words[w] |= mask;
        self.len += 1;
        true
    }

    /// Removes `id`; returns `false` if it was not present.
    fn remove(&mut self, id: u64) -> bool {
        let (w, mask) = ((id / 64) as usize, 1u64 << (id % 64));
        let Some(word) = self.words.get_mut(w) else { return false };
        if *word & mask == 0 {
            return false;
        }
        *word &= !mask;
        self.len -= 1;
        true
    }

    fn contains(&self, id: u64) -> bool {
        self.words.get((id / 64) as usize).is_some_and(|w| w & (1u64 << (id % 64)) != 0)
    }

    fn len(&self) -> usize {
        self.len
    }

    fn is_empty(&self) -> bool {
        self.len == 0
    }
}

/// The pending-event set abstraction used by the simulation engine.
pub trait EventCalendar<E> {
    /// Inserts a scheduled event.
    fn insert(&mut self, ev: Event<E>);

    /// Cancels a previously inserted event. Returns `true` if the event was
    /// still pending (i.e. had not fired and had not already been
    /// cancelled).
    fn cancel(&mut self, id: EventId) -> bool;

    /// Removes and returns the earliest pending event (FIFO among equal
    /// times).
    fn pop(&mut self) -> Option<Event<E>>;

    /// The time of the earliest pending event without removing it.
    fn peek_time(&mut self) -> Option<SimTime>;

    /// Number of live (non-cancelled) pending events.
    fn len(&self) -> usize;

    /// Whether no live events remain.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

// ---------------------------------------------------------------------------
// Binary-heap calendar
// ---------------------------------------------------------------------------

struct HeapEntry<E>(Event<E>);

impl<E> PartialEq for HeapEntry<E> {
    fn eq(&self, other: &Self) -> bool {
        self.0.key() == other.0.key()
    }
}
impl<E> Eq for HeapEntry<E> {}
impl<E> PartialOrd for HeapEntry<E> {
    fn partial_cmp(&self, other: &Self) -> Option<core::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<E> Ord for HeapEntry<E> {
    fn cmp(&self, other: &Self) -> core::cmp::Ordering {
        // Reversed: BinaryHeap is a max-heap, we need earliest-first.
        other.0.key().cmp(&self.0.key())
    }
}

/// Binary-heap future-event list with lazy cancellation.
///
/// The set of live (inserted, not yet popped or cancelled) ids is tracked
/// explicitly, so cancelling a stale handle — one that already fired or
/// was already cancelled — is a safe no-op rather than a count corruption.
pub struct HeapCalendar<E> {
    heap: std::collections::BinaryHeap<HeapEntry<E>>,
    live_ids: IdSet,
}

impl<E> Default for HeapCalendar<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> HeapCalendar<E> {
    /// Creates an empty calendar.
    pub fn new() -> Self {
        HeapCalendar { heap: std::collections::BinaryHeap::new(), live_ids: IdSet::new() }
    }

    /// Creates an empty calendar with room for `cap` events.
    pub fn with_capacity(cap: usize) -> Self {
        HeapCalendar {
            heap: std::collections::BinaryHeap::with_capacity(cap),
            live_ids: IdSet::with_capacity(cap),
        }
    }

    /// Discards cancelled entries sitting at the top of the heap.
    fn skim(&mut self) {
        while let Some(top) = self.heap.peek() {
            if self.live_ids.contains(top.0.id.0) {
                break;
            }
            self.heap.pop();
        }
    }
}

impl<E> EventCalendar<E> for HeapCalendar<E> {
    fn insert(&mut self, ev: Event<E>) {
        assert!(self.live_ids.insert(ev.id.0), "duplicate event id {:?}", ev.id);
        self.heap.push(HeapEntry(ev));
    }

    fn cancel(&mut self, id: EventId) -> bool {
        self.live_ids.remove(id.0)
    }

    fn pop(&mut self) -> Option<Event<E>> {
        self.skim();
        let ev = self.heap.pop()?.0;
        self.live_ids.remove(ev.id.0);
        Some(ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        self.skim();
        self.heap.peek().map(|e| e.0.time)
    }

    fn len(&self) -> usize {
        self.live_ids.len()
    }
}

// ---------------------------------------------------------------------------
// Calendar queue
// ---------------------------------------------------------------------------

/// R. Brown's calendar queue: an array of time buckets (days) cycled like a
/// wall calendar, with automatic resizing to keep about one event per
/// bucket. Amortized `O(1)` insert/pop for stationary event-time
/// distributions.
pub struct CalendarQueue<E> {
    /// `buckets[i]` holds events with `floor(t / width) % nbuckets == i`,
    /// each bucket sorted by (time, id).
    buckets: Vec<Vec<Event<E>>>,
    width: f64,
    /// Index of the bucket the next pop scans first.
    cursor: usize,
    /// Start time of the cursor bucket's current "day".
    bucket_top: f64,
    /// Ids inserted and not yet popped or cancelled.
    live_ids: IdSet,
    /// Resize thresholds: grow above `live > 2*nbuckets`, shrink below
    /// `live < nbuckets/2`.
    resize_enabled: bool,
    last_popped: f64,
}

impl<E> Default for CalendarQueue<E> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E> CalendarQueue<E> {
    /// Creates an empty queue with a small initial bucket array.
    pub fn new() -> Self {
        Self::with_parameters(8, 1.0)
    }

    /// Creates an empty queue with an explicit bucket count and width;
    /// mostly useful for tests and benchmarks.
    pub fn with_parameters(nbuckets: usize, width: f64) -> Self {
        assert!(nbuckets > 0, "need at least one bucket");
        assert!(width > 0.0 && width.is_finite(), "bucket width must be positive");
        CalendarQueue {
            buckets: (0..nbuckets).map(|_| Vec::new()).collect(),
            width,
            cursor: 0,
            bucket_top: 0.0,
            live_ids: IdSet::new(),
            resize_enabled: true,
            last_popped: 0.0,
        }
    }

    fn nbuckets(&self) -> usize {
        self.buckets.len()
    }

    fn bucket_index(&self, t: f64) -> usize {
        ((t / self.width) as u64 % self.nbuckets() as u64) as usize
    }

    fn insert_sorted(bucket: &mut Vec<Event<E>>, ev: Event<E>) {
        let key = ev.key();
        let pos = bucket.partition_point(|e| e.key() <= key);
        bucket.insert(pos, ev);
    }

    /// Total entries including not-yet-skimmed cancelled ones.
    fn stored(&self) -> usize {
        self.buckets.iter().map(Vec::len).sum()
    }

    /// Re-buckets every stored event into `new_n` buckets of `new_width`.
    fn resize(&mut self, new_n: usize, new_width: f64) {
        let mut all: Vec<Event<E>> = Vec::with_capacity(self.stored());
        for b in &mut self.buckets {
            all.append(b);
        }
        self.buckets = (0..new_n).map(|_| Vec::new()).collect();
        self.width = new_width;
        for ev in all {
            let idx = self.bucket_index(ev.time.seconds());
            Self::insert_sorted(&mut self.buckets[idx], ev);
        }
        // Restart the scan from the day that contains the last popped time.
        self.cursor = self.bucket_index(self.last_popped);
        self.bucket_top = (self.last_popped / self.width).floor() * self.width;
    }

    /// Picks a new bucket width as a multiple of the mean gap between a
    /// sample of the earliest pending events (Brown's heuristic).
    fn estimate_width(&mut self) -> f64 {
        let sample: usize = 25.min(self.live_ids.len().max(2));
        let mut times: Vec<f64> = Vec::with_capacity(sample);
        'outer: for b in &self.buckets {
            for ev in b {
                if self.live_ids.contains(ev.id.0) {
                    times.push(ev.time.seconds());
                    if times.len() >= sample {
                        break 'outer;
                    }
                }
            }
        }
        if times.len() < 2 {
            return self.width;
        }
        times.sort_by(|a, b| a.partial_cmp(b).expect("event times are never NaN"));
        let span = times[times.len() - 1] - times[0];
        let mean_gap = span / (times.len() - 1) as f64;
        if mean_gap > 0.0 {
            mean_gap * 3.0
        } else {
            self.width
        }
    }

    fn maybe_resize(&mut self) {
        if !self.resize_enabled {
            return;
        }
        let n = self.nbuckets();
        let live = self.live_ids.len();
        if live > 2 * n {
            let w = self.estimate_width();
            self.resize(2 * n, w);
        } else if n > 8 && live < n / 2 {
            let w = self.estimate_width();
            self.resize((n / 2).max(8), w);
        }
    }

    /// Drops cancelled entries from the front of a bucket in place.
    fn skim_bucket(bucket: &mut Vec<Event<E>>, live_ids: &IdSet) {
        while let Some(first) = bucket.first() {
            if live_ids.contains(first.id.0) {
                break;
            }
            bucket.remove(0);
        }
    }

    /// Finds the position of the earliest live event by direct search —
    /// the fallback when a full calendar year passes without finding one.
    fn direct_min(&mut self) -> Option<(usize, usize)> {
        let mut best: Option<(usize, usize, (SimTime, u64))> = None;
        for (bi, bucket) in self.buckets.iter().enumerate() {
            for (ei, ev) in bucket.iter().enumerate() {
                if !self.live_ids.contains(ev.id.0) {
                    continue;
                }
                let key = ev.key();
                if best.is_none_or(|(_, _, bk)| key < bk) {
                    best = Some((bi, ei, key));
                }
                break; // buckets are sorted; first live entry is the bucket min
            }
        }
        best.map(|(bi, ei, _)| (bi, ei))
    }
}

impl<E> EventCalendar<E> for CalendarQueue<E> {
    fn insert(&mut self, ev: Event<E>) {
        assert!(self.live_ids.insert(ev.id.0), "duplicate event id {:?}", ev.id);
        let idx = self.bucket_index(ev.time.seconds());
        Self::insert_sorted(&mut self.buckets[idx], ev);
        self.maybe_resize();
    }

    fn cancel(&mut self, id: EventId) -> bool {
        self.live_ids.remove(id.0)
    }

    fn pop(&mut self) -> Option<Event<E>> {
        if self.live_ids.is_empty() {
            return None;
        }
        let n = self.nbuckets();
        // Scan at most one full year; events further out are found directly.
        for _ in 0..n {
            let cursor = self.cursor;
            let day_end = self.bucket_top + self.width;
            Self::skim_bucket(&mut self.buckets[cursor], &self.live_ids);
            if let Some(first) = self.buckets[cursor].first() {
                if first.time.seconds() < day_end {
                    let ev = self.buckets[cursor].remove(0);
                    self.live_ids.remove(ev.id.0);
                    self.last_popped = ev.time.seconds();
                    self.maybe_resize();
                    return Some(ev);
                }
            }
            self.cursor = (cursor + 1) % n;
            self.bucket_top = day_end;
        }
        // Sparse regime: jump straight to the global minimum.
        let (bi, ei) = self.direct_min()?;
        let ev = self.buckets[bi].remove(ei);
        self.live_ids.remove(ev.id.0);
        self.last_popped = ev.time.seconds();
        self.cursor = self.bucket_index(self.last_popped);
        self.bucket_top = (self.last_popped / self.width).floor() * self.width;
        self.maybe_resize();
        Some(ev)
    }

    fn peek_time(&mut self) -> Option<SimTime> {
        if self.live_ids.is_empty() {
            return None;
        }
        let (bi, ei) = self.direct_min()?;
        Some(self.buckets[bi][ei].time)
    }

    fn len(&self) -> usize {
        self.live_ids.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(t: f64, id: u64) -> Event<u32> {
        Event { time: SimTime::new(t), id: EventId(id), payload: id as u32 }
    }

    fn drain<C: EventCalendar<u32>>(cal: &mut C) -> Vec<(f64, u64)> {
        let mut out = Vec::new();
        while let Some(e) = cal.pop() {
            out.push((e.time.seconds(), e.id.raw()));
        }
        out
    }

    #[test]
    fn heap_orders_by_time() {
        let mut c = HeapCalendar::new();
        c.insert(ev(3.0, 0));
        c.insert(ev(1.0, 1));
        c.insert(ev(2.0, 2));
        assert_eq!(drain(&mut c), vec![(1.0, 1), (2.0, 2), (3.0, 0)]);
    }

    #[test]
    fn heap_fifo_among_equal_times() {
        let mut c = HeapCalendar::new();
        c.insert(ev(1.0, 0));
        c.insert(ev(1.0, 1));
        c.insert(ev(1.0, 2));
        assert_eq!(drain(&mut c), vec![(1.0, 0), (1.0, 1), (1.0, 2)]);
    }

    #[test]
    fn heap_cancel_removes_event() {
        let mut c = HeapCalendar::new();
        c.insert(ev(1.0, 0));
        c.insert(ev(2.0, 1));
        assert!(c.cancel(EventId(0)));
        assert!(!c.cancel(EventId(0)), "double cancel must fail");
        assert_eq!(c.len(), 1);
        assert_eq!(drain(&mut c), vec![(2.0, 1)]);
    }

    #[test]
    fn heap_peek_skips_cancelled() {
        let mut c = HeapCalendar::new();
        c.insert(ev(1.0, 0));
        c.insert(ev(2.0, 1));
        c.cancel(EventId(0));
        assert_eq!(c.peek_time(), Some(SimTime::new(2.0)));
    }

    #[test]
    fn heap_empty_pop_is_none() {
        let mut c: HeapCalendar<u32> = HeapCalendar::new();
        assert!(c.pop().is_none());
        assert!(c.peek_time().is_none());
        assert!(c.is_empty());
    }

    #[test]
    fn calendar_queue_orders_by_time() {
        let mut c = CalendarQueue::new();
        c.insert(ev(3.0, 0));
        c.insert(ev(1.0, 1));
        c.insert(ev(2.0, 2));
        c.insert(ev(0.5, 3));
        assert_eq!(drain(&mut c), vec![(0.5, 3), (1.0, 1), (2.0, 2), (3.0, 0)]);
    }

    #[test]
    fn calendar_queue_handles_far_future_events() {
        let mut c = CalendarQueue::with_parameters(4, 1.0);
        c.insert(ev(1000.0, 0));
        c.insert(ev(0.5, 1));
        assert_eq!(drain(&mut c), vec![(0.5, 1), (1000.0, 0)]);
    }

    #[test]
    fn calendar_queue_cancel() {
        let mut c = CalendarQueue::new();
        c.insert(ev(1.0, 0));
        c.insert(ev(2.0, 1));
        c.insert(ev(3.0, 2));
        assert!(c.cancel(EventId(1)));
        assert_eq!(c.len(), 2);
        assert_eq!(drain(&mut c), vec![(1.0, 0), (3.0, 2)]);
    }

    #[test]
    fn calendar_queue_resizes_under_load() {
        let mut c = CalendarQueue::with_parameters(8, 0.1);
        for i in 0..1000u64 {
            c.insert(ev(i as f64 * 0.37, i));
        }
        assert!(c.nbuckets() > 8, "queue should have grown");
        let out = drain(&mut c);
        assert_eq!(out.len(), 1000);
        assert!(out.windows(2).all(|w| w[0].0 <= w[1].0), "must pop in time order");
    }

    #[test]
    fn calendar_queue_fifo_among_equal_times() {
        let mut c = CalendarQueue::new();
        for id in 0..5 {
            c.insert(ev(2.0, id));
        }
        assert_eq!(drain(&mut c).iter().map(|x| x.1).collect::<Vec<_>>(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn calendar_queue_peek_matches_pop() {
        let mut c = CalendarQueue::new();
        c.insert(ev(5.0, 0));
        c.insert(ev(3.0, 1));
        assert_eq!(c.peek_time(), Some(SimTime::new(3.0)));
        assert_eq!(c.pop().map(|e| e.id.raw()), Some(1));
    }
}
