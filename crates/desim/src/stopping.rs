//! Sequential stopping rule for replicated experiments.
//!
//! The classic fixed-replication design wastes runs where the output is
//! calm and under-resolves it where the output is noisy. The relative-
//! precision sequential procedure (Law & Kelton's "sequential procedure
//! for obtaining a specified precision") instead re-assesses the
//! confidence interval after every round of replications and stops when
//! the relative half-width drops below a target — or when a hard cap
//! bounds the spend. [`StoppingRule::assess`] is the decision kernel the
//! adaptive sweep engine calls between rounds.

use crate::stats::Estimate;

/// Why a point stopped accumulating replications.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StopReason {
    /// The relative 95 % half-width met the target.
    PrecisionMet,
    /// The replication cap was hit before the target.
    CapReached,
}

/// The next action for one estimation target.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Decision {
    /// Run `add` more replications, then re-assess.
    Continue {
        /// Replications to add in the next round (always ≥ 1).
        add: u64,
    },
    /// Stop: the target is met or the cap is exhausted.
    Stop(StopReason),
}

/// A relative-precision stopping rule with a minimum and a cap.
///
/// `spent` (replications already consumed) is tracked separately from
/// `Estimate::n` (observations actually behind the estimate): a
/// saturated or otherwise discarded replication costs budget without
/// adding an observation, and the cap must bound the *spend*.
#[derive(Clone, Copy, Debug)]
pub struct StoppingRule {
    /// Target relative 95 % half-width (e.g. 0.05 for ±5 %).
    pub rel_target: f64,
    /// Replications always run before the first assessment.
    pub min_n: u64,
    /// Hard cap on replications per target.
    pub max_n: u64,
}

impl StoppingRule {
    /// Creates a rule; panics on a non-positive/non-finite target or an
    /// empty replication range.
    pub fn new(rel_target: f64, min_n: u64, max_n: u64) -> Self {
        assert!(
            rel_target > 0.0 && rel_target.is_finite(),
            "relative-precision target must be positive and finite"
        );
        assert!(min_n >= 1, "at least one replication is required");
        assert!(max_n >= min_n, "cap must be at least the minimum");
        StoppingRule { rel_target, min_n, max_n }
    }

    /// Decides the next round given `spent` replications consumed so far
    /// and the current estimate over the kept ones.
    ///
    /// The half-width of a replication mean shrinks like 1/√n, so a
    /// point at relative error `r` needs roughly `n·(r/target)²` total
    /// replications. The projection is itself noisy at small n, so the
    /// round grows by at most 2× the current spend, and never beyond the
    /// cap.
    pub fn assess(&self, spent: u64, estimate: &Estimate) -> Decision {
        if spent < self.min_n {
            return Decision::Continue { add: self.min_n - spent };
        }
        if estimate.relative_error() <= self.rel_target {
            return Decision::Stop(StopReason::PrecisionMet);
        }
        if spent >= self.max_n {
            return Decision::Stop(StopReason::CapReached);
        }
        let ratio = estimate.relative_error() / self.rel_target;
        let projected = if ratio.is_finite() && estimate.n > 0 {
            (estimate.n as f64 * ratio * ratio).ceil() as u64
        } else {
            // No usable estimate yet (zero mean, infinite half-width):
            // grow geometrically until one appears or the cap ends it.
            u64::MAX
        };
        let next_total = projected.clamp(spent + 1, spent.saturating_mul(2)).min(self.max_n);
        Decision::Continue { add: next_total - spent }
    }

    /// [`assess`](Self::assess) flattened into a *queue-schedulable
    /// plan*: the number of replications a task queue should enqueue for
    /// this target right now (0 = the target is closed).
    ///
    /// `saturated` marks a target whose steady-state output is unbounded
    /// (e.g. an overloaded queueing system): once the minimum has been
    /// spent, no replication count buys precision there, so the plan is
    /// empty. This is the one decision the adaptive sweep engine used to
    /// make outside the rule; folding it in makes the rule the single
    /// authority a replication queue needs to plan a round.
    pub fn plan(&self, spent: u64, saturated: bool, estimate: &Estimate) -> u64 {
        if saturated && spent >= self.min_n {
            return 0;
        }
        match self.assess(spent, estimate) {
            Decision::Continue { add } => add,
            Decision::Stop(_) => 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn est(mean: f64, half: f64, n: u64) -> Estimate {
        Estimate { mean, half_width: half, n }
    }

    #[test]
    fn runs_the_minimum_first() {
        let rule = StoppingRule::new(0.05, 3, 10);
        assert_eq!(rule.assess(0, &est(0.0, f64::INFINITY, 0)), Decision::Continue { add: 3 });
        assert_eq!(rule.assess(2, &est(100.0, 1.0, 2)), Decision::Continue { add: 1 });
    }

    #[test]
    fn stops_when_precision_met() {
        let rule = StoppingRule::new(0.05, 2, 10);
        // 2 % relative half-width beats the 5 % target.
        assert_eq!(rule.assess(3, &est(100.0, 2.0, 3)), Decision::Stop(StopReason::PrecisionMet));
    }

    #[test]
    fn stops_at_the_cap() {
        let rule = StoppingRule::new(0.01, 2, 5);
        assert_eq!(rule.assess(5, &est(100.0, 50.0, 5)), Decision::Stop(StopReason::CapReached));
        // Past the cap (resumed checkpoints can overshoot): still stop.
        assert_eq!(rule.assess(7, &est(100.0, 50.0, 7)), Decision::Stop(StopReason::CapReached));
    }

    #[test]
    fn projects_the_required_sample_size() {
        let rule = StoppingRule::new(0.05, 2, 100);
        // rel = 0.06, ratio 1.2: needs ~ 4·1.44 = 5.76 → 6 total → add 2.
        assert_eq!(rule.assess(4, &est(100.0, 6.0, 4)), Decision::Continue { add: 2 });
    }

    #[test]
    fn round_growth_is_capped_at_doubling() {
        let rule = StoppingRule::new(0.05, 2, 1_000);
        // rel = 0.5, ratio 10: projection says 400, but one round may at
        // most double the spend.
        assert_eq!(rule.assess(4, &est(100.0, 50.0, 4)), Decision::Continue { add: 4 });
    }

    #[test]
    fn growth_is_bounded_by_the_cap() {
        let rule = StoppingRule::new(0.05, 2, 6);
        assert_eq!(rule.assess(4, &est(100.0, 50.0, 4)), Decision::Continue { add: 2 });
    }

    #[test]
    fn degenerate_estimates_grow_geometrically() {
        let rule = StoppingRule::new(0.05, 2, 100);
        // Zero mean → infinite relative error → no finite projection.
        assert_eq!(rule.assess(4, &est(0.0, 1.0, 4)), Decision::Continue { add: 4 });
        // Infinite half-width (every replication discarded) likewise.
        assert_eq!(rule.assess(2, &est(10.0, f64::INFINITY, 0)), Decision::Continue { add: 2 });
    }

    #[test]
    fn plan_flattens_decisions_and_closes_saturated_targets() {
        let rule = StoppingRule::new(0.05, 2, 10);
        // Below the minimum the plan tops the target up — even saturated
        // ones (the minimum is always owed).
        assert_eq!(rule.plan(0, false, &est(0.0, f64::INFINITY, 0)), 2);
        assert_eq!(rule.plan(1, true, &est(0.0, f64::INFINITY, 0)), 1);
        // Saturated targets close at the minimum regardless of precision.
        assert_eq!(rule.plan(2, true, &est(100.0, 50.0, 2)), 0);
        // Open targets mirror assess: Continue{add} → add, Stop → 0.
        assert_eq!(rule.plan(4, false, &est(100.0, 6.0, 4)), 2);
        assert_eq!(rule.plan(3, false, &est(100.0, 2.0, 3)), 0);
    }

    #[test]
    fn converges_under_a_shrinking_half_width() {
        // Simulated 1/√n half-width: the rule must terminate by
        // precision, not the cap.
        let rule = StoppingRule::new(0.05, 3, 10_000);
        let mut n = 0u64;
        loop {
            let half = 2.0 / (n.max(1) as f64).sqrt();
            match rule.assess(n, &est(10.0, half, n)) {
                Decision::Continue { add } => n += add,
                Decision::Stop(reason) => {
                    assert_eq!(reason, StopReason::PrecisionMet);
                    break;
                }
            }
        }
        assert!(n < 10_000, "stopped by precision at n = {n}");
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_target() {
        StoppingRule::new(0.0, 1, 2);
    }

    #[test]
    #[should_panic(expected = "cap")]
    fn rejects_inverted_range() {
        StoppingRule::new(0.05, 5, 2);
    }
}
