//! Simulation-output statistics.
//!
//! Everything the experiment harness needs to turn raw event streams into
//! defensible numbers: streaming means and variances (Welford), time-
//! weighted averages for utilization-style quantities, histograms for the
//! density figures, and batch-means confidence intervals for steady-state
//! response times.

use crate::time::SimTime;

/// Streaming sample mean / variance via Welford's algorithm.
#[derive(Clone, Debug, Default)]
pub struct Welford {
    n: u64,
    mean: f64,
    m2: f64,
    min: f64,
    max: f64,
}

impl Welford {
    /// An empty accumulator.
    pub fn new() -> Self {
        Welford { n: 0, mean: 0.0, m2: 0.0, min: f64::INFINITY, max: f64::NEG_INFINITY }
    }

    /// Adds one observation.
    #[inline]
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite(), "observation must be finite");
        self.n += 1;
        let d = x - self.mean;
        self.mean += d / self.n as f64;
        self.m2 += d * (x - self.mean);
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Number of observations.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Sample mean (0 for an empty accumulator).
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.mean
        }
    }

    /// Sample mean, or `None` with no observations. Use this instead of
    /// [`Welford::mean`] wherever 0.0 is a valid observation value —
    /// averaging an empty accumulator's 0.0 into downstream aggregates
    /// silently biases them.
    pub fn mean_opt(&self) -> Option<f64> {
        if self.n == 0 {
            None
        } else {
            Some(self.mean)
        }
    }

    /// Unbiased sample variance (0 with fewer than two observations).
    pub fn variance(&self) -> f64 {
        if self.n < 2 {
            0.0
        } else {
            self.m2 / (self.n - 1) as f64
        }
    }

    /// Sample standard deviation.
    pub fn std_dev(&self) -> f64 {
        self.variance().sqrt()
    }

    /// Coefficient of variation (std dev over mean; 0 if the mean is 0).
    pub fn cv(&self) -> f64 {
        let m = self.mean();
        if m == 0.0 {
            0.0
        } else {
            self.std_dev() / m
        }
    }

    /// Smallest observation (∞ if empty).
    pub fn min(&self) -> f64 {
        self.min
    }

    /// Largest observation (−∞ if empty).
    pub fn max(&self) -> f64 {
        self.max
    }

    /// Merges another accumulator into this one (parallel reduction).
    pub fn merge(&mut self, other: &Welford) {
        if other.n == 0 {
            return;
        }
        if self.n == 0 {
            *self = other.clone();
            return;
        }
        let n1 = self.n as f64;
        let n2 = other.n as f64;
        let d = other.mean - self.mean;
        let n = n1 + n2;
        self.mean += d * n2 / n;
        self.m2 += other.m2 + d * d * n1 * n2 / n;
        self.n += other.n;
        self.min = self.min.min(other.min);
        self.max = self.max.max(other.max);
    }
}

/// Time-weighted average of a piecewise-constant signal, e.g. the number of
/// busy processors. Call [`TimeWeighted::update`] *before* changing the
/// value at the current simulation time.
#[derive(Clone, Debug)]
pub struct TimeWeighted {
    value: f64,
    last_change: SimTime,
    integral: f64,
    start: SimTime,
}

impl TimeWeighted {
    /// Starts tracking with initial `value` at time `start`.
    pub fn new(start: SimTime, value: f64) -> Self {
        TimeWeighted { value, last_change: start, integral: 0.0, start }
    }

    /// Accumulates the current value up to `now`, then switches to
    /// `new_value`.
    pub fn update(&mut self, now: SimTime, new_value: f64) {
        debug_assert!(now >= self.last_change, "time went backwards");
        self.integral += self.value * (now - self.last_change).seconds();
        self.value = new_value;
        self.last_change = now;
    }

    /// Adds `delta` to the tracked value at time `now`.
    pub fn add(&mut self, now: SimTime, delta: f64) {
        let v = self.value;
        self.update(now, v + delta);
    }

    /// The current value of the signal.
    pub fn value(&self) -> f64 {
        self.value
    }

    /// Time-average over `[start, now]`.
    pub fn average(&self, now: SimTime) -> f64 {
        let span = (now - self.start).seconds();
        if span <= 0.0 {
            return self.value;
        }
        let integral = self.integral + self.value * (now - self.last_change).seconds();
        integral / span
    }

    /// Resets the accumulation window to begin at `now` (used to discard
    /// warm-up transients) while keeping the current value.
    pub fn reset_window(&mut self, now: SimTime) {
        self.integral = 0.0;
        self.last_change = now;
        self.start = now;
    }

    /// The raw integral ∫ value dt over `[start, now]`.
    pub fn integral(&self, now: SimTime) -> f64 {
        self.integral + self.value * (now - self.last_change).seconds()
    }
}

/// A fixed-width histogram over `[lo, hi)` with saturating under/overflow
/// bins; powers the density figures (Figs 1 and 2 of the paper).
#[derive(Clone, Debug)]
pub struct Histogram {
    lo: f64,
    width: f64,
    bins: Vec<u64>,
    underflow: u64,
    overflow: u64,
    total: u64,
}

impl Histogram {
    /// Creates a histogram of `nbins` equal bins spanning `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, nbins: usize) -> Self {
        assert!(nbins > 0 && hi > lo);
        Histogram {
            lo,
            width: (hi - lo) / nbins as f64,
            bins: vec![0; nbins],
            underflow: 0,
            overflow: 0,
            total: 0,
        }
    }

    /// Records one observation.
    pub fn add(&mut self, x: f64) {
        self.total += 1;
        if x < self.lo {
            self.underflow += 1;
            return;
        }
        let idx = ((x - self.lo) / self.width) as usize;
        if idx >= self.bins.len() {
            self.overflow += 1;
        } else {
            self.bins[idx] += 1;
        }
    }

    /// Raw bin counts.
    pub fn counts(&self) -> &[u64] {
        &self.bins
    }

    /// `(bin_midpoint, count)` pairs for plotting.
    pub fn series(&self) -> Vec<(f64, u64)> {
        self.bins
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + (i as f64 + 0.5) * self.width, c))
            .collect()
    }

    /// Observations below the range.
    pub fn underflow(&self) -> u64 {
        self.underflow
    }

    /// Observations at or above the top of the range.
    pub fn overflow(&self) -> u64 {
        self.overflow
    }

    /// Total observations including under/overflow.
    pub fn total(&self) -> u64 {
        self.total
    }
}

/// Upper 97.5 % quantile of Student's t distribution (two-sided 95 %
/// confidence), by table lookup with interpolation; converges to the normal
/// 1.96 for large samples.
pub fn t_975(df: u64) -> f64 {
    const TABLE: &[(u64, f64)] = &[
        (1, 12.706),
        (2, 4.303),
        (3, 3.182),
        (4, 2.776),
        (5, 2.571),
        (6, 2.447),
        (7, 2.365),
        (8, 2.306),
        (9, 2.262),
        (10, 2.228),
        (12, 2.179),
        (15, 2.131),
        (20, 2.086),
        (25, 2.060),
        (30, 2.042),
        (40, 2.021),
        (60, 2.000),
        (120, 1.980),
    ];
    if df == 0 {
        return f64::INFINITY;
    }
    // Exact table hits first — checking only the left end of each window
    // made the final entry (120) unreachable, so t_975(120) used to fall
    // through to the asymptote and understate the quantile.
    if let Some(&(_, t)) = TABLE.iter().find(|&&(d, _)| d == df) {
        return t;
    }
    for w in TABLE.windows(2) {
        let (d0, t0) = w[0];
        let (d1, t1) = w[1];
        if df < d1 {
            // Linear interpolation in 1/df, the standard approximation.
            let x0 = 1.0 / d0 as f64;
            let x1 = 1.0 / d1 as f64;
            let x = 1.0 / df as f64;
            return t1 + (t0 - t1) * (x - x1) / (x0 - x1);
        }
    }
    // Beyond the table: interpolate in 1/df between the last entry and
    // the normal limit (t → 1.96 as df → ∞), continuous at df = 120.
    let (d_last, t_last) = TABLE[TABLE.len() - 1];
    1.96 + (t_last - 1.96) * d_last as f64 / df as f64
}

/// A mean together with a two-sided 95 % confidence half-width.
#[derive(Clone, Copy, Debug, Default)]
pub struct Estimate {
    /// Point estimate.
    pub mean: f64,
    /// 95 % confidence half-width (∞ when it cannot be estimated).
    pub half_width: f64,
    /// Number of (batch) observations behind the estimate.
    pub n: u64,
}

// Hand-written serde: an unestimable half-width is `f64::INFINITY`,
// which JSON can only carry as `null`. The derived impl would fail to
// read that null back into a plain f64, so checkpointed sweeps with
// single-replication (infinite-CI) points could never resume. Null (or
// a missing field) maps back to ∞ here.
impl serde::Serialize for Estimate {
    fn to_value(&self) -> serde::value::Value {
        use serde::value::Value;
        Value::Object(vec![
            ("mean".to_string(), self.mean.to_value()),
            ("half_width".to_string(), self.half_width.to_value()),
            ("n".to_string(), Value::Uint(self.n)),
        ])
    }
}

impl serde::Deserialize for Estimate {
    fn from_value(v: &serde::value::Value) -> Result<Self, serde::value::Error> {
        use serde::value::field;
        let half_width =
            Option::<f64>::from_value(field(v, "half_width")?)?.unwrap_or(f64::INFINITY);
        Ok(Estimate {
            mean: f64::from_value(field(v, "mean")?)?,
            half_width,
            n: u64::from_value(field(v, "n")?)?,
        })
    }
}

impl Estimate {
    /// Relative half-width (`half_width / mean`), ∞ when the mean is 0.
    pub fn relative_error(&self) -> f64 {
        if self.mean == 0.0 {
            f64::INFINITY
        } else {
            (self.half_width / self.mean).abs()
        }
    }
}

/// Batch-means analysis for steady-state simulation output: observations
/// are grouped into fixed-size batches whose means are treated as
/// approximately independent samples.
#[derive(Clone, Debug)]
pub struct BatchMeans {
    batch_size: u64,
    current: Welford,
    batches: Welford,
}

impl BatchMeans {
    /// Creates an analyzer with the given observations-per-batch.
    pub fn new(batch_size: u64) -> Self {
        assert!(batch_size > 0);
        BatchMeans { batch_size, current: Welford::new(), batches: Welford::new() }
    }

    /// Adds one raw observation.
    pub fn add(&mut self, x: f64) {
        self.current.add(x);
        if self.current.count() == self.batch_size {
            self.batches.add(self.current.mean());
            self.current = Welford::new();
        }
    }

    /// Number of completed batches.
    pub fn batches(&self) -> u64 {
        self.batches.count()
    }

    /// Total raw observations consumed (including the open batch).
    pub fn observations(&self) -> u64 {
        self.batches.count() * self.batch_size + self.current.count()
    }

    /// The grand mean with a 95 % confidence half-width over batch means.
    pub fn estimate(&self) -> Estimate {
        let k = self.batches.count();
        if k == 0 {
            // Fall back to the raw mean of the open batch with no CI.
            return Estimate { mean: self.current.mean(), half_width: f64::INFINITY, n: 0 };
        }
        let mean = self.batches.mean();
        let half = if k >= 2 {
            t_975(k - 1) * self.batches.std_dev() / (k as f64).sqrt()
        } else {
            f64::INFINITY
        };
        Estimate { mean, half_width: half, n: k }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn welford_matches_naive() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        let mut w = Welford::new();
        for &x in &xs {
            w.add(x);
        }
        assert_eq!(w.count(), 8);
        assert!((w.mean() - 5.0).abs() < 1e-12);
        // Naive unbiased variance of the same data is 32/7.
        assert!((w.variance() - 32.0 / 7.0).abs() < 1e-12);
        assert_eq!(w.min(), 2.0);
        assert_eq!(w.max(), 9.0);
    }

    #[test]
    fn welford_merge_equals_sequential() {
        let xs: Vec<f64> = (0..100).map(|i| (i as f64).sin() * 10.0 + 20.0).collect();
        let mut all = Welford::new();
        for &x in &xs {
            all.add(x);
        }
        let mut a = Welford::new();
        let mut b = Welford::new();
        for &x in &xs[..37] {
            a.add(x);
        }
        for &x in &xs[37..] {
            b.add(x);
        }
        a.merge(&b);
        assert_eq!(a.count(), all.count());
        assert!((a.mean() - all.mean()).abs() < 1e-10);
        assert!((a.variance() - all.variance()).abs() < 1e-10);
    }

    #[test]
    fn welford_empty_merge() {
        let mut a = Welford::new();
        let mut b = Welford::new();
        b.add(3.0);
        a.merge(&b);
        assert_eq!(a.count(), 1);
        assert_eq!(a.mean(), 3.0);
        let empty = Welford::new();
        a.merge(&empty);
        assert_eq!(a.count(), 1);
    }

    #[test]
    fn time_weighted_average() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 0.0);
        tw.update(SimTime::new(10.0), 4.0); // value 0 for 10s
        tw.update(SimTime::new(20.0), 2.0); // value 4 for 10s
                                            // value 2 for 20s
        let avg = tw.average(SimTime::new(40.0));
        // (0*10 + 4*10 + 2*20) / 40 = 80/40 = 2
        assert!((avg - 2.0).abs() < 1e-12);
        assert_eq!(tw.value(), 2.0);
    }

    #[test]
    fn time_weighted_add_and_reset() {
        let mut tw = TimeWeighted::new(SimTime::ZERO, 1.0);
        tw.add(SimTime::new(5.0), 2.0); // 1 for 5s, now 3
        tw.reset_window(SimTime::new(5.0));
        let avg = tw.average(SimTime::new(10.0)); // 3 for 5s after reset
        assert!((avg - 3.0).abs() < 1e-12);
        assert!((tw.integral(SimTime::new(10.0)) - 15.0).abs() < 1e-12);
    }

    #[test]
    fn time_weighted_zero_span() {
        let tw = TimeWeighted::new(SimTime::new(5.0), 7.0);
        assert_eq!(tw.average(SimTime::new(5.0)), 7.0);
    }

    #[test]
    fn histogram_bins_and_overflow() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.0, 2.5, 9.9, 10.0, -1.0, 100.0] {
            h.add(x);
        }
        assert_eq!(h.counts(), &[2, 1, 0, 0, 1]);
        assert_eq!(h.underflow(), 1);
        assert_eq!(h.overflow(), 2);
        assert_eq!(h.total(), 7);
        let series = h.series();
        assert_eq!(series[0], (1.0, 2));
    }

    #[test]
    fn t_table_endpoints() {
        assert!((t_975(1) - 12.706).abs() < 1e-9);
        assert!((t_975(10) - 2.228).abs() < 1e-9);
        // The >120 tail interpolates toward the normal limit in 1/df, so
        // huge df is close to (not exactly) 1.96.
        assert!((t_975(1_000_000) - 1.96).abs() < 1e-4);
        assert!(t_975(0).is_infinite());
        let t7 = t_975(7);
        assert!((t7 - 2.365).abs() < 1e-9);
        // Interpolated values are monotone.
        assert!(t_975(11) < t_975(10) && t_975(11) > t_975(12));
    }

    #[test]
    fn t_table_every_entry_is_exact() {
        // Regression: the window scan only exact-matched the left end of
        // each pair, so the last entry (120) fell through and returned
        // the asymptotic 1.96 instead of 1.980.
        const ENTRIES: &[(u64, f64)] = &[
            (1, 12.706),
            (2, 4.303),
            (3, 3.182),
            (4, 2.776),
            (5, 2.571),
            (6, 2.447),
            (7, 2.365),
            (8, 2.306),
            (9, 2.262),
            (10, 2.228),
            (12, 2.179),
            (15, 2.131),
            (20, 2.086),
            (25, 2.060),
            (30, 2.042),
            (40, 2.021),
            (60, 2.000),
            (120, 1.980),
        ];
        for &(df, t) in ENTRIES {
            assert!((t_975(df) - t).abs() < 1e-12, "t_975({df}) = {}, want {t}", t_975(df));
        }
    }

    #[test]
    fn t_table_interpolated_and_tail_values() {
        // Between-entry dfs interpolate strictly inside their bracket.
        for (lo, hi) in [(10, 12), (12, 15), (60, 120)] {
            for df in lo + 1..hi {
                let t = t_975(df);
                assert!(t < t_975(lo) && t > t_975(hi), "t_975({df}) = {t} outside bracket");
            }
        }
        // Beyond the table the quantile keeps decreasing toward 1.96 and
        // stays continuous at 120.
        assert!((t_975(120) - 1.980).abs() < 1e-12);
        let mut prev = t_975(120);
        for df in [121, 150, 240, 500, 5_000] {
            let t = t_975(df);
            assert!(t < prev && t > 1.96, "t_975({df}) = {t} not in (1.96, {prev})");
            prev = t;
        }
    }

    #[test]
    fn estimate_with_infinite_half_width_roundtrips() {
        // JSON carries ∞ as null; the manual impl maps it back so
        // checkpointed single-replication points survive a round trip.
        use serde::{Deserialize as _, Serialize as _};
        let e = Estimate { mean: 42.5, half_width: f64::INFINITY, n: 1 };
        let back = Estimate::from_value(&e.to_value()).expect("roundtrip");
        assert_eq!(back.mean, 42.5);
        assert!(back.half_width.is_infinite());
        assert_eq!(back.n, 1);
        let finite = Estimate { mean: 10.0, half_width: 2.5, n: 7 };
        let back = Estimate::from_value(&finite.to_value()).expect("roundtrip");
        assert_eq!(back.half_width, 2.5);
        assert_eq!(back.n, 7);
    }

    #[test]
    fn welford_mean_opt_distinguishes_empty() {
        let mut w = Welford::new();
        assert_eq!(w.mean_opt(), None);
        assert_eq!(w.mean(), 0.0);
        w.add(0.0);
        assert_eq!(w.mean_opt(), Some(0.0));
    }

    #[test]
    fn batch_means_confidence_interval_covers_known_mean() {
        // I.i.d. uniform observations: mean 0.5.
        let mut bm = BatchMeans::new(100);
        let mut r = crate::rng::RngStream::new(99);
        for _ in 0..10_000 {
            bm.add(r.uniform());
        }
        assert_eq!(bm.batches(), 100);
        assert_eq!(bm.observations(), 10_000);
        let est = bm.estimate();
        assert!((est.mean - 0.5).abs() < est.half_width * 2.0, "estimate {est:?}");
        assert!(est.half_width < 0.01);
        assert!(est.relative_error() < 0.02);
    }

    #[test]
    fn batch_means_no_complete_batch() {
        let mut bm = BatchMeans::new(100);
        bm.add(3.0);
        bm.add(5.0);
        let est = bm.estimate();
        assert_eq!(est.n, 0);
        assert!((est.mean - 4.0).abs() < 1e-12);
        assert!(est.half_width.is_infinite());
    }
}
