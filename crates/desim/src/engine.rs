//! The simulation driver.
//!
//! [`Simulation`] owns the clock and the future-event list. User code
//! drives it in a pull loop:
//!
//! ```
//! use desim::{Simulation, Duration};
//!
//! #[derive(Debug)]
//! enum Ev { Ping(u32) }
//!
//! let mut sim = Simulation::new();
//! sim.schedule_in(Duration::new(1.0), Ev::Ping(0));
//! while let Some(ev) = sim.step() {
//!     match ev.payload {
//!         Ev::Ping(n) if n < 3 => {
//!             sim.schedule_in(Duration::new(1.0), Ev::Ping(n + 1));
//!         }
//!         _ => {}
//!     }
//! }
//! assert_eq!(sim.now().seconds(), 4.0);
//! ```
//!
//! Pulling events (instead of registering callbacks) keeps the borrow
//! structure trivial: the handler has full `&mut` access to both the
//! simulation and the model state.

use crate::calendar::{EventCalendar, HeapCalendar};
use crate::event::{Event, EventId};
use crate::time::{Duration, SimTime};

/// A discrete-event simulation: a clock plus a pending-event calendar.
///
/// Generic over the payload type `E` and the calendar implementation `C`
/// (binary heap by default).
pub struct Simulation<E, C: EventCalendar<E> = HeapCalendar<E>> {
    now: SimTime,
    next_id: u64,
    calendar: C,
    processed: u64,
    _marker: core::marker::PhantomData<E>,
}

impl<E> Simulation<E, HeapCalendar<E>> {
    /// Creates a simulation at time zero with a heap calendar.
    pub fn new() -> Self {
        Simulation::with_calendar(HeapCalendar::new())
    }
}

impl<E> Default for Simulation<E, HeapCalendar<E>> {
    fn default() -> Self {
        Self::new()
    }
}

impl<E, C: EventCalendar<E>> Simulation<E, C> {
    /// Creates a simulation at time zero over a custom calendar.
    pub fn with_calendar(calendar: C) -> Self {
        Simulation {
            now: SimTime::ZERO,
            next_id: 0,
            calendar,
            processed: 0,
            _marker: core::marker::PhantomData,
        }
    }

    /// The current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events processed so far.
    pub fn events_processed(&self) -> u64 {
        self.processed
    }

    /// Number of events still pending.
    pub fn events_pending(&self) -> usize {
        self.calendar.len()
    }

    /// Schedules `payload` at the absolute time `at`.
    ///
    /// # Panics
    /// Panics if `at` is in the past.
    pub fn schedule_at(&mut self, at: SimTime, payload: E) -> EventId {
        assert!(at >= self.now, "cannot schedule into the past: {at:?} < {:?}", self.now);
        let id = EventId(self.next_id);
        self.next_id += 1;
        self.calendar.insert(Event { time: at, id, payload });
        id
    }

    /// Schedules `payload` after a delay from the current time.
    pub fn schedule_in(&mut self, delay: Duration, payload: E) -> EventId {
        let at = self.now + delay;
        self.schedule_at(at, payload)
    }

    /// Schedules `payload` at the current time, after all events already
    /// scheduled for this instant.
    pub fn schedule_now(&mut self, payload: E) -> EventId {
        let now = self.now;
        self.schedule_at(now, payload)
    }

    /// Cancels a pending event. Returns `true` if the event had not yet
    /// fired or been cancelled.
    pub fn cancel(&mut self, id: EventId) -> bool {
        self.calendar.cancel(id)
    }

    /// Removes and returns the next event, advancing the clock to its time.
    /// Returns `None` when the calendar is empty.
    pub fn step(&mut self) -> Option<Event<E>> {
        let ev = self.calendar.pop()?;
        debug_assert!(ev.time >= self.now, "event calendar returned a past event");
        self.now = ev.time;
        self.processed += 1;
        Some(ev)
    }

    /// Like [`Self::step`], but refuses to advance past `horizon`: an event
    /// later than the horizon is left in the calendar, the clock is set to
    /// `horizon`, and `None` is returned.
    pub fn step_until(&mut self, horizon: SimTime) -> Option<Event<E>> {
        match self.calendar.peek_time() {
            Some(t) if t <= horizon => self.step(),
            _ => {
                if horizon > self.now {
                    self.now = horizon;
                }
                None
            }
        }
    }

    /// The time of the next pending event, if any.
    pub fn peek_time(&mut self) -> Option<SimTime> {
        self.calendar.peek_time()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[derive(Debug, PartialEq)]
    enum Ev {
        A,
        B,
    }

    #[test]
    fn clock_starts_at_zero() {
        let sim: Simulation<Ev> = Simulation::new();
        assert_eq!(sim.now(), SimTime::ZERO);
        assert_eq!(sim.events_pending(), 0);
    }

    #[test]
    fn step_advances_clock_in_order() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::new(5.0), Ev::B);
        sim.schedule_at(SimTime::new(2.0), Ev::A);
        let e1 = sim.step().expect("pending event");
        assert_eq!(e1.payload, Ev::A);
        assert_eq!(sim.now(), SimTime::new(2.0));
        let e2 = sim.step().expect("pending event");
        assert_eq!(e2.payload, Ev::B);
        assert_eq!(sim.now(), SimTime::new(5.0));
        assert!(sim.step().is_none());
        assert_eq!(sim.events_processed(), 2);
    }

    #[test]
    fn schedule_in_is_relative() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::new(3.0), Ev::A);
        sim.step();
        sim.schedule_in(Duration::new(2.0), Ev::B);
        let e = sim.step().expect("pending event");
        assert_eq!(e.time, SimTime::new(5.0));
    }

    #[test]
    fn same_time_events_fifo() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::new(1.0), 0u32);
        sim.schedule_at(SimTime::new(1.0), 1u32);
        sim.schedule_now(2u32); // at t=0, fires first
        let order: Vec<u32> = std::iter::from_fn(|| sim.step().map(|e| e.payload)).collect();
        assert_eq!(order, vec![2, 0, 1]);
    }

    #[test]
    fn cancellation() {
        let mut sim = Simulation::new();
        let id = sim.schedule_at(SimTime::new(1.0), Ev::A);
        sim.schedule_at(SimTime::new(2.0), Ev::B);
        assert!(sim.cancel(id));
        assert!(!sim.cancel(id));
        assert_eq!(sim.events_pending(), 1);
        assert_eq!(sim.step().map(|e| e.payload), Some(Ev::B));
    }

    #[test]
    #[should_panic(expected = "past")]
    fn scheduling_into_the_past_panics() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::new(5.0), Ev::A);
        sim.step();
        sim.schedule_at(SimTime::new(1.0), Ev::B);
    }

    #[test]
    fn step_until_respects_horizon() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::new(10.0), Ev::A);
        assert!(sim.step_until(SimTime::new(5.0)).is_none());
        assert_eq!(sim.now(), SimTime::new(5.0));
        assert_eq!(sim.events_pending(), 1);
        let e = sim.step_until(SimTime::new(20.0)).expect("event within horizon");
        assert_eq!(e.payload, Ev::A);
        assert_eq!(sim.now(), SimTime::new(10.0));
    }

    #[test]
    fn peek_does_not_advance() {
        let mut sim = Simulation::new();
        sim.schedule_at(SimTime::new(4.0), Ev::A);
        assert_eq!(sim.peek_time(), Some(SimTime::new(4.0)));
        assert_eq!(sim.now(), SimTime::ZERO);
    }

    #[test]
    fn works_with_calendar_queue() {
        use crate::calendar::CalendarQueue;
        let mut sim: Simulation<u32, CalendarQueue<u32>> =
            Simulation::with_calendar(CalendarQueue::new());
        for i in (0..100u32).rev() {
            sim.schedule_at(SimTime::new(f64::from(i)), i);
        }
        let order: Vec<u32> = std::iter::from_fn(|| sim.step().map(|e| e.payload)).collect();
        assert_eq!(order, (0..100).collect::<Vec<_>>());
    }
}
