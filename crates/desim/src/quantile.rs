//! Streaming quantile estimation with the P² algorithm (Jain &
//! Chlamtac, 1985).
//!
//! Response-time *distributions*, not just means, decide whether a
//! scheduling policy is acceptable; P² estimates any quantile in O(1)
//! space without storing observations, which keeps million-job runs
//! cheap.

/// A streaming estimator of one quantile.
///
/// ```
/// use desim::P2Quantile;
/// let mut p95 = P2Quantile::new(0.95);
/// for i in 1..=1000 {
///     p95.add(f64::from(i));
/// }
/// let q = p95.estimate();
/// assert!((q - 950.0).abs() < 20.0, "q = {q}");
/// ```
#[derive(Clone, Debug)]
pub struct P2Quantile {
    p: f64,
    /// Marker heights (estimated quantile values).
    q: [f64; 5],
    /// Marker positions (1-based observation ranks).
    n: [f64; 5],
    /// Desired marker positions.
    np: [f64; 5],
    /// Position increments per observation.
    dn: [f64; 5],
    count: u64,
    /// The first five observations, collected before the markers start.
    init: Vec<f64>,
}

impl P2Quantile {
    /// Creates an estimator for the `p`-quantile (e.g. 0.5, 0.95).
    ///
    /// # Panics
    /// Panics unless `0 < p < 1`.
    pub fn new(p: f64) -> Self {
        assert!(p > 0.0 && p < 1.0, "quantile must be in (0, 1), got {p}");
        P2Quantile {
            p,
            q: [0.0; 5],
            n: [1.0, 2.0, 3.0, 4.0, 5.0],
            np: [1.0, 1.0 + 2.0 * p, 1.0 + 4.0 * p, 3.0 + 2.0 * p, 5.0],
            dn: [0.0, p / 2.0, p, (1.0 + p) / 2.0, 1.0],
            count: 0,
            init: Vec::with_capacity(5),
        }
    }

    /// The quantile this estimator tracks.
    pub fn p(&self) -> f64 {
        self.p
    }

    /// Number of observations consumed.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// Adds one observation.
    pub fn add(&mut self, x: f64) {
        debug_assert!(x.is_finite());
        self.count += 1;
        if self.init.len() < 5 {
            self.init.push(x);
            if self.init.len() == 5 {
                self.init.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
                for (qi, &v) in self.q.iter_mut().zip(&self.init) {
                    *qi = v;
                }
            }
            return;
        }

        // Find the cell k with q[k] <= x < q[k+1], adjusting extremes.
        // The chained comparison handles tied markers (q[i] == q[i+1]
        // makes a cell empty) without a fall-through default: an earlier
        // version scanned for `q[i] <= x < q[i+1]` and silently fell back
        // to cell 0 when no cell matched.
        let k = if x < self.q[0] {
            self.q[0] = x;
            0
        } else if x >= self.q[4] {
            self.q[4] = x;
            3
        } else if x < self.q[1] {
            0
        } else if x < self.q[2] {
            1
        } else if x < self.q[3] {
            2
        } else {
            3
        };

        for i in (k + 1)..5 {
            self.n[i] += 1.0;
        }
        for i in 0..5 {
            self.np[i] += self.dn[i];
        }

        // Adjust the three middle markers with parabolic interpolation.
        for i in 1..4 {
            let d = self.np[i] - self.n[i];
            if (d >= 1.0 && self.n[i + 1] - self.n[i] > 1.0)
                || (d <= -1.0 && self.n[i - 1] - self.n[i] < -1.0)
            {
                let d = d.signum();
                let qp = self.parabolic(i, d);
                self.q[i] =
                    if self.q[i - 1] < qp && qp < self.q[i + 1] { qp } else { self.linear(i, d) };
                self.n[i] += d;
            }
        }
    }

    fn parabolic(&self, i: usize, d: f64) -> f64 {
        let (q, n) = (&self.q, &self.n);
        q[i] + d / (n[i + 1] - n[i - 1])
            * ((n[i] - n[i - 1] + d) * (q[i + 1] - q[i]) / (n[i + 1] - n[i])
                + (n[i + 1] - n[i] - d) * (q[i] - q[i - 1]) / (n[i] - n[i - 1]))
    }

    fn linear(&self, i: usize, d: f64) -> f64 {
        let j = if d > 0.0 { i + 1 } else { i - 1 };
        self.q[i] + d * (self.q[j] - self.q[i]) / (self.n[j] - self.n[i])
    }

    /// The current quantile estimate. With fewer than five observations,
    /// falls back to the empirical quantile of what has been seen.
    pub fn estimate(&self) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        if self.init.len() < 5 {
            let mut v = self.init.clone();
            v.sort_by(|a, b| a.partial_cmp(b).expect("finite observations"));
            let idx = ((v.len() as f64 - 1.0) * self.p).round() as usize;
            return v[idx];
        }
        self.q[2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStream;

    #[test]
    fn median_of_uniform_is_half() {
        let mut est = P2Quantile::new(0.5);
        let mut rng = RngStream::new(3);
        for _ in 0..100_000 {
            est.add(rng.uniform());
        }
        let m = est.estimate();
        assert!((m - 0.5).abs() < 0.01, "median {m}");
        assert_eq!(est.count(), 100_000);
        assert_eq!(est.p(), 0.5);
    }

    #[test]
    fn p95_of_uniform() {
        let mut est = P2Quantile::new(0.95);
        let mut rng = RngStream::new(5);
        for _ in 0..100_000 {
            est.add(rng.uniform());
        }
        let q = est.estimate();
        assert!((q - 0.95).abs() < 0.01, "p95 {q}");
    }

    #[test]
    fn p95_of_exponential() {
        // Exact 95th percentile of Exp(mean=100): -100 ln(0.05) ≈ 299.57.
        let mut est = P2Quantile::new(0.95);
        let mut rng = RngStream::new(7);
        for _ in 0..200_000 {
            est.add(-100.0 * rng.uniform_pos().ln());
        }
        let q = est.estimate();
        let exact = -100.0 * 0.05f64.ln();
        assert!((q - exact).abs() / exact < 0.03, "p95 {q} vs {exact}");
    }

    #[test]
    fn few_observations_fall_back() {
        let mut est = P2Quantile::new(0.5);
        assert_eq!(est.estimate(), 0.0);
        est.add(10.0);
        assert_eq!(est.estimate(), 10.0);
        est.add(20.0);
        est.add(30.0);
        assert_eq!(est.estimate(), 20.0, "empirical median of three");
    }

    #[test]
    fn sorted_and_reverse_inputs_agree() {
        let mut a = P2Quantile::new(0.9);
        let mut b = P2Quantile::new(0.9);
        let xs: Vec<f64> = (0..10_000).map(f64::from).collect();
        for &x in &xs {
            a.add(x);
        }
        for &x in xs.iter().rev() {
            b.add(x);
        }
        let exact = 0.9 * 9_999.0;
        assert!((a.estimate() - exact).abs() / exact < 0.02, "sorted {}", a.estimate());
        assert!((b.estimate() - exact).abs() / exact < 0.02, "reversed {}", b.estimate());
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0, 1)")]
    fn invalid_p_rejected() {
        P2Quantile::new(1.0);
    }

    /// Exact empirical `p`-quantile by sorting (nearest-rank style, the
    /// same convention as the small-sample fallback).
    fn exact_quantile(xs: &[f64], p: f64) -> f64 {
        let mut v = xs.to_vec();
        v.sort_by(|a, b| a.partial_cmp(b).expect("finite"));
        v[((v.len() as f64 - 1.0) * p).round() as usize]
    }

    #[test]
    fn constant_series_is_exact() {
        // Every marker collapses onto the constant; the estimate must be
        // exact for any p, with no drift from empty-cell mishandling.
        for p in [0.1, 0.5, 0.9, 0.99] {
            let mut est = P2Quantile::new(p);
            for _ in 0..10_000 {
                est.add(42.0);
            }
            assert_eq!(est.estimate(), 42.0, "p = {p}");
        }
    }

    #[test]
    fn heavily_tied_series_tracks_exact_quantiles() {
        // A three-point distribution: almost every observation ties with
        // a marker, the regime where the cell search degenerates.
        let mut rng = RngStream::new(11);
        let xs: Vec<f64> = (0..50_000)
            .map(|_| {
                let u = rng.uniform();
                if u < 0.5 {
                    1.0
                } else if u < 0.8 {
                    2.0
                } else {
                    3.0
                }
            })
            .collect();
        for p in [0.25, 0.5, 0.75, 0.9] {
            let mut est = P2Quantile::new(p);
            for &x in &xs {
                est.add(x);
            }
            let exact = exact_quantile(&xs, p);
            // On an atomic distribution P² interpolates between atoms;
            // accept the estimate within one atom of the exact value.
            assert!(
                (est.estimate() - exact).abs() <= 1.0,
                "p = {p}: estimate {} vs exact {exact}",
                est.estimate()
            );
        }
    }

    #[test]
    fn mixed_ties_and_spread_stay_close_to_exact() {
        // Half the mass is one tied atom inside a continuous range: the
        // markers straddle the atom so some cells are empty while others
        // are wide. Property: within a few percent of the exact quantile
        // across seeds and quantiles.
        for seed in [1u64, 2, 3, 4, 5] {
            let mut rng = RngStream::new(seed);
            let xs: Vec<f64> = (0..40_000)
                .map(|_| if rng.uniform() < 0.5 { 50.0 } else { 100.0 * rng.uniform() })
                .collect();
            for p in [0.5, 0.9, 0.95] {
                let mut est = P2Quantile::new(p);
                for &x in &xs {
                    est.add(x);
                }
                let exact = exact_quantile(&xs, p);
                assert!(
                    (est.estimate() - exact).abs() <= 0.05 * exact.abs().max(1.0),
                    "seed {seed} p {p}: estimate {} vs exact {exact}",
                    est.estimate()
                );
            }
        }
    }

    #[test]
    fn deterministic_step_series_tracks_exact_quantiles() {
        // A repeating 0,0,0,10 pattern: deterministic, heavily tied at
        // the bottom. The p90 lies on the upper atom.
        let xs: Vec<f64> = (0..20_000).map(|i| if i % 4 == 3 { 10.0 } else { 0.0 }).collect();
        let mut est = P2Quantile::new(0.9);
        for &x in &xs {
            est.add(x);
        }
        let q = est.estimate();
        assert!((0.0..=10.0).contains(&q), "p90 within the support: {q}");
        assert!(q >= 5.0, "p90 of a 75/25 split at 0/10 lies in the upper half: {q}");
    }
}
