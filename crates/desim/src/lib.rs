//! # desim — a deterministic discrete-event simulation engine
//!
//! This crate is the simulation substrate for the `coalloc` workspace, the
//! role played by the commercial CSIM-18 package in Bucur & Epema's HPDC'03
//! study of processor co-allocation. It provides:
//!
//! * a simulated clock and a future-event list ([`Simulation`]), with
//!   pluggable calendars ([`HeapCalendar`], [`CalendarQueue`]);
//! * reproducible, independently seedable random streams ([`RngStream`]);
//! * the variate generators a trace-driven queueing study needs
//!   ([`Exponential`], [`EmpiricalDiscrete`], [`EmpiricalContinuous`], …);
//! * output analysis: streaming moments, time-weighted averages,
//!   histograms, and batch-means confidence intervals ([`stats`]);
//! * counted resources with FIFO queueing ([`Resource`]), the CSIM
//!   "facility" analogue, used for analytic validation (M/M/c).
//!
//! Determinism is a design rule: every source of randomness is an explicit
//! [`RngStream`], event ties break FIFO by schedule order, and no global
//! state exists, so a run is a pure function of its configuration and seed.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod calendar;
pub mod dist;
pub mod engine;
pub mod event;
pub mod ks;
pub mod quantile;
pub mod queueing;
pub mod record;
pub mod resource;
pub mod rng;
pub mod stats;
pub mod stopping;
pub mod time;
pub mod warmup;

pub use calendar::{CalendarKind, CalendarProbes, CalendarQueue, EventCalendar, HeapCalendar};
pub use dist::{
    Deterministic, EmpiricalContinuous, EmpiricalDiscrete, Erlang, Exponential, HyperExponential,
    Uniform, Variate,
};
pub use engine::Simulation;
pub use event::{Event, EventId};
pub use ks::{ks_critical, ks_same_distribution, ks_statistic};
pub use quantile::P2Quantile;
pub use record::RingLog;
pub use resource::{GrantDiscipline, Pending, Resource};
pub use rng::RngStream;
pub use stats::{BatchMeans, Estimate, Histogram, TimeWeighted, Welford};
pub use stopping::{Decision, StopReason, StoppingRule};
pub use time::{Duration, SimTime};
pub use warmup::{autocorrelation, mser, mser5, MserResult};
