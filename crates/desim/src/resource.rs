//! Counted resources — the analogue of CSIM's "facilities".
//!
//! A [`Resource`] holds a fixed number of identical units (e.g. the
//! processors of one cluster). Requests either succeed immediately or are
//! queued FIFO; on release, the head of the queue is re-examined. Under the
//! default [`GrantDiscipline::FcfsBlocking`] the queue head blocks all
//! later requests (the discipline the paper's schedulers use); the
//! alternative [`GrantDiscipline::Greedy`] skips over requests that do not
//! fit, a simple form of backfilling kept for ablation studies.

use crate::stats::TimeWeighted;
use crate::time::SimTime;

/// How queued requests are granted when capacity frees up.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum GrantDiscipline {
    /// Strict FCFS: if the head request does not fit, nothing is granted.
    FcfsBlocking,
    /// Grant any queued request that fits, in FIFO order (backfilling).
    Greedy,
}

/// A pending request: an opaque caller token plus the requested unit count.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Pending {
    /// Caller-chosen identifier returned when the request is granted.
    pub token: u64,
    /// Requested number of units.
    pub units: u32,
}

/// A pool of identical capacity units with a FIFO wait queue and
/// time-weighted busy statistics.
#[derive(Debug)]
pub struct Resource {
    capacity: u32,
    in_use: u32,
    queue: std::collections::VecDeque<Pending>,
    discipline: GrantDiscipline,
    busy: TimeWeighted,
}

impl Resource {
    /// Creates a resource with `capacity` units, tracking statistics from
    /// time `start`.
    pub fn new(capacity: u32, start: SimTime) -> Self {
        Resource {
            capacity,
            in_use: 0,
            queue: std::collections::VecDeque::new(),
            discipline: GrantDiscipline::FcfsBlocking,
            busy: TimeWeighted::new(start, 0.0),
        }
    }

    /// Sets the grant discipline (default FCFS-blocking).
    pub fn with_discipline(mut self, d: GrantDiscipline) -> Self {
        self.discipline = d;
        self
    }

    /// Total units.
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Units currently held.
    pub fn in_use(&self) -> u32 {
        self.in_use
    }

    /// Units currently free.
    pub fn idle(&self) -> u32 {
        self.capacity - self.in_use
    }

    /// Number of queued requests.
    pub fn queue_len(&self) -> usize {
        self.queue.len()
    }

    /// Attempts to take `units` immediately, bypassing the queue. Fails if
    /// the queue is non-empty under FCFS-blocking (to preserve ordering) or
    /// if not enough units are free.
    ///
    /// # Panics
    /// Panics if `units` exceeds the total capacity (the request could
    /// never be satisfied).
    pub fn try_acquire(&mut self, now: SimTime, units: u32) -> bool {
        assert!(units <= self.capacity, "request for {units} exceeds capacity {}", self.capacity);
        if self.discipline == GrantDiscipline::FcfsBlocking && !self.queue.is_empty() {
            return false;
        }
        if units <= self.idle() {
            self.busy.update(now, f64::from(self.in_use + units));
            self.in_use += units;
            true
        } else {
            false
        }
    }

    /// Queues a request; it will be granted by a later [`Self::release`].
    pub fn enqueue(&mut self, token: u64, units: u32) {
        assert!(units <= self.capacity, "request for {units} exceeds capacity {}", self.capacity);
        self.queue.push_back(Pending { token, units });
    }

    /// Returns `units` to the pool and grants queued requests according to
    /// the discipline. Returns the tokens of requests granted now.
    ///
    /// # Panics
    /// Panics if more units are released than are in use.
    pub fn release(&mut self, now: SimTime, units: u32) -> Vec<u64> {
        assert!(units <= self.in_use, "releasing {units} but only {} in use", self.in_use);
        self.in_use -= units;
        let granted = self.grant(now);
        self.busy.update(now, f64::from(self.in_use));
        granted
    }

    fn grant(&mut self, _now: SimTime) -> Vec<u64> {
        let mut granted = Vec::new();
        match self.discipline {
            GrantDiscipline::FcfsBlocking => {
                while let Some(&head) = self.queue.front() {
                    if head.units <= self.idle() {
                        self.in_use += head.units;
                        self.queue.pop_front();
                        granted.push(head.token);
                    } else {
                        break;
                    }
                }
            }
            GrantDiscipline::Greedy => {
                let mut i = 0;
                while i < self.queue.len() {
                    if self.queue[i].units <= self.idle() {
                        let p = self.queue.remove(i).expect("index checked");
                        self.in_use += p.units;
                        granted.push(p.token);
                    } else {
                        i += 1;
                    }
                }
            }
        }
        granted
    }

    /// Time-average number of busy units over the observation window.
    pub fn average_busy(&self, now: SimTime) -> f64 {
        self.busy.average(now)
    }

    /// Time-average utilization (busy fraction of capacity).
    pub fn utilization(&self, now: SimTime) -> f64 {
        if self.capacity == 0 {
            0.0
        } else {
            self.average_busy(now) / f64::from(self.capacity)
        }
    }

    /// Restarts the statistics window at `now` (discard warm-up).
    pub fn reset_stats(&mut self, now: SimTime) {
        let v = f64::from(self.in_use);
        self.busy.update(now, v);
        self.busy.reset_window(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(s: f64) -> SimTime {
        SimTime::new(s)
    }

    #[test]
    fn acquire_and_release() {
        let mut r = Resource::new(10, SimTime::ZERO);
        assert!(r.try_acquire(t(0.0), 6));
        assert_eq!(r.idle(), 4);
        assert!(!r.try_acquire(t(1.0), 5));
        assert!(r.try_acquire(t(1.0), 4));
        assert_eq!(r.idle(), 0);
        let granted = r.release(t(2.0), 6);
        assert!(granted.is_empty());
        assert_eq!(r.idle(), 6);
    }

    #[test]
    #[should_panic(expected = "exceeds capacity")]
    fn oversized_request_panics() {
        let mut r = Resource::new(4, SimTime::ZERO);
        r.try_acquire(t(0.0), 5);
    }

    #[test]
    #[should_panic(expected = "only")]
    fn over_release_panics() {
        let mut r = Resource::new(4, SimTime::ZERO);
        r.try_acquire(t(0.0), 2);
        r.release(t(1.0), 3);
    }

    #[test]
    fn fcfs_blocking_head_of_line() {
        let mut r = Resource::new(10, SimTime::ZERO);
        assert!(r.try_acquire(t(0.0), 8));
        r.enqueue(1, 6); // does not fit
        r.enqueue(2, 2); // would fit but must wait behind token 1
        assert!(!r.try_acquire(t(0.5), 1), "queue present blocks direct acquire");
        let granted = r.release(t(1.0), 8);
        // 10 free: token 1 (6 units) fits, then token 2 (2 units) fits.
        assert_eq!(granted, vec![1, 2]);
        assert_eq!(r.in_use(), 8);
        assert_eq!(r.queue_len(), 0);
    }

    #[test]
    fn fcfs_blocking_stops_at_head() {
        let mut r = Resource::new(10, SimTime::ZERO);
        assert!(r.try_acquire(t(0.0), 9));
        r.enqueue(1, 8);
        r.enqueue(2, 1);
        let granted = r.release(t(1.0), 2); // 3 free: head (8) does not fit
        assert!(granted.is_empty());
        assert_eq!(r.queue_len(), 2);
    }

    #[test]
    fn greedy_skips_blocked_head() {
        let mut r = Resource::new(10, SimTime::ZERO).with_discipline(GrantDiscipline::Greedy);
        assert!(r.try_acquire(t(0.0), 9));
        r.enqueue(1, 8);
        r.enqueue(2, 1);
        let granted = r.release(t(1.0), 2); // 3 free: grants token 2 past token 1
        assert_eq!(granted, vec![2]);
        assert_eq!(r.queue_len(), 1);
    }

    #[test]
    fn utilization_accounting() {
        let mut r = Resource::new(4, SimTime::ZERO);
        assert!(r.try_acquire(t(0.0), 4)); // busy 4 over [0, 10)
        r.release(t(10.0), 4); // busy 0 over [10, 20)
        assert!((r.utilization(t(20.0)) - 0.5).abs() < 1e-12);
        assert!((r.average_busy(t(20.0)) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn reset_stats_discards_history() {
        let mut r = Resource::new(2, SimTime::ZERO);
        assert!(r.try_acquire(t(0.0), 2));
        r.reset_stats(t(10.0));
        assert!((r.utilization(t(20.0)) - 1.0).abs() < 1e-12);
    }
}
