//! Warm-up (initial-transient) detection for steady-state simulation.
//!
//! The co-allocation experiments discard a fixed number of departures as
//! warm-up; this module provides the tools to *check* that choice rather
//! than guess it: the MSER-5 truncation rule (White 1997) — the most
//! widely recommended automatic method — and lag-k autocorrelation of
//! the output series (to judge batch-size adequacy for batch means).

/// The result of an MSER analysis.
#[derive(Clone, Copy, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct MserResult {
    /// Number of *raw observations* to truncate (a multiple of the batch
    /// size used in the scan).
    pub truncate: usize,
    /// The MSER statistic (half-width proxy) at the chosen truncation.
    pub statistic: f64,
}

/// MSER-m: batch the series into means of `m` observations, then choose
/// the truncation point d* minimizing the standard error of the mean of
/// the remaining batches. Returns the number of raw observations to
/// discard. MSER-5 (m = 5) is the standard recommendation.
///
/// The scan is restricted to the first half of the batched series, as
/// the literature prescribes (a truncation point in the second half
/// means the run is too short to judge).
///
/// # Panics
/// Panics if `m == 0` or the series holds fewer than `2 m` observations.
pub fn mser(series: &[f64], m: usize) -> MserResult {
    assert!(m > 0, "batch size must be positive");
    assert!(series.len() >= 2 * m, "series too short for MSER-{m}");
    let batches: Vec<f64> =
        series.chunks_exact(m).map(|c| c.iter().sum::<f64>() / m as f64).collect();
    let n = batches.len();
    let half = n / 2;
    // Suffix sums s1[d] = Σ_{i≥d} b_i and s2[d] = Σ_{i≥d} b_i² give the
    // truncated mean and sum of squared deviations in O(1) per candidate
    // (Σ(b−mean)² = Σb² − (Σb)²/k), so the whole scan is O(n).
    let mut s1 = vec![0.0; n + 1];
    let mut s2 = vec![0.0; n + 1];
    for d in (0..n).rev() {
        s1[d] = s1[d + 1] + batches[d];
        s2[d] = s2[d + 1] + batches[d] * batches[d];
    }
    let mut best = MserResult { truncate: 0, statistic: f64::INFINITY };
    for d in 0..=half {
        let rest = n - d;
        if rest < 2 {
            break;
        }
        let k = rest as f64;
        // Clamp against floating-point cancellation: the difference of
        // two large near-equal sums can dip just below zero.
        let ssd = (s2[d] - s1[d] * s1[d] / k).max(0.0);
        // White's MSER statistic is SSD/(n−d)², the squared standard
        // error of the truncated mean; minimizing its square root is
        // equivalent and keeps the statistic a half-width proxy. The old
        // code divided by an extra √k (∝ var/k³), which over-rewarded
        // long suffixes and systematically under-truncated.
        let stat = ssd.sqrt() / k;
        if stat < best.statistic {
            best = MserResult { truncate: d * m, statistic: stat };
        }
    }
    best
}

/// MSER-5, the standard variant.
pub fn mser5(series: &[f64]) -> MserResult {
    mser(series, 5)
}

/// Lag-`k` sample autocorrelation of a series. Near-zero autocorrelation
/// at the batch spacing justifies treating batch means as independent.
///
/// # Panics
/// Panics unless `0 < k < series.len()`.
pub fn autocorrelation(series: &[f64], k: usize) -> f64 {
    assert!(k > 0 && k < series.len(), "lag must be in 1..len");
    let n = series.len();
    let mean = series.iter().sum::<f64>() / n as f64;
    let var: f64 = series.iter().map(|x| (x - mean) * (x - mean)).sum();
    if var == 0.0 {
        return 0.0;
    }
    let cov: f64 =
        series[..n - k].iter().zip(&series[k..]).map(|(a, b)| (a - mean) * (b - mean)).sum();
    cov / var
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::RngStream;

    /// A series with an obvious transient: starts high, settles to noise
    /// around zero.
    fn transient_series(warm: usize, total: usize, seed: u64) -> Vec<f64> {
        let mut rng = RngStream::new(seed);
        (0..total)
            .map(|i| {
                let bias = if i < warm { 50.0 * (1.0 - i as f64 / warm as f64) } else { 0.0 };
                bias + rng.uniform() - 0.5
            })
            .collect()
    }

    #[test]
    fn mser_finds_the_transient() {
        let series = transient_series(200, 2_000, 1);
        let r = mser5(&series);
        assert!(
            (150..=400).contains(&r.truncate),
            "truncation {} should bracket the 200-observation transient",
            r.truncate
        );
    }

    #[test]
    fn mser_on_stationary_series_truncates_little() {
        let mut rng = RngStream::new(2);
        let series: Vec<f64> = (0..2_000).map(|_| rng.uniform()).collect();
        let r = mser5(&series);
        assert!(r.truncate <= 600, "stationary series truncated at {}", r.truncate);
    }

    #[test]
    fn mser_statistic_is_finite() {
        let series = transient_series(50, 400, 3);
        let r = mser(&series, 5);
        assert!(r.statistic.is_finite() && r.statistic > 0.0);
    }

    #[test]
    #[should_panic(expected = "too short")]
    fn mser_rejects_tiny_series() {
        mser(&[1.0, 2.0], 5);
    }

    #[test]
    fn autocorrelation_of_iid_is_near_zero() {
        let mut rng = RngStream::new(4);
        let series: Vec<f64> = (0..20_000).map(|_| rng.uniform()).collect();
        let r1 = autocorrelation(&series, 1);
        assert!(r1.abs() < 0.03, "lag-1 autocorr {r1}");
    }

    #[test]
    fn autocorrelation_of_ar1_is_positive() {
        // x[t] = 0.8 x[t-1] + noise: lag-1 autocorrelation ≈ 0.8.
        let mut rng = RngStream::new(5);
        let mut x = 0.0;
        let series: Vec<f64> = (0..50_000)
            .map(|_| {
                x = 0.8 * x + (rng.uniform() - 0.5);
                x
            })
            .collect();
        let r1 = autocorrelation(&series, 1);
        assert!((r1 - 0.8).abs() < 0.05, "lag-1 autocorr {r1}");
        let r10 = autocorrelation(&series, 10);
        assert!(r10 < r1, "autocorrelation decays with lag");
    }

    #[test]
    fn autocorrelation_of_constant_is_zero() {
        let series = vec![3.0; 100];
        assert_eq!(autocorrelation(&series, 5), 0.0);
    }
}
