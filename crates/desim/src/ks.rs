//! Empirical-distribution comparison: the two-sample Kolmogorov–Smirnov
//! statistic and critical values.
//!
//! Used to verify that resampled distributions match their sources (the
//! synthetic log vs its pmf; trace replay vs stochastic sampling) with a
//! principled tolerance instead of ad-hoc bin comparisons.

/// The two-sample Kolmogorov–Smirnov statistic: the largest absolute
/// difference between the two empirical CDFs.
///
/// # Panics
/// Panics if either sample is empty or contains NaN.
pub fn ks_statistic(a: &[f64], b: &[f64]) -> f64 {
    assert!(!a.is_empty() && !b.is_empty(), "KS needs non-empty samples");
    let mut a: Vec<f64> = a.to_vec();
    let mut b: Vec<f64> = b.to_vec();
    a.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    b.sort_by(|x, y| x.partial_cmp(y).expect("NaN in sample"));
    let (na, nb) = (a.len() as f64, b.len() as f64);
    let (mut i, mut j) = (0usize, 0usize);
    let mut d: f64 = 0.0;
    while i < a.len() && j < b.len() {
        let x = a[i].min(b[j]);
        while i < a.len() && a[i] <= x {
            i += 1;
        }
        while j < b.len() && b[j] <= x {
            j += 1;
        }
        d = d.max((i as f64 / na - j as f64 / nb).abs());
    }
    d
}

/// The approximate critical KS distance at significance `alpha` for two
/// samples of sizes `n` and `m` (large-sample approximation
/// `c(α)·√((n+m)/(n·m))` with `c(α) = √(−ln(α/2)/2)`).
pub fn ks_critical(n: usize, m: usize, alpha: f64) -> f64 {
    assert!(n > 0 && m > 0);
    assert!(alpha > 0.0 && alpha < 1.0);
    let c = (-(alpha / 2.0).ln() / 2.0).sqrt();
    c * (((n + m) as f64) / ((n * m) as f64)).sqrt()
}

/// Convenience: whether two samples are consistent with the same
/// distribution at significance `alpha` (fails to reject).
pub fn ks_same_distribution(a: &[f64], b: &[f64], alpha: f64) -> bool {
    ks_statistic(a, b) <= ks_critical(a.len(), b.len(), alpha)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::dist::{Exponential, Variate};
    use crate::rng::RngStream;

    #[test]
    fn identical_samples_have_zero_distance() {
        let a = [1.0, 2.0, 3.0, 4.0];
        assert_eq!(ks_statistic(&a, &a), 0.0);
    }

    #[test]
    fn disjoint_samples_have_distance_one() {
        let a = [1.0, 2.0, 3.0];
        let b = [10.0, 11.0];
        assert!((ks_statistic(&a, &b) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn same_distribution_passes() {
        let d = Exponential::with_mean(5.0);
        let mut r1 = RngStream::new(1);
        let mut r2 = RngStream::new(2);
        let a: Vec<f64> = (0..5_000).map(|_| d.sample(&mut r1)).collect();
        let b: Vec<f64> = (0..5_000).map(|_| d.sample(&mut r2)).collect();
        assert!(ks_same_distribution(&a, &b, 0.01), "d = {}", ks_statistic(&a, &b));
    }

    #[test]
    fn different_distributions_fail() {
        let d1 = Exponential::with_mean(5.0);
        let d2 = Exponential::with_mean(7.0);
        let mut r = RngStream::new(3);
        let a: Vec<f64> = (0..5_000).map(|_| d1.sample(&mut r)).collect();
        let b: Vec<f64> = (0..5_000).map(|_| d2.sample(&mut r)).collect();
        assert!(!ks_same_distribution(&a, &b, 0.01), "d = {}", ks_statistic(&a, &b));
    }

    #[test]
    fn critical_value_shrinks_with_sample_size() {
        assert!(ks_critical(100, 100, 0.05) > ks_critical(10_000, 10_000, 0.05));
        // Known value: c(0.05) ≈ 1.358; equal n: c·sqrt(2/n).
        let crit = ks_critical(1_000, 1_000, 0.05);
        assert!((crit - 1.3581 * (2.0f64 / 1000.0).sqrt()).abs() < 1e-3);
    }

    #[test]
    fn uneven_sample_sizes() {
        let d = Exponential::with_mean(1.0);
        let mut r = RngStream::new(4);
        let a: Vec<f64> = (0..200).map(|_| d.sample(&mut r)).collect();
        let b: Vec<f64> = (0..20_000).map(|_| d.sample(&mut r)).collect();
        assert!(ks_same_distribution(&a, &b, 0.01));
    }
}
