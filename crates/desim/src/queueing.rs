//! Closed-form queueing results used to validate the simulator.
//!
//! A discrete-event engine earns trust by reproducing what theory
//! already knows. This module provides the classic single-station
//! formulas (M/M/1, M/M/c via Erlang-C, M/D/1 via Pollaczek–Khinchine,
//! M/G/1, Erlang-B loss) that the validation tests and examples compare
//! against.

/// Exact mean response time of an M/M/1 queue.
///
/// # Panics
/// Panics unless `lambda < mu` (the queue must be stable).
pub fn mm1_mean_response(lambda: f64, mu: f64) -> f64 {
    assert!(lambda > 0.0 && mu > 0.0, "rates must be positive");
    assert!(lambda < mu, "M/M/1 unstable: lambda {lambda} >= mu {mu}");
    1.0 / (mu - lambda)
}

/// Erlang-C: the probability that an arriving customer must wait in an
/// M/M/c queue with offered load `a = lambda/mu` Erlangs.
///
/// # Panics
/// Panics unless the queue is stable (`a < c`).
pub fn erlang_c(a: f64, c: u32) -> f64 {
    assert!(c > 0, "need at least one server");
    assert!(a > 0.0, "offered load must be positive");
    let rho = a / f64::from(c);
    assert!(rho < 1.0, "M/M/c unstable: a {a} >= c {c}");
    // Iterative computation avoids factorial overflow.
    let mut sum = 0.0;
    let mut term = 1.0;
    for k in 0..c {
        if k > 0 {
            term *= a / f64::from(k);
        }
        sum += term;
    }
    let top = term * a / f64::from(c) / (1.0 - rho);
    top / (sum + top)
}

/// Exact mean waiting time (in queue) of an M/M/c queue.
pub fn mmc_mean_wait(lambda: f64, mu: f64, c: u32) -> f64 {
    let a = lambda / mu;
    erlang_c(a, c) / (f64::from(c) * mu - lambda)
}

/// Exact mean response time (wait + service) of an M/M/c queue.
///
/// ```
/// // M/M/2, rho = 0.5: response = 4/3 of the service time.
/// let r = desim::queueing::mmc_mean_response(1.0, 1.0, 2);
/// assert!((r - 4.0 / 3.0).abs() < 1e-12);
/// ```
pub fn mmc_mean_response(lambda: f64, mu: f64, c: u32) -> f64 {
    mmc_mean_wait(lambda, mu, c) + 1.0 / mu
}

/// Pollaczek–Khinchine: mean waiting time of an M/G/1 queue with mean
/// service `es` and squared coefficient of variation `cv2`.
///
/// # Panics
/// Panics unless `lambda * es < 1`.
pub fn mg1_mean_wait(lambda: f64, es: f64, cv2: f64) -> f64 {
    assert!(lambda > 0.0 && es > 0.0 && cv2 >= 0.0);
    let rho = lambda * es;
    assert!(rho < 1.0, "M/G/1 unstable: rho {rho}");
    rho * es * (1.0 + cv2) / (2.0 * (1.0 - rho))
}

/// Exact mean response time of an M/D/1 queue (M/G/1 with cv² = 0).
pub fn md1_mean_response(lambda: f64, service: f64) -> f64 {
    mg1_mean_wait(lambda, service, 0.0) + service
}

/// Erlang-B: blocking probability of an M/M/c/c loss system with offered
/// load `a` Erlangs, computed by the stable recurrence.
pub fn erlang_b(a: f64, c: u32) -> f64 {
    assert!(a > 0.0, "offered load must be positive");
    let mut b = 1.0;
    for k in 1..=c {
        b = a * b / (f64::from(k) + a * b);
    }
    b
}

/// Mean number in system of an M/M/c queue (Little: L = λ·T).
pub fn mmc_mean_in_system(lambda: f64, mu: f64, c: u32) -> f64 {
    lambda * mmc_mean_response(lambda, mu, c)
}

/// Steady-state probabilities and blocking of an M/M/c/K queue (at most
/// `k` customers in the system, `k >= c`): returns the blocking
/// probability `P(N = k)`.
pub fn mmck_blocking(lambda: f64, mu: f64, c: u32, k: u32) -> f64 {
    assert!(c > 0 && k >= c, "need k >= c >= 1");
    assert!(lambda > 0.0 && mu > 0.0);
    let a = lambda / mu;
    let rho = a / f64::from(c);
    // Unnormalized probabilities p_n / p_0.
    let mut terms: Vec<f64> = Vec::with_capacity(k as usize + 1);
    let mut t = 1.0;
    terms.push(t);
    for n in 1..=k {
        t *= if n <= c { a / f64::from(n) } else { rho };
        terms.push(t);
    }
    let total: f64 = terms.iter().sum();
    terms[k as usize] / total
}

/// Effective throughput of an M/M/c/K queue (arrivals that are not
/// blocked).
pub fn mmck_throughput(lambda: f64, mu: f64, c: u32, k: u32) -> f64 {
    lambda * (1.0 - mmck_blocking(lambda, mu, c, k))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mm1_textbook_value() {
        // rho = 0.5, mu = 1: response = 1/(1-0.5) = 2.
        assert!((mm1_mean_response(0.5, 1.0) - 2.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "unstable")]
    fn mm1_unstable_panics() {
        mm1_mean_response(2.0, 1.0);
    }

    #[test]
    fn erlang_c_limits() {
        // c = 1: Erlang-C reduces to rho.
        for rho in [0.1, 0.5, 0.9] {
            assert!((erlang_c(rho, 1) - rho).abs() < 1e-12, "rho {rho}");
        }
        // Light load on many servers: essentially never wait.
        assert!(erlang_c(1.0, 32) < 1e-9);
        // Heavy load: waiting probability approaches 1 (exact value at
        // a = 31.5, c = 32 is 0.8975…).
        assert!((erlang_c(31.5, 32) - 0.8975387542108251).abs() < 1e-12);
        assert!(erlang_c(31.9, 32) > erlang_c(31.5, 32));
    }

    #[test]
    fn mmc_reduces_to_mm1() {
        let lambda = 0.7;
        let mu = 1.0;
        assert!((mmc_mean_response(lambda, mu, 1) - mm1_mean_response(lambda, mu)).abs() < 1e-12);
    }

    #[test]
    fn mmc_known_value() {
        // M/M/2 with lambda = 1, mu = 1 (rho = 0.5): Erlang-C = 1/3,
        // Wq = 1/3 / (2 - 1) = 1/3, response = 4/3.
        assert!((erlang_c(1.0, 2) - 1.0 / 3.0).abs() < 1e-12);
        assert!((mmc_mean_response(1.0, 1.0, 2) - 4.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn md1_wait_is_half_of_mm1() {
        let lambda = 0.6;
        let es = 1.0;
        let mm1_wait = mm1_mean_response(lambda, 1.0 / es) - es;
        let md1_wait = md1_mean_response(lambda, es) - es;
        assert!((md1_wait - 0.5 * mm1_wait).abs() < 1e-12);
    }

    #[test]
    fn mg1_interpolates() {
        // cv2 = 1 reproduces M/M/1's waiting time.
        let lambda = 0.5;
        let es = 1.0;
        let w = mg1_mean_wait(lambda, es, 1.0);
        assert!((w - (mm1_mean_response(lambda, 1.0) - 1.0)).abs() < 1e-12);
    }

    #[test]
    fn mmck_limits() {
        // K = c reduces to the Erlang-B loss system.
        for (a, c) in [(1.0f64, 1u32), (1.0, 2), (5.0, 8)] {
            let b = mmck_blocking(a, 1.0, c, c);
            assert!((b - erlang_b(a, c)).abs() < 1e-12, "a {a} c {c}");
        }
        // Large K approaches the infinite-buffer M/M/c (no blocking when
        // stable).
        assert!(mmck_blocking(0.5, 1.0, 1, 60) < 1e-12 + 0.5f64.powi(60) * 2.0);
        // Blocking decreases with buffer size.
        assert!(mmck_blocking(0.9, 1.0, 1, 5) > mmck_blocking(0.9, 1.0, 1, 20));
        // Throughput never exceeds the offered rate.
        assert!(mmck_throughput(2.0, 1.0, 1, 4) < 2.0);
    }

    #[test]
    fn mmc_mean_in_system_little() {
        // M/M/1, rho 0.5: L = rho/(1-rho) = 1.
        assert!((mmc_mean_in_system(0.5, 1.0, 1) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn erlang_b_textbook_value() {
        // a = 1 Erlang, c = 1: B = 1/2. c = 2: B = 1/5.
        assert!((erlang_b(1.0, 1) - 0.5).abs() < 1e-12);
        assert!((erlang_b(1.0, 2) - 0.2).abs() < 1e-12);
        // Blocking decreases with more servers.
        assert!(erlang_b(5.0, 10) < erlang_b(5.0, 6));
    }
}
