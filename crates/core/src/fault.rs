//! Cluster failure and repair processes (fault injection).
//!
//! The paper's multicluster motivation — wide-area systems whose
//! clusters come and go — is modelled by a per-run fault process that
//! injects `ClusterDown(k)` / `ClusterUp(k)` events into the
//! [`crate::Session`] event calendar. A down cluster's capacity drops
//! to a configured *remaining* processor count (0 for a full outage),
//! every running component on it is killed, and an [`InterruptPolicy`]
//! decides the victim job's fate.
//!
//! Two fault sources are supported:
//!
//! * [`FaultSpec::Exponential`] — a seeded, deterministic per-cluster
//!   failure/repair process: times to failure and repair are exponential
//!   with the given means, drawn from a dedicated `"faults"` RNG label
//!   (sub-streamed per cluster) so enabling faults never perturbs the
//!   arrival/size/service streams.
//! * [`FaultSpec::Trace`] — a scripted [`FaultTrace`] of explicit
//!   down/up events for exactly reproducible scenarios.
//!
//! With no fault spec configured the simulator is bit-identical to the
//! fault-free engine (golden logs and regression values stand).

use crate::system::SystemSpec;

/// What happens to a running job whose processors are killed by a
/// cluster failure.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum InterruptPolicy {
    /// Re-queue the victim at the *head* of its submit queue, preserving
    /// its FCFS age: no job that arrived later may start before it.
    #[default]
    RequeueFront,
    /// Re-queue the victim at the *tail* of its submit queue: it loses
    /// its age and waits behind everything already queued.
    RequeueBack,
    /// Drop the victim: it leaves the system without completing.
    Abort,
}

impl InterruptPolicy {
    /// Parses a policy name: `front`/`requeue-front`, `back`/
    /// `requeue-back`, or `abort`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "front" | "requeue-front" => Ok(InterruptPolicy::RequeueFront),
            "back" | "requeue-back" => Ok(InterruptPolicy::RequeueBack),
            "abort" => Ok(InterruptPolicy::Abort),
            other => Err(format!("unknown interrupt policy `{other}` (want front|back|abort)")),
        }
    }

    /// Stable lower-case label (also the JSONL `trigger` value of
    /// `job_interrupted` events).
    pub fn label(self) -> &'static str {
        match self {
            InterruptPolicy::RequeueFront => "requeue-front",
            InterruptPolicy::RequeueBack => "requeue-back",
            InterruptPolicy::Abort => "abort",
        }
    }
}

impl core::fmt::Display for InterruptPolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for InterruptPolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        InterruptPolicy::parse(s)
    }
}

/// How malleable jobs may change shape while running
/// ([`coalloc_workload::JobDisposition::Malleable`] only; rigid and
/// moldable jobs never resize).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum ResizePolicy {
    /// Shrink away from failed clusters *and* grow onto processors left
    /// idle by departures when the queue is empty.
    #[default]
    GrowAndShrink,
    /// Only shrink on failures; never grow.
    ShrinkOnly,
}

impl ResizePolicy {
    /// Parses a policy name: `grow-shrink`/`grow` or `shrink-only`/`shrink`.
    pub fn parse(s: &str) -> Result<Self, String> {
        match s {
            "grow-shrink" | "grow" => Ok(ResizePolicy::GrowAndShrink),
            "shrink-only" | "shrink" => Ok(ResizePolicy::ShrinkOnly),
            other => Err(format!("unknown resize policy `{other}` (want grow-shrink|shrink-only)")),
        }
    }

    /// Stable lower-case label.
    pub fn label(self) -> &'static str {
        match self {
            ResizePolicy::GrowAndShrink => "grow-shrink",
            ResizePolicy::ShrinkOnly => "shrink-only",
        }
    }
}

impl core::fmt::Display for ResizePolicy {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for ResizePolicy {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        ResizePolicy::parse(s)
    }
}

/// One scripted fault event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// The cluster fails, leaving `remaining` processors usable (0 for a
    /// full outage). All components running on the cluster are killed
    /// regardless of `remaining` — the machines rebooted.
    Down {
        /// Usable processors while the cluster is down.
        remaining: u32,
    },
    /// The cluster is repaired to full capacity.
    Up,
}

/// A scripted fault event: at time `at`, cluster `cluster` goes down
/// (to a remaining capacity) or comes back up.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct FaultEvent {
    /// Simulated time of the event (seconds).
    pub at: f64,
    /// The affected cluster index.
    pub cluster: usize,
    /// Down (with remaining capacity) or up.
    pub kind: FaultKind,
}

/// A validated script of fault events: times are non-negative and
/// non-decreasing, and per cluster the events alternate down → up,
/// starting with a down (clusters begin healthy).
#[derive(Clone, Debug, Default, PartialEq)]
pub struct FaultTrace {
    events: Vec<FaultEvent>,
}

impl FaultTrace {
    /// Builds a trace, validating ordering and per-cluster alternation.
    pub fn new(events: Vec<FaultEvent>) -> Result<Self, String> {
        let mut last = 0.0f64;
        // Tracks whether each cluster mentioned so far is currently down.
        let mut down: Vec<(usize, bool)> = Vec::new();
        for (i, ev) in events.iter().enumerate() {
            if !ev.at.is_finite() || ev.at < 0.0 {
                return Err(format!("event {i}: time {} is not a finite non-negative", ev.at));
            }
            if ev.at < last {
                return Err(format!("event {i}: time {} goes backwards (after {last})", ev.at));
            }
            last = ev.at;
            let state = match down.iter_mut().find(|(c, _)| *c == ev.cluster) {
                Some((_, s)) => s,
                None => {
                    down.push((ev.cluster, false));
                    &mut down.last_mut().expect("just pushed").1
                }
            };
            match ev.kind {
                FaultKind::Down { .. } => {
                    if *state {
                        return Err(format!("event {i}: cluster {} is already down", ev.cluster));
                    }
                    *state = true;
                }
                FaultKind::Up => {
                    if !*state {
                        return Err(format!("event {i}: cluster {} is not down", ev.cluster));
                    }
                    *state = false;
                }
            }
        }
        Ok(FaultTrace { events })
    }

    /// The validated events, in time order.
    pub fn events(&self) -> &[FaultEvent] {
        &self.events
    }

    /// Checks the trace against a concrete system: cluster indices must
    /// exist and a down event's remaining capacity must be *below* the
    /// cluster's full capacity (equal would be a no-op "failure").
    pub fn validate_for(&self, system: &SystemSpec) -> Result<(), String> {
        let caps = system.capacities();
        for (i, ev) in self.events.iter().enumerate() {
            let Some(&cap) = caps.get(ev.cluster) else {
                return Err(format!(
                    "event {i}: cluster {} out of range (system has {})",
                    ev.cluster,
                    caps.len()
                ));
            };
            if let FaultKind::Down { remaining } = ev.kind {
                if remaining >= cap {
                    return Err(format!(
                        "event {i}: remaining {remaining} is not below cluster {}'s capacity {cap}",
                        ev.cluster
                    ));
                }
            }
        }
        Ok(())
    }
}

/// Where fault events come from.
#[derive(Clone, Debug, PartialEq)]
pub enum FaultSpec {
    /// Independent per-cluster exponential failure/repair processes:
    /// time to failure has mean `mttf`, repair takes an exponential time
    /// with mean `mttr`, and a failure takes the whole cluster down
    /// (remaining capacity 0). Sampled from the dedicated `"faults"`
    /// RNG label, sub-streamed per cluster.
    Exponential {
        /// Mean time to failure (seconds).
        mttf: f64,
        /// Mean time to repair (seconds).
        mttr: f64,
    },
    /// A scripted, exactly reproducible event sequence.
    Trace(FaultTrace),
}

impl FaultSpec {
    /// Parses a fault spec:
    ///
    /// * `exp:MTTF:MTTR` — exponential failure/repair with the given
    ///   mean seconds;
    /// * a comma-separated event list, each `down:T:K[:R]` (cluster `K`
    ///   fails at time `T` with `R` remaining processors, default 0) or
    ///   `up:T:K` (cluster `K` repaired at time `T`).
    pub fn parse(s: &str) -> Result<Self, String> {
        if let Some(rest) = s.strip_prefix("exp:") {
            let mut parts = rest.split(':');
            let mttf = parse_time(parts.next(), "MTTF")?;
            let mttr = parse_time(parts.next(), "MTTR")?;
            if parts.next().is_some() {
                return Err("trailing fields after exp:MTTF:MTTR".to_string());
            }
            if mttf <= 0.0 {
                return Err(format!("MTTF must be positive, got {mttf}"));
            }
            if mttr <= 0.0 {
                return Err(format!("MTTR must be positive, got {mttr}"));
            }
            return Ok(FaultSpec::Exponential { mttf, mttr });
        }
        let mut events = Vec::new();
        for item in s.split(',') {
            let fields: Vec<&str> = item.split(':').collect();
            let event = match fields.as_slice() {
                ["down", t, k] => FaultEvent {
                    at: parse_time(Some(t), "time")?,
                    cluster: parse_cluster(k)?,
                    kind: FaultKind::Down { remaining: 0 },
                },
                ["down", t, k, r] => FaultEvent {
                    at: parse_time(Some(t), "time")?,
                    cluster: parse_cluster(k)?,
                    kind: FaultKind::Down {
                        remaining: r
                            .parse::<u32>()
                            .map_err(|_| format!("bad remaining capacity `{r}`"))?,
                    },
                },
                ["up", t, k] => FaultEvent {
                    at: parse_time(Some(t), "time")?,
                    cluster: parse_cluster(k)?,
                    kind: FaultKind::Up,
                },
                _ => return Err(format!("bad fault event `{item}` (want down:T:K[:R] or up:T:K)")),
            };
            events.push(event);
        }
        FaultTrace::new(events).map(FaultSpec::Trace)
    }

    /// Checks the spec against a concrete system.
    pub fn validate_for(&self, system: &SystemSpec) -> Result<(), String> {
        match self {
            FaultSpec::Exponential { mttf, mttr } => {
                if !(mttf.is_finite() && *mttf > 0.0) {
                    return Err(format!("MTTF must be positive and finite, got {mttf}"));
                }
                if !(mttr.is_finite() && *mttr > 0.0) {
                    return Err(format!("MTTR must be positive and finite, got {mttr}"));
                }
                Ok(())
            }
            FaultSpec::Trace(trace) => trace.validate_for(system),
        }
    }
}

fn parse_time(field: Option<&str>, what: &str) -> Result<f64, String> {
    let raw = field.ok_or_else(|| format!("missing {what}"))?;
    let v: f64 = raw.parse().map_err(|_| format!("bad {what} `{raw}`"))?;
    if !v.is_finite() || v < 0.0 {
        return Err(format!("{what} must be finite and non-negative, got {raw}"));
    }
    Ok(v)
}

fn parse_cluster(raw: &str) -> Result<usize, String> {
    raw.parse::<usize>().map_err(|_| format!("bad cluster index `{raw}`"))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn down(at: f64, cluster: usize, remaining: u32) -> FaultEvent {
        FaultEvent { at, cluster, kind: FaultKind::Down { remaining } }
    }

    fn up(at: f64, cluster: usize) -> FaultEvent {
        FaultEvent { at, cluster, kind: FaultKind::Up }
    }

    #[test]
    fn trace_accepts_alternating_events() {
        let t = FaultTrace::new(vec![down(10.0, 2, 0), up(50.0, 2), down(60.0, 2, 8)])
            .expect("valid trace");
        assert_eq!(t.events().len(), 3);
        t.validate_for(&SystemSpec::das_multicluster()).expect("fits the DAS system");
    }

    #[test]
    fn trace_rejects_time_going_backwards() {
        let err = FaultTrace::new(vec![down(10.0, 0, 0), up(5.0, 0)]).unwrap_err();
        assert!(err.contains("backwards"), "{err}");
    }

    #[test]
    fn trace_rejects_double_down_and_orphan_up() {
        let err = FaultTrace::new(vec![down(1.0, 0, 0), down(2.0, 0, 0)]).unwrap_err();
        assert!(err.contains("already down"), "{err}");
        let err = FaultTrace::new(vec![up(1.0, 3)]).unwrap_err();
        assert!(err.contains("not down"), "{err}");
    }

    #[test]
    fn trace_validates_against_the_system() {
        let das = SystemSpec::das_multicluster();
        let t = FaultTrace::new(vec![down(1.0, 7, 0)]).expect("ordering fine");
        assert!(t.validate_for(&das).unwrap_err().contains("out of range"));
        let t = FaultTrace::new(vec![down(1.0, 0, 32)]).expect("ordering fine");
        assert!(t.validate_for(&das).unwrap_err().contains("not below"));
        let t = FaultTrace::new(vec![down(1.0, 0, 31)]).expect("ordering fine");
        t.validate_for(&das).expect("31 of 32 remaining is a partial outage");
    }

    #[test]
    fn spec_parses_exponential() {
        let spec = FaultSpec::parse("exp:50000:5000").expect("parses");
        assert_eq!(spec, FaultSpec::Exponential { mttf: 50_000.0, mttr: 5_000.0 });
        spec.validate_for(&SystemSpec::das_multicluster()).expect("positive means");
        assert!(FaultSpec::parse("exp:0:5").is_err(), "zero MTTF rejected at validation");
        assert!(FaultSpec::parse("exp:50:5:9").is_err());
        assert!(FaultSpec::parse("exp:abc:5").is_err());
    }

    #[test]
    fn zero_mttf_rejected_by_validation() {
        let spec = FaultSpec::Exponential { mttf: 0.0, mttr: 5.0 };
        assert!(spec.validate_for(&SystemSpec::das_multicluster()).is_err());
    }

    #[test]
    fn spec_parses_event_lists() {
        let spec = FaultSpec::parse("down:100:1,up:200:1,down:300:0:16").expect("parses");
        let FaultSpec::Trace(trace) = spec else { panic!("expected a trace") };
        assert_eq!(trace.events(), &[down(100.0, 1, 0), up(200.0, 1), down(300.0, 0, 16)]);
    }

    #[test]
    fn spec_parse_reports_the_offending_item() {
        let err = FaultSpec::parse("down:100:1,sideways:3:4").unwrap_err();
        assert!(err.contains("sideways"), "{err}");
        let err = FaultSpec::parse("down:-5:1").unwrap_err();
        assert!(err.contains("-5"), "{err}");
    }

    #[test]
    fn interrupt_policy_parses_and_displays() {
        assert_eq!(InterruptPolicy::parse("front"), Ok(InterruptPolicy::RequeueFront));
        assert_eq!(InterruptPolicy::parse("requeue-back"), Ok(InterruptPolicy::RequeueBack));
        assert_eq!(InterruptPolicy::parse("abort"), Ok(InterruptPolicy::Abort));
        assert_eq!(InterruptPolicy::default(), InterruptPolicy::RequeueFront);
        assert_eq!(InterruptPolicy::RequeueBack.to_string(), "requeue-back");
        assert!("sideways".parse::<InterruptPolicy>().is_err());
    }
}
