//! LS — local schedulers with local queues (§2.5, policy 2).
//!
//! "Each cluster has its own local scheduler with a local queue. All
//! queues receive both single- and multi-component jobs and each local
//! scheduler has global knowledge about the numbers of idle processors.
//! However, single-component jobs are scheduled only on the local
//! cluster. The multi-component jobs are co-allocated over the entire
//! system. When scheduling is performed all enabled queues are repeatedly
//! visited, and in each round at most one job from each queue is started.
//! When the job at the head of a queue does not fit, the queue is
//! disabled until the next job departs from the system. At each job
//! departure the queues are enabled in the same order in which they were
//! disabled."
//!
//! LS's strength (§3.1.1): a job can be chosen from any of the local
//! queues, "which generates a form of backfilling with a window equal to
//! the number of clusters".

use coalloc_workload::{JobSpec, QueueRouting, RequestKind};
use desim::{RngStream, SimTime};

use crate::audit::{PlacementScope, SimObserver};
use crate::job::{ActiveJob, JobId, JobTable, Placement, SubmitQueue};
use crate::placement::PlacementRule;
use crate::system::MultiCluster;

use super::local::{LocalQueues, TryStart};
use super::{PolicyOptions, Scheduler};

/// The scope LS places a job under: multi-component (and ordered) jobs
/// are co-allocated system-wide, single-component jobs are confined to
/// the cluster of their queue.
fn ls_scope(job: &ActiveJob, q: usize) -> PlacementScope {
    if job.spec.request.is_multi() || job.spec.request.kind() == RequestKind::Ordered {
        PlacementScope::System
    } else {
        PlacementScope::Cluster(q)
    }
}

/// The LS policy: one local FCFS queue per cluster.
#[derive(Debug)]
pub struct LocalSchedulers {
    locals: LocalQueues,
    /// Enabled queues in visiting order: initially cluster order; queues
    /// drop out when disabled and re-join in disable order at departures.
    visit: Vec<usize>,
    /// Per-round snapshot of `visit`, reused across passes so a round
    /// allocates nothing once its capacity covers the clusters.
    round: Vec<usize>,
}

impl LocalSchedulers {
    /// Builds the policy for `clusters` clusters with the given routing of
    /// submitted jobs to local queues.
    pub fn new(
        clusters: usize,
        routing: QueueRouting,
        rng: RngStream,
        rule: PlacementRule,
    ) -> Self {
        LocalSchedulers::with_options(clusters, routing, rng, rule, PolicyOptions::default())
    }

    /// [`LocalSchedulers::new`] with explicit disposition/discipline
    /// options.
    pub fn with_options(
        clusters: usize,
        routing: QueueRouting,
        rng: RngStream,
        rule: PlacementRule,
        opts: PolicyOptions,
    ) -> Self {
        LocalSchedulers {
            locals: LocalQueues::with_options(clusters, routing, rng, rule, opts),
            visit: (0..clusters).collect(),
            round: Vec::with_capacity(clusters),
        }
    }
}

impl Scheduler for LocalSchedulers {
    fn name(&self) -> &'static str {
        "LS"
    }

    fn route(&mut self, _spec: &JobSpec) -> SubmitQueue {
        SubmitQueue::Local(self.locals.pick())
    }

    fn enqueue(&mut self, id: JobId, queue: SubmitQueue) {
        match queue {
            SubmitQueue::Local(q) => self.locals.push(q, id),
            SubmitQueue::Global => panic!("LS has no global queue"),
        }
    }

    fn on_departure(&mut self) {
        // Disabled queues re-join the visit order in disable order,
        // appended straight into the reused `visit` buffer.
        self.locals.enable_all_into(&mut self.visit);
    }

    fn requeue_front(&mut self, id: JobId, queue: SubmitQueue) {
        match queue {
            SubmitQueue::Local(q) => self.locals.push_front(q, id),
            SubmitQueue::Global => panic!("LS has no global queue"),
        }
    }

    fn schedule_into(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        started: &mut Vec<JobId>,
    ) {
        // `round` is swapped out of self so try_start can borrow self
        // mutably; its capacity survives the swap (mem::take leaves an
        // unallocated empty Vec behind for the duration of the pass).
        let mut round = std::mem::take(&mut self.round);
        loop {
            let mut progress = false;
            // Snapshot: in each round every currently enabled queue is
            // visited once (at most one start per queue per round).
            round.clear();
            round.extend_from_slice(&self.visit);
            for &q in &round {
                if !self.locals.is_enabled(q) {
                    continue; // disabled earlier in this pass
                }
                // Multi-component jobs are co-allocated over the whole
                // system; single-component jobs run only on the local
                // cluster — except ordered requests, which name their
                // cluster themselves.
                let attempt =
                    self.locals.try_start(q, now, system, table, obs, |job| ls_scope(job, q));
                match attempt {
                    TryStart::Started(id) => {
                        started.push(id);
                        progress = true;
                    }
                    TryStart::Disabled => self.visit.retain(|&x| x != q),
                    TryStart::Empty => {}
                }
            }
            if !progress {
                break;
            }
        }
        self.round = round;
        // Within-queue backfilling (EASY/conservative): the visit rounds
        // above already backfill *across* queues ("a window equal to the
        // number of clusters"); the disciplines add the within-queue
        // dimension, scanning past each blocked head under its shadow
        // reservation.
        if self.locals.backfills() {
            for q in 0..self.locals.len() {
                self.locals
                    .backfill_queue(q, now, system, table, obs, started, |job| ls_scope(job, q));
            }
        }
    }

    fn job_departed(&mut self, id: JobId) {
        self.locals.note_departed(id);
    }

    fn job_resized(&mut self, now: SimTime, id: JobId, new_placement: &Placement) {
        self.locals.note_resized(now, id, new_placement);
    }

    fn queued(&self) -> usize {
        self.locals.total_queued()
    }

    fn num_queues(&self) -> usize {
        self.locals.len()
    }

    fn queue_lengths_into(&self, out: &mut Vec<usize>) {
        self.locals.lengths_into(out);
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::job::ActiveJob;

    fn setup() -> (LocalSchedulers, MultiCluster, JobTable) {
        let p = LocalSchedulers::new(
            4,
            QueueRouting::balanced(4),
            RngStream::new(99),
            PlacementRule::WorstFit,
        );
        (p, MultiCluster::das_multicluster(), JobTable::new())
    }

    /// Submits a job directly to a chosen local queue (bypassing routing).
    fn submit_to(
        p: &mut LocalSchedulers,
        table: &mut JobTable,
        q: usize,
        components: &[u32],
        now: f64,
    ) -> JobId {
        let s = spec(components);
        let id = table.insert(ActiveJob::new(s, SimTime::new(now), SubmitQueue::Local(q)));
        p.enqueue(id, SubmitQueue::Local(q));
        id
    }

    #[test]
    fn single_component_jobs_stay_local() {
        let (mut p, mut sys, mut table) = setup();
        // A 30-processor job in queue 2 must run on cluster 2 even if
        // other clusters are emptier (they are equally empty here).
        let a = submit_to(&mut p, &mut table, 2, &[30], 0.0);
        let started = pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(started, vec![a]);
        assert_eq!(table.get(a).placement.as_ref().expect("started").assignments(), &[(2, 30)]);
        // A second local job in queue 2 that does not fit there waits,
        // even though clusters 0/1/3 are empty.
        let b = submit_to(&mut p, &mut table, 2, &[10], 1.0);
        let started = pass(&mut p, &mut sys, &mut table, 1.0);
        assert!(started.is_empty(), "job {b:?} is restricted to its full local cluster");
        assert_eq!(p.queued(), 1);
    }

    #[test]
    fn multi_component_jobs_spread_over_all_clusters() {
        let (mut p, mut sys, mut table) = setup();
        let a = submit_to(&mut p, &mut table, 0, &[16, 16, 16], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        let placement = table.get(a).placement.as_ref().expect("started");
        assert_eq!(placement.assignments().len(), 3);
        assert_eq!(sys.total_busy(), 48);
    }

    #[test]
    fn backfilling_across_queues() {
        let (mut p, mut sys, mut table) = setup();
        // Occupy one processor so a whole-system job cannot start.
        submit_to(&mut p, &mut table, 3, &[1], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        // Queue 0's head needs the whole system and blocks queue 0 only;
        // jobs in other queues still start (the backfilling window).
        submit_to(&mut p, &mut table, 0, &[32, 32, 32, 32], 1.0);
        let small1 = submit_to(&mut p, &mut table, 1, &[8], 1.0);
        let small2 = submit_to(&mut p, &mut table, 2, &[8], 1.0);
        let started = pass(&mut p, &mut sys, &mut table, 1.0);
        assert!(started.contains(&small1) && started.contains(&small2));
        assert_eq!(started.len(), 2, "big job blocked, others proceed");
    }

    #[test]
    fn disabled_queue_waits_for_departure() {
        let (mut p, mut sys, mut table) = setup();
        let filler = submit_to(&mut p, &mut table, 0, &[32], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        // Head of queue 0 does not fit locally -> queue 0 disabled.
        let waiting = submit_to(&mut p, &mut table, 0, &[16], 1.0);
        assert!(pass(&mut p, &mut sys, &mut table, 1.0).is_empty());
        // Another arrival to queue 0 cannot start (queue disabled), even
        // a tiny one that would fit: FCFS within the queue.
        submit_to(&mut p, &mut table, 0, &[1], 2.0);
        assert!(pass(&mut p, &mut sys, &mut table, 2.0).is_empty());
        assert_eq!(p.queued(), 2);
        // Departure re-enables; the waiting job starts, then the tiny one.
        depart(&mut p, &mut sys, &table, filler);
        let started = pass(&mut p, &mut sys, &mut table, 3.0);
        assert_eq!(started.len(), 2);
        assert_eq!(started[0], waiting);
    }

    #[test]
    fn multiple_rounds_drain_queues() {
        let (mut p, mut sys, mut table) = setup();
        // Three jobs in one queue, all fitting: one starts per round, all
        // start within one schedule() call.
        for _ in 0..3 {
            submit_to(&mut p, &mut table, 1, &[8], 0.0);
        }
        let started = pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(started.len(), 3);
        assert_eq!(sys.idle(1), 32 - 24);
    }

    #[test]
    fn routing_respects_weights() {
        let mut p = LocalSchedulers::new(
            4,
            QueueRouting::unbalanced(4),
            RngStream::new(5),
            PlacementRule::WorstFit,
        );
        let mut to_first = 0;
        let n = 20_000;
        for _ in 0..n {
            match p.route(&spec(&[1])) {
                SubmitQueue::Local(0) => to_first += 1,
                SubmitQueue::Local(_) => {}
                SubmitQueue::Global => panic!("LS routes locally"),
            }
        }
        let f = f64::from(to_first) / f64::from(n);
        assert!((f - 0.4).abs() < 0.02, "first-queue share {f}");
    }

    /// Fills all four clusters from the four local queues and returns the
    /// filler ids.
    fn fill_system(
        p: &mut LocalSchedulers,
        sys: &mut MultiCluster,
        table: &mut JobTable,
    ) -> Vec<JobId> {
        let fillers: Vec<JobId> = (0..4).map(|q| submit_to(p, table, q, &[32], 0.0)).collect();
        let started = pass(p, sys, table, 0.0);
        assert_eq!(started.len(), 4);
        fillers
    }

    #[test]
    fn reenable_order_decides_contention() {
        // Two queues hold competing (32,32) jobs; after two departures
        // only one fits. The queue disabled *first* is re-enabled (and
        // visited) first, so it wins.
        let (mut p, mut sys, mut table) = setup();
        let fillers = fill_system(&mut p, &mut sys, &mut table);
        // Disable q1 first, then q2 (each pass hits a non-fitting head).
        let m1 = submit_to(&mut p, &mut table, 1, &[32, 32], 1.0);
        assert!(pass(&mut p, &mut sys, &mut table, 1.0).is_empty());
        let m2 = submit_to(&mut p, &mut table, 2, &[32, 32], 2.0);
        assert!(pass(&mut p, &mut sys, &mut table, 2.0).is_empty());
        // Free clusters 0 and 1; one (32,32) fits now.
        depart(&mut p, &mut sys, &table, fillers[0]);
        depart(&mut p, &mut sys, &table, fillers[1]);
        let started = pass(&mut p, &mut sys, &mut table, 3.0);
        assert_eq!(started, vec![m1], "the first-disabled queue wins");
        assert_eq!(p.queued(), 1);
        let _ = m2;
    }

    #[test]
    fn reenable_order_decides_contention_reversed() {
        // Mirror of the above with the disable order flipped: q2 first.
        let (mut p, mut sys, mut table) = setup();
        let fillers = fill_system(&mut p, &mut sys, &mut table);
        let m2 = submit_to(&mut p, &mut table, 2, &[32, 32], 1.0);
        assert!(pass(&mut p, &mut sys, &mut table, 1.0).is_empty());
        let m1 = submit_to(&mut p, &mut table, 1, &[32, 32], 2.0);
        assert!(pass(&mut p, &mut sys, &mut table, 2.0).is_empty());
        depart(&mut p, &mut sys, &table, fillers[0]);
        depart(&mut p, &mut sys, &table, fillers[1]);
        let started = pass(&mut p, &mut sys, &mut table, 3.0);
        assert_eq!(started, vec![m2], "disable order reversed, winner flips");
        let _ = m1;
    }

    #[test]
    fn never_disabled_queues_are_visited_before_reenabled_ones() {
        // Queue 3 was never disabled; it is visited before a re-enabled
        // queue in the same pass and takes the contested processors.
        let (mut p, mut sys, mut table) = setup();
        let fillers = fill_system(&mut p, &mut sys, &mut table);
        // Disable q0 (head (32,32) does not fit).
        let m0 = submit_to(&mut p, &mut table, 0, &[32, 32], 1.0);
        assert!(pass(&mut p, &mut sys, &mut table, 1.0).is_empty());
        // Queue 3 receives a competing (32,32) but is NOT disabled (no
        // pass runs while it would block... it must queue behind nothing).
        let m3 = submit_to(&mut p, &mut table, 3, &[32, 32], 2.0);
        // Two departures open exactly one (32,32) slot and re-enable q0.
        depart(&mut p, &mut sys, &table, fillers[1]);
        depart(&mut p, &mut sys, &table, fillers[2]);
        let started = pass(&mut p, &mut sys, &mut table, 3.0);
        // Visit order: q3 (still in the base order, never disabled)
        // precedes the re-enabled q0.
        assert_eq!(started, vec![m3]);
        let _ = m0;
    }

    #[test]
    fn requeue_front_precedes_older_waiters() {
        let (mut p, mut sys, mut table) = setup();
        // a runs on cluster 1; b waits behind it in the same queue.
        let a = submit_to(&mut p, &mut table, 1, &[30], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        let b = submit_to(&mut p, &mut table, 1, &[30], 1.0);
        assert!(pass(&mut p, &mut sys, &mut table, 1.0).is_empty());
        // a is killed and re-queued at the front: it starts before b.
        sys.release(table.get(a).placement.as_ref().unwrap());
        table.get_mut(a).placement = None;
        table.get_mut(a).start = None;
        p.requeue_front(a, SubmitQueue::Local(1));
        p.on_departure();
        let started = pass(&mut p, &mut sys, &mut table, 2.0);
        assert_eq!(started, vec![a], "the victim regains the head");
        let _ = b;
    }

    #[test]
    fn queue_lengths_per_cluster() {
        let (mut p, mut sys, mut table) = setup();
        submit_to(&mut p, &mut table, 0, &[32], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        submit_to(&mut p, &mut table, 0, &[32], 0.0);
        submit_to(&mut p, &mut table, 3, &[32], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(p.queue_lengths(), vec![1, 0, 0, 0]);
    }
}
