//! The scheduling policies of §2.5: GS, LS, LP — plus SC, the
//! single-cluster FCFS baseline (GS on a one-cluster system).
//!
//! All schedulers are FCFS within a queue: only the head of a queue may
//! start. A queue whose head does not fit is disabled until the next
//! departure.

mod flex;
mod gb;
mod gs;
mod local;
mod lp;
mod ls;
mod sc;

pub use flex::PolicyOptions;
pub use gb::GlobalBackfill;
pub use gs::GlobalScheduler;
pub use lp::LocalPriority;
pub use ls::LocalSchedulers;
pub use sc::{single_cluster_policy, single_cluster_policy_with};

pub(crate) use flex::{estimated_occupancy, replay_shadow, FlexEngine};

use coalloc_workload::{JobSpec, QueueRouting};
use desim::{RngStream, SimTime};

use crate::audit::{NullObserver, SimObserver};
use crate::job::{JobId, JobTable, SubmitQueue};
use crate::placement::PlacementRule;
use crate::system::{MultiCluster, SystemSpec};

/// A co-allocation scheduling policy.
///
/// The simulation loop drives a scheduler through three entry points:
/// [`Scheduler::route`] + [`Scheduler::enqueue`] at each arrival,
/// [`Scheduler::on_departure`] at each departure, and
/// [`Scheduler::schedule_into`] after both.
///
/// # The allocation-free contract
///
/// The scheduling pass runs after *every* event, so its entry points
/// must not touch the heap in steady state:
///
/// * [`Scheduler::schedule_into`] appends started jobs to a
///   **caller-owned scratch buffer**. The caller clears it before the
///   pass and owns its capacity across passes; the scheduler only
///   appends. Any internal per-pass working set (e.g. LS's round
///   snapshot) must likewise live in a reused buffer owned by the
///   scheduler.
/// * [`Scheduler::queued`] is **O(1)**: policies maintain a running
///   counter (or sum O(1) queue lengths) instead of walking queues —
///   the loop reads it after every event for backlog tracking.
/// * [`Scheduler::on_departure`] re-enables queues in place; it must
///   not return or build collections.
///
/// The allocating conveniences ([`Scheduler::schedule`],
/// [`Scheduler::schedule_observed`], [`Scheduler::queue_lengths`]) are
/// provided for tests and one-off diagnostics only.
pub trait Scheduler: Send {
    /// The policy's short name (GS/LS/LP/SC).
    fn name(&self) -> &'static str;

    /// Decides which queue a new job goes to (may consume routing
    /// randomness).
    fn route(&mut self, spec: &JobSpec) -> SubmitQueue;

    /// Appends a job (already recorded in the table with its queue) to
    /// that queue.
    fn enqueue(&mut self, id: JobId, queue: SubmitQueue);

    /// A job departed: re-enable queues according to the policy's rules.
    fn on_departure(&mut self);

    /// A specific job left the system (completion or fault kill). Only
    /// the backfilling disciplines care — they track running jobs'
    /// estimated ends for the reservation replay — so the default is a
    /// no-op. Called in addition to (before) [`Scheduler::on_departure`]
    /// for completions.
    fn job_departed(&mut self, id: JobId) {
        let _ = id;
    }

    /// A running malleable job was resized to `new_placement` (see
    /// [`crate::fault::ResizePolicy`]); backfilling schedulers rescale
    /// their estimate of its end. Default no-op.
    fn job_resized(&mut self, now: SimTime, id: JobId, new_placement: &crate::job::Placement) {
        let _ = (now, id, new_placement);
    }

    /// Re-queues a job killed by a cluster failure at the *head* of its
    /// queue, preserving its FCFS age (the `RequeueFront` interrupt
    /// policy). The default falls back to [`Scheduler::enqueue`] — a
    /// plain re-queue at the tail — so schedulers without an
    /// age-preserving re-entry point still work, documented as losing
    /// the victim's position.
    fn requeue_front(&mut self, id: JobId, queue: SubmitQueue) {
        self.enqueue(id, queue);
    }

    /// Starts every job the policy can start now, announcing each
    /// placement decision (and each queue disable) to `obs`. Placements
    /// are applied to `system` and recorded in `table`; the started ids
    /// are appended to `started` — the caller-owned scratch buffer of
    /// the allocation-free contract (cleared by the caller, never by
    /// the scheduler) — so the simulation loop can schedule their
    /// departures.
    ///
    /// Observers are passive: a scheduler must make identical decisions
    /// whatever `obs` is (see [`crate::audit`]).
    fn schedule_into(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        started: &mut Vec<JobId>,
    );

    /// [`Scheduler::schedule_into`] returning a fresh vector (tests and
    /// external harnesses; allocates, so not for the event loop).
    fn schedule_observed(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
    ) -> Vec<JobId> {
        let mut started = Vec::new();
        self.schedule_into(now, system, table, obs, &mut started);
        started
    }

    /// [`Scheduler::schedule_observed`] without an observer (the
    /// pre-audit entry point; unit tests and external harnesses use
    /// this).
    fn schedule(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
    ) -> Vec<JobId> {
        self.schedule_observed(now, system, table, &mut NullObserver)
    }

    /// Number of jobs currently waiting in all queues. O(1) — see the
    /// allocation-free contract; always equals the sum of
    /// [`Scheduler::queue_lengths`].
    fn queued(&self) -> usize;

    /// Number of queues this policy schedules from (local queues first,
    /// then the global queue if any) — the length
    /// [`Scheduler::queue_lengths_into`] writes.
    fn num_queues(&self) -> usize;

    /// Appends the current length of every queue to `out`, for
    /// per-queue diagnostics (local queues first, then the global queue
    /// if any).
    fn queue_lengths_into(&self, out: &mut Vec<usize>);

    /// [`Scheduler::queue_lengths_into`] returning a fresh vector
    /// (diagnostics; allocates).
    fn queue_lengths(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.num_queues());
        self.queue_lengths_into(&mut out);
        out
    }
}

/// Which policy to build; the unit of comparison in every figure.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub enum PolicyKind {
    /// One global queue + one global scheduler for all jobs.
    Gs,
    /// Per-cluster local queues; single-component jobs stay local,
    /// multi-component jobs are co-allocated system-wide.
    Ls,
    /// Local queues for single-component jobs with priority, a global
    /// queue for multi-component jobs.
    Lp,
    /// Single-cluster FCFS on total requests (the comparison baseline).
    Sc,
    /// GS with aggressive backfilling (extension; not in the paper).
    Gb,
}

impl PolicyKind {
    /// The paper's label for this policy.
    pub fn label(self) -> &'static str {
        match self {
            PolicyKind::Gs => "GS",
            PolicyKind::Ls => "LS",
            PolicyKind::Lp => "LP",
            PolicyKind::Sc => "SC",
            PolicyKind::Gb => "GB",
        }
    }

    /// Whether the policy uses local queues (and therefore a routing
    /// distribution).
    pub fn has_local_queues(self) -> bool {
        matches!(self, PolicyKind::Ls | PolicyKind::Lp)
    }

    /// Builds the scheduler for the given system. `routing` is used by
    /// LS (all jobs) and LP (single-component jobs) and must have one
    /// weight per cluster of `system`; `rng` drives routing decisions;
    /// `rule` is the placement rule (the paper uses Worst Fit).
    pub fn build(
        self,
        system: &SystemSpec,
        routing: QueueRouting,
        rng: RngStream,
        rule: PlacementRule,
    ) -> Box<dyn Scheduler> {
        self.build_with(system, routing, rng, rule, PolicyOptions::default())
    }

    /// [`PolicyKind::build`] with explicit [`PolicyOptions`] — the
    /// disposition/discipline axes of the extended model. The plain
    /// `build` uses the defaults (rigid jobs, strict FCFS), which
    /// reproduce the paper's model exactly.
    pub fn build_with(
        self,
        system: &SystemSpec,
        routing: QueueRouting,
        rng: RngStream,
        rule: PlacementRule,
        opts: PolicyOptions,
    ) -> Box<dyn Scheduler> {
        let clusters = system.num_clusters();
        match self {
            PolicyKind::Gs => Box::new(GlobalScheduler::with_options(rule, opts)),
            PolicyKind::Ls => {
                Box::new(LocalSchedulers::with_options(clusters, routing, rng, rule, opts))
            }
            PolicyKind::Lp => {
                Box::new(LocalPriority::with_options(clusters, routing, rng, rule, opts))
            }
            PolicyKind::Sc => Box::new(single_cluster_policy_with(rule, opts)),
            PolicyKind::Gb => Box::new(GlobalBackfill::with_options(rule, opts)),
        }
    }
}

impl core::fmt::Display for PolicyKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

#[cfg(test)]
pub(crate) mod testutil {
    //! Shared helpers for policy unit tests.

    use coalloc_workload::{JobRequest, JobSpec};
    use desim::{Duration, SimTime};

    use crate::job::{ActiveJob, JobId, JobTable};
    use crate::system::MultiCluster;

    use super::Scheduler;

    /// Builds a job spec with the given components and a 100 s service.
    pub fn spec(components: &[u32]) -> JobSpec {
        JobSpec {
            request: JobRequest::new(components.to_vec()),
            base_service: Duration::new(100.0),
        }
    }

    /// Submits a job through the full route/insert/enqueue path.
    pub fn submit(
        policy: &mut dyn Scheduler,
        table: &mut JobTable,
        components: &[u32],
        now: f64,
    ) -> JobId {
        let s = spec(components);
        let q = policy.route(&s);
        let id = table.insert(ActiveJob::new(s, SimTime::new(now), q));
        policy.enqueue(id, q);
        id
    }

    /// Runs one scheduling pass at t=`now`.
    pub fn pass(
        policy: &mut dyn Scheduler,
        system: &mut MultiCluster,
        table: &mut JobTable,
        now: f64,
    ) -> Vec<JobId> {
        policy.schedule(SimTime::new(now), system, table)
    }

    /// Departs a started job: releases processors and notifies the policy.
    pub fn depart(
        policy: &mut dyn Scheduler,
        system: &mut MultiCluster,
        table: &JobTable,
        id: JobId,
    ) {
        let placement = table.get(id).placement.clone().expect("job started");
        system.release(&placement);
        policy.on_departure();
    }
}
