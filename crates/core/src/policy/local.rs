//! Shared skeleton of the local-queue policies (LS and LP).
//!
//! Both §2.5 policies route jobs to per-cluster FCFS queues, try the
//! head of an enabled queue against a placement scope, start it on a
//! fit, and disable the queue until the next departure on a miss. The
//! policies differ only in *which* jobs reach the local queues, the
//! scope a head is placed under, and what happens around the attempt
//! (LS maintains a visit order; LP gates a global queue) — so the
//! queue-set plumbing and the try-start step live here and the policy
//! files keep only their distinguishing logic.

use coalloc_workload::QueueRouting;
use desim::{RngStream, SimTime};

use crate::audit::{PlacementScope, SimObserver};
use crate::job::{ActiveJob, JobId, JobTable, Placement, SubmitQueue};
use crate::placement::PlacementRule;
use crate::queue::QueueSet;
use crate::system::MultiCluster;

use super::{FlexEngine, PolicyOptions};

/// What happened when a local queue's head was offered to the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TryStart {
    /// The head fitted and started.
    Started(JobId),
    /// The head did not fit; the queue is now disabled until the next
    /// departure.
    Disabled,
    /// The queue was empty.
    Empty,
}

/// The per-cluster queue machinery shared by LS and LP: a [`QueueSet`],
/// the routing of arrivals to queues, the routing RNG and the placement
/// rule.
#[derive(Debug)]
pub(crate) struct LocalQueues {
    queues: QueueSet,
    routing: QueueRouting,
    rng: RngStream,
    rule: PlacementRule,
    flex: FlexEngine,
}

impl LocalQueues {
    pub(crate) fn with_options(
        clusters: usize,
        routing: QueueRouting,
        rng: RngStream,
        rule: PlacementRule,
        opts: PolicyOptions,
    ) -> Self {
        assert_eq!(routing.queues(), clusters, "routing must cover exactly the local queues");
        LocalQueues {
            queues: QueueSet::new(clusters),
            routing,
            rng,
            rule,
            flex: FlexEngine::new(opts),
        }
    }

    /// Whether the configured discipline backfills (the policies run
    /// their per-queue backfill scans only then).
    pub(crate) fn backfills(&self) -> bool {
        self.flex.backfills()
    }

    /// Forwards a departure to the engine's running-set tracking.
    pub(crate) fn note_departed(&mut self, id: JobId) {
        self.flex.note_departed(id);
    }

    /// Forwards a resize to the engine's running-set tracking.
    pub(crate) fn note_resized(&mut self, now: SimTime, id: JobId, new_placement: &Placement) {
        self.flex.note_resized(now, id, new_placement);
    }

    /// Whether skipped jobs' reservations must also be respected.
    pub(crate) fn conservative(&self) -> bool {
        self.flex.conservative()
    }

    /// Engine-backed start attempt for a job that is *not* in the local
    /// queue set (LP's global queue): same disposition/discipline
    /// semantics, caller manages its own queue.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn flex_try_start(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        id: JobId,
        queue: SubmitQueue,
        scope: PlacementScope,
        obs: &mut dyn SimObserver,
        max_est_end: Option<f64>,
    ) -> bool {
        self.flex.try_start_job(now, system, table, id, queue, scope, self.rule, obs, max_est_end)
    }

    /// Engine-backed shadow time (see [`FlexEngine::shadow`]) for a
    /// caller-managed queue's job.
    pub(crate) fn flex_shadow(
        &mut self,
        idle: &[u32],
        request: &coalloc_workload::JobRequest,
        scope: PlacementScope,
        now: f64,
    ) -> f64 {
        self.flex.shadow(idle, request, scope, self.rule, now)
    }

    /// Number of local queues (= clusters).
    pub(crate) fn len(&self) -> usize {
        self.queues.len()
    }

    /// Whether queue `q` is currently enabled.
    pub(crate) fn is_enabled(&self, q: usize) -> bool {
        self.queues.queue(q).is_enabled()
    }

    /// Whether queue `q` is empty.
    pub(crate) fn is_empty(&self, q: usize) -> bool {
        self.queues.queue(q).is_empty()
    }

    /// Appends a job to queue `q`.
    pub(crate) fn push(&mut self, q: usize, id: JobId) {
        self.queues.push(q, id);
    }

    /// Prepends a job to queue `q` (fault requeue preserving FCFS age).
    pub(crate) fn push_front(&mut self, q: usize, id: JobId) {
        self.queues.push_front(q, id);
    }

    /// Draws a queue index from the routing distribution.
    pub(crate) fn pick(&mut self) -> usize {
        self.routing.pick(&mut self.rng)
    }

    /// Total jobs waiting across all local queues (O(1)).
    pub(crate) fn total_queued(&self) -> usize {
        self.queues.total_queued()
    }

    /// Whether at least one local queue is empty (LP's global gate).
    pub(crate) fn any_empty(&self) -> bool {
        self.queues.any_empty()
    }

    /// Re-enables all queues (LP's departure rule).
    pub(crate) fn enable_all(&mut self) {
        self.queues.enable_all();
    }

    /// Re-enables all queues, appending the re-enabled indices in
    /// disable order (LS's departure rule feeding its visit order).
    pub(crate) fn enable_all_into(&mut self, out: &mut Vec<usize>) {
        self.queues.enable_all_into(out);
    }

    /// Appends every queue's length (used by `queue_lengths_into`).
    pub(crate) fn lengths_into(&self, out: &mut Vec<usize>) {
        out.extend((0..self.queues.len()).map(|i| self.queues.queue(i).len()));
    }

    /// Offers the head of queue `q` to the system under the scope
    /// `scope_for` chooses for it. On a fit the processors are applied,
    /// the job is marked started and popped; on a miss the queue is
    /// disabled (observed) until the next departure. Allocation-free.
    pub(crate) fn try_start(
        &mut self,
        q: usize,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        scope_for: impl FnOnce(&ActiveJob) -> PlacementScope,
    ) -> TryStart {
        let Some(head) = self.queues.queue(q).head() else {
            return TryStart::Empty;
        };
        let scope = scope_for(table.get(head));
        let ok = self.flex.try_start_job(
            now,
            system,
            table,
            head,
            SubmitQueue::Local(q),
            scope,
            self.rule,
            obs,
            None,
        );
        if ok {
            self.queues.pop(q);
            TryStart::Started(head)
        } else {
            self.queues.disable_observed(q, now, obs);
            TryStart::Disabled
        }
    }

    /// The per-queue backfilling scan (EASY/conservative): with queue
    /// `q`'s head blocked, later jobs in the *same* queue may start iff
    /// their estimated end lies strictly before the head's shadow time
    /// (and, conservatively, every skipped job's). Runs regardless of
    /// the queue's disable latch — the latch only pins the head, whose
    /// reservation this scan protects. See
    /// [`super::GlobalScheduler::backfill`] for the bound-validity
    /// argument.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn backfill_queue(
        &mut self,
        q: usize,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        started: &mut Vec<JobId>,
        scope_for: impl Fn(&ActiveJob) -> PlacementScope,
    ) {
        if self.queues.queue(q).len() < 2 {
            return;
        }
        let head = self.queues.queue(q).head().expect("len >= 2");
        let head_scope = scope_for(table.get(head));
        let mut bound = self.flex.shadow(
            system.idle_per_cluster(),
            &table.get(head).spec.request,
            head_scope,
            self.rule,
            now.seconds(),
        );
        let conservative = self.flex.conservative();
        let mut pos = 1;
        while pos < self.queues.queue(q).len() {
            let id = self.queues.queue(q).get(pos).expect("pos < len");
            let scope = scope_for(table.get(id));
            let ok = self.flex.try_start_job(
                now,
                system,
                table,
                id,
                SubmitQueue::Local(q),
                scope,
                self.rule,
                obs,
                Some(bound),
            );
            if ok {
                self.queues.remove(q, pos);
                started.push(id);
            } else {
                if conservative {
                    let shadow = self.flex.shadow(
                        system.idle_per_cluster(),
                        &table.get(id).spec.request,
                        scope,
                        self.rule,
                        now.seconds(),
                    );
                    bound = bound.min(shadow);
                }
                pos += 1;
            }
        }
    }
}
