//! Shared skeleton of the local-queue policies (LS and LP).
//!
//! Both §2.5 policies route jobs to per-cluster FCFS queues, try the
//! head of an enabled queue against a placement scope, start it on a
//! fit, and disable the queue until the next departure on a miss. The
//! policies differ only in *which* jobs reach the local queues, the
//! scope a head is placed under, and what happens around the attempt
//! (LS maintains a visit order; LP gates a global queue) — so the
//! queue-set plumbing and the try-start step live here and the policy
//! files keep only their distinguishing logic.

use coalloc_workload::QueueRouting;
use desim::{RngStream, SimTime};

use crate::audit::{PlacementScope, SimObserver};
use crate::job::{ActiveJob, JobId, JobTable, SubmitQueue};
use crate::placement::{place_scoped_observed, PlacementRule};
use crate::queue::QueueSet;
use crate::system::MultiCluster;

/// What happened when a local queue's head was offered to the system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum TryStart {
    /// The head fitted and started.
    Started(JobId),
    /// The head did not fit; the queue is now disabled until the next
    /// departure.
    Disabled,
    /// The queue was empty.
    Empty,
}

/// The per-cluster queue machinery shared by LS and LP: a [`QueueSet`],
/// the routing of arrivals to queues, the routing RNG and the placement
/// rule.
#[derive(Debug)]
pub(crate) struct LocalQueues {
    queues: QueueSet,
    routing: QueueRouting,
    rng: RngStream,
    rule: PlacementRule,
}

impl LocalQueues {
    pub(crate) fn new(
        clusters: usize,
        routing: QueueRouting,
        rng: RngStream,
        rule: PlacementRule,
    ) -> Self {
        assert_eq!(routing.queues(), clusters, "routing must cover exactly the local queues");
        LocalQueues { queues: QueueSet::new(clusters), routing, rng, rule }
    }

    /// The placement rule both policies thread into every attempt.
    pub(crate) fn rule(&self) -> PlacementRule {
        self.rule
    }

    /// Number of local queues (= clusters).
    pub(crate) fn len(&self) -> usize {
        self.queues.len()
    }

    /// Whether queue `q` is currently enabled.
    pub(crate) fn is_enabled(&self, q: usize) -> bool {
        self.queues.queue(q).is_enabled()
    }

    /// Whether queue `q` is empty.
    pub(crate) fn is_empty(&self, q: usize) -> bool {
        self.queues.queue(q).is_empty()
    }

    /// Appends a job to queue `q`.
    pub(crate) fn push(&mut self, q: usize, id: JobId) {
        self.queues.push(q, id);
    }

    /// Prepends a job to queue `q` (fault requeue preserving FCFS age).
    pub(crate) fn push_front(&mut self, q: usize, id: JobId) {
        self.queues.push_front(q, id);
    }

    /// Draws a queue index from the routing distribution.
    pub(crate) fn pick(&mut self) -> usize {
        self.routing.pick(&mut self.rng)
    }

    /// Total jobs waiting across all local queues (O(1)).
    pub(crate) fn total_queued(&self) -> usize {
        self.queues.total_queued()
    }

    /// Whether at least one local queue is empty (LP's global gate).
    pub(crate) fn any_empty(&self) -> bool {
        self.queues.any_empty()
    }

    /// Re-enables all queues (LP's departure rule).
    pub(crate) fn enable_all(&mut self) {
        self.queues.enable_all();
    }

    /// Re-enables all queues, appending the re-enabled indices in
    /// disable order (LS's departure rule feeding its visit order).
    pub(crate) fn enable_all_into(&mut self, out: &mut Vec<usize>) {
        self.queues.enable_all_into(out);
    }

    /// Appends every queue's length (used by `queue_lengths_into`).
    pub(crate) fn lengths_into(&self, out: &mut Vec<usize>) {
        out.extend((0..self.queues.len()).map(|i| self.queues.queue(i).len()));
    }

    /// Offers the head of queue `q` to the system under the scope
    /// `scope_for` chooses for it. On a fit the processors are applied,
    /// the job is marked started and popped; on a miss the queue is
    /// disabled (observed) until the next departure. Allocation-free.
    pub(crate) fn try_start(
        &mut self,
        q: usize,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        scope_for: impl FnOnce(&ActiveJob) -> PlacementScope,
    ) -> TryStart {
        let Some(head) = self.queues.queue(q).head() else {
            return TryStart::Empty;
        };
        let job = table.get(head);
        let scope = scope_for(job);
        let placement = place_scoped_observed(
            system.idle_per_cluster(),
            &job.spec.request,
            scope,
            self.rule,
            now,
            head,
            SubmitQueue::Local(q),
            obs,
        );
        match placement {
            Some(p) => {
                system.apply(&p);
                table.mark_started(head, p, now);
                self.queues.pop(q);
                TryStart::Started(head)
            }
            None => {
                self.queues.disable_observed(q, now, obs);
                TryStart::Disabled
            }
        }
    }
}
