//! LP — local queues with priority over a global queue (§2.5, policy 3).
//!
//! "Each cluster has its own local scheduler with a local queue and all
//! the single-component jobs are distributed among the local queues, and
//! there is a global scheduler with a global queue where all the
//! multi-component jobs are placed. The local schedulers have priority:
//! the global scheduler can schedule jobs only when at least one local
//! queue is empty. When a job departs, if one or more of the local queues
//! are empty both the global queue and the local queues are enabled. If
//! no local queue is empty only the local queues are enabled and
//! repeatedly visited; the global queue is enabled and added to the list
//! of queues which are visited when at least one of the local queues gets
//! empty. When both the global queue and the local queues are enabled at
//! job departures, they are always enabled starting with the global
//! queue."

use coalloc_workload::{JobSpec, QueueRouting, RequestKind};
use desim::{RngStream, SimTime};

use crate::audit::{PlacementScope, SimObserver};
use crate::job::{ActiveJob, JobId, JobTable, Placement, SubmitQueue};
use crate::placement::PlacementRule;
use crate::queue::JobQueue;
use crate::system::MultiCluster;

use super::local::{LocalQueues, TryStart};
use super::{PolicyOptions, Scheduler};

/// The scope LP places a locally queued job under: ordered requests name
/// their cluster themselves, everything else is confined to the queue's
/// own cluster.
fn lp_local_scope(job: &ActiveJob, q: usize) -> PlacementScope {
    if job.spec.request.kind() == RequestKind::Ordered {
        PlacementScope::System
    } else {
        PlacementScope::Cluster(q)
    }
}

/// The LP policy: per-cluster local queues for single-component jobs, one
/// low-priority global queue for multi-component jobs.
#[derive(Debug)]
pub struct LocalPriority {
    locals: LocalQueues,
    global: JobQueue,
}

impl LocalPriority {
    /// Builds the policy for `clusters` clusters; `routing` spreads the
    /// single-component jobs over the local queues.
    pub fn new(
        clusters: usize,
        routing: QueueRouting,
        rng: RngStream,
        rule: PlacementRule,
    ) -> Self {
        LocalPriority::with_options(clusters, routing, rng, rule, PolicyOptions::default())
    }

    /// [`LocalPriority::new`] with explicit disposition/discipline
    /// options.
    pub fn with_options(
        clusters: usize,
        routing: QueueRouting,
        rng: RngStream,
        rule: PlacementRule,
        opts: PolicyOptions,
    ) -> Self {
        LocalPriority {
            locals: LocalQueues::with_options(clusters, routing, rng, rule, opts),
            global: JobQueue::new(),
        }
    }

    /// Whether the global scheduler may act now: its queue is enabled and
    /// at least one local queue is empty.
    fn global_may_schedule(&self) -> bool {
        self.global.is_enabled() && self.locals.any_empty()
    }

    fn try_start_global(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
    ) -> Option<JobId> {
        let head = self.global.head()?;
        let ok = self.locals.flex_try_start(
            now,
            system,
            table,
            head,
            SubmitQueue::Global,
            PlacementScope::System,
            obs,
            None,
        );
        if ok {
            self.global.pop();
            Some(head)
        } else {
            self.global.disable_observed(now, SubmitQueue::Global, obs);
            None
        }
    }

    /// The global queue's backfilling scan (EASY/conservative). Runs
    /// only while the priority gate is open — backfilled global jobs are
    /// still global jobs, so "the global scheduler can schedule jobs
    /// only when at least one local queue is empty" applies to them too.
    /// The disable latch does not block the scan: it pins the head,
    /// whose shadow reservation the scan protects.
    fn backfill_global(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        started: &mut Vec<JobId>,
    ) {
        if self.global.len() < 2 || !self.locals.any_empty() {
            return;
        }
        let head = self.global.head().expect("len >= 2");
        let mut bound = self.locals.flex_shadow(
            system.idle_per_cluster(),
            &table.get(head).spec.request,
            PlacementScope::System,
            now.seconds(),
        );
        let conservative = self.locals.conservative();
        let mut pos = 1;
        while pos < self.global.len() {
            let id = self.global.get(pos).expect("pos < len");
            let ok = self.locals.flex_try_start(
                now,
                system,
                table,
                id,
                SubmitQueue::Global,
                PlacementScope::System,
                obs,
                Some(bound),
            );
            if ok {
                self.global.remove(pos);
                started.push(id);
            } else {
                if conservative {
                    let shadow = self.locals.flex_shadow(
                        system.idle_per_cluster(),
                        &table.get(id).spec.request,
                        PlacementScope::System,
                        now.seconds(),
                    );
                    bound = bound.min(shadow);
                }
                pos += 1;
            }
        }
    }
}

impl Scheduler for LocalPriority {
    fn name(&self) -> &'static str {
        "LP"
    }

    fn route(&mut self, spec: &JobSpec) -> SubmitQueue {
        if spec.request.is_multi() {
            SubmitQueue::Global
        } else if spec.request.kind() == RequestKind::Ordered {
            // An ordered single-component job belongs to the queue of the
            // cluster it names.
            SubmitQueue::Local(spec.request.targets().expect("ordered")[0])
        } else {
            SubmitQueue::Local(self.locals.pick())
        }
    }

    fn enqueue(&mut self, id: JobId, queue: SubmitQueue) {
        match queue {
            SubmitQueue::Global => self.global.push(id),
            SubmitQueue::Local(q) => self.locals.push(q, id),
        }
    }

    fn on_departure(&mut self) {
        // Locals are always re-enabled; the global queue only when some
        // local queue is empty ("starting with the global queue" is
        // realized by visiting it first in every scheduling round).
        self.locals.enable_all();
        if self.locals.any_empty() {
            self.global.enable();
        }
    }

    fn requeue_front(&mut self, id: JobId, queue: SubmitQueue) {
        match queue {
            SubmitQueue::Global => self.global.push_front(id),
            SubmitQueue::Local(q) => self.locals.push_front(q, id),
        }
    }

    fn schedule_into(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        started: &mut Vec<JobId>,
    ) {
        loop {
            let mut progress = false;
            // The global queue is visited first whenever it may schedule.
            if self.global_may_schedule() {
                if let Some(id) = self.try_start_global(now, system, table, obs) {
                    started.push(id);
                    progress = true;
                }
            }
            for q in 0..self.locals.len() {
                if !self.locals.is_enabled(q) {
                    continue;
                }
                // Ordered single-component jobs name their cluster
                // themselves; everything else is confined to the queue's
                // own cluster.
                let attempt =
                    self.locals.try_start(q, now, system, table, obs, |job| lp_local_scope(job, q));
                if let TryStart::Started(id) = attempt {
                    started.push(id);
                    progress = true;
                    // "The global queue is enabled … when at least one of
                    // the local queues gets empty."
                    if self.locals.is_empty(q) {
                        self.global.enable();
                    }
                }
            }
            if !progress {
                break;
            }
        }
        if self.locals.backfills() {
            self.backfill_global(now, system, table, obs, started);
            for q in 0..self.locals.len() {
                self.locals.backfill_queue(q, now, system, table, obs, started, |job| {
                    lp_local_scope(job, q)
                });
            }
        }
    }

    fn job_departed(&mut self, id: JobId) {
        self.locals.note_departed(id);
    }

    fn job_resized(&mut self, now: SimTime, id: JobId, new_placement: &Placement) {
        self.locals.note_resized(now, id, new_placement);
    }

    fn queued(&self) -> usize {
        self.locals.total_queued() + self.global.len()
    }

    fn num_queues(&self) -> usize {
        self.locals.len() + 1
    }

    fn queue_lengths_into(&self, out: &mut Vec<usize>) {
        self.locals.lengths_into(out);
        out.push(self.global.len());
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::job::ActiveJob;

    fn setup() -> (LocalPriority, MultiCluster, JobTable) {
        let p = LocalPriority::new(
            4,
            QueueRouting::balanced(4),
            RngStream::new(7),
            PlacementRule::WorstFit,
        );
        (p, MultiCluster::das_multicluster(), JobTable::new())
    }

    fn submit_local(
        p: &mut LocalPriority,
        table: &mut JobTable,
        q: usize,
        size: u32,
        now: f64,
    ) -> JobId {
        let s = spec(&[size]);
        let id = table.insert(ActiveJob::new(s, SimTime::new(now), SubmitQueue::Local(q)));
        p.enqueue(id, SubmitQueue::Local(q));
        id
    }

    fn submit_global(
        p: &mut LocalPriority,
        table: &mut JobTable,
        components: &[u32],
        now: f64,
    ) -> JobId {
        let s = spec(components);
        let id = table.insert(ActiveJob::new(s, SimTime::new(now), SubmitQueue::Global));
        p.enqueue(id, SubmitQueue::Global);
        id
    }

    #[test]
    fn routing_splits_by_component_count() {
        let (mut p, _, _) = setup();
        assert!(matches!(p.route(&spec(&[16])), SubmitQueue::Local(_)));
        assert_eq!(p.route(&spec(&[16, 16])), SubmitQueue::Global);
    }

    #[test]
    fn global_runs_when_a_local_queue_is_empty() {
        let (mut p, mut sys, mut table) = setup();
        // All local queues empty -> gate open.
        let g = submit_global(&mut p, &mut table, &[16, 16], 0.0);
        let started = pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(started, vec![g]);
    }

    #[test]
    fn global_blocked_while_no_local_queue_is_empty() {
        let (mut p, mut sys, mut table) = setup();
        // Fill every cluster and leave one waiting job in every local
        // queue, so no local queue is empty.
        let mut fillers = Vec::new();
        for q in 0..4 {
            fillers.push(submit_local(&mut p, &mut table, q, 32, 0.0));
        }
        pass(&mut p, &mut sys, &mut table, 0.0);
        for q in 0..4 {
            submit_local(&mut p, &mut table, q, 1, 0.0);
        }
        assert!(pass(&mut p, &mut sys, &mut table, 0.0).is_empty());
        // A small global job arrives; no local queue is empty, so the
        // gate is closed.
        let g = submit_global(&mut p, &mut table, &[1, 1], 1.0);
        depart(&mut p, &mut sys, &table, fillers[0]);
        let started = pass(&mut p, &mut sys, &mut table, 2.0);
        // Only cluster 0's local job starts; the global job needs idle
        // processors in *two* distinct clusters and all others are full —
        // and by then the gate closes again anyway.
        assert_eq!(started.len(), 1);
        assert!(!started.contains(&g));
        // A second departure frees cluster 1: its local job starts, and
        // with two clusters partly idle and queue 0 empty the gate is
        // open, so the global job is co-allocated.
        depart(&mut p, &mut sys, &table, fillers[1]);
        let started = pass(&mut p, &mut sys, &mut table, 3.0);
        assert_eq!(started.len(), 2);
        assert!(started.contains(&g));
        assert_eq!(started[0], g, "the global queue is visited first");
    }

    #[test]
    fn gate_opens_mid_pass_when_local_queue_drains() {
        let (mut p, mut sys, mut table) = setup();
        // One waiting local job per queue; system empty.
        for q in 0..4 {
            submit_local(&mut p, &mut table, q, 8, 0.0);
        }
        let g = submit_global(&mut p, &mut table, &[8, 8], 0.0);
        let started = pass(&mut p, &mut sys, &mut table, 0.0);
        // Locals start (draining their queues), the gate opens, and the
        // global job starts in a later round of the same pass.
        assert_eq!(started.len(), 5);
        assert_eq!(*started.last().expect("five started"), g);
    }

    #[test]
    fn global_disabled_until_departure_after_misfit() {
        let (mut p, mut sys, mut table) = setup();
        let filler = submit_local(&mut p, &mut table, 0, 32, 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        // Global head needs 32 in every cluster: does not fit -> disabled.
        let big = submit_global(&mut p, &mut table, &[32, 32, 32, 32], 1.0);
        assert!(pass(&mut p, &mut sys, &mut table, 1.0).is_empty());
        // Even though the gate is open (locals empty), the global queue is
        // disabled, so a newly fitting small global job behind it waits.
        submit_global(&mut p, &mut table, &[4, 4], 2.0);
        assert!(pass(&mut p, &mut sys, &mut table, 2.0).is_empty());
        depart(&mut p, &mut sys, &table, filler);
        let started = pass(&mut p, &mut sys, &mut table, 3.0);
        assert_eq!(started[0], big, "FCFS in the global queue");
        assert_eq!(started.len(), 1, "the (4,4) job waits: no processors left");
    }

    #[test]
    fn global_first_visit_can_take_a_local_cluster() {
        let (mut p, mut sys, mut table) = setup();
        // The gate is open (queues 1–3 empty), so the global queue is
        // visited first: Worst Fit ties break to clusters 0 and 1, and
        // the local job of cluster 0 is left blocked on its own cluster.
        let l = submit_local(&mut p, &mut table, 0, 30, 0.0);
        let g = submit_global(&mut p, &mut table, &[30, 30], 0.0);
        let started = pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(started, vec![g]);
        assert_eq!(p.queued(), 1);
        // Once the global job departs, the local one runs on cluster 0.
        depart(&mut p, &mut sys, &table, g);
        let started = pass(&mut p, &mut sys, &mut table, 1.0);
        assert_eq!(started, vec![l]);
        assert_eq!(table.get(l).placement.as_ref().expect("started").assignments(), &[(0, 30)]);
    }

    #[test]
    fn requeue_front_works_for_both_queue_kinds() {
        let (mut p, mut sys, mut table) = setup();
        // A running global job is killed; it must start again before a
        // younger global job.
        let g = submit_global(&mut p, &mut table, &[16, 16], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        let g2 = submit_global(&mut p, &mut table, &[16, 16], 1.0);
        sys.release(table.get(g).placement.as_ref().unwrap());
        table.get_mut(g).placement = None;
        table.get_mut(g).start = None;
        p.requeue_front(g, SubmitQueue::Global);
        p.on_departure();
        let started = pass(&mut p, &mut sys, &mut table, 1.0);
        assert_eq!(started[0], g, "the global victim regains its head");
        assert!(started.contains(&g2));
        // Same for a local victim (size 16: the two running global jobs
        // leave only 16 idle on cluster 2).
        let a = submit_local(&mut p, &mut table, 2, 16, 2.0);
        pass(&mut p, &mut sys, &mut table, 2.0);
        let b = submit_local(&mut p, &mut table, 2, 16, 3.0);
        sys.release(table.get(a).placement.as_ref().unwrap());
        table.get_mut(a).placement = None;
        table.get_mut(a).start = None;
        p.requeue_front(a, SubmitQueue::Local(2));
        p.on_departure();
        let started = pass(&mut p, &mut sys, &mut table, 3.0);
        assert_eq!(started, vec![a], "the local victim precedes {b:?}");
    }

    #[test]
    fn queue_lengths_include_global_tail() {
        let (mut p, mut sys, mut table) = setup();
        submit_local(&mut p, &mut table, 1, 32, 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        submit_local(&mut p, &mut table, 1, 2, 0.0);
        submit_global(&mut p, &mut table, &[32, 32, 32, 32], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(p.queue_lengths(), vec![0, 1, 0, 0, 1]);
        assert_eq!(p.queued(), 2);
        assert_eq!(p.name(), "LP");
    }
}
