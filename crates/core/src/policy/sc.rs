//! SC — the single-cluster FCFS baseline (§2.5).
//!
//! "For comparison, we consider the single-cluster case where there are
//! only single-component jobs and we use FCFS as scheduling policy."
//!
//! SC *is* the global scheduler run over a one-cluster system fed with
//! total requests: one FCFS queue, and "choosing a cluster" is trivial.
//! We therefore reuse [`GlobalScheduler`]; this module pins that
//! equivalence down with tests and provides the canonical constructor.

use crate::placement::PlacementRule;

use super::{GlobalScheduler, PolicyOptions};

/// Builds the SC policy: FCFS over one queue. Pair it with a one-cluster
/// [`crate::system::MultiCluster`] (e.g.
/// [`crate::system::MultiCluster::das_single_cluster`]) and a workload of
/// total requests ([`coalloc_workload::Workload::single_cluster`]).
pub fn single_cluster_policy(rule: PlacementRule) -> GlobalScheduler {
    GlobalScheduler::new(rule)
}

/// [`single_cluster_policy`] with explicit [`PolicyOptions`]: on one
/// cluster moldability is vacuous (there is nothing to re-split across),
/// but EASY and conservative backfilling apply exactly as under GS.
pub fn single_cluster_policy_with(rule: PlacementRule, opts: PolicyOptions) -> GlobalScheduler {
    GlobalScheduler::with_options(rule, opts)
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::super::Scheduler;
    use super::*;
    use crate::job::JobTable;
    use crate::system::MultiCluster;

    #[test]
    fn fcfs_on_one_cluster() {
        let mut p = single_cluster_policy(PlacementRule::WorstFit);
        let mut sys = MultiCluster::das_single_cluster();
        let mut table = JobTable::new();
        let a = submit(&mut p, &mut table, &[100], 0.0);
        let b = submit(&mut p, &mut table, &[100], 0.0); // blocks: only 28 idle
        let c = submit(&mut p, &mut table, &[10], 0.0); // waits behind b
        let started = pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(started, vec![a]);
        assert_eq!(p.queued(), 2);
        depart(&mut p, &mut sys, &table, a);
        let started = pass(&mut p, &mut sys, &mut table, 1.0);
        assert_eq!(started, vec![b, c], "b first (FCFS), then c fits too");
        assert_eq!(sys.total_busy(), 110);
    }

    #[test]
    fn whole_system_job_drains_the_cluster() {
        // §3.2: "When a job requiring 128 processors is at the top of the
        // queue, SC waits for the entire system to become empty."
        let mut p = single_cluster_policy(PlacementRule::WorstFit);
        let mut sys = MultiCluster::das_single_cluster();
        let mut table = JobTable::new();
        let a = submit(&mut p, &mut table, &[64], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        let big = submit(&mut p, &mut table, &[128], 1.0);
        submit(&mut p, &mut table, &[1], 1.0);
        assert!(pass(&mut p, &mut sys, &mut table, 1.0).is_empty());
        depart(&mut p, &mut sys, &table, a);
        let started = pass(&mut p, &mut sys, &mut table, 2.0);
        assert_eq!(started, vec![big]);
        assert_eq!(sys.total_busy(), 128);
    }
}
