//! GS — the global scheduler (§2.5, policy 1).
//!
//! "The system has one global scheduler with one global queue, for both
//! single- and multi-component jobs. All jobs are submitted to the global
//! queue. The global scheduler knows at any moment the number of idle
//! processors in each cluster and based on this information chooses the
//! clusters for each job."
//!
//! FCFS: only the head of the queue may start; when it does not fit, the
//! queue is (implicitly) disabled until the next departure — since
//! arrivals cannot increase the number of idle processors, re-checking
//! the head before a departure is a no-op, so no explicit flag is needed.

use coalloc_workload::JobSpec;
use desim::SimTime;

use crate::audit::{PlacementScope, SimObserver};
use crate::job::{JobId, JobTable, Placement, SubmitQueue};
use crate::placement::PlacementRule;
use crate::queue::JobQueue;
use crate::system::MultiCluster;

use super::{FlexEngine, PolicyOptions, Scheduler};

/// The GS policy: one global FCFS queue over the whole system.
#[derive(Debug)]
pub struct GlobalScheduler {
    queue: JobQueue,
    rule: PlacementRule,
    flex: FlexEngine,
}

impl GlobalScheduler {
    /// Builds the policy with the given placement rule (the paper uses
    /// Worst Fit) and the default options — rigid jobs, strict FCFS.
    pub fn new(rule: PlacementRule) -> Self {
        GlobalScheduler::with_options(rule, PolicyOptions::default())
    }

    /// [`GlobalScheduler::new`] with explicit disposition/discipline
    /// options.
    pub fn with_options(rule: PlacementRule, opts: PolicyOptions) -> Self {
        GlobalScheduler { queue: JobQueue::new(), rule, flex: FlexEngine::new(opts) }
    }

    /// The backfilling scan: with the head blocked (and reserved via its
    /// shadow time), later queued jobs may start iff their estimated end
    /// lies strictly before the reservation they would otherwise delay.
    ///
    /// The head's bound survives each successful backfill unchanged: a
    /// legal backfill releases (by estimate) strictly before the bound,
    /// so replaying the enlarged running set at the bound time yields
    /// the same idle vector — the head still fits there. Conservative
    /// backfilling additionally folds every *skipped* job's own shadow
    /// into the bound, so later candidates cannot delay earlier queued
    /// jobs either (each skipped job's reservation is protected by the
    /// same argument).
    fn backfill(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        started: &mut Vec<JobId>,
    ) {
        let head = match self.queue.head() {
            Some(h) => h,
            None => return,
        };
        let mut bound = self.flex.shadow(
            system.idle_per_cluster(),
            &table.get(head).spec.request,
            PlacementScope::System,
            self.rule,
            now.seconds(),
        );
        let conservative = self.flex.conservative();
        let mut pos = 1;
        while pos < self.queue.len() {
            let id = self.queue.get(pos).expect("pos < len");
            let ok = self.flex.try_start_job(
                now,
                system,
                table,
                id,
                SubmitQueue::Global,
                PlacementScope::System,
                self.rule,
                obs,
                Some(bound),
            );
            if ok {
                self.queue.remove(pos);
                started.push(id);
            } else {
                if conservative {
                    let shadow = self.flex.shadow(
                        system.idle_per_cluster(),
                        &table.get(id).spec.request,
                        PlacementScope::System,
                        self.rule,
                        now.seconds(),
                    );
                    bound = bound.min(shadow);
                }
                pos += 1;
            }
        }
    }
}

impl Scheduler for GlobalScheduler {
    fn name(&self) -> &'static str {
        "GS"
    }

    fn route(&mut self, _spec: &JobSpec) -> SubmitQueue {
        SubmitQueue::Global
    }

    fn enqueue(&mut self, id: JobId, queue: SubmitQueue) {
        debug_assert_eq!(queue, SubmitQueue::Global, "GS has only the global queue");
        self.queue.push(id);
    }

    fn on_departure(&mut self) {
        self.queue.enable();
    }

    fn requeue_front(&mut self, id: JobId, queue: SubmitQueue) {
        debug_assert_eq!(queue, SubmitQueue::Global, "GS has only the global queue");
        self.queue.push_front(id);
    }

    fn job_departed(&mut self, id: JobId) {
        self.flex.note_departed(id);
    }

    fn job_resized(&mut self, now: SimTime, id: JobId, new_placement: &Placement) {
        self.flex.note_resized(now, id, new_placement);
    }

    fn schedule_into(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        started: &mut Vec<JobId>,
    ) {
        // Disabled means the head failed to fit since the last departure.
        // Arrivals never increase idle processors, so re-attempting the
        // (deterministic) placement is a guaranteed miss — skip the head
        // loop. Departures re-enable the queue before their pass runs.
        // Under strict FCFS that skips the whole pass; a backfilling
        // discipline still scans behind the (still-reserved) head, since
        // newly arrived jobs may fit around it.
        if self.queue.is_enabled() {
            while let Some(head) = self.queue.head() {
                // GS chooses clusters for every component, including
                // single-component jobs (it has "the freedom to choose
                // the clusters for the single-component jobs", §3.1.1).
                // Ordered and flexible requests are honored per their
                // structure; a moldable job may re-split here.
                let ok = self.flex.try_start_job(
                    now,
                    system,
                    table,
                    head,
                    SubmitQueue::Global,
                    PlacementScope::System,
                    self.rule,
                    obs,
                    None,
                );
                if ok {
                    self.queue.pop();
                    started.push(head);
                } else {
                    self.queue.disable_observed(now, SubmitQueue::Global, obs);
                    break;
                }
            }
        }
        if self.flex.backfills() && self.queue.len() >= 2 {
            self.backfill(now, system, table, obs, started);
        }
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn num_queues(&self) -> usize {
        1
    }

    fn queue_lengths_into(&self, out: &mut Vec<usize>) {
        out.push(self.queue.len());
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;
    use crate::job::JobTable;

    fn setup() -> (GlobalScheduler, MultiCluster, JobTable) {
        (
            GlobalScheduler::new(PlacementRule::WorstFit),
            MultiCluster::das_multicluster(),
            JobTable::new(),
        )
    }

    #[test]
    fn starts_fitting_jobs_in_fcfs_order() {
        let (mut p, mut sys, mut table) = setup();
        let a = submit(&mut p, &mut table, &[16, 16], 0.0);
        let b = submit(&mut p, &mut table, &[8], 0.0);
        let started = pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(started, vec![a, b]);
        assert_eq!(sys.total_busy(), 40);
        assert_eq!(p.queued(), 0);
    }

    #[test]
    fn head_of_line_blocking() {
        let (mut p, mut sys, mut table) = setup();
        // Fill the system so a (32,32,32,32) job blocks.
        let filler = submit(&mut p, &mut table, &[32], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        let big = submit(&mut p, &mut table, &[32, 32, 32, 32], 1.0);
        let small = submit(&mut p, &mut table, &[1], 1.0);
        let started = pass(&mut p, &mut sys, &mut table, 1.0);
        assert!(started.is_empty(), "FCFS: the small job must wait behind the big one");
        assert_eq!(p.queued(), 2);
        // After the filler departs the big job fills the whole system;
        // the small job stays blocked behind zero idle processors.
        depart(&mut p, &mut sys, &table, filler);
        let started = pass(&mut p, &mut sys, &mut table, 2.0);
        assert_eq!(started, vec![big]);
        assert_eq!(sys.total_busy(), 128);
        assert_eq!(p.queued(), 1);
        // When the big job departs, the small one finally runs.
        depart(&mut p, &mut sys, &table, big);
        let started = pass(&mut p, &mut sys, &mut table, 3.0);
        assert_eq!(started, vec![small]);
        assert_eq!(sys.total_busy(), 1);
    }

    #[test]
    fn single_component_jobs_go_anywhere() {
        let (mut p, mut sys, mut table) = setup();
        // Load cluster 0 heavily; a single-component job must pick another.
        submit(&mut p, &mut table, &[30], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        submit(&mut p, &mut table, &[30], 0.0);
        let started = pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(started.len(), 1);
        assert_eq!(sys.total_busy(), 60);
        // Worst Fit put them on different clusters.
        let idle = sys.idle_per_cluster();
        assert_eq!(idle.iter().filter(|&&x| x == 2).count(), 2, "{idle:?}");
    }

    #[test]
    fn requeue_front_restores_the_head() {
        let (mut p, mut sys, mut table) = setup();
        let a = submit(&mut p, &mut table, &[32, 32], 0.0);
        let b = submit(&mut p, &mut table, &[8], 0.0);
        let started = pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(started, vec![a, b]);
        // a is killed by a fault and re-queued at the front: it must
        // start again before any newer job.
        sys.release(table.get(a).placement.as_ref().unwrap());
        let c = submit(&mut p, &mut table, &[4], 1.0);
        table.get_mut(a).placement = None;
        table.get_mut(a).start = None;
        p.requeue_front(a, SubmitQueue::Global);
        p.on_departure();
        let started = pass(&mut p, &mut sys, &mut table, 1.0);
        assert_eq!(started, vec![a, c], "the victim keeps its FCFS age");
    }

    #[test]
    fn queue_length_reporting() {
        let (mut p, mut sys, mut table) = setup();
        submit(&mut p, &mut table, &[32, 32, 32, 32], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        submit(&mut p, &mut table, &[32, 32, 32, 32], 0.0);
        submit(&mut p, &mut table, &[1], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(p.queue_lengths(), vec![2]);
        assert_eq!(p.name(), "GS");
    }
}
