//! GB — GS with aggressive backfilling (an extension).
//!
//! The paper attributes LS's advantage to "a form of backfilling with a
//! window equal to the number of clusters" (§3.1.1). GB makes that
//! mechanism explicit on the GS substrate: one global queue, but when
//! the head does not fit, the scheduler scans past it and starts the
//! *first* job in queue order that does fit (aggressive backfilling,
//! without reservations). Comparing GS, GB and LS separates what the
//! paper's local queues buy from what backfilling itself buys.
//!
//! No-starvation caveat: without reservations a steady stream of small
//! jobs can starve a large head job — the classic trade-off this
//! variant exists to exhibit.

use coalloc_workload::JobSpec;
use desim::SimTime;

use crate::audit::{PlacementScope, SimObserver};
use crate::job::{JobId, JobTable, Placement, SubmitQueue};
use crate::placement::PlacementRule;
use crate::system::MultiCluster;

use super::{FlexEngine, PolicyOptions, Scheduler};

/// The GB policy: a global queue with aggressive (no-reservation)
/// backfilling.
///
/// Under the `Easy`/`Conservative` disciplines GB trades its
/// aggressiveness for the same reservation-bounded scan as GS: the head
/// gets a shadow-time reservation and only estimated-short jobs may
/// pass it — the no-starvation caveat above then no longer applies.
#[derive(Debug)]
pub struct GlobalBackfill {
    queue: std::collections::VecDeque<JobId>,
    rule: PlacementRule,
    flex: FlexEngine,
}

impl GlobalBackfill {
    /// Builds the policy with the given placement rule and the default
    /// options (rigid jobs, aggressive FCFS-order backfilling).
    pub fn new(rule: PlacementRule) -> Self {
        GlobalBackfill::with_options(rule, PolicyOptions::default())
    }

    /// [`GlobalBackfill::new`] with explicit disposition/discipline
    /// options.
    pub fn with_options(rule: PlacementRule, opts: PolicyOptions) -> Self {
        GlobalBackfill {
            queue: std::collections::VecDeque::new(),
            rule,
            flex: FlexEngine::new(opts),
        }
    }

    /// The paper-era GB pass: repeatedly start the *first* job in queue
    /// order that fits (no reservations).
    fn greedy_pass(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        started: &mut Vec<JobId>,
    ) {
        'outer: loop {
            let mut pos = 0;
            while pos < self.queue.len() {
                let id = self.queue[pos];
                let ok = self.flex.try_start_job(
                    now,
                    system,
                    table,
                    id,
                    SubmitQueue::Global,
                    PlacementScope::System,
                    self.rule,
                    obs,
                    None,
                );
                if ok {
                    self.queue.remove(pos);
                    started.push(id);
                    // Restart from the front: the jobs skipped so far
                    // did not fit in a superset of the current idle
                    // processors, but queue order stays authoritative.
                    continue 'outer;
                }
                pos += 1;
            }
            break;
        }
    }

    /// The reservation-bounded pass (EASY/conservative): identical in
    /// structure to [`super::GlobalScheduler`]'s — see the bound-validity
    /// argument there.
    fn reserved_pass(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        started: &mut Vec<JobId>,
    ) {
        while let Some(&head) = self.queue.front() {
            let ok = self.flex.try_start_job(
                now,
                system,
                table,
                head,
                SubmitQueue::Global,
                PlacementScope::System,
                self.rule,
                obs,
                None,
            );
            if ok {
                self.queue.pop_front();
                started.push(head);
            } else {
                break;
            }
        }
        if self.queue.len() < 2 {
            return;
        }
        let head = self.queue[0];
        let mut bound = self.flex.shadow(
            system.idle_per_cluster(),
            &table.get(head).spec.request,
            PlacementScope::System,
            self.rule,
            now.seconds(),
        );
        let conservative = self.flex.conservative();
        let mut pos = 1;
        while pos < self.queue.len() {
            let id = self.queue[pos];
            let ok = self.flex.try_start_job(
                now,
                system,
                table,
                id,
                SubmitQueue::Global,
                PlacementScope::System,
                self.rule,
                obs,
                Some(bound),
            );
            if ok {
                self.queue.remove(pos);
                started.push(id);
            } else {
                if conservative {
                    let shadow = self.flex.shadow(
                        system.idle_per_cluster(),
                        &table.get(id).spec.request,
                        PlacementScope::System,
                        self.rule,
                        now.seconds(),
                    );
                    bound = bound.min(shadow);
                }
                pos += 1;
            }
        }
    }
}

impl Scheduler for GlobalBackfill {
    fn name(&self) -> &'static str {
        "GB"
    }

    fn route(&mut self, _spec: &JobSpec) -> SubmitQueue {
        SubmitQueue::Global
    }

    fn enqueue(&mut self, id: JobId, queue: SubmitQueue) {
        debug_assert_eq!(queue, SubmitQueue::Global, "GB has only the global queue");
        self.queue.push_back(id);
    }

    fn on_departure(&mut self) {
        // Nothing to re-enable: GB re-scans the whole queue every pass.
    }

    fn requeue_front(&mut self, id: JobId, queue: SubmitQueue) {
        debug_assert_eq!(queue, SubmitQueue::Global, "GB has only the global queue");
        self.queue.push_front(id);
    }

    fn job_departed(&mut self, id: JobId) {
        self.flex.note_departed(id);
    }

    fn job_resized(&mut self, now: SimTime, id: JobId, new_placement: &Placement) {
        self.flex.note_resized(now, id, new_placement);
    }

    fn schedule_into(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        started: &mut Vec<JobId>,
    ) {
        if self.flex.backfills() {
            self.reserved_pass(now, system, table, obs, started);
        } else {
            self.greedy_pass(now, system, table, obs, started);
        }
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn num_queues(&self) -> usize {
        1
    }

    fn queue_lengths_into(&self, out: &mut Vec<usize>) {
        out.push(self.queue.len());
    }
}

#[cfg(test)]
mod tests {
    use super::super::testutil::*;
    use super::*;

    fn setup() -> (GlobalBackfill, MultiCluster, JobTable) {
        (
            GlobalBackfill::new(PlacementRule::WorstFit),
            MultiCluster::das_multicluster(),
            JobTable::new(),
        )
    }

    #[test]
    fn backfills_past_a_blocked_head() {
        let (mut p, mut sys, mut table) = setup();
        let filler = submit(&mut p, &mut table, &[1], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        let big = submit(&mut p, &mut table, &[32, 32, 32, 32], 1.0);
        let small = submit(&mut p, &mut table, &[8], 1.0);
        let started = pass(&mut p, &mut sys, &mut table, 1.0);
        // GS would start nothing here; GB starts the small job past the
        // blocked whole-system job.
        assert_eq!(started, vec![small]);
        assert_eq!(p.queued(), 1);
        let _ = (filler, big);
    }

    #[test]
    fn prefers_queue_order_among_fitting_jobs() {
        let (mut p, mut sys, mut table) = setup();
        submit(&mut p, &mut table, &[31], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        // Three candidates, all fitting: started in FIFO order.
        let a = submit(&mut p, &mut table, &[8], 1.0);
        let b = submit(&mut p, &mut table, &[8], 1.0);
        let c = submit(&mut p, &mut table, &[8], 1.0);
        let started = pass(&mut p, &mut sys, &mut table, 1.0);
        assert_eq!(started, vec![a, b, c]);
    }

    #[test]
    fn starvation_is_possible_without_reservation() {
        let (mut p, mut sys, mut table) = setup();
        // Keep one processor of one cluster busy forever.
        submit(&mut p, &mut table, &[1], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        let big = submit(&mut p, &mut table, &[32, 32, 32, 32], 1.0);
        // A stream of small jobs keeps starting; the big job never does.
        for i in 0..5 {
            let small = submit(&mut p, &mut table, &[4], 2.0 + f64::from(i));
            let started = pass(&mut p, &mut sys, &mut table, 2.0 + f64::from(i));
            assert_eq!(started, vec![small]);
        }
        assert!(!table.get(big).started(), "the whole-system job is starved");
    }

    #[test]
    fn requeue_front_goes_ahead_of_waiting_jobs() {
        let (mut p, mut sys, mut table) = setup();
        let a = submit(&mut p, &mut table, &[8], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        let b = submit(&mut p, &mut table, &[8], 1.0);
        sys.release(table.get(a).placement.as_ref().unwrap());
        table.get_mut(a).placement = None;
        table.get_mut(a).start = None;
        p.requeue_front(a, SubmitQueue::Global);
        let started = pass(&mut p, &mut sys, &mut table, 1.0);
        assert_eq!(started, vec![a, b], "the victim scans first");
    }

    #[test]
    fn name_and_counters() {
        let (mut p, mut sys, mut table) = setup();
        assert_eq!(p.name(), "GB");
        submit(&mut p, &mut table, &[32, 32, 32, 32], 0.0);
        pass(&mut p, &mut sys, &mut table, 0.0);
        assert_eq!(p.queue_lengths(), vec![0]);
    }
}
