//! The disposition/discipline engine shared by every policy.
//!
//! Two orthogonal axes extend the paper's rigid-FCFS model:
//!
//! * **Disposition** ([`coalloc_workload::JobDisposition`]): `Moldable`
//!   jobs re-choose their component split at schedule time against the
//!   current idle vector (the smallest feasible component count wins —
//!   the least wide-area extension the system admits right now);
//!   `Malleable` jobs additionally grow/shrink while running (driven by
//!   the session, see `sim::session`).
//! * **Discipline** ([`crate::queue::QueueDiscipline`]): EASY and
//!   conservative backfilling let estimated-short jobs jump a blocked
//!   queue head if they cannot delay its reservation.
//!
//! Both axes are carried by [`PolicyOptions`] and implemented by the
//! per-scheduler [`FlexEngine`]. The default options (`Rigid` + `Fcfs`)
//! make the engine fully passive: no running-set tracking, no estimate
//! arithmetic, and the exact event stream of the pre-flex schedulers —
//! the byte-identity regression tests pin this.

use coalloc_workload::{JobDisposition, JobRequest, RequestKind, Workload};
use desim::{Duration, SimTime};

use crate::audit::{PlacementDecision, PlacementScope, SimObserver};
use crate::job::{ActiveJob, JobId, JobTable, Placement, SubmitQueue};
use crate::placement::{place_scoped, PlacementRule};
use crate::queue::QueueDiscipline;
use crate::system::MultiCluster;

/// The policy-independent scheduling options threaded from
/// [`crate::SimConfig`] into every scheduler by
/// [`super::PolicyKind::build_with`].
#[derive(Clone, Debug)]
pub struct PolicyOptions {
    /// How much placement freedom jobs grant after submission.
    pub disposition: JobDisposition,
    /// The order in which waiting jobs may start.
    pub discipline: QueueDiscipline,
    /// Runtime-estimate multiplier on the base service time for jobs
    /// submitted without an explicit [`JobRequest::estimate`] (the
    /// backfilling disciplines need an estimated end for every job;
    /// `f64::INFINITY` disables backfilling entirely, collapsing EASY
    /// onto FCFS).
    pub estimate_factor: f64,
    /// The workload model, for the wide-area extension factor the
    /// estimates must include (estimates mirror the occupancy model:
    /// base service times the extension for the spanned clusters).
    pub workload: Workload,
}

impl Default for PolicyOptions {
    /// The paper's model: rigid jobs, strict FCFS. The workload field is
    /// never consulted on this passive path (estimates and moldable
    /// splits are both off), so the DAS default is a placeholder.
    fn default() -> Self {
        PolicyOptions {
            disposition: JobDisposition::Rigid,
            discipline: QueueDiscipline::Fcfs,
            estimate_factor: 2.0,
            workload: Workload::das(16),
        }
    }
}

/// The estimated occupancy of a job spanning `span` clusters: its
/// submitted estimate (or `estimate_factor` times its base service)
/// times the wide-area extension factor — the exact arithmetic the
/// schedulers and the invariant auditor must share, so the auditor can
/// re-derive backfilling decisions bit-for-bit.
pub(crate) fn estimated_occupancy(
    workload: &Workload,
    estimate_factor: f64,
    request: &JobRequest,
    base_service: Duration,
    span: usize,
) -> f64 {
    let base = request.estimate().unwrap_or(estimate_factor * base_service.seconds());
    base * workload.extension_factor(span)
}

/// Replays the running jobs' releases (sorted ascending by estimated
/// end) onto `scratch_idle` (pre-loaded with the current idle vector)
/// and returns the earliest estimated time `request` fits under
/// `scope` — the *shadow time* backfilling reserves for a blocked
/// queue head. `f64::INFINITY` when even a fully drained system cannot
/// fit it (or every estimate is infinite).
///
/// Shared verbatim by the schedulers and the invariant auditor.
pub(crate) fn replay_shadow(
    scratch_idle: &mut [u32],
    releases: &[(f64, Placement)],
    request: &JobRequest,
    scope: PlacementScope,
    rule: PlacementRule,
    now: f64,
) -> f64 {
    // A request with more components than clusters can never fit, at any
    // time (the placement layer asserts on it rather than failing).
    if scope == PlacementScope::System
        && request.kind() == RequestKind::Unordered
        && request.num_components() > scratch_idle.len()
    {
        return f64::INFINITY;
    }
    if place_scoped(scratch_idle, request, scope, rule).is_some() {
        return now;
    }
    for (t, p) in releases {
        for &(cluster, procs) in p.assignments() {
            scratch_idle[cluster] += procs;
        }
        if place_scoped(scratch_idle, request, scope, rule).is_some() {
            return *t;
        }
    }
    f64::INFINITY
}

/// One tracked running job: the estimated end backfilling replays, and
/// the placement whose release the replay applies.
#[derive(Debug, Clone)]
struct RunningEst {
    id: JobId,
    est_end: f64,
    placement: Placement,
}

/// The per-scheduler engine implementing both option axes.
///
/// Schedulers own one engine each and funnel every start attempt
/// through [`FlexEngine::try_start_job`]; the backfilling scans
/// additionally consult [`FlexEngine::shadow`]. Under the default
/// options the engine is pure pass-through (see the module docs).
#[derive(Debug)]
pub(crate) struct FlexEngine {
    opts: PolicyOptions,
    /// Running jobs, tracked only when the discipline backfills.
    running: Vec<RunningEst>,
    /// Reused scratch: releases sorted by (est_end, id) for the replay.
    releases: Vec<(f64, Placement)>,
    /// Reused scratch: the idle vector the replay mutates.
    shadow_idle: Vec<u32>,
}

impl FlexEngine {
    pub(crate) fn new(opts: PolicyOptions) -> Self {
        FlexEngine { opts, running: Vec::new(), releases: Vec::new(), shadow_idle: Vec::new() }
    }

    /// Whether the discipline may start non-head jobs (and the engine
    /// therefore tracks the running set).
    pub(crate) fn backfills(&self) -> bool {
        self.opts.discipline.backfills()
    }

    /// Whether later candidates must respect every earlier queued job's
    /// reservation, not just the head's.
    pub(crate) fn conservative(&self) -> bool {
        self.opts.discipline == QueueDiscipline::Conservative
    }

    /// The estimated end a job would have if started now with the given
    /// placement span.
    fn est_end(&self, now: f64, job: &ActiveJob, span: usize) -> f64 {
        now + estimated_occupancy(
            &self.opts.workload,
            self.opts.estimate_factor,
            &job.spec.request,
            job.spec.base_service,
            span,
        )
    }

    /// Disposition-aware fit check (no events, nothing committed).
    ///
    /// Rigid jobs place their submitted request as-is. Moldable and
    /// malleable jobs probe system-wide splits of their total in
    /// ascending component count, starting from the submitted split —
    /// the smallest feasible count wins, so whenever the submitted
    /// split fits the decision (and the event stream) is identical to
    /// the rigid one. Cluster-scoped attempts (LS/LP single-component
    /// confinement) and ordered requests never mold.
    ///
    /// Returns the placement plus the re-split request when the split
    /// changed.
    fn find_placement(
        &self,
        idle: &[u32],
        request: &JobRequest,
        scope: PlacementScope,
        rule: PlacementRule,
    ) -> Option<(Placement, Option<JobRequest>)> {
        if let Some(p) = place_scoped(idle, request, scope, rule) {
            return Some((p, None));
        }
        if self.opts.disposition == JobDisposition::Rigid
            || scope != PlacementScope::System
            || request.kind() != RequestKind::Unordered
        {
            return None;
        }
        // Probe wider even splits: more, smaller components fragment
        // better at the price of the wide-area extension — moldability
        // trades run time for start time.
        let total = request.total() as usize;
        let max_n = idle.len().min(total);
        for n in request.num_components() + 1..=max_n {
            let candidate = request.resplit_even(n);
            if let Some(p) = place_scoped(idle, &candidate, scope, rule) {
                return Some((p, Some(candidate)));
            }
        }
        None
    }

    /// Attempts to start `id` now: disposition-aware placement, the
    /// backfilling reservation check, event emission (a molded split
    /// first, then the placement decision), the system/table commit and
    /// running-set tracking. `max_est_end` is the backfilling bound —
    /// the candidate may only start if its estimated end lies *strictly*
    /// before it (`None` for queue heads, which hold no one up).
    ///
    /// Returns whether the job started; the caller removes it from its
    /// queue.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn try_start_job(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        id: JobId,
        queue: SubmitQueue,
        scope: PlacementScope,
        rule: PlacementRule,
        obs: &mut dyn SimObserver,
        max_est_end: Option<f64>,
    ) -> bool {
        let job = table.get(id);
        let found = self.find_placement(system.idle_per_cluster(), &job.spec.request, scope, rule);
        let Some((placement, molded)) = found else {
            return false;
        };
        if let Some(bound) = max_est_end {
            let est = self.est_end(now.seconds(), job, placement.assignments().len());
            if est >= bound {
                return false;
            }
        }
        if let Some(new_request) = molded {
            obs.on_job_molded(now, id, &job.spec.request, &new_request);
            table.get_mut(id).spec.request = new_request;
        }
        obs.on_placement(
            now,
            &PlacementDecision {
                id,
                queue,
                scope,
                idle_before: system.idle_per_cluster(),
                placement: &placement,
            },
        );
        system.apply(&placement);
        if self.backfills() {
            let est_end = self.est_end(now.seconds(), table.get(id), placement.assignments().len());
            self.running.push(RunningEst { id, est_end, placement: placement.clone() });
        }
        table.mark_started(id, placement, now);
        true
    }

    /// The shadow time of a blocked queue head: the earliest estimated
    /// time its request fits, replaying the tracked running set (see
    /// [`replay_shadow`]).
    pub(crate) fn shadow(
        &mut self,
        idle: &[u32],
        request: &JobRequest,
        scope: PlacementScope,
        rule: PlacementRule,
        now: f64,
    ) -> f64 {
        self.releases.clear();
        self.releases.extend(self.running.iter().map(|r| (r.est_end, r.placement.clone())));
        // Stable sort: equal estimates keep their (deterministic) start
        // order, so the replay is reproducible for a given seed.
        self.releases.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("estimates are never NaN"));
        self.shadow_idle.clear();
        self.shadow_idle.extend_from_slice(idle);
        replay_shadow(&mut self.shadow_idle, &self.releases, request, scope, rule, now)
    }

    /// A tracked job departed (or was killed by a fault).
    pub(crate) fn note_departed(&mut self, id: JobId) {
        if let Some(pos) = self.running.iter().position(|r| r.id == id) {
            self.running.swap_remove(pos);
        }
    }

    /// A tracked job was resized: its estimated remaining time scales
    /// by the inverse of its processor-count change *and* by the ratio
    /// of the wide-area extension factors for the new and old spans —
    /// the same base-work conservation the session applies to the
    /// actual departure. When the span is unchanged the factor ratio is
    /// exactly `1.0` (IEEE `x / x`), so same-span resizes keep their
    /// historical bit pattern.
    pub(crate) fn note_resized(&mut self, now: SimTime, id: JobId, new_placement: &Placement) {
        if let Some(entry) = self.running.iter_mut().find(|r| r.id == id) {
            let old_total = f64::from(entry.placement.total());
            let new_total = f64::from(new_placement.total());
            if entry.est_end.is_finite() {
                let f_old =
                    self.opts.workload.extension_factor(entry.placement.assignments().len());
                let f_new = self.opts.workload.extension_factor(new_placement.assignments().len());
                let t = now.seconds();
                entry.est_end = t + (entry.est_end - t) * old_total / new_total * (f_new / f_old);
            }
            entry.placement = new_placement.clone();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::audit::NullObserver;
    use crate::job::JobTable;
    use desim::Duration;

    fn opts(disposition: JobDisposition, discipline: QueueDiscipline) -> PolicyOptions {
        PolicyOptions { disposition, discipline, ..PolicyOptions::default() }
    }

    fn job(table: &mut JobTable, components: &[u32]) -> JobId {
        let spec = coalloc_workload::JobSpec {
            request: JobRequest::new(components.to_vec()),
            base_service: Duration::new(100.0),
        };
        table.insert(ActiveJob::new(spec, SimTime::new(0.0), SubmitQueue::Global))
    }

    #[test]
    fn rigid_engine_is_pass_through() {
        let mut engine = FlexEngine::new(PolicyOptions::default());
        let mut system = MultiCluster::das_multicluster();
        let mut table = JobTable::new();
        let id = job(&mut table, &[16, 16]);
        assert!(engine.try_start_job(
            SimTime::new(0.0),
            &mut system,
            &mut table,
            id,
            SubmitQueue::Global,
            PlacementScope::System,
            PlacementRule::WorstFit,
            &mut NullObserver,
            None,
        ));
        assert!(engine.running.is_empty(), "no tracking under FCFS");
        assert_eq!(table.get(id).spec.request.components(), &[16, 16], "no molding under Rigid");
    }

    #[test]
    fn moldable_splits_wider_when_the_submitted_split_is_blocked() {
        let mut engine = FlexEngine::new(opts(JobDisposition::Moldable, QueueDiscipline::Fcfs));
        let mut system = MultiCluster::das_multicluster();
        // Occupy so the idle vector is (16, 16, 16, 32): a (32,32) job is
        // blocked (only one cluster has 32 idle), an even 3-way split
        // (22,21,21) is too (only one cluster has ≥21 idle), but the
        // 4-way re-split (16,16,16,16) fits everywhere.
        system.apply(&Placement::new(vec![(0, 16), (1, 16), (2, 16)]));
        let mut table = JobTable::new();
        let id = job(&mut table, &[32, 32]);
        assert!(engine.try_start_job(
            SimTime::new(0.0),
            &mut system,
            &mut table,
            id,
            SubmitQueue::Global,
            PlacementScope::System,
            PlacementRule::WorstFit,
            &mut NullObserver,
            None,
        ));
        assert_eq!(table.get(id).spec.request.components(), &[16, 16, 16, 16]);
        assert_eq!(table.get(id).spec.request.total(), 64, "molding conserves the total");
    }

    #[test]
    fn moldable_prefers_the_submitted_split_when_it_fits() {
        let mut engine = FlexEngine::new(opts(JobDisposition::Moldable, QueueDiscipline::Fcfs));
        let mut system = MultiCluster::das_multicluster();
        let mut table = JobTable::new();
        let id = job(&mut table, &[32, 32]);
        assert!(engine.try_start_job(
            SimTime::new(0.0),
            &mut system,
            &mut table,
            id,
            SubmitQueue::Global,
            PlacementScope::System,
            PlacementRule::WorstFit,
            &mut NullObserver,
            None,
        ));
        assert_eq!(table.get(id).spec.request.components(), &[32, 32], "smallest n wins");
    }

    #[test]
    fn backfill_bound_blocks_long_estimates() {
        let mut engine = FlexEngine::new(opts(JobDisposition::Rigid, QueueDiscipline::Easy));
        let mut system = MultiCluster::das_multicluster();
        let mut table = JobTable::new();
        let id = job(&mut table, &[8]);
        // Estimated end = 0 + 2.0 × 100 = 200: a bound of 150 rejects,
        // 250 admits.
        assert!(!engine.try_start_job(
            SimTime::new(0.0),
            &mut system,
            &mut table,
            id,
            SubmitQueue::Global,
            PlacementScope::System,
            PlacementRule::WorstFit,
            &mut NullObserver,
            Some(150.0),
        ));
        assert!(engine.try_start_job(
            SimTime::new(0.0),
            &mut system,
            &mut table,
            id,
            SubmitQueue::Global,
            PlacementScope::System,
            PlacementRule::WorstFit,
            &mut NullObserver,
            Some(250.0),
        ));
        assert_eq!(engine.running.len(), 1, "backfilling tracks the running set");
        engine.note_departed(id);
        assert!(engine.running.is_empty());
    }

    #[test]
    fn shadow_replays_releases_in_estimate_order() {
        let mut engine = FlexEngine::new(opts(JobDisposition::Rigid, QueueDiscipline::Easy));
        engine.running.push(RunningEst {
            id: JobId(0),
            est_end: 300.0,
            placement: Placement::new(vec![(0, 32), (1, 32)]),
        });
        engine.running.push(RunningEst {
            id: JobId(1),
            est_end: 150.0,
            placement: Placement::new(vec![(2, 32)]),
        });
        // Idle (0,0,0,32): a (32,32) head fits only once the 150-ending
        // job frees cluster 2.
        let head = JobRequest::new(vec![32, 32]);
        let s = engine.shadow(
            &[0, 0, 0, 32],
            &head,
            PlacementScope::System,
            PlacementRule::WorstFit,
            10.0,
        );
        assert_eq!(s, 150.0);
        // A whole-system head needs both releases.
        let big = JobRequest::new(vec![32, 32, 32, 32]);
        let s = engine.shadow(
            &[0, 0, 0, 32],
            &big,
            PlacementScope::System,
            PlacementRule::WorstFit,
            10.0,
        );
        assert_eq!(s, 300.0);
        // An impossible head shadows at infinity.
        let impossible = JobRequest::new(vec![33, 33, 33, 33, 33]);
        let s = engine.shadow(
            &[0, 0, 0, 32],
            &impossible,
            PlacementScope::System,
            PlacementRule::WorstFit,
            10.0,
        );
        assert!(s.is_infinite());
    }

    #[test]
    fn infinite_estimates_disable_backfilling() {
        let mut engine = FlexEngine::new(PolicyOptions {
            estimate_factor: f64::INFINITY,
            ..opts(JobDisposition::Rigid, QueueDiscipline::Easy)
        });
        let mut system = MultiCluster::das_multicluster();
        let mut table = JobTable::new();
        let id = job(&mut table, &[8]);
        // Even an infinite bound rejects an infinite estimate (∞ < ∞ is
        // false) — EASY with no information degenerates to FCFS.
        assert!(!engine.try_start_job(
            SimTime::new(0.0),
            &mut system,
            &mut table,
            id,
            SubmitQueue::Global,
            PlacementScope::System,
            PlacementRule::WorstFit,
            &mut NullObserver,
            Some(f64::INFINITY),
        ));
    }

    #[test]
    fn resize_rescales_the_estimate() {
        let mut engine = FlexEngine::new(opts(JobDisposition::Malleable, QueueDiscipline::Easy));
        engine.running.push(RunningEst {
            id: JobId(3),
            est_end: 100.0,
            placement: Placement::new(vec![(0, 16)]),
        });
        // Doubling the processors at t=20 halves the remaining estimate.
        engine.note_resized(SimTime::new(20.0), JobId(3), &Placement::new(vec![(0, 32)]));
        assert!((engine.running[0].est_end - 60.0).abs() < 1e-12);
        assert_eq!(engine.running[0].placement.total(), 32);
    }

    #[test]
    fn span_changing_resize_re_derives_the_extension() {
        // The regression the satellite fix guards: a 2→1-cluster shrink
        // sheds the 1.25 wide-area extension, so the remaining estimate
        // must scale by old_total/new_total × (f_new/f_old) — the old
        // formula conserved *extended* seconds and over-estimated the
        // coalesced remainder by 25%.
        let mut engine = FlexEngine::new(opts(JobDisposition::Malleable, QueueDiscipline::Easy));
        engine.running.push(RunningEst {
            id: JobId(7),
            est_end: 100.0,
            placement: Placement::new(vec![(0, 16), (1, 16)]),
        });
        // At t=20: remaining 80 extended seconds over 32 procs across two
        // clusters shrink to 16 procs in one: 80 × (32/16) × (1.0/1.25) =
        // 128, not the old formula's 160.
        engine.note_resized(SimTime::new(20.0), JobId(7), &Placement::new(vec![(0, 16)]));
        assert!((engine.running[0].est_end - 148.0).abs() < 1e-12);
        assert_eq!(engine.running[0].placement.assignments().len(), 1);
    }
}
