//! Maximal-utilization measurement (§4, Table 3).
//!
//! "In these simulations, we maintain a constant backlog and observe the
//! time-average fraction of processors being busy, which yields the
//! maximal gross utilization."
//!
//! The queue(s) are never allowed to drain: whenever the backlog falls
//! below a floor, fresh jobs are appended at the current simulation time.
//! After a warm-up period the time-average busy fraction converges to the
//! saturation throughput of the policy. The paper applies the method to
//! the single-global-queue policies (GS and SC); it is implemented for
//! every policy here, but for LS/LP the result depends on the backlog
//! composition, so Table 3 only reports GS and SC.

use coalloc_workload::{QueueRouting, Workload};
use desim::{RngStream, SimTime, Simulation};

use crate::job::{ActiveJob, JobId, JobTable};
use crate::placement::PlacementRule;
use crate::policy::{PolicyKind, Scheduler};
use crate::system::{MultiCluster, SystemSpec};

/// Configuration of a constant-backlog saturation run.
#[derive(Clone, Debug)]
pub struct SaturationConfig {
    /// The scheduling policy under test.
    pub policy: PolicyKind,
    /// The workload model.
    pub workload: Workload,
    /// Routing of backlog refills to local queues (LS/LP).
    pub routing: QueueRouting,
    /// The system's shape: cluster count and per-cluster capacities.
    pub system: SystemSpec,
    /// Backlog floor: refill whenever fewer jobs wait.
    pub backlog: usize,
    /// Departures to discard as warm-up.
    pub warmup_departures: u64,
    /// Departures to measure over after warm-up.
    pub measured_departures: u64,
    /// Placement rule.
    pub rule: PlacementRule,
    /// Master seed.
    pub seed: u64,
}

impl SaturationConfig {
    /// Table 3's setup: GS on the 4×32 multicluster under the DAS
    /// workload with the given component-size limit.
    pub fn das_gs(limit: u32) -> Self {
        SaturationConfig {
            policy: PolicyKind::Gs,
            workload: Workload::das(limit),
            routing: QueueRouting::balanced(4),
            system: SystemSpec::das_multicluster(),
            backlog: 50,
            warmup_departures: 3_000,
            measured_departures: 30_000,
            rule: PlacementRule::WorstFit,
            seed: 2003,
        }
    }

    /// The SC baseline: FCFS over one 128-processor cluster with total
    /// requests.
    pub fn das_sc() -> Self {
        SaturationConfig {
            policy: PolicyKind::Sc,
            workload: Workload::single_cluster(),
            routing: QueueRouting::balanced(1),
            system: SystemSpec::das_single_cluster(),
            ..SaturationConfig::das_gs(16)
        }
    }

    fn capacity(&self) -> u32 {
        self.system.total_capacity()
    }
}

/// The outcome of a saturation run.
#[derive(Clone, Copy, Debug, serde::Serialize, serde::Deserialize)]
pub struct SaturationResult {
    /// Maximal gross utilization: time-average busy fraction under
    /// constant backlog.
    pub max_gross_utilization: f64,
    /// Maximal net utilization: gross divided by the workload's
    /// gross/net ratio (§4).
    pub max_net_utilization: f64,
    /// Departures measured.
    pub departures: u64,
    /// Measurement window in simulated seconds.
    pub window_seconds: f64,
}

/// Runs a constant-backlog simulation and returns the maximal
/// utilizations.
pub fn maximal_utilization(cfg: &SaturationConfig) -> SaturationResult {
    assert!(cfg.backlog > 0, "backlog must be positive");
    assert!(cfg.measured_departures > 0);

    let master = RngStream::new(cfg.seed);
    let mut size_rng = master.labelled("sizes");
    let mut service_rng = master.labelled("service");
    let routing_rng = master.labelled("routing");

    let mut system = MultiCluster::from_spec(&cfg.system);
    let mut policy: Box<dyn Scheduler> =
        cfg.policy.build(&cfg.system, cfg.routing.clone(), routing_rng, cfg.rule);
    let mut table = JobTable::new();

    let mut sim: Simulation<JobId> = Simulation::new();
    let mut busy = desim::TimeWeighted::new(SimTime::ZERO, 0.0);
    let mut departures: u64 = 0;
    let mut window_start = SimTime::ZERO;
    let total = cfg.warmup_departures + cfg.measured_departures;

    // Refill the backlog, run a scheduling pass, schedule departures.
    // `started` is the caller-owned scratch of the Scheduler contract,
    // reused across every pass of the run.
    let mut refill_and_schedule = |sim: &mut Simulation<JobId>,
                                   policy: &mut Box<dyn Scheduler>,
                                   system: &mut MultiCluster,
                                   table: &mut JobTable,
                                   busy: &mut desim::TimeWeighted,
                                   started: &mut Vec<JobId>| {
        let now = sim.now();
        while policy.queued() < cfg.backlog {
            let spec = cfg.workload.sample(&mut size_rng, &mut service_rng);
            let queue = policy.route(&spec);
            let id = table.insert(ActiveJob::new(spec, now, queue));
            policy.enqueue(id, queue);
        }
        started.clear();
        policy.schedule_into(now, system, table, &mut crate::audit::NullObserver, started);
        for &id in started.iter() {
            let occupancy = table.get(id).occupancy_in(&cfg.workload);
            busy.add(now, f64::from(table.get(id).spec.request.total()));
            sim.schedule_at(now + occupancy, id);
        }
    };

    let mut started: Vec<JobId> = Vec::new();
    refill_and_schedule(&mut sim, &mut policy, &mut system, &mut table, &mut busy, &mut started);

    while departures < total {
        let Some(ev) = sim.step() else {
            panic!("constant-backlog run starved: no running jobs left");
        };
        let now = sim.now();
        let id = ev.payload;
        // Borrow (not clone) the placement out of the table for release.
        let placement = table.get(id).placement.as_ref().expect("job was started");
        system.release(placement);
        let released = f64::from(placement.total());
        busy.add(now, -released);
        policy.on_departure();
        departures += 1;
        if departures == cfg.warmup_departures {
            busy.reset_window(now);
            window_start = now;
        }
        refill_and_schedule(
            &mut sim,
            &mut policy,
            &mut system,
            &mut table,
            &mut busy,
            &mut started,
        );
    }

    let now = sim.now();
    let gross = busy.average(now) / f64::from(cfg.capacity());
    let ratio = cfg.workload.gross_net_ratio();
    SaturationResult {
        max_gross_utilization: gross,
        max_net_utilization: gross / ratio,
        departures: departures - cfg.warmup_departures,
        window_seconds: (now - window_start).seconds(),
    }
}

/// Replication plan for the open-system probes of
/// [`bisect_max_utilization_replicated`]: each probe utilization is
/// classified by a majority vote over `replications` independent runs,
/// executed on the sweep engine's worker pool. Replication seeds are
/// derived from each probe config's own seed via
/// [`crate::experiment::replication_seed`], so every probe utilization
/// sees common random numbers.
#[derive(Clone, Copy, Debug)]
pub struct ProbePlan {
    /// Independent runs per probe (majority vote decides saturation).
    pub replications: u64,
    /// Worker threads for the probe batch; 0 = one per core.
    pub threads: usize,
}

impl Default for ProbePlan {
    fn default() -> Self {
        ProbePlan { replications: 3, threads: 0 }
    }
}

impl ProbePlan {
    /// One probe under a cooperative token: `Err` as soon as the token
    /// fires (tasks already running finish; the vote is abandoned).
    fn saturated_cancellable<F>(
        &self,
        pool: &crate::experiment::WorkerPool,
        make_cfg: &F,
        util: f64,
        cancel: Option<&crate::experiment::CancelToken>,
    ) -> Result<bool, crate::experiment::CancelReason>
    where
        F: Fn(f64) -> crate::sim::SimConfig,
    {
        assert!(self.replications > 0, "probe needs at least one replication");
        let cfgs: Vec<crate::sim::SimConfig> = (0..self.replications)
            .map(|rep| {
                let cfg = make_cfg(util);
                let seed = crate::experiment::replication_seed(cfg.seed, rep);
                cfg.with_seed(seed)
            })
            .collect();
        let results = pool.run_cancellable(cfgs, false, cancel);
        let mut outcomes = Vec::with_capacity(results.len());
        for slot in results {
            match slot {
                Some(result) => outcomes
                    .push(result.unwrap_or_else(|cause| panic!("replication panicked: {cause}"))),
                None => {
                    return Err(cancel
                        .and_then(crate::experiment::CancelToken::state)
                        .unwrap_or(crate::experiment::CancelReason::Cancelled))
                }
            }
        }
        let votes = outcomes.iter().filter(|o| o.saturated).count();
        Ok(2 * votes > outcomes.len())
    }
}

/// Finds the maximal stable utilization of *any* policy by bisection on
/// open-system runs: the paper's constant-backlog method is only valid
/// for single-global-queue policies (GS, SC), while this search works
/// for LS and LP too — the backlog at the end of the arrival process
/// tells stable from unstable. Single-replication probes on each probe
/// config's own seed; see [`bisect_max_utilization_replicated`] for the
/// majority-vote variant.
pub fn bisect_max_utilization<F>(make_cfg: F, lo: f64, hi: f64, tolerance: f64) -> f64
where
    F: Fn(f64) -> crate::sim::SimConfig,
{
    bisect_max_utilization_replicated(
        make_cfg,
        lo,
        hi,
        tolerance,
        &ProbePlan { replications: 1, threads: 0 },
    )
}

/// [`bisect_max_utilization`] with replicated probes: each utilization
/// is classified by a majority vote over `plan.replications` runs on
/// substream-derived seeds, so one unlucky seed near the threshold
/// cannot flip a bracket. The search narrows `[lo, hi]` until
/// `hi - lo <= tolerance` and returns the last stable utilization found.
///
/// # Panics
/// Panics when `[lo, hi]` does not bracket the saturation threshold:
/// `lo` must be stable and `hi` saturated. Both ends are checked
/// unconditionally (also in release builds) — an unchecked bracket
/// silently converges to the nearest bound and reports it as the
/// saturation point, which is a wrong *number*, not a crash.
pub fn bisect_max_utilization_replicated<F>(
    make_cfg: F,
    lo: f64,
    hi: f64,
    tolerance: f64,
    plan: &ProbePlan,
) -> f64
where
    F: Fn(f64) -> crate::sim::SimConfig,
{
    // One pool serves every probe of the whole search.
    let pool = crate::experiment::WorkerPool::new(plan.threads);
    bisect_max_utilization_on(&pool, make_cfg, lo, hi, tolerance, plan)
}

/// [`bisect_max_utilization_replicated`] on an existing
/// [`crate::experiment::WorkerPool`]
/// — the entry point `coalloc-exp serve` uses so concurrent saturation
/// searches and sweeps share one set of workers.
///
/// # Panics
/// Same bracket requirements as [`bisect_max_utilization_replicated`].
pub fn bisect_max_utilization_on<F>(
    pool: &crate::experiment::WorkerPool,
    make_cfg: F,
    lo: f64,
    hi: f64,
    tolerance: f64,
    plan: &ProbePlan,
) -> f64
where
    F: Fn(f64) -> crate::sim::SimConfig,
{
    bisect_max_utilization_cancellable_on(pool, make_cfg, lo, hi, tolerance, plan, None)
        .expect("searches without a token never cancel")
}

/// [`bisect_max_utilization_on`] under a cooperative
/// [`crate::experiment::CancelToken`], checked between probes (and
/// between a probe's replications, inside the pool): once the token
/// fires the search returns `Err(CancelReason)` instead of a boundary.
/// A later uncancelled search re-probes from scratch and lands on the
/// same deterministic answer.
///
/// # Panics
/// Same bracket requirements as [`bisect_max_utilization_replicated`].
pub fn bisect_max_utilization_cancellable_on<F>(
    pool: &crate::experiment::WorkerPool,
    make_cfg: F,
    mut lo: f64,
    mut hi: f64,
    tolerance: f64,
    plan: &ProbePlan,
    cancel: Option<&crate::experiment::CancelToken>,
) -> Result<f64, crate::experiment::CancelReason>
where
    F: Fn(f64) -> crate::sim::SimConfig,
{
    assert!(0.0 < lo && lo < hi && hi <= 2.0, "search bounds must satisfy 0 < lo < hi <= 2");
    assert!(tolerance > 0.0);
    // The bounds must bracket the threshold. These probes are the
    // price of a trustworthy answer; a debug_assert! would vanish in
    // release builds, where all real searches run.
    assert!(
        !plan.saturated_cancellable(pool, &make_cfg, lo, cancel)?,
        "bisection bracket invalid: lo = {lo} is already saturated; lower lo"
    );
    assert!(
        plan.saturated_cancellable(pool, &make_cfg, hi, cancel)?,
        "bisection bracket invalid: hi = {hi} is still stable; the saturation point lies above hi"
    );
    while hi - lo > tolerance {
        let mid = 0.5 * (lo + hi);
        if plan.saturated_cancellable(pool, &make_cfg, mid, cancel)? {
            hi = mid;
        } else {
            lo = mid;
        }
    }
    Ok(lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(mut cfg: SaturationConfig) -> SaturationConfig {
        cfg.warmup_departures = 500;
        cfg.measured_departures = 4_000;
        cfg
    }

    #[test]
    fn saturation_is_between_zero_and_one() {
        let r = maximal_utilization(&quick(SaturationConfig::das_gs(16)));
        assert!(
            r.max_gross_utilization > 0.3 && r.max_gross_utilization < 1.0,
            "gross {}",
            r.max_gross_utilization
        );
        assert!(r.max_net_utilization < r.max_gross_utilization);
        assert!(r.window_seconds > 0.0);
        assert_eq!(r.departures, 4_000);
    }

    #[test]
    fn deterministic_given_seed() {
        let cfg = quick(SaturationConfig::das_gs(24));
        let a = maximal_utilization(&cfg);
        let b = maximal_utilization(&cfg);
        assert_eq!(a.max_gross_utilization, b.max_gross_utilization);
    }

    #[test]
    fn single_size_jobs_saturate_fully() {
        // Jobs of exactly one cluster each: the backlog keeps every
        // cluster permanently busy -> utilization ≈ 1.
        let mut cfg = quick(SaturationConfig::das_gs(32));
        cfg.workload.sizes = coalloc_workload::JobSizeDist::custom("32s", &[(32, 1.0)]);
        cfg.workload.extension = 1.0;
        let r = maximal_utilization(&cfg);
        assert!(r.max_gross_utilization > 0.999, "gross {}", r.max_gross_utilization);
        assert!((r.max_net_utilization - r.max_gross_utilization).abs() < 1e-9);
    }

    #[test]
    fn bisection_matches_constant_backlog_for_gs() {
        // The two methods estimate the same quantity for GS.
        let backlog = {
            let mut cfg = quick(SaturationConfig::das_gs(16));
            cfg.measured_departures = 10_000;
            maximal_utilization(&cfg).max_gross_utilization
        };
        let bisect = bisect_max_utilization(
            |util| {
                let mut cfg = crate::sim::SimConfig::das(PolicyKind::Gs, 16, util);
                cfg.total_jobs = 12_000;
                cfg.warmup_jobs = 1_200;
                cfg
            },
            0.3,
            1.0,
            0.02,
        );
        assert!(
            (bisect - backlog).abs() < 0.06,
            "bisection {bisect:.3} vs constant-backlog {backlog:.3}"
        );
    }

    /// A tiny open-system config for the bracket-validation tests.
    fn tiny_cfg(util: f64) -> crate::sim::SimConfig {
        let mut cfg = crate::sim::SimConfig::das(PolicyKind::Gs, 16, util);
        cfg.total_jobs = 400;
        cfg.warmup_jobs = 50;
        cfg
    }

    #[test]
    #[should_panic(expected = "still stable")]
    fn bisection_rejects_a_stable_hi() {
        // Both ends stable: the old code silently converged to ~hi and
        // reported a bound, not a measurement. Now it panics.
        bisect_max_utilization(tiny_cfg, 0.05, 0.2, 0.05);
    }

    #[test]
    #[should_panic(expected = "already saturated")]
    fn bisection_rejects_a_saturated_lo() {
        // Checked unconditionally — the old debug_assert! (with a
        // different message) vanished entirely in release builds.
        bisect_max_utilization(tiny_cfg, 1.5, 1.8, 0.05);
    }

    #[test]
    fn replicated_bisection_brackets_the_threshold() {
        let make = |util: f64| {
            let mut cfg = crate::sim::SimConfig::das(PolicyKind::Gs, 16, util);
            cfg.total_jobs = 3_000;
            cfg.warmup_jobs = 300;
            cfg
        };
        let plan = ProbePlan { replications: 3, threads: 0 };
        let r = bisect_max_utilization_replicated(make, 0.3, 1.2, 0.1, &plan);
        assert!((0.4..1.0).contains(&r), "threshold estimate {r}");
        // Deterministic: the vote and bisection depend only on seeds.
        let again = bisect_max_utilization_replicated(make, 0.3, 1.2, 0.1, &plan);
        assert_eq!(r, again);
    }

    #[test]
    fn sc_baseline_runs() {
        let r = maximal_utilization(&quick(SaturationConfig::das_sc()));
        assert!(
            r.max_gross_utilization > 0.4 && r.max_gross_utilization < 1.0,
            "gross {}",
            r.max_gross_utilization
        );
    }
}
