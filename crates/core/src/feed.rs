//! Job feeds: where the simulated job stream comes from.
//!
//! The paper *samples distributions* derived from a log (stochastic
//! feed); the natural companion for a trace-based simulator is *direct
//! replay* of a log's arrivals, sizes and runtimes (trace feed), with a
//! time-scale knob to vary the offered load as trace-driven studies do.

use coalloc_trace::Trace;
use coalloc_workload::{ArrivalProcess, JobRequest, JobSpec, Workload};
use desim::{Duration, RngStream, SimTime};

/// A source of jobs for the simulation loop: each call yields the next
/// job's absolute arrival time and specification, or `None` when the
/// stream ends.
pub trait JobFeed {
    /// The next arrival, in non-decreasing time order.
    fn next_job(&mut self) -> Option<(SimTime, JobSpec)>;
}

/// The paper's stochastic feed: Poisson (or bursty renewal) arrivals,
/// i.i.d. sizes and service times sampled from the workload model.
pub struct StochasticFeed {
    workload: Workload,
    arrivals: ArrivalProcess,
    size_rng: RngStream,
    service_rng: RngStream,
    gap_rng: RngStream,
    clock: SimTime,
    remaining: u64,
}

impl StochasticFeed {
    /// Builds a feed of `total_jobs` jobs at the given rate and
    /// interarrival CV², drawing all randomness from substreams of
    /// `master`.
    pub fn new(
        workload: Workload,
        rate: f64,
        arrival_cv2: f64,
        total_jobs: u64,
        master: &RngStream,
    ) -> Self {
        StochasticFeed {
            workload,
            arrivals: ArrivalProcess::with_cv2(rate, arrival_cv2),
            size_rng: master.labelled("sizes"),
            service_rng: master.labelled("service"),
            gap_rng: master.labelled("arrivals"),
            clock: SimTime::ZERO,
            remaining: total_jobs,
        }
    }
}

impl JobFeed for StochasticFeed {
    fn next_job(&mut self) -> Option<(SimTime, JobSpec)> {
        if self.remaining == 0 {
            return None;
        }
        self.remaining -= 1;
        self.clock += self.arrivals.next_gap(&mut self.gap_rng);
        let spec = self.workload.sample(&mut self.size_rng, &mut self.service_rng);
        Some((self.clock, spec))
    }
}

/// Direct replay of a workload log: the log's submit times (compressed
/// by `time_scale` — values below 1 increase the offered load), its
/// sizes (split under the configured limit), and its runtimes as base
/// service times.
pub struct TraceFeed {
    /// `(submit_seconds, size, runtime_seconds)` in submit order.
    jobs: std::vec::IntoIter<(f64, u32, f64)>,
    limit: u32,
    clusters: usize,
    time_scale: f64,
}

impl TraceFeed {
    /// Builds a replay feed from a log.
    ///
    /// Records with a non-positive runtime — cancelled or failed jobs,
    /// common in real logs — are **skipped**, not replayed: such a job
    /// never occupied processors, and replaying it with a clamped
    /// near-zero runtime (as an earlier version did) injects phantom
    /// arrivals that perturb queue order and the arrival count. Size
    /// the run by [`TraceFeed::len`], not by the raw log length.
    ///
    /// # Panics
    /// Panics on an unsorted log, a non-positive time scale, or a log
    /// with no positive-runtime record left to replay.
    pub fn new(trace: &Trace, limit: u32, clusters: usize, time_scale: f64) -> Self {
        assert!(!trace.is_empty(), "cannot replay an empty log");
        assert!(time_scale > 0.0 && time_scale.is_finite(), "time scale must be positive");
        assert!(
            trace.jobs.windows(2).all(|w| w[0].submit <= w[1].submit),
            "log must be sorted by submit time"
        );
        let jobs: Vec<(f64, u32, f64)> = trace
            .jobs
            .iter()
            .filter(|j| j.runtime > 0.0)
            .map(|j| (j.submit, j.size, j.runtime))
            .collect();
        assert!(!jobs.is_empty(), "cannot replay a log with no positive-runtime jobs");
        TraceFeed { jobs: jobs.into_iter(), limit, clusters, time_scale }
    }

    /// Jobs remaining to replay (zero-runtime records already filtered).
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether the feed is exhausted.
    pub fn is_empty(&self) -> bool {
        self.jobs.len() == 0
    }
}

impl JobFeed for TraceFeed {
    fn next_job(&mut self) -> Option<(SimTime, JobSpec)> {
        let (submit, size, runtime) = self.jobs.next()?;
        // The log's recorded runtime doubles as the job's runtime
        // estimate: backfilling disciplines replay the trace with
        // perfect per-job estimates instead of a global multiplier.
        let spec = JobSpec {
            request: JobRequest::from_total(size, self.limit, self.clusters).with_estimate(runtime),
            base_service: Duration::new(runtime),
        };
        Some((SimTime::new(submit * self.time_scale), spec))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalloc_trace::{DasLogConfig, JobStatus, TraceJob};

    #[test]
    fn stochastic_feed_is_monotone_and_bounded() {
        let master = RngStream::new(1);
        let mut feed = StochasticFeed::new(Workload::das(16), 0.1, 1.0, 100, &master);
        let mut prev = SimTime::ZERO;
        let mut count = 0;
        while let Some((t, spec)) = feed.next_job() {
            assert!(t >= prev);
            assert!(spec.request.total() >= 1);
            prev = t;
            count += 1;
        }
        assert_eq!(count, 100);
    }

    #[test]
    fn trace_feed_replays_in_order_with_scaling() {
        let mut trace = Trace::new("toy", 128);
        for (i, (submit, size, rt)) in
            [(0.0, 64u32, 100.0), (10.0, 8, 50.0), (30.0, 128, 900.0)].iter().enumerate()
        {
            trace.jobs.push(TraceJob {
                id: i as u32 + 1,
                submit: *submit,
                size: *size,
                runtime: *rt,
                user: 0,
                status: JobStatus::Completed,
            });
        }
        let mut feed = TraceFeed::new(&trace, 16, 4, 0.5);
        let (t1, s1) = feed.next_job().expect("first job");
        assert_eq!(t1, SimTime::ZERO);
        assert_eq!(s1.request.components(), &[16, 16, 16, 16]);
        assert_eq!(s1.base_service.seconds(), 100.0);
        assert_eq!(s1.request.estimate(), Some(100.0), "runtime doubles as the estimate");
        let (t2, _) = feed.next_job().expect("second job");
        assert_eq!(t2, SimTime::new(5.0), "time compressed by 0.5");
        let (t3, s3) = feed.next_job().expect("third job");
        assert_eq!(t3, SimTime::new(15.0));
        assert_eq!(s3.request.num_components(), 4);
        assert!(feed.next_job().is_none());
    }

    #[test]
    fn trace_feed_replays_the_synthetic_log() {
        let log =
            coalloc_trace::generate_das1_log(&DasLogConfig { jobs: 500, ..Default::default() });
        let mut feed = TraceFeed::new(&log, 16, 4, 1.0);
        let mut count = 0;
        let mut prev = SimTime::ZERO;
        while let Some((t, _)) = feed.next_job() {
            assert!(t >= prev);
            prev = t;
            count += 1;
        }
        assert_eq!(count, 500);
    }

    fn toy_trace(records: &[(f64, u32, f64)]) -> Trace {
        let mut trace = Trace::new("toy", 128);
        for (i, &(submit, size, runtime)) in records.iter().enumerate() {
            trace.jobs.push(TraceJob {
                id: i as u32 + 1,
                submit,
                size,
                runtime,
                user: 0,
                status: JobStatus::Completed,
            });
        }
        trace
    }

    #[test]
    fn zero_runtime_records_are_skipped() {
        // The middle record is a cancelled job (runtime 0): it is not
        // replayed at all — the old clamp to f64::MIN_POSITIVE turned it
        // into a phantom near-instantaneous arrival.
        let trace = toy_trace(&[(0.0, 8, 100.0), (5.0, 16, 0.0), (9.0, 4, 50.0)]);
        let mut feed = TraceFeed::new(&trace, 16, 4, 1.0);
        assert_eq!(feed.len(), 2);
        let (t1, s1) = feed.next_job().expect("first job");
        assert_eq!((t1, s1.request.total()), (SimTime::ZERO, 8));
        let (t2, s2) = feed.next_job().expect("second job");
        assert_eq!((t2, s2.request.total()), (SimTime::new(9.0), 4));
        assert!(s2.base_service.seconds() > 0.0);
        assert!(feed.next_job().is_none());
        assert!(feed.is_empty());
    }

    #[test]
    #[should_panic(expected = "no positive-runtime")]
    fn all_zero_runtime_log_rejected() {
        TraceFeed::new(&toy_trace(&[(0.0, 8, 0.0), (1.0, 4, 0.0)]), 16, 4, 1.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_trace_rejected() {
        TraceFeed::new(&Trace::new("empty", 8), 16, 4, 1.0);
    }
}
