//! Serializable event records and the JSONL sink.

use std::io::{self, Write};

use desim::{Duration, SimTime};

use crate::job::{ActiveJob, JobId, SubmitQueue};

use super::{PassTrigger, PlacementDecision, SimObserver};

/// One audit event, flattened to a single record so every line of a
/// JSONL log has the same schema. Fields that do not apply to a given
/// `kind` hold `null` (options) or `[]` (lists).
///
/// | `kind`       | populated fields                                   |
/// |--------------|----------------------------------------------------|
/// | `arrival`    | `job`, `queue`, `components`, `service`            |
/// | `enqueue`    | `job`, `queue`                                     |
/// | `pass`       | `trigger`                                          |
/// | `pass_end`   | `started`                                          |
/// | `disabled`   | `queue`                                            |
/// | `placement`  | `job`, `queue`, `scope`, `idle_before`, `assignments` |
/// | `start`      | `job`, `occupancy`                                 |
/// | `completion` | `job`                                              |
/// | `cluster_down` | `scope` (the cluster), `components` (the one remaining-processor count) |
/// | `cluster_up` | `scope` (the cluster)                              |
/// | `job_interrupted` | `job`, `queue`, `scope` (the failed cluster), `trigger` (the disposition), `assignments` (released), `components` (possibly re-split) |
/// | `molded`     | `job`, `idle_before` (the submitted split), `components` (the split actually started) |
/// | `resized`    | `job`, `queue`, `assignments` (the new placement), `components` (the old placement's component sizes), `service` (the old departure time), `occupancy` (the new one) |
/// | `end`        | —                                                  |
///
/// The three fault kinds only appear when a run enables fault
/// injection, and `molded`/`resized` only under a non-rigid job
/// disposition, so default-configuration logs stay byte-identical to
/// earlier versions. (`molded` and `resized` reuse existing columns —
/// the table above says which — rather than widening every record's
/// schema.)
#[derive(Clone, Debug, serde::Serialize)]
pub struct EventRecord {
    /// Position of this event in the run's event stream, from 0.
    pub seq: u64,
    /// Simulated time of the event, seconds.
    pub t: f64,
    /// The event kind (see the table above).
    pub kind: String,
    /// The job the event concerns, if any.
    pub job: Option<u64>,
    /// The queue involved (`"global"` or `"local<i>"`), if any.
    pub queue: Option<String>,
    /// What triggered a `pass` (`"arrival"` or `"departure"`).
    pub trigger: Option<String>,
    /// `placement`: `"system"` for a system-wide choice, `"cluster<i>"`
    /// for a locally restricted one.
    pub scope: Option<String>,
    /// `arrival`: the request's component sizes (records the split of a
    /// total request under the component-size limit).
    pub components: Vec<u32>,
    /// `arrival`: the base service time, seconds.
    pub service: Option<f64>,
    /// `placement`: idle processors per cluster before applying it.
    pub idle_before: Vec<u32>,
    /// `placement`: the chosen `(cluster, processors)` pairs.
    pub assignments: Vec<(u64, u32)>,
    /// `start`: seconds the job holds its processors (extension
    /// included).
    pub occupancy: Option<f64>,
    /// `pass_end`: ids of the jobs the pass started, in start order.
    pub started: Vec<u64>,
}

impl EventRecord {
    fn blank(seq: u64, now: SimTime, kind: &str) -> Self {
        EventRecord {
            seq,
            t: now.seconds(),
            kind: kind.to_string(),
            job: None,
            queue: None,
            trigger: None,
            scope: None,
            components: Vec::new(),
            service: None,
            idle_before: Vec::new(),
            assignments: Vec::new(),
            occupancy: None,
            started: Vec::new(),
        }
    }
}

/// Writes one JSON object per event, newline-delimited (JSONL).
///
/// The output is deterministic: field order is fixed by [`EventRecord`]
/// and numbers use Rust's shortest-round-trip formatting, so two runs
/// with the same configuration and seed produce byte-identical logs
/// (the event-log regression test relies on this).
///
/// I/O errors are latched: the first error stops further writes and is
/// returned by [`JsonlSink::finish`].
#[derive(Debug)]
pub struct JsonlSink<W: Write> {
    out: W,
    seq: u64,
    error: Option<io::Error>,
}

impl<W: Write> JsonlSink<W> {
    /// A sink writing to `out` (wrap files in a `BufWriter`).
    pub fn new(out: W) -> Self {
        JsonlSink { out, seq: 0, error: None }
    }

    /// Events written so far.
    pub fn events_written(&self) -> u64 {
        self.seq
    }

    /// Flushes and returns the writer, or the first I/O error hit.
    pub fn finish(mut self) -> io::Result<W> {
        if let Some(e) = self.error {
            return Err(e);
        }
        self.out.flush()?;
        Ok(self.out)
    }

    fn emit(&mut self, record: &EventRecord) {
        if self.error.is_some() {
            return;
        }
        let line = serde_json::to_string(record).expect("event records serialize");
        if let Err(e) = writeln!(self.out, "{line}") {
            self.error = Some(e);
        }
    }

    fn next(&mut self, now: SimTime, kind: &str) -> EventRecord {
        let record = EventRecord::blank(self.seq, now, kind);
        self.seq += 1;
        record
    }
}

impl<W: Write> SimObserver for JsonlSink<W> {
    fn on_arrival(&mut self, now: SimTime, id: JobId, job: &ActiveJob) {
        let mut r = self.next(now, "arrival");
        r.job = Some(id.0);
        r.queue = Some(job.queue.audit_label());
        r.components = job.spec.request.components().to_vec();
        r.service = Some(job.spec.base_service.seconds());
        self.emit(&r);
    }

    fn on_enqueue(&mut self, now: SimTime, id: JobId, queue: SubmitQueue) {
        let mut r = self.next(now, "enqueue");
        r.job = Some(id.0);
        r.queue = Some(queue.audit_label());
        self.emit(&r);
    }

    fn on_pass(&mut self, now: SimTime, trigger: PassTrigger) {
        let mut r = self.next(now, "pass");
        r.trigger = Some(
            match trigger {
                PassTrigger::Arrival => "arrival",
                PassTrigger::Departure => "departure",
                PassTrigger::Fault => "fault",
            }
            .to_string(),
        );
        self.emit(&r);
    }

    fn on_pass_end(&mut self, now: SimTime, started: &[JobId]) {
        let mut r = self.next(now, "pass_end");
        r.started = started.iter().map(|id| id.0).collect();
        self.emit(&r);
    }

    fn on_queue_disabled(&mut self, now: SimTime, queue: SubmitQueue) {
        let mut r = self.next(now, "disabled");
        r.queue = Some(queue.audit_label());
        self.emit(&r);
    }

    fn on_placement(&mut self, now: SimTime, decision: &PlacementDecision<'_>) {
        let mut r = self.next(now, "placement");
        r.job = Some(decision.id.0);
        r.queue = Some(decision.queue.audit_label());
        r.scope = Some(match decision.scope {
            super::PlacementScope::System => "system".to_string(),
            super::PlacementScope::Cluster(c) => format!("cluster{c}"),
        });
        r.idle_before = decision.idle_before.to_vec();
        r.assignments =
            decision.placement.assignments().iter().map(|&(c, p)| (c as u64, p)).collect();
        self.emit(&r);
    }

    fn on_start(&mut self, now: SimTime, id: JobId, _job: &ActiveJob, occupancy: Duration) {
        let mut r = self.next(now, "start");
        r.job = Some(id.0);
        r.occupancy = Some(occupancy.seconds());
        self.emit(&r);
    }

    fn on_completion(&mut self, now: SimTime, id: JobId, _job: &ActiveJob) {
        let mut r = self.next(now, "completion");
        r.job = Some(id.0);
        self.emit(&r);
    }

    fn on_cluster_down(&mut self, now: SimTime, cluster: usize, remaining: u32) {
        let mut r = self.next(now, "cluster_down");
        r.scope = Some(format!("cluster{cluster}"));
        r.components = vec![remaining];
        self.emit(&r);
    }

    fn on_cluster_up(&mut self, now: SimTime, cluster: usize) {
        let mut r = self.next(now, "cluster_up");
        r.scope = Some(format!("cluster{cluster}"));
        self.emit(&r);
    }

    fn on_job_interrupted(
        &mut self,
        now: SimTime,
        job: &ActiveJob,
        info: &super::Interruption<'_>,
    ) {
        let mut r = self.next(now, "job_interrupted");
        r.job = Some(info.id.0);
        r.queue = Some(job.queue.audit_label());
        r.scope = Some(format!("cluster{}", info.cluster));
        r.trigger = Some(info.disposition.label().to_string());
        r.assignments = info.released.assignments().iter().map(|&(c, p)| (c as u64, p)).collect();
        r.components = job.spec.request.components().to_vec();
        self.emit(&r);
    }

    fn on_job_molded(
        &mut self,
        now: SimTime,
        id: crate::job::JobId,
        from: &coalloc_workload::JobRequest,
        to: &coalloc_workload::JobRequest,
    ) {
        let mut r = self.next(now, "molded");
        r.job = Some(id.0);
        r.idle_before = from.components().to_vec();
        r.components = to.components().to_vec();
        self.emit(&r);
    }

    fn on_job_resized(&mut self, now: SimTime, job: &ActiveJob, resize: &super::Resize<'_>) {
        let mut r = self.next(now, "resized");
        r.job = Some(resize.id.0);
        r.queue = Some(job.queue.audit_label());
        r.assignments = resize.to.assignments().iter().map(|&(c, p)| (c as u64, p)).collect();
        r.components = resize.from.assignments().iter().map(|&(_, p)| p).collect();
        r.service = Some(resize.old_end.seconds());
        r.occupancy = Some(resize.new_end.seconds());
        self.emit(&r);
    }

    fn on_run_end(&mut self, now: SimTime) {
        let r = self.next(now, "end");
        self.emit(&r);
    }
}
