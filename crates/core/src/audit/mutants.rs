//! Mutation-style tests: wire deliberately broken schedulers (or a
//! broken occupancy model) into the *real* simulation loop and prove
//! the [`InvariantAuditor`] trips the expected, distinct
//! [`ViolationKind`] for each seeded bug — and stays silent on the
//! faithful simulator.

use coalloc_workload::{JobRequest, JobSpec, Workload};
use desim::{Duration, SimTime};

use crate::feed::JobFeed;
use crate::job::{ActiveJob, JobId, JobTable, Placement, SubmitQueue};
use crate::placement::{place_request, PlacementRule};
use crate::policy::{GlobalScheduler, PolicyKind, Scheduler};
use crate::sim::{OccupancyModel, SimBuilder, SimConfig};
use crate::system::{MultiCluster, SystemSpec};

use super::{
    Interruption, InvariantAuditor, PassTrigger, PlacementDecision, PlacementScope, SimObserver,
    ViolationKind,
};
use crate::fault::InterruptPolicy;

/// A fixed, scripted job stream for the mutant scenarios.
struct VecFeed {
    jobs: std::vec::IntoIter<(f64, JobSpec)>,
}

impl VecFeed {
    /// `(arrival_seconds, components, base_service_seconds)` per job.
    fn new(jobs: &[(f64, &[u32], f64)]) -> Self {
        let jobs: Vec<(f64, JobSpec)> = jobs
            .iter()
            .map(|&(t, components, service)| {
                (
                    t,
                    JobSpec {
                        request: JobRequest::new(components.to_vec()),
                        base_service: Duration::new(service),
                    },
                )
            })
            .collect();
        VecFeed { jobs: jobs.into_iter() }
    }
}

impl JobFeed for VecFeed {
    fn next_job(&mut self) -> Option<(SimTime, JobSpec)> {
        self.jobs.next().map(|(t, spec)| (SimTime::new(t), spec))
    }
}

/// A config for scripted runs: the 4×32 system under GS (strict FCFS),
/// with the knobs the stochastic feed would use left at harmless
/// values.
fn scripted_cfg(jobs: u64) -> SimConfig {
    let mut cfg = SimConfig::das(PolicyKind::Gs, 32, 0.5);
    cfg.total_jobs = jobs;
    cfg.warmup_jobs = 0;
    cfg.batch_size = 1;
    cfg
}

// ---------------------------------------------------------------------
// Mutant 1: FCFS overtaking. A scheduler that scans the whole queue and
// starts the *first fitting* job — correct placements, wrong order.
// ---------------------------------------------------------------------

struct OvertakingScheduler {
    queue: std::collections::VecDeque<JobId>,
    rule: PlacementRule,
}

impl Scheduler for OvertakingScheduler {
    fn name(&self) -> &'static str {
        "GS-overtaking-mutant"
    }

    fn route(&mut self, _spec: &JobSpec) -> SubmitQueue {
        SubmitQueue::Global
    }

    fn enqueue(&mut self, id: JobId, _queue: SubmitQueue) {
        self.queue.push_back(id);
    }

    fn on_departure(&mut self) {}

    fn schedule_into(
        &mut self,
        now: SimTime,
        system: &mut MultiCluster,
        table: &mut JobTable,
        obs: &mut dyn SimObserver,
        started: &mut Vec<JobId>,
    ) {
        loop {
            let idle = system.idle_per_cluster();
            let hit = self.queue.iter().enumerate().find_map(|(pos, &id)| {
                place_request(idle, &table.get(id).spec.request, self.rule).map(|p| (pos, id, p))
            });
            match hit {
                Some((pos, id, placement)) => {
                    obs.on_placement(
                        now,
                        &PlacementDecision {
                            id,
                            queue: SubmitQueue::Global,
                            scope: PlacementScope::System,
                            idle_before: system.idle_per_cluster(),
                            placement: &placement,
                        },
                    );
                    system.apply(&placement);
                    table.mark_started(id, placement, now);
                    self.queue.remove(pos);
                    started.push(id);
                }
                None => break,
            }
        }
    }

    fn queued(&self) -> usize {
        self.queue.len()
    }

    fn num_queues(&self) -> usize {
        1
    }

    fn queue_lengths_into(&self, out: &mut Vec<usize>) {
        out.push(self.queue.len());
    }
}

#[test]
fn overtaking_mutant_trips_fcfs_overtaking() {
    // A (64 → [32,32]) fills two clusters; B (128) blocks; C (8) fits.
    // A faithful GS leaves C waiting behind B — the mutant starts it.
    let cfg = scripted_cfg(3);
    let mut feed = VecFeed::new(&[
        (0.0, &[32, 32], 1000.0),
        (1.0, &[32, 32, 32, 32], 1000.0),
        (2.0, &[8], 1000.0),
    ]);
    let mut auditor = InvariantAuditor::new(&cfg);
    let policy = Box::new(OvertakingScheduler {
        queue: std::collections::VecDeque::new(),
        rule: PlacementRule::WorstFit,
    });
    SimBuilder::new(&cfg).scheduler(policy).run_feed_observed(&mut feed, f64::NAN, &mut auditor);
    assert!(
        auditor.has(ViolationKind::FcfsOvertaking),
        "expected FcfsOvertaking, got: {}",
        auditor.report()
    );
    assert!(!auditor.has(ViolationKind::PlacementRuleViolation), "{}", auditor.report());
    assert!(!auditor.has(ViolationKind::ExtensionMismatch), "{}", auditor.report());
}

#[test]
fn overtaking_is_by_design_for_gb() {
    // The same scan-ahead behaviour is GB's documented backfilling; with
    // `policy: Gb` the auditor relaxes FCFS and the run is clean.
    let mut cfg = scripted_cfg(3);
    cfg.policy = PolicyKind::Gb;
    let mut feed = VecFeed::new(&[
        (0.0, &[32, 32], 1000.0),
        (1.0, &[32, 32, 32, 32], 1000.0),
        (2.0, &[8], 1000.0),
    ]);
    let mut auditor = InvariantAuditor::new(&cfg);
    let policy = Box::new(OvertakingScheduler {
        queue: std::collections::VecDeque::new(),
        rule: PlacementRule::WorstFit,
    });
    SimBuilder::new(&cfg).scheduler(policy).run_feed_observed(&mut feed, f64::NAN, &mut auditor);
    auditor.assert_clean();
}

// ---------------------------------------------------------------------
// Mutant 2: Best Fit instead of Worst Fit. The stock GS scheduler with
// the wrong placement rule, audited against the configured Worst Fit.
// ---------------------------------------------------------------------

#[test]
fn best_fit_mutant_trips_placement_rule_violation() {
    // After [16] lands on cluster 0, an [8] job separates the rules:
    // Worst Fit picks an empty cluster, Best Fit squeezes into 0.
    let cfg = scripted_cfg(2);
    assert_eq!(cfg.rule, PlacementRule::WorstFit);
    let mut feed = VecFeed::new(&[(0.0, &[16], 1000.0), (1.0, &[8], 1000.0)]);
    let mut auditor = InvariantAuditor::new(&cfg);
    let policy = Box::new(GlobalScheduler::new(PlacementRule::BestFit));
    SimBuilder::new(&cfg).scheduler(policy).run_feed_observed(&mut feed, f64::NAN, &mut auditor);
    assert!(
        auditor.has(ViolationKind::PlacementRuleViolation),
        "expected PlacementRuleViolation, got: {}",
        auditor.report()
    );
    assert!(!auditor.has(ViolationKind::FcfsOvertaking), "{}", auditor.report());
    assert!(!auditor.has(ViolationKind::ExtensionMismatch), "{}", auditor.report());
}

// ---------------------------------------------------------------------
// Mutant 3: the wide-area extension applied twice. The stock GS
// scheduler, but occupancies scaled by the extension factor a second
// time on top of the already-extended service.
// ---------------------------------------------------------------------

#[test]
fn double_extension_mutant_trips_extension_mismatch() {
    let cfg = scripted_cfg(2);
    // One multi-component job (hit by the 1.25× factor twice under the
    // mutant) and one single-component job (factor 1, unaffected).
    let mut feed = VecFeed::new(&[(0.0, &[32, 32], 100.0), (1.0, &[8], 100.0)]);
    let mut auditor = InvariantAuditor::new(&cfg);
    let policy = Box::new(GlobalScheduler::new(PlacementRule::WorstFit));
    SimBuilder::new(&cfg)
        .scheduler(policy)
        .occupancy(OccupancyModel::DoubleExtension)
        .run_feed_observed(&mut feed, f64::NAN, &mut auditor);
    assert!(
        auditor.has(ViolationKind::ExtensionMismatch),
        "expected ExtensionMismatch, got: {}",
        auditor.report()
    );
    assert!(!auditor.has(ViolationKind::FcfsOvertaking), "{}", auditor.report());
    assert!(!auditor.has(ViolationKind::PlacementRuleViolation), "{}", auditor.report());
}

#[test]
fn double_extension_is_invisible_on_single_component_jobs() {
    // Factor 1.0 twice is still 1.0: the mutant only betrays itself on
    // multi-component jobs, and the auditor agrees.
    let cfg = scripted_cfg(2);
    let mut feed = VecFeed::new(&[(0.0, &[8], 100.0), (1.0, &[4], 100.0)]);
    let mut auditor = InvariantAuditor::new(&cfg);
    let policy = Box::new(GlobalScheduler::new(PlacementRule::WorstFit));
    SimBuilder::new(&cfg)
        .scheduler(policy)
        .occupancy(OccupancyModel::DoubleExtension)
        .run_feed_observed(&mut feed, f64::NAN, &mut auditor);
    auditor.assert_clean();
}

// ---------------------------------------------------------------------
// Control: the unmutated simulator is clean under every policy.
// ---------------------------------------------------------------------

#[test]
fn faithful_runs_are_clean_for_every_policy() {
    for policy in [PolicyKind::Gs, PolicyKind::Ls, PolicyKind::Lp, PolicyKind::Gb] {
        let mut cfg = SimConfig::das(policy, 32, 0.6);
        cfg.total_jobs = 400;
        cfg.warmup_jobs = 50;
        let mut auditor = InvariantAuditor::new(&cfg);
        SimBuilder::new(&cfg).run_observed(&mut auditor);
        assert!(auditor.is_clean(), "{policy:?}: {}", auditor.report());
    }
    let mut cfg = SimConfig::das_single_cluster(0.6);
    cfg.total_jobs = 400;
    cfg.warmup_jobs = 50;
    let mut auditor = InvariantAuditor::new(&cfg);
    SimBuilder::new(&cfg).run_observed(&mut auditor);
    assert!(auditor.is_clean(), "Sc: {}", auditor.report());
}

// ---------------------------------------------------------------------
// Synthetic event sequences for the kinds no end-to-end mutant reaches:
// the auditor is fed hand-crafted (and subtly corrupt) event streams.
// ---------------------------------------------------------------------

fn synthetic_auditor() -> InvariantAuditor {
    InvariantAuditor::with_parts(
        SystemSpec::das_multicluster(),
        Workload::das(32),
        PlacementRule::WorstFit,
        true,
    )
}

/// Arrive + enqueue one global job, returning its id and table.
fn arrive(
    auditor: &mut InvariantAuditor,
    table: &mut JobTable,
    components: &[u32],
    t: f64,
) -> JobId {
    let spec = JobSpec {
        request: JobRequest::new(components.to_vec()),
        base_service: Duration::new(100.0),
    };
    let id = table.insert(ActiveJob::new(spec, SimTime::new(t), SubmitQueue::Global));
    auditor.on_arrival(SimTime::new(t), id, table.get(id));
    auditor.on_enqueue(SimTime::new(t), id, SubmitQueue::Global);
    id
}

/// Places a job exactly as Worst Fit dictates on `idle`, reports the
/// decision and the start, and mirrors the ledger change into `idle`.
fn place_and_start(
    auditor: &mut InvariantAuditor,
    table: &mut JobTable,
    idle: &mut [u32],
    id: JobId,
    t: f64,
) -> Placement {
    let p = place_request(idle, &table.get(id).spec.request, PlacementRule::WorstFit)
        .expect("request fits the idle system");
    auditor.on_placement(
        SimTime::new(t),
        &PlacementDecision {
            id,
            queue: SubmitQueue::Global,
            scope: PlacementScope::System,
            idle_before: idle,
            placement: &p,
        },
    );
    for &(c, n) in p.assignments() {
        idle[c] -= n;
    }
    let occ = 100.0 * Workload::das(32).extension_factor(p.assignments().len());
    table.mark_started(id, p.clone(), SimTime::new(t));
    auditor.on_start(SimTime::new(t), id, table.get(id), Duration::new(occ));
    p
}

#[test]
fn non_monotonic_time_is_caught() {
    let mut auditor = synthetic_auditor();
    auditor.on_pass(SimTime::new(1.0), PassTrigger::Arrival);
    auditor.on_pass(SimTime::new(0.5), PassTrigger::Departure);
    assert!(auditor.has(ViolationKind::NonMonotonicTime), "{}", auditor.report());
}

#[test]
fn duplicate_cluster_is_caught() {
    let mut auditor = synthetic_auditor();
    let mut table = JobTable::new();
    let id = arrive(&mut auditor, &mut table, &[8, 8], 0.0);
    let bogus = Placement::raw(vec![(0, 8), (0, 8)]);
    auditor.on_placement(
        SimTime::new(0.0),
        &PlacementDecision {
            id,
            queue: SubmitQueue::Global,
            scope: PlacementScope::System,
            idle_before: &[32, 32, 32, 32],
            placement: &bogus,
        },
    );
    assert!(auditor.has(ViolationKind::DuplicateCluster), "{}", auditor.report());
}

#[test]
fn capacity_exceeded_is_caught() {
    let mut auditor = synthetic_auditor();
    let mut table = JobTable::new();
    // A first, rule-conformant placement empties one cluster …
    let a = arrive(&mut auditor, &mut table, &[32], 0.0);
    let first =
        place_request(&[32, 32, 32, 32], &table.get(a).spec.request, PlacementRule::WorstFit)
            .expect("fits an idle system");
    let target = first.assignments()[0].0;
    auditor.on_placement(
        SimTime::new(0.0),
        &PlacementDecision {
            id: a,
            queue: SubmitQueue::Global,
            scope: PlacementScope::System,
            idle_before: &[32, 32, 32, 32],
            placement: &first,
        },
    );
    // … then a second 32-wide component lands on that same full cluster.
    let b = arrive(&mut auditor, &mut table, &[32], 1.0);
    let bogus = Placement::new(vec![(target, 32)]);
    let mut honest_idle = vec![32u32; 4];
    honest_idle[target] = 0;
    auditor.on_placement(
        SimTime::new(1.0),
        &PlacementDecision {
            id: b,
            queue: SubmitQueue::Global,
            scope: PlacementScope::System,
            idle_before: &honest_idle,
            placement: &bogus,
        },
    );
    assert!(auditor.has(ViolationKind::CapacityExceeded), "{}", auditor.report());
    assert!(!auditor.has(ViolationKind::LedgerMismatch), "{}", auditor.report());
}

#[test]
fn job_state_errors_are_caught() {
    let mut auditor = synthetic_auditor();
    let mut table = JobTable::new();
    // Starting a job the auditor never saw arrive.
    let spec = JobSpec { request: JobRequest::new(vec![8]), base_service: Duration::new(1.0) };
    let ghost = table.insert(ActiveJob::new(spec, SimTime::new(0.0), SubmitQueue::Global));
    auditor.on_start(SimTime::new(0.0), ghost, table.get(ghost), Duration::new(1.0));
    assert!(auditor.has(ViolationKind::JobStateError), "{}", auditor.report());

    // Completing a job that is still waiting.
    let mut auditor = synthetic_auditor();
    let id = arrive(&mut auditor, &mut table, &[8], 0.0);
    auditor.on_completion(SimTime::new(1.0), id, table.get(id));
    assert!(auditor.has(ViolationKind::JobStateError), "{}", auditor.report());
}

#[test]
fn ledger_mismatch_is_caught() {
    let mut auditor = synthetic_auditor();
    let mut table = JobTable::new();
    let id = arrive(&mut auditor, &mut table, &[8], 0.0);
    // The assignment itself is exactly what Worst Fit dictates on the
    // true (all-idle) system; only the reported snapshot lies.
    let p = Placement::new(vec![(0, 8)]);
    auditor.on_placement(
        SimTime::new(0.0),
        &PlacementDecision {
            id,
            queue: SubmitQueue::Global,
            scope: PlacementScope::System,
            idle_before: &[31, 32, 32, 32],
            placement: &p,
        },
    );
    assert!(auditor.has(ViolationKind::LedgerMismatch), "{}", auditor.report());
    assert!(!auditor.has(ViolationKind::CapacityExceeded), "{}", auditor.report());
}

// ---------------------------------------------------------------------
// Fault-injection mutants: each of the three fault-era violation kinds
// proven by a seeded corrupt event sequence, plus a clean control.
// ---------------------------------------------------------------------

#[test]
fn allocation_on_down_cluster_is_caught() {
    let mut auditor = synthetic_auditor();
    let mut table = JobTable::new();
    // Cluster 0 fails cleanly (idle, full capacity) — then a component
    // is assigned to it anyway.
    auditor.on_cluster_down(SimTime::new(0.0), 0, 0);
    let id = arrive(&mut auditor, &mut table, &[8], 1.0);
    let bogus = Placement::new(vec![(0, 8)]);
    auditor.on_placement(
        SimTime::new(1.0),
        &PlacementDecision {
            id,
            queue: SubmitQueue::Global,
            scope: PlacementScope::System,
            idle_before: &[0, 32, 32, 32],
            placement: &bogus,
        },
    );
    assert!(
        auditor.has(ViolationKind::AllocationOnDownCluster),
        "expected AllocationOnDownCluster, got: {}",
        auditor.report()
    );
    assert!(!auditor.has(ViolationKind::InterruptAccountingError), "{}", auditor.report());
    assert!(!auditor.has(ViolationKind::RequeueOrderViolation), "{}", auditor.report());
}

#[test]
fn requeue_order_violation_is_distinct_from_fcfs_overtaking() {
    let mut auditor = synthetic_auditor();
    let mut table = JobTable::new();
    let mut idle = vec![32u32; 4];
    // A runs, B waits behind it.
    let a = arrive(&mut auditor, &mut table, &[8], 0.0);
    let pa = place_and_start(&mut auditor, &mut table, &mut idle, a, 0.0);
    let b = arrive(&mut auditor, &mut table, &[8], 1.0);
    // A's cluster fails: A is re-queued at the *front* to preserve its
    // FCFS age.
    let fc = pa.assignments()[0].0;
    auditor.on_job_interrupted(
        SimTime::new(2.0),
        table.get(a),
        &Interruption {
            id: a,
            cluster: fc,
            released: &pa,
            disposition: InterruptPolicy::RequeueFront,
            resplit: false,
        },
    );
    for &(c, n) in pa.assignments() {
        idle[c] += n;
    }
    auditor.on_cluster_down(SimTime::new(2.0), fc, 0);
    idle[fc] = 0;
    // Starting B now jumps the re-queued victim: the specific
    // RequeueOrderViolation, not the generic FcfsOvertaking.
    let pb = place_request(&idle, &table.get(b).spec.request, PlacementRule::WorstFit)
        .expect("fits the surviving clusters");
    auditor.on_placement(
        SimTime::new(3.0),
        &PlacementDecision {
            id: b,
            queue: SubmitQueue::Global,
            scope: PlacementScope::System,
            idle_before: &idle,
            placement: &pb,
        },
    );
    assert!(
        auditor.has(ViolationKind::RequeueOrderViolation),
        "expected RequeueOrderViolation, got: {}",
        auditor.report()
    );
    assert!(!auditor.has(ViolationKind::FcfsOvertaking), "{}", auditor.report());
    assert!(!auditor.has(ViolationKind::InterruptAccountingError), "{}", auditor.report());
}

#[test]
fn interrupt_accounting_errors_are_caught() {
    // (a) The interruption releases a placement the job never held.
    let mut auditor = synthetic_auditor();
    let mut table = JobTable::new();
    let mut idle = vec![32u32; 4];
    let a = arrive(&mut auditor, &mut table, &[8], 0.0);
    let pa = place_and_start(&mut auditor, &mut table, &mut idle, a, 0.0);
    let c = pa.assignments()[0].0;
    let wrong = Placement::new(vec![(c, 4)]);
    auditor.on_job_interrupted(
        SimTime::new(1.0),
        table.get(a),
        &Interruption {
            id: a,
            cluster: c,
            released: &wrong,
            disposition: InterruptPolicy::RequeueBack,
            resplit: false,
        },
    );
    assert!(auditor.has(ViolationKind::InterruptAccountingError), "{}", auditor.report());

    // (b) Interrupting a job that is still waiting.
    let mut auditor = synthetic_auditor();
    let b = arrive(&mut auditor, &mut table, &[8], 0.0);
    let ghost = Placement::new(vec![(1, 8)]);
    auditor.on_job_interrupted(
        SimTime::new(1.0),
        table.get(b),
        &Interruption {
            id: b,
            cluster: 1,
            released: &ghost,
            disposition: InterruptPolicy::RequeueBack,
            resplit: false,
        },
    );
    assert!(auditor.has(ViolationKind::InterruptAccountingError), "{}", auditor.report());

    // (c) Repairing a cluster that was never down.
    let mut auditor = synthetic_auditor();
    auditor.on_cluster_up(SimTime::new(0.0), 2);
    assert!(auditor.has(ViolationKind::InterruptAccountingError), "{}", auditor.report());

    // (d) A failure arriving with victims still running on the cluster.
    let mut auditor = synthetic_auditor();
    let mut table = JobTable::new();
    let mut idle = vec![32u32; 4];
    let d = arrive(&mut auditor, &mut table, &[8], 0.0);
    let pd = place_and_start(&mut auditor, &mut table, &mut idle, d, 0.0);
    auditor.on_cluster_down(SimTime::new(1.0), pd.assignments()[0].0, 0);
    assert!(auditor.has(ViolationKind::InterruptAccountingError), "{}", auditor.report());
}

// ---------------------------------------------------------------------
// Backfilling and malleability mutants: ReservationViolation,
// BackfillStarvation, and ResizeConservation each proven by a seeded
// corrupt event sequence, with clean controls and neighbor silence.
// ---------------------------------------------------------------------

fn backfill_auditor() -> InvariantAuditor {
    synthetic_auditor().with_discipline(crate::queue::QueueDiscipline::Easy, 2.0)
}

/// Arrive + enqueue one global job with an explicit base service.
fn arrive_with_service(
    auditor: &mut InvariantAuditor,
    table: &mut JobTable,
    components: &[u32],
    service: f64,
    t: f64,
) -> JobId {
    let spec = JobSpec {
        request: JobRequest::new(components.to_vec()),
        base_service: Duration::new(service),
    };
    let id = table.insert(ActiveJob::new(spec, SimTime::new(t), SubmitQueue::Global));
    auditor.on_arrival(SimTime::new(t), id, table.get(id));
    auditor.on_enqueue(SimTime::new(t), id, SubmitQueue::Global);
    id
}

/// The EASY scenario shared by the backfilling mutants: A ([32], 100s)
/// holds cluster 0 with estimated end 200 (factor 2); B (the whole
/// system) blocks at the head with its reservation at A's estimated
/// release; C ([8], `c_service`) backfills past B.
fn easy_scenario(
    auditor: &mut InvariantAuditor,
    table: &mut JobTable,
    c_service: f64,
) -> (JobId, JobId, JobId) {
    let mut idle = vec![32u32; 4];
    let a = arrive_with_service(auditor, table, &[32], 100.0, 0.0);
    place_and_start(auditor, table, &mut idle, a, 0.0);
    let b = arrive_with_service(auditor, table, &[32, 32, 32, 32], 100.0, 1.0);
    let c = arrive_with_service(auditor, table, &[8], c_service, 2.0);
    let pc = place_request(&idle, &table.get(c).spec.request, PlacementRule::WorstFit)
        .expect("the backfiller fits the surviving idle");
    auditor.on_placement(
        SimTime::new(2.0),
        &PlacementDecision {
            id: c,
            queue: SubmitQueue::Global,
            scope: PlacementScope::System,
            idle_before: &idle,
            placement: &pc,
        },
    );
    table.mark_started(c, pc, SimTime::new(2.0));
    auditor.on_start(SimTime::new(2.0), c, table.get(c), Duration::new(c_service));
    (a, b, c)
}

#[test]
fn long_backfill_trips_reservation_violation() {
    // C's estimated end (2 + 2×150 = 302) lands past B's reservation at
    // 200 — an EASY scheduler must not have started it.
    let mut auditor = backfill_auditor();
    let mut table = JobTable::new();
    easy_scenario(&mut auditor, &mut table, 150.0);
    assert!(
        auditor.has(ViolationKind::ReservationViolation),
        "expected ReservationViolation, got: {}",
        auditor.report()
    );
    assert!(!auditor.has(ViolationKind::FcfsOvertaking), "{}", auditor.report());
    assert!(!auditor.has(ViolationKind::BackfillStarvation), "{}", auditor.report());
}

#[test]
fn short_backfill_respects_the_reservation() {
    // The same overtake with a short C (estimated end 102 < 200) is the
    // discipline working as designed: no violation of any kind.
    let mut auditor = backfill_auditor();
    let mut table = JobTable::new();
    easy_scenario(&mut auditor, &mut table, 50.0);
    auditor.assert_clean();
}

#[test]
fn starved_head_trips_backfill_starvation() {
    // A legal backfill, but the head is still waiting at t = 300 — past
    // its reservation at 200. The pass at 300 flags the starvation.
    let mut auditor = backfill_auditor();
    let mut table = JobTable::new();
    easy_scenario(&mut auditor, &mut table, 50.0);
    auditor.on_pass(SimTime::new(300.0), PassTrigger::Departure);
    assert!(
        auditor.has(ViolationKind::BackfillStarvation),
        "expected BackfillStarvation, got: {}",
        auditor.report()
    );
    assert!(!auditor.has(ViolationKind::ReservationViolation), "{}", auditor.report());
    assert!(!auditor.has(ViolationKind::FcfsOvertaking), "{}", auditor.report());
}

#[test]
fn head_started_by_its_reservation_is_clean() {
    // Control: C and A complete on time, B starts at t = 100 (before its
    // reservation at 200) — the watch clears and the late pass is quiet.
    let mut auditor = backfill_auditor();
    let mut table = JobTable::new();
    let (a, b, c) = easy_scenario(&mut auditor, &mut table, 50.0);
    auditor.on_completion(SimTime::new(52.0), c, table.get(c));
    auditor.on_completion(SimTime::new(100.0), a, table.get(a));
    let idle = vec![32u32; 4];
    let pb = place_request(&idle, &table.get(b).spec.request, PlacementRule::WorstFit)
        .expect("the head fits the drained system");
    auditor.on_placement(
        SimTime::new(100.0),
        &PlacementDecision {
            id: b,
            queue: SubmitQueue::Global,
            scope: PlacementScope::System,
            idle_before: &idle,
            placement: &pb,
        },
    );
    let span = pb.assignments().len();
    let occ = 100.0 * Workload::das(32).extension_factor(span);
    table.mark_started(b, pb, SimTime::new(100.0));
    auditor.on_start(SimTime::new(100.0), b, table.get(b), Duration::new(occ));
    auditor.on_pass(SimTime::new(300.0), PassTrigger::Departure);
    auditor.assert_clean();
}

#[test]
fn non_conserving_resize_trips_resize_conservation() {
    // Doubling A's processors at t = 20 must pull its departure from 100
    // to 60 (80 remaining seconds × 16/32). The mutant reschedules to 80,
    // quietly shrinking the job's remaining work.
    let mut auditor = backfill_auditor();
    let mut table = JobTable::new();
    let mut idle = vec![32u32; 4];
    let a = arrive_with_service(&mut auditor, &mut table, &[16], 100.0, 0.0);
    let pa = place_and_start(&mut auditor, &mut table, &mut idle, a, 0.0);
    let cluster = pa.assignments()[0].0;
    let grown = Placement::new(vec![(cluster, 32)]);
    auditor.on_job_resized(
        SimTime::new(20.0),
        table.get(a),
        &super::Resize {
            id: a,
            from: &pa,
            to: &grown,
            old_end: SimTime::new(100.0),
            new_end: SimTime::new(80.0),
        },
    );
    assert!(
        auditor.has(ViolationKind::ResizeConservation),
        "expected ResizeConservation, got: {}",
        auditor.report()
    );
    assert!(!auditor.has(ViolationKind::CapacityExceeded), "{}", auditor.report());
    assert!(!auditor.has(ViolationKind::DuplicateCluster), "{}", auditor.report());

    // Releasing a placement the job never held is the same kind.
    let mut auditor = backfill_auditor();
    let mut table = JobTable::new();
    let mut idle = vec![32u32; 4];
    let b = arrive_with_service(&mut auditor, &mut table, &[16], 100.0, 0.0);
    let pb = place_and_start(&mut auditor, &mut table, &mut idle, b, 0.0);
    let cluster = pb.assignments()[0].0;
    let phantom = Placement::new(vec![(cluster, 8)]);
    auditor.on_job_resized(
        SimTime::new(20.0),
        table.get(b),
        &super::Resize {
            id: b,
            from: &phantom,
            to: &Placement::new(vec![(cluster, 16)]),
            old_end: SimTime::new(100.0),
            new_end: SimTime::new(100.0),
        },
    );
    assert!(auditor.has(ViolationKind::ResizeConservation), "{}", auditor.report());
}

#[test]
fn conserving_resize_passes_the_audit() {
    // The faithful resize: to 32 processors at t = 20, departure moved to
    // 60, completion at 60 — clean end to end.
    let mut auditor = backfill_auditor();
    let mut table = JobTable::new();
    let mut idle = vec![32u32; 4];
    let a = arrive_with_service(&mut auditor, &mut table, &[16], 100.0, 0.0);
    let pa = place_and_start(&mut auditor, &mut table, &mut idle, a, 0.0);
    let cluster = pa.assignments()[0].0;
    let grown = Placement::new(vec![(cluster, 32)]);
    auditor.on_job_resized(
        SimTime::new(20.0),
        table.get(a),
        &super::Resize {
            id: a,
            from: &pa,
            to: &grown,
            old_end: SimTime::new(100.0),
            new_end: SimTime::new(60.0),
        },
    );
    auditor.on_completion(SimTime::new(60.0), a, table.get(a));
    auditor.assert_clean();
}

#[test]
fn span_changing_resize_with_stale_extension_trips_resize_conservation() {
    // A 2→1-cluster shrink sheds the 1.25 wide-area extension: the
    // remaining base work at t = 25 is (125 − 25)·32/1.25 = 2560
    // processor-seconds, which 16 unextended processors clear by
    // t = 185. The mutant conserves *extended* seconds instead (the
    // pre-fix engine formula), rescheduling to 25 + 100·32/16 = 225 —
    // base work was silently created.
    let mut auditor = backfill_auditor();
    let mut table = JobTable::new();
    let mut idle = vec![32u32; 4];
    let a = arrive_with_service(&mut auditor, &mut table, &[16, 16], 100.0, 0.0);
    let pa = place_and_start(&mut auditor, &mut table, &mut idle, a, 0.0);
    let survivor = Placement::new(vec![(pa.assignments()[0].0, 16)]);
    auditor.on_job_resized(
        SimTime::new(25.0),
        table.get(a),
        &super::Resize {
            id: a,
            from: &pa,
            to: &survivor,
            old_end: SimTime::new(125.0),
            new_end: SimTime::new(225.0),
        },
    );
    assert!(
        auditor.has(ViolationKind::ResizeConservation),
        "expected ResizeConservation, got: {}",
        auditor.report()
    );
    assert!(!auditor.has(ViolationKind::ExtensionMismatch), "{}", auditor.report());

    // The re-derived end (base work re-extended at the new span's
    // factor 1.0) is clean through completion.
    let mut auditor = backfill_auditor();
    let mut table = JobTable::new();
    let mut idle = vec![32u32; 4];
    let b = arrive_with_service(&mut auditor, &mut table, &[16, 16], 100.0, 0.0);
    let pb = place_and_start(&mut auditor, &mut table, &mut idle, b, 0.0);
    let survivor = Placement::new(vec![(pb.assignments()[0].0, 16)]);
    auditor.on_job_resized(
        SimTime::new(25.0),
        table.get(b),
        &super::Resize {
            id: b,
            from: &pb,
            to: &survivor,
            old_end: SimTime::new(125.0),
            new_end: SimTime::new(185.0),
        },
    );
    auditor.on_completion(SimTime::new(185.0), b, table.get(b));
    auditor.assert_clean();
}

// ---------------------------------------------------------------------
// Network-model mutants: under a contended bandwidth-sharing fabric the
// auditor mirrors every wide-area flow's max-min fair rate; a departure
// that ignores the contention (the nominal, uncontended end) leaves
// base work unaccounted and trips WorkConservation.
// ---------------------------------------------------------------------

fn network_auditor() -> InvariantAuditor {
    synthetic_auditor().with_network(crate::sim::NetworkSpec::backbone(1.0))
}

/// The shared scenario: two 2-cluster jobs (base 100 s, factor 1.25)
/// on a capacity-1 backbone. A runs alone until B starts at t = 40
/// (stretch 1.25, 68 base seconds left); overlapped, each flow gets
/// share ½ and stretch 1.5, so A's remaining 68 finish at t = 142; B
/// then runs alone again (32 base seconds left at stretch 1.25) and
/// honestly departs at t = 182.
fn contended_pair(auditor: &mut InvariantAuditor, table: &mut JobTable) -> (JobId, JobId) {
    let mut idle = vec![32u32; 4];
    let a = arrive(auditor, table, &[16, 16], 0.0);
    place_and_start(auditor, table, &mut idle, a, 0.0);
    let b = arrive(auditor, table, &[16, 16], 40.0);
    place_and_start(auditor, table, &mut idle, b, 40.0);
    auditor.on_completion(SimTime::new(142.0), a, table.get(a));
    (a, b)
}

#[test]
fn nominal_departure_under_contention_trips_work_conservation() {
    // The mutant departs B at its nominal uncontended end, 40 + 125 =
    // 165 — but at the mirrored rates B still owes 32 − 23/1.25 = 13.6
    // base seconds then.
    let mut auditor = network_auditor();
    let mut table = JobTable::new();
    let (_, b) = contended_pair(&mut auditor, &mut table);
    auditor.on_completion(SimTime::new(165.0), b, table.get(b));
    assert!(
        auditor.has(ViolationKind::WorkConservation),
        "expected WorkConservation, got: {}",
        auditor.report()
    );
    assert!(!auditor.has(ViolationKind::ExtensionMismatch), "{}", auditor.report());
    assert!(!auditor.has(ViolationKind::ResizeConservation), "{}", auditor.report());
}

#[test]
fn bandwidth_shared_departures_pass_the_audit() {
    // Control: both departures follow the shared-bandwidth schedule and
    // the run is clean — including A's, whose own rate changed twice.
    let mut auditor = network_auditor();
    let mut table = JobTable::new();
    let (_, b) = contended_pair(&mut auditor, &mut table);
    auditor.on_completion(SimTime::new(182.0), b, table.get(b));
    auditor.assert_clean();
}

#[test]
fn contended_network_runs_are_clean() {
    // End to end: the real engine's lazily-accrued flows and the
    // auditor's eagerly-accrued mirror must agree on every departure,
    // under both topologies.
    for spec in [crate::sim::NetworkSpec::backbone(1.0), crate::sim::NetworkSpec::pairwise(2.0)] {
        let mut cfg = SimConfig::das(PolicyKind::Gs, 32, 0.6);
        cfg.total_jobs = 400;
        cfg.warmup_jobs = 50;
        cfg.network = Some(spec);
        let mut auditor = InvariantAuditor::new(&cfg);
        SimBuilder::new(&cfg).run_observed(&mut auditor);
        assert!(auditor.is_clean(), "{spec:?}: {}", auditor.report());
    }
}

#[test]
fn molding_that_changes_the_total_is_caught() {
    // A mold must conserve the processor total: [32,32] re-split to
    // three 16s silently sheds 16 processors.
    let mut auditor = backfill_auditor();
    let mut table = JobTable::new();
    let id = arrive(&mut auditor, &mut table, &[32, 32], 0.0);
    let submitted = table.get(id).spec.request.clone();
    auditor.on_job_molded(SimTime::new(0.0), id, &submitted, &JobRequest::new(vec![16, 16, 16]));
    assert!(
        auditor.has(ViolationKind::PlacementRuleViolation),
        "expected PlacementRuleViolation, got: {}",
        auditor.report()
    );

    // The conserving mold is clean, and the rule-conformance check
    // follows the *molded* split on the subsequent placement.
    let mut auditor = backfill_auditor();
    let mut table = JobTable::new();
    let id = arrive(&mut auditor, &mut table, &[32, 32], 0.0);
    let submitted = table.get(id).spec.request.clone();
    let molded = JobRequest::new(vec![16, 16, 16, 16]);
    auditor.on_job_molded(SimTime::new(0.0), id, &submitted, &molded);
    let idle = vec![32u32; 4];
    let p = place_request(&idle, &molded, PlacementRule::WorstFit)
        .expect("the molded split fits the idle system");
    auditor.on_placement(
        SimTime::new(0.0),
        &PlacementDecision {
            id,
            queue: SubmitQueue::Global,
            scope: PlacementScope::System,
            idle_before: &idle,
            placement: &p,
        },
    );
    auditor.assert_clean();
}

#[test]
fn clean_fault_sequence_passes_the_audit() {
    // The full failure lifecycle done right: victim interrupted with
    // exactly its held placement, cluster down, repair, victim restarted
    // first — no violation of any kind.
    let mut auditor = synthetic_auditor();
    let mut table = JobTable::new();
    let mut idle = vec![32u32; 4];
    let a = arrive(&mut auditor, &mut table, &[8], 0.0);
    let pa = place_and_start(&mut auditor, &mut table, &mut idle, a, 0.0);
    let fc = pa.assignments()[0].0;
    auditor.on_job_interrupted(
        SimTime::new(1.0),
        table.get(a),
        &Interruption {
            id: a,
            cluster: fc,
            released: &pa,
            disposition: InterruptPolicy::RequeueFront,
            resplit: false,
        },
    );
    for &(cl, n) in pa.assignments() {
        idle[cl] += n;
    }
    auditor.on_cluster_down(SimTime::new(1.0), fc, 0);
    idle[fc] = 0;
    auditor.on_cluster_up(SimTime::new(2.0), fc);
    idle[fc] = 32;
    let pa2 = place_request(&idle, &table.get(a).spec.request, PlacementRule::WorstFit)
        .expect("fits the repaired system");
    auditor.on_placement(
        SimTime::new(3.0),
        &PlacementDecision {
            id: a,
            queue: SubmitQueue::Global,
            scope: PlacementScope::System,
            idle_before: &idle,
            placement: &pa2,
        },
    );
    auditor.assert_clean();
}
