//! The invariant auditor: re-derives every decision and records
//! violations of the paper's scheduling rules.

use std::collections::VecDeque;

use coalloc_workload::{JobRequest, RequestKind, Workload};
use desim::{Duration, SimTime};

use crate::job::{ActiveJob, JobId, Placement, SubmitQueue};
use crate::placement::{place_scoped, PlacementRule};
use crate::policy::{estimated_occupancy, replay_shadow};
use crate::queue::QueueDiscipline;
use crate::sim::{cluster_mask, network, NetworkSpec, SimConfig};
use crate::system::SystemSpec;

use super::{PlacementDecision, PlacementScope, Resize, SimObserver};

/// Relative tolerance for time/occupancy comparisons; far below any
/// real discrepancy (a mis-applied 1.25 extension is a 25% error).
const TOL: f64 = 1e-9;

/// Relative tolerance for the mirrored-flow checks under a bandwidth-
/// sharing network model. The auditor accrues progress eagerly at every
/// observed event while the engine accrues lazily, so the two disagree
/// by accumulated rounding (ulps per rebalance) rather than exactly —
/// still six orders of magnitude below a mis-applied extension.
const NET_TOL: f64 = 1e-6;

/// How many violations are kept verbatim; the total count keeps
/// growing so a flood is still visible.
const MAX_RECORDED: usize = 200;

/// The kinds of rule violations the auditor can detect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A placement claimed more processors than a cluster had idle (or
    /// a release pushed a cluster above its capacity).
    CapacityExceeded,
    /// Two components of one job were assigned to the same cluster.
    DuplicateCluster,
    /// The chosen assignment differs from what the configured placement
    /// rule (Worst Fit in the paper) dictates for the observed idle
    /// state, or does not cover the request.
    PlacementRuleViolation,
    /// A job started while an earlier job in the same queue was still
    /// waiting (FCFS overtaking; GB is exempt — it backfills by
    /// design).
    FcfsOvertaking,
    /// A job's occupancy does not equal base service times the
    /// extension factor for the clusters it spans — the factor was
    /// dropped, doubled, or applied to a single-cluster job.
    ExtensionMismatch,
    /// An event carried a time earlier than its predecessor's.
    NonMonotonicTime,
    /// An event contradicts the job lifecycle (started twice, placed
    /// while not waiting, completed while not running, …).
    JobStateError,
    /// The idle snapshot a scheduler reported disagrees with the
    /// auditor's independently tracked ledger.
    LedgerMismatch,
    /// A component was assigned to a cluster that a failure had taken
    /// fully offline.
    AllocationOnDownCluster,
    /// A job started ahead of a fault victim that was re-queued at the
    /// head of its queue to preserve its FCFS age.
    RequeueOrderViolation,
    /// Fault bookkeeping went wrong: a cluster went down with victims
    /// still running on it, an interruption released processors a job
    /// did not hold, a repair hit a cluster that was not down, or an
    /// interruption hit a job that was not running.
    InterruptAccountingError,
    /// Under a backfilling discipline, a job overtook its queue head
    /// although its own estimated end exceeds the head's shadow
    /// reservation — the backfill may delay the very job it was
    /// supposed to slip past (the EASY contract, §backfilling).
    ReservationViolation,
    /// A blocked queue head was still waiting after its shadow
    /// reservation time had passed: backfilled jobs starved the head
    /// beyond the bound the discipline promised.
    BackfillStarvation,
    /// A malleable resize did not conserve the job's remaining *base*
    /// work: `(old_end − now)·old_processors/f_old` differs from
    /// `(new_end − now)·new_processors/f_new` (where `f` is the
    /// wide-area extension factor for the clusters spanned on each
    /// side — a span-changing resize must re-derive its extension), or
    /// the resize released a placement the job did not hold.
    ResizeConservation,
    /// Under a bandwidth-sharing network model
    /// ([`crate::OccupancyModel::Network`]), a multi-cluster job's
    /// gross work was not conserved: the departure or resize time the
    /// engine scheduled disagrees with the auditor's independently
    /// mirrored max-min fair flow rates — work was created, destroyed,
    /// or an extension applied other than exactly once along the way.
    WorkConservation,
}

impl core::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One detected violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What rule was broken.
    pub kind: ViolationKind,
    /// Simulated time of the offending event.
    pub t: f64,
    /// The job involved, if any.
    pub job: Option<u64>,
    /// Human-readable specifics.
    pub detail: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[t={:.6}] {}", self.t, self.kind)?;
        if let Some(j) = self.job {
            write!(f, " job {j}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Waiting,
    Placed,
    Running,
    Done,
}

#[derive(Clone, Debug)]
struct JobInfo {
    request: JobRequest,
    base_service: f64,
    queue: SubmitQueue,
    state: JobState,
    start: f64,
    occupancy: f64,
    span: usize,
    assignments: Vec<(usize, u32)>,
    /// The job is a fault victim re-queued at the head of its queue;
    /// starting any other job from that queue ahead of it violates the
    /// preserved FCFS age.
    requeued_front: bool,
    /// Estimated release time while running (the same arithmetic the
    /// backfilling schedulers use), for re-deriving shadow bounds.
    est_end: f64,
}

/// The auditor's independent mirror of one wide-area flow under a
/// bandwidth-sharing network model: the remaining *base* work and the
/// current stretch (extension factor inflated by bandwidth contention),
/// accrued eagerly at every observed flow-set change. The engine keeps
/// the same state lazily; both accruals are exact for piecewise-
/// constant rates, so they agree to rounding.
#[derive(Clone, Debug)]
struct MirrorFlow {
    id: u64,
    /// Bitmask of the clusters the job spans (the flow's endpoints).
    mask: u64,
    /// The nominal wide-area extension factor for the job's span.
    factor: f64,
    /// Remaining base service seconds.
    remaining: f64,
    /// Current slowdown: wall seconds per remaining base second.
    stretch: f64,
    /// When `remaining` was last accrued.
    since: f64,
}

/// An observer that checks, at every event, that the simulation obeys
/// the paper's rules (see [`ViolationKind`] for the list). It keeps its
/// own idle-processor ledger and waiting-queue mirror, so a buggy
/// scheduler cannot vouch for itself.
///
/// Attach it via [`crate::sim::SimBuilder::run_observed`]; inspect
/// [`InvariantAuditor::violations`] or call
/// [`InvariantAuditor::assert_clean`] afterwards.
#[derive(Clone, Debug)]
pub struct InvariantAuditor {
    system: SystemSpec,
    idle: Vec<u32>,
    /// Per-cluster *effective* capacity: the full capacity, lowered to
    /// the remaining-usable count while a failure has the cluster down.
    effective: Vec<u32>,
    workload: Workload,
    rule: PlacementRule,
    /// FCFS is enforced per queue unless the policy overtakes by design
    /// (GB's aggressive backfilling, or a backfilling discipline).
    strict_fcfs: bool,
    /// The queue discipline the run declared; overtakes under a
    /// backfilling discipline are checked against the head's shadow
    /// reservation instead of being flat violations.
    discipline: QueueDiscipline,
    /// The estimate multiplier the run declared, for mirroring the
    /// schedulers' estimated ends bit-for-bit.
    estimate_factor: f64,
    /// Whether the shadow reservation is also an upper bound on the
    /// head's real start (sound only for single-queue policies with
    /// overrun-side estimates and no faults) — arms BackfillStarvation.
    starvation_armed: bool,
    /// Overtaken queue heads still waiting: `(queue, head, bound)` —
    /// the head must start by `bound` or the run starved it.
    head_watch: Vec<(SubmitQueue, u64, f64)>,
    waiting_local: Vec<VecDeque<u64>>,
    waiting_global: VecDeque<u64>,
    jobs: Vec<Option<JobInfo>>,
    /// The bandwidth-sharing model the run declared, if any. A
    /// *contended* (finite-capacity) network arms the mirrored-flow
    /// work-conservation checks and disarms the nominal held-interval,
    /// resize-conservation, and starvation bounds for the jobs the
    /// network stretches (their timing is load-dependent by design).
    network: Option<NetworkSpec>,
    /// Mirrored wide-area flows of the running multi-cluster jobs.
    flows: Vec<MirrorFlow>,
    last_t: f64,
    violations: Vec<Violation>,
    total: usize,
}

/// What happened to a job's position in its queue mirror when it was
/// placed (resolved first so violations can be reported without holding
/// a borrow on the mirror).
enum FifoOutcome {
    Head,
    Overtook(Vec<u64>),
    Absent,
    NoSuchQueue,
}

impl InvariantAuditor {
    /// An auditor for runs of `cfg` (system shape, workload extension
    /// model, placement rule, and FCFS strictness all follow the
    /// configuration).
    pub fn new(cfg: &SimConfig) -> Self {
        let mut auditor = Self::with_parts(
            cfg.system.clone(),
            cfg.workload.clone(),
            cfg.rule,
            cfg.policy != crate::policy::PolicyKind::Gb,
        )
        .with_discipline(cfg.discipline, cfg.estimate_factor);
        // The starvation bound is sound only when the watched queue is
        // the sole consumer of the system: under LS/LP another queue's
        // head may legally take processors the shadow replay counted on.
        auditor.starvation_armed &= matches!(
            cfg.policy,
            crate::policy::PolicyKind::Gs
                | crate::policy::PolicyKind::Sc
                | crate::policy::PolicyKind::Gb
        );
        auditor.network = cfg.network;
        auditor
    }

    /// An auditor from explicit parts (for harnesses that drive the
    /// scheduler without a [`SimConfig`]).
    pub fn with_parts(
        system: SystemSpec,
        workload: Workload,
        rule: PlacementRule,
        strict_fcfs: bool,
    ) -> Self {
        let clusters = system.num_clusters();
        InvariantAuditor {
            idle: system.capacities().to_vec(),
            effective: system.capacities().to_vec(),
            system,
            workload,
            rule,
            strict_fcfs,
            discipline: QueueDiscipline::Fcfs,
            estimate_factor: 2.0,
            starvation_armed: false,
            head_watch: Vec::new(),
            waiting_local: vec![VecDeque::new(); clusters],
            waiting_global: VecDeque::new(),
            jobs: Vec::new(),
            network: None,
            flows: Vec::new(),
            last_t: f64::NEG_INFINITY,
            violations: Vec::new(),
            total: 0,
        }
    }

    /// Declares the run's queue discipline and estimate multiplier.
    ///
    /// A backfilling discipline relaxes strict FCFS into the shadow-
    /// reservation check ([`ViolationKind::ReservationViolation`]) and
    /// arms the head-starvation bound when the estimates are on the
    /// overrun side (`estimate_factor ≥ 1` and finite).
    #[must_use]
    pub fn with_discipline(mut self, discipline: QueueDiscipline, estimate_factor: f64) -> Self {
        self.strict_fcfs = self.strict_fcfs && discipline == QueueDiscipline::Fcfs;
        self.starvation_armed =
            discipline.backfills() && estimate_factor >= 1.0 && estimate_factor.is_finite();
        self.discipline = discipline;
        self.estimate_factor = estimate_factor;
        self
    }

    /// Declares the run's bandwidth-sharing network model (for
    /// harnesses that build the auditor from parts;
    /// [`InvariantAuditor::new`] picks it up from the configuration).
    #[must_use]
    pub fn with_network(mut self, spec: NetworkSpec) -> Self {
        self.network = Some(spec);
        self
    }

    /// The recorded violations (capped at an internal limit; see
    /// [`InvariantAuditor::total_violations`] for the full count).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations detected, including any beyond the recording
    /// cap.
    pub fn total_violations(&self) -> usize {
        self.total
    }

    /// Whether the run broke no rules.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Whether any recorded violation is of `kind`.
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }

    /// A one-line summary plus the first recorded violations.
    pub fn report(&self) -> String {
        use core::fmt::Write as _;
        let mut s = format!("{} violation(s)", self.total);
        for v in self.violations.iter().take(10) {
            let _ = write!(s, "\n  {v}");
        }
        if self.total > 10 {
            let _ = write!(s, "\n  … and {} more", self.total - 10);
        }
        s
    }

    /// Panics with [`InvariantAuditor::report`] if any violation was
    /// detected.
    ///
    /// # Panics
    /// When the audited run broke any rule.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "audit failed: {}", self.report());
    }

    fn violation(&mut self, kind: ViolationKind, t: f64, job: Option<u64>, detail: String) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(Violation { kind, t, job, detail });
        }
    }

    fn check_time(&mut self, now: SimTime) -> f64 {
        let t = now.seconds();
        if t < self.last_t {
            let last = self.last_t;
            self.violation(
                ViolationKind::NonMonotonicTime,
                t,
                None,
                format!("event at {t} after one at {last}"),
            );
        } else {
            self.last_t = t;
        }
        t
    }

    fn job_mut(&mut self, id: JobId) -> Option<&mut JobInfo> {
        self.jobs.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    fn unknown_job(&mut self, t: f64, id: JobId, context: &str) {
        self.violation(
            ViolationKind::JobStateError,
            t,
            Some(id.0),
            format!("{context} for a job never seen arriving"),
        );
    }

    /// Removes `id` from the mirror of `queue`, reporting how it sat in
    /// FIFO order.
    fn take_from_fifo(&mut self, queue: SubmitQueue, id: u64) -> FifoOutcome {
        let fifo = match queue {
            SubmitQueue::Global => &mut self.waiting_global,
            SubmitQueue::Local(i) => match self.waiting_local.get_mut(i) {
                Some(f) => f,
                None => return FifoOutcome::NoSuchQueue,
            },
        };
        match fifo.iter().position(|&j| j == id) {
            Some(0) => {
                fifo.pop_front();
                FifoOutcome::Head
            }
            Some(p) => {
                let ahead: Vec<u64> = fifo.iter().take(p).copied().collect();
                fifo.remove(p);
                FifoOutcome::Overtook(ahead)
            }
            None => FifoOutcome::Absent,
        }
    }

    /// The estimated occupancy the schedulers would compute for this
    /// request at the given span (shared arithmetic — see
    /// [`estimated_occupancy`]).
    fn est_occupancy(&self, request: &JobRequest, base_service: f64, span: usize) -> f64 {
        estimated_occupancy(
            &self.workload,
            self.estimate_factor,
            request,
            Duration::new(base_service),
            span,
        )
    }

    /// The scope a queue head is placed under: system-wide from the
    /// global queue; from a local queue, cluster-confined unless the
    /// request is multi-component or ordered (the LS/LP §2.5 rule —
    /// both policies agree on every request shape their local queues
    /// can hold).
    fn head_scope(queue: SubmitQueue, request: &JobRequest) -> PlacementScope {
        match queue {
            SubmitQueue::Global => PlacementScope::System,
            SubmitQueue::Local(q) => {
                if request.is_multi() || request.kind() == RequestKind::Ordered {
                    PlacementScope::System
                } else {
                    PlacementScope::Cluster(q)
                }
            }
        }
    }

    /// Re-derives the shadow reservation of a blocked head from the
    /// auditor's own ledger and running-set mirror: the earliest
    /// estimated time `request` fits under `scope`.
    fn shadow_bound(&self, request: &JobRequest, scope: PlacementScope, now: f64) -> f64 {
        let mut releases: Vec<(f64, Placement)> = self
            .jobs
            .iter()
            .flatten()
            .filter(|info| info.state == JobState::Running && !info.assignments.is_empty())
            .filter(|info| {
                // A corrupt duplicate-cluster placement was already
                // flagged; skip it rather than panic in the replay.
                let mut cs: Vec<usize> = info.assignments.iter().map(|&(c, _)| c).collect();
                cs.sort_unstable();
                cs.dedup();
                cs.len() == info.assignments.len()
            })
            .map(|info| (info.est_end, Placement::new(info.assignments.clone())))
            .collect();
        releases.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("estimates are never NaN"));
        let mut idle = self.idle.clone();
        replay_shadow(&mut idle, &releases, request, scope, self.rule, now)
    }

    /// Under a backfilling discipline, an overtake is legal only below
    /// the overtaken head's shadow reservation; when the starvation
    /// bound is sound, the head goes under watch until it starts.
    fn check_reservation(
        &mut self,
        t: f64,
        id: JobId,
        queue: SubmitQueue,
        head: u64,
        est_end: f64,
    ) {
        let head_info = self
            .jobs
            .get(head as usize)
            .and_then(Option::as_ref)
            .map(|info| (info.request.clone(), info.base_service));
        let Some((head_request, _)) = head_info else {
            return; // the mirror is already corrupt; other checks fired
        };
        let scope = Self::head_scope(queue, &head_request);
        let bound = self.shadow_bound(&head_request, scope, t);
        if est_end > bound + TOL * bound.abs().max(1.0) {
            self.violation(
                ViolationKind::ReservationViolation,
                t,
                Some(id.0),
                format!(
                    "backfilled with estimated end {est_end} past head {head}'s reservation \
                     at {bound}"
                ),
            );
        }
        if self.starvation_armed
            && !self.net_contended()
            && bound.is_finite()
            && !self.head_watch.iter().any(|&(q, h, _)| q == queue && h == head)
        {
            self.head_watch.push((queue, head, bound));
        }
    }

    /// Whether a *contended* bandwidth-sharing network is in play — an
    /// uncontended (infinite-capacity) one collapses onto the faithful
    /// model, so every nominal check stays armed.
    fn net_contended(&self) -> bool {
        self.network.is_some_and(|n| !n.is_uncontended())
    }

    /// Accrues every mirrored flow's remaining base work up to `t` at
    /// its current stretch. Exact between flow-set changes (the rates
    /// are piecewise constant), so eager accrual here matches the
    /// engine's lazy accrual to rounding.
    fn accrue_flows(&mut self, t: f64) {
        for flow in &mut self.flows {
            let dt = t - flow.since;
            if dt > 0.0 {
                // Deliberately unclamped: a job held past its work
                // running dry shows up as negative remaining at
                // completion rather than being silently absorbed.
                flow.remaining -= dt / flow.stretch;
            }
            flow.since = t;
        }
    }

    /// Recomputes every mirrored flow's stretch from the max-min fair
    /// shares of the current flow set.
    fn rebalance_flows(&mut self) {
        let Some(net) = self.network else { return };
        let masks: Vec<u64> = self.flows.iter().map(|f| f.mask).collect();
        let shares = net.shares(&masks);
        for (flow, share) in self.flows.iter_mut().zip(shares) {
            flow.stretch = network::stretch(flow.factor, share);
        }
    }

    /// Drops the mirrored flow of `id` (job completed, killed, or
    /// shrunk out of the wide area) and rebalances the survivors.
    fn remove_flow(&mut self, t: f64, id: u64) -> Option<MirrorFlow> {
        let pos = self.flows.iter().position(|f| f.id == id)?;
        self.accrue_flows(t);
        let flow = self.flows.swap_remove(pos);
        self.rebalance_flows();
        Some(flow)
    }
}

impl SimObserver for InvariantAuditor {
    fn on_arrival(&mut self, now: SimTime, id: JobId, job: &ActiveJob) {
        let t = self.check_time(now);
        let slot = id.0 as usize;
        if slot < self.jobs.len() && self.jobs[slot].is_some() {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                "arrived twice".to_string(),
            );
            return;
        }
        if slot >= self.jobs.len() {
            self.jobs.resize(slot + 1, None);
        }
        // An explicit estimate *below* the base service is an underrun:
        // the job outlives its estimated release, so the shadow bound
        // is no longer an upper bound on the head's start.
        if job.spec.request.estimate().is_some_and(|e| e < job.spec.base_service.seconds()) {
            self.starvation_armed = false;
            self.head_watch.clear();
        }
        self.jobs[slot] = Some(JobInfo {
            request: job.spec.request.clone(),
            base_service: job.spec.base_service.seconds(),
            queue: job.queue,
            state: JobState::Waiting,
            start: 0.0,
            occupancy: 0.0,
            span: 0,
            assignments: Vec::new(),
            requeued_front: false,
            est_end: 0.0,
        });
    }

    fn on_enqueue(&mut self, now: SimTime, id: JobId, queue: SubmitQueue) {
        let t = self.check_time(now);
        let known = match self.job_mut(id) {
            Some(info) => Some((info.state, info.queue)),
            None => None,
        };
        let Some((state, routed)) = known else {
            self.unknown_job(t, id, "enqueue");
            return;
        };
        if state != JobState::Waiting {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("enqueued while {state:?}"),
            );
        }
        if routed != queue {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("routed to {routed:?} but enqueued on {queue:?}"),
            );
        }
        let pushed = match queue {
            SubmitQueue::Global => {
                self.waiting_global.push_back(id.0);
                true
            }
            SubmitQueue::Local(i) => match self.waiting_local.get_mut(i) {
                Some(fifo) => {
                    fifo.push_back(id.0);
                    true
                }
                None => false,
            },
        };
        if !pushed {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("enqueued on nonexistent {queue:?}"),
            );
        }
    }

    fn on_pass(&mut self, now: SimTime, _trigger: super::PassTrigger) {
        let t = self.check_time(now);
        // A watched head still waiting past its reservation has been
        // starved (watches are cleared the moment a head is placed, so
        // every live entry is still waiting).
        if !self.head_watch.is_empty() {
            let expired: Vec<(SubmitQueue, u64, f64)> = self
                .head_watch
                .iter()
                .copied()
                .filter(|&(_, _, bound)| t > bound + TOL * bound.abs().max(1.0))
                .collect();
            for (queue, head, bound) in expired {
                self.head_watch.retain(|&(q, h, _)| !(q == queue && h == head));
                self.violation(
                    ViolationKind::BackfillStarvation,
                    t,
                    Some(head),
                    format!(
                        "head of {queue:?} still waiting at {t}, past its reservation at {bound}"
                    ),
                );
            }
        }
    }

    fn on_pass_end(&mut self, now: SimTime, started: &[JobId]) {
        let t = self.check_time(now);
        for &id in started {
            let state = self.job_mut(id).map(|info| info.state);
            if state != Some(JobState::Placed) {
                self.violation(
                    ViolationKind::JobStateError,
                    t,
                    Some(id.0),
                    format!("reported started by a pass while {state:?}"),
                );
            }
        }
    }

    fn on_queue_disabled(&mut self, now: SimTime, _queue: SubmitQueue) {
        self.check_time(now);
    }

    fn on_placement(&mut self, now: SimTime, decision: &PlacementDecision<'_>) {
        let t = self.check_time(now);
        let id = decision.id;
        let assignments = decision.placement.assignments().to_vec();

        // The scheduler's view of the system must match the auditor's
        // independent ledger.
        if decision.idle_before != self.idle.as_slice() {
            let (seen, ledger) = (decision.idle_before.to_vec(), self.idle.clone());
            self.violation(
                ViolationKind::LedgerMismatch,
                t,
                Some(id.0),
                format!("scheduler saw idle {seen:?}, ledger says {ledger:?}"),
            );
        }

        // No component may land on a cluster a failure took fully
        // offline (the ledger also catches partial-outage overflow as
        // CapacityExceeded below).
        for &(c, _) in &assignments {
            if self.effective.get(c).copied() == Some(0) {
                self.violation(
                    ViolationKind::AllocationOnDownCluster,
                    t,
                    Some(id.0),
                    format!("component assigned to down cluster {c}"),
                );
            }
        }

        // Components on distinct clusters (§2.3).
        let mut clusters: Vec<usize> = assignments.iter().map(|&(c, _)| c).collect();
        clusters.sort_unstable();
        clusters.dedup();
        if clusters.len() != assignments.len() {
            self.violation(
                ViolationKind::DuplicateCluster,
                t,
                Some(id.0),
                format!("assignments {assignments:?} share a cluster"),
            );
        }

        // Lifecycle + FCFS + rule conformance need the job's record.
        let known = self
            .jobs
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .map(|info| (info.request.clone(), info.state, info.base_service));
        let Some((request, state, base_service)) = known else {
            self.unknown_job(t, id, "placement");
            return;
        };
        if state != JobState::Waiting {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("placed while {state:?}"),
            );
        }

        // FCFS: only the head of a queue may start (unless the policy
        // backfills by design). Either way the job leaves the mirror.
        self.head_watch.retain(|&(_, h, _)| h != id.0);
        match self.take_from_fifo(decision.queue, id.0) {
            FifoOutcome::Head => {}
            FifoOutcome::Overtook(ahead) => {
                if self.discipline.backfills() {
                    // Overtaking is the discipline working as designed —
                    // but only below the overtaken head's reservation.
                    let est_end = t + self.est_occupancy(&request, base_service, clusters.len());
                    self.check_reservation(t, id, decision.queue, ahead[0], est_end);
                } else if self.strict_fcfs {
                    // Overtaking a fault victim that was re-queued at
                    // the head to preserve its FCFS age is its own,
                    // more specific violation.
                    let victims: Vec<u64> = ahead
                        .iter()
                        .copied()
                        .filter(|&j| {
                            self.jobs
                                .get(j as usize)
                                .and_then(Option::as_ref)
                                .is_some_and(|info| info.requeued_front)
                        })
                        .collect();
                    if victims.is_empty() {
                        self.violation(
                            ViolationKind::FcfsOvertaking,
                            t,
                            Some(id.0),
                            format!("started ahead of waiting jobs {ahead:?}"),
                        );
                    } else {
                        self.violation(
                            ViolationKind::RequeueOrderViolation,
                            t,
                            Some(id.0),
                            format!("started ahead of re-queued fault victims {victims:?}"),
                        );
                    }
                }
            }
            FifoOutcome::Absent => self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("placed but never waiting on {:?}", decision.queue),
            ),
            FifoOutcome::NoSuchQueue => self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("placed from nonexistent {:?}", decision.queue),
            ),
        }

        // The placement must be exactly what the configured rule picks
        // given the idle state (Worst Fit in decreasing component
        // order, §2.3) — and must cover the request.
        let total: u32 = assignments.iter().map(|&(_, p)| p).sum();
        if total != request.total() {
            let want = request.total();
            self.violation(
                ViolationKind::PlacementRuleViolation,
                t,
                Some(id.0),
                format!("assignments cover {total} processors, request wants {want}"),
            );
        }
        let expected = place_scoped(&self.idle, &request, decision.scope, self.rule);
        match expected {
            Some(exp) if exp.assignments() == assignments.as_slice() => {}
            Some(exp) => {
                let want = exp.assignments().to_vec();
                let rule = self.rule;
                self.violation(
                    ViolationKind::PlacementRuleViolation,
                    t,
                    Some(id.0),
                    format!("{rule:?} dictates {want:?}, scheduler chose {assignments:?}"),
                );
            }
            None => {
                let idle = self.idle.clone();
                self.violation(
                    ViolationKind::PlacementRuleViolation,
                    t,
                    Some(id.0),
                    format!("placed {assignments:?} although nothing fits in idle {idle:?}"),
                );
            }
        }

        // Apply to the ledger; going below zero idle is a capacity
        // breach.
        for &(c, p) in &assignments {
            let shortfall = match self.idle.get_mut(c) {
                Some(idle) if *idle >= p => {
                    *idle -= p;
                    None
                }
                Some(idle) => {
                    let have = *idle;
                    *idle = 0;
                    Some(format!("component of {p} on cluster {c} with only {have} idle"))
                }
                None => Some(format!("component on nonexistent cluster {c}")),
            };
            if let Some(detail) = shortfall {
                self.violation(ViolationKind::CapacityExceeded, t, Some(id.0), detail);
            }
        }

        let span = clusters.len();
        if let Some(info) = self.job_mut(id) {
            info.state = JobState::Placed;
            info.span = span;
            info.assignments = assignments;
            info.requeued_front = false;
        }
    }

    fn on_start(&mut self, now: SimTime, id: JobId, _job: &ActiveJob, occupancy: Duration) {
        let t = self.check_time(now);
        let occ = occupancy.seconds();
        let est = self
            .jobs
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .map(|info| self.est_occupancy(&info.request, info.base_service, info.span));
        let known = match self.job_mut(id) {
            Some(info) => {
                let snapshot = (info.state, info.base_service, info.span);
                info.state = JobState::Running;
                info.start = t;
                info.occupancy = occ;
                info.est_end = t + est.unwrap_or(0.0);
                Some(snapshot)
            }
            None => None,
        };
        let Some((state, base, span)) = known else {
            self.unknown_job(t, id, "start");
            return;
        };
        if state != JobState::Placed {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("started while {state:?}"),
            );
            return; // span is meaningless without a placement
        }
        // The wide-area extension applies exactly once, and only to the
        // clusters the job actually spans (§2.4). Under a network model
        // this is still the *nominal* occupancy the engine announces —
        // contention reshapes the departure later, not the start.
        let factor = self.workload.extension_factor(span);
        let expected = base * factor;
        if (occ - expected).abs() > TOL * expected.max(1.0) {
            self.violation(
                ViolationKind::ExtensionMismatch,
                t,
                Some(id.0),
                format!(
                    "occupancy {occ} but base {base} × factor {factor} (span {span}) = {expected}"
                ),
            );
        }
        // A multi-cluster job opens a wide-area flow: mirror it, with
        // the full base service ahead of it at the nominal stretch.
        if span >= 2 && self.net_contended() {
            let mask = self
                .jobs
                .get(id.0 as usize)
                .and_then(Option::as_ref)
                .map_or(0, |info| cluster_mask(&info.assignments));
            self.accrue_flows(t);
            self.flows.push(MirrorFlow {
                id: id.0,
                mask,
                factor,
                remaining: base,
                stretch: factor,
                since: t,
            });
            self.rebalance_flows();
        }
    }

    fn on_completion(&mut self, now: SimTime, id: JobId, _job: &ActiveJob) {
        let t = self.check_time(now);
        let known = match self.job_mut(id) {
            Some(info) => {
                let snapshot = (info.state, info.start, info.occupancy);
                info.state = JobState::Done;
                Some((snapshot, std::mem::take(&mut info.assignments)))
            }
            None => None,
        };
        let Some(((state, start, occ), assignments)) = known else {
            self.unknown_job(t, id, "completion");
            return;
        };
        if state != JobState::Running {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("completed while {state:?}"),
            );
        }
        let held = t - start;
        if state == JobState::Running {
            if let Some(flow) = self.remove_flow(t, id.0) {
                // The generalized check: under bandwidth sharing the
                // held interval is load-dependent, but integrating the
                // mirrored flow's rate over it must consume exactly the
                // job's base work — gross-work conservation, of which
                // "extension applied exactly once" is the uncontended
                // special case.
                let residual = flow.remaining;
                if residual.abs() > NET_TOL * occ.max(1.0) {
                    self.violation(
                        ViolationKind::WorkConservation,
                        t,
                        Some(id.0),
                        format!(
                            "departed with {residual} base seconds unaccounted for at the \
                             mirrored flow rates (held {held}, nominal occupancy {occ})"
                        ),
                    );
                }
            } else if (held - occ).abs() > TOL * occ.max(1.0) {
                self.violation(
                    ViolationKind::ExtensionMismatch,
                    t,
                    Some(id.0),
                    format!("held processors for {held}, occupancy was {occ}"),
                );
            }
        }
        for (c, p) in assignments {
            // Releases are bounded by the *effective* capacity: while a
            // cluster is degraded, its offline processors cannot come
            // back via a job completion.
            let overflow = match self.idle.get_mut(c) {
                Some(idle) => {
                    *idle += p;
                    if *idle > self.effective[c] {
                        let (have, cap) = (*idle, self.effective[c]);
                        *idle = cap;
                        Some(format!("release left cluster {c} with {have} idle of {cap}"))
                    } else {
                        None
                    }
                }
                None => Some(format!("release on nonexistent cluster {c}")),
            };
            if let Some(detail) = overflow {
                self.violation(ViolationKind::CapacityExceeded, t, Some(id.0), detail);
            }
        }
    }

    fn on_cluster_down(&mut self, now: SimTime, cluster: usize, remaining: u32) {
        let t = self.check_time(now);
        // A failure invalidates every estimated release (victims are
        // killed or shrunk off-schedule): the starvation bound is no
        // longer sound for the rest of the run.
        self.starvation_armed = false;
        self.head_watch.clear();
        let Some(&cap) = self.system.capacities().get(cluster) else {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                None,
                format!("failure of nonexistent cluster {cluster}"),
            );
            return;
        };
        // Every running component on the cluster must have been
        // interrupted first, and earlier outages must have been
        // repaired (fault traces alternate down/up per cluster) — so
        // the ledger must show the cluster entirely idle at full
        // effective capacity.
        let (idle, eff) = (self.idle[cluster], self.effective[cluster]);
        if eff != cap {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                None,
                format!("cluster {cluster} failed while already degraded to {eff}/{cap}"),
            );
        } else if idle != cap {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                None,
                format!(
                    "cluster {cluster} went down with {} processors still held by running jobs",
                    cap - idle
                ),
            );
        }
        self.idle[cluster] = remaining.min(cap);
        self.effective[cluster] = remaining.min(cap);
    }

    fn on_cluster_up(&mut self, now: SimTime, cluster: usize) {
        let t = self.check_time(now);
        let Some(&cap) = self.system.capacities().get(cluster) else {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                None,
                format!("repair of nonexistent cluster {cluster}"),
            );
            return;
        };
        let eff = self.effective[cluster];
        if eff >= cap {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                None,
                format!("repair of cluster {cluster} which was not down"),
            );
            return;
        }
        self.idle[cluster] += cap - eff;
        self.effective[cluster] = cap;
    }

    fn on_job_interrupted(
        &mut self,
        now: SimTime,
        job: &ActiveJob,
        info: &super::Interruption<'_>,
    ) {
        let t = self.check_time(now);
        let id = info.id;
        let was = self.jobs.get(id.0 as usize).and_then(Option::as_ref).map(|i| i.state);
        let Some(state) = was else {
            self.unknown_job(t, id, "interruption");
            return;
        };
        if state != JobState::Running {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                Some(id.0),
                format!("interrupted while {state:?}"),
            );
        }
        // The released placement must be exactly what the job held.
        let held = self.jobs[id.0 as usize].as_ref().map(|i| i.assignments.clone());
        let released: Vec<(usize, u32)> = info.released.assignments().to_vec();
        if held.as_deref() != Some(released.as_slice()) {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                Some(id.0),
                format!("released {released:?} but held {held:?}"),
            );
        }
        // Return the processors to the ledger, bounded by the effective
        // capacities (the failed cluster is not degraded yet — the
        // session applies the outage after the victims are handled).
        for (c, p) in released {
            let overflow = match self.idle.get_mut(c) {
                Some(idle) => {
                    *idle += p;
                    if *idle > self.effective[c] {
                        let (have, cap) = (*idle, self.effective[c]);
                        *idle = cap;
                        Some(format!("interruption left cluster {c} with {have} idle of {cap}"))
                    } else {
                        None
                    }
                }
                None => Some(format!("interruption released on nonexistent cluster {c}")),
            };
            if let Some(detail) = overflow {
                self.violation(ViolationKind::InterruptAccountingError, t, Some(id.0), detail);
            }
        }
        // An interrupted job stops computing: its wide-area flow (if
        // the network model mirrors one) closes with it.
        self.remove_flow(t, id.0);
        // The victim's fate: back into the queue mirror (possibly with
        // a re-split request), or out of the system entirely.
        if let Some(slot) = self.jobs.get_mut(id.0 as usize).and_then(Option::as_mut) {
            slot.assignments.clear();
            slot.span = 0;
            slot.request = job.spec.request.clone();
            match info.disposition {
                crate::fault::InterruptPolicy::Abort => slot.state = JobState::Done,
                crate::fault::InterruptPolicy::RequeueFront
                | crate::fault::InterruptPolicy::RequeueBack => slot.state = JobState::Waiting,
            }
        }
        match info.disposition {
            crate::fault::InterruptPolicy::Abort => {}
            disposition => {
                let front = disposition == crate::fault::InterruptPolicy::RequeueFront;
                let pushed = match job.queue {
                    SubmitQueue::Global => {
                        if front {
                            self.waiting_global.push_front(id.0);
                        } else {
                            self.waiting_global.push_back(id.0);
                        }
                        true
                    }
                    SubmitQueue::Local(i) => match self.waiting_local.get_mut(i) {
                        Some(fifo) => {
                            if front {
                                fifo.push_front(id.0);
                            } else {
                                fifo.push_back(id.0);
                            }
                            true
                        }
                        None => false,
                    },
                };
                if !pushed {
                    self.violation(
                        ViolationKind::JobStateError,
                        t,
                        Some(id.0),
                        format!("re-queued on nonexistent {:?}", job.queue),
                    );
                } else if front {
                    if let Some(slot) = self.jobs.get_mut(id.0 as usize).and_then(Option::as_mut) {
                        slot.requeued_front = true;
                    }
                }
            }
        }
    }

    fn on_job_molded(&mut self, now: SimTime, id: JobId, from: &JobRequest, to: &JobRequest) {
        let t = self.check_time(now);
        let known = self
            .jobs
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .map(|info| (info.state, info.request.clone()));
        let Some((state, mirrored)) = known else {
            self.unknown_job(t, id, "molding");
            return;
        };
        if state != JobState::Waiting {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("molded while {state:?}"),
            );
        }
        if mirrored != *from {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("molded from {:?} but submitted {:?}", from.components(), mirrored),
            );
        }
        if from.total() != to.total() {
            let (was, is) = (from.total(), to.total());
            self.violation(
                ViolationKind::PlacementRuleViolation,
                t,
                Some(id.0),
                format!("molding changed the total: {was} processors to {is}"),
            );
        }
        // The mirror carries the molded split *before* the placement
        // hook, matching the emission order, so the rule-conformance
        // check re-derives the placement from the split actually used.
        if let Some(info) = self.job_mut(id) {
            info.request = to.clone();
        }
    }

    fn on_job_resized(&mut self, now: SimTime, _job: &ActiveJob, resize: &Resize<'_>) {
        let t = self.check_time(now);
        let id = resize.id;
        let known = self
            .jobs
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .map(|info| (info.state, info.assignments.clone()));
        let Some((state, held)) = known else {
            self.unknown_job(t, id, "resize");
            return;
        };
        if state != JobState::Running {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("resized while {state:?}"),
            );
            return;
        }
        // The released placement must be exactly what the job held.
        let from: Vec<(usize, u32)> = resize.from.assignments().to_vec();
        if held != from {
            self.violation(
                ViolationKind::ResizeConservation,
                t,
                Some(id.0),
                format!("resize released {from:?} but the job held {held:?}"),
            );
        }
        // Return the old placement to the ledger, then charge the new
        // one — the same capacity rules as a completion plus placement.
        for &(c, p) in &from {
            let overflow = match self.idle.get_mut(c) {
                Some(idle) => {
                    *idle += p;
                    if *idle > self.effective[c] {
                        let (have, cap) = (*idle, self.effective[c]);
                        *idle = cap;
                        Some(format!("resize left cluster {c} with {have} idle of {cap}"))
                    } else {
                        None
                    }
                }
                None => Some(format!("resize released on nonexistent cluster {c}")),
            };
            if let Some(detail) = overflow {
                self.violation(ViolationKind::CapacityExceeded, t, Some(id.0), detail);
            }
        }
        let to: Vec<(usize, u32)> = resize.to.assignments().to_vec();
        let mut to_clusters: Vec<usize> = to.iter().map(|&(c, _)| c).collect();
        to_clusters.sort_unstable();
        to_clusters.dedup();
        if to_clusters.len() != to.len() {
            self.violation(
                ViolationKind::DuplicateCluster,
                t,
                Some(id.0),
                format!("resized assignments {to:?} share a cluster"),
            );
        }
        for &(c, p) in &to {
            if self.effective.get(c).copied() == Some(0) {
                self.violation(
                    ViolationKind::AllocationOnDownCluster,
                    t,
                    Some(id.0),
                    format!("resize assigned a component to down cluster {c}"),
                );
            }
            let shortfall = match self.idle.get_mut(c) {
                Some(idle) if *idle >= p => {
                    *idle -= p;
                    None
                }
                Some(idle) => {
                    let have = *idle;
                    *idle = 0;
                    Some(format!("resized component of {p} on cluster {c} with only {have} idle"))
                }
                None => Some(format!("resized component on nonexistent cluster {c}")),
            };
            if let Some(detail) = shortfall {
                self.violation(ViolationKind::CapacityExceeded, t, Some(id.0), detail);
            }
        }
        let old_total = f64::from(resize.from.total());
        let new_total = f64::from(resize.to.total());
        let f_old = self.workload.extension_factor(resize.from.assignments().len());
        let f_new = self.workload.extension_factor(to_clusters.len());
        if self.net_contended() && self.flows.iter().any(|f| f.id == id.0) {
            // Under bandwidth sharing the engine prices the remainder at
            // the resized flow's max-min share: mirror the same step and
            // check the scheduled end against the mirror's.
            self.accrue_flows(t);
            let pos = self.flows.iter().position(|f| f.id == id.0).expect("found above");
            self.flows[pos].remaining *= old_total / new_total;
            self.flows[pos].factor = f_new;
            self.flows[pos].mask = cluster_mask(&to);
            let expected = if to_clusters.len() < 2 {
                // Shrunk out of the wide area: the remainder runs at the
                // new span's (single-cluster) factor, uncontended.
                let flow = self.flows.swap_remove(pos);
                self.rebalance_flows();
                t + flow.remaining * f_new
            } else {
                self.rebalance_flows();
                let flow = self.flows.iter().find(|f| f.id == id.0).expect("still mirrored");
                t + flow.remaining * flow.stretch
            };
            let scheduled = resize.new_end.seconds();
            if (scheduled - expected).abs() > NET_TOL * expected.abs().max(1.0) {
                self.violation(
                    ViolationKind::WorkConservation,
                    t,
                    Some(id.0),
                    format!(
                        "resize rescheduled the departure to {scheduled} but the mirrored \
                         flow rates imply {expected}"
                    ),
                );
            }
        } else {
            // Base-work conservation: the remaining *base* work (gross
            // work deflated by each side's extension factor — a
            // span-changing resize re-derives its extension) is
            // invariant across the resize. The engine derives the new
            // end as `t + work/new_total`, so recovering the work
            // multiplies one rounding ulp of the (large) clock value by
            // the processor count — the tolerance must cover that
            // magnitude, not just the (possibly tiny) remaining work
            // itself.
            let old_work = (resize.old_end.seconds() - t) * old_total / f_old;
            let new_work = (resize.new_end.seconds() - t) * new_total / f_new;
            let ulp_work = f64::EPSILON
                * resize.new_end.seconds().abs().max(resize.old_end.seconds().abs())
                * f64::from(resize.to.total().max(resize.from.total()));
            if resize.new_end.seconds() < t - TOL
                || (old_work - new_work).abs() > TOL * old_work.abs().max(1.0) + 4.0 * ulp_work
            {
                self.violation(
                    ViolationKind::ResizeConservation,
                    t,
                    Some(id.0),
                    format!(
                        "remaining base work changed: {old_work} processor-seconds released \
                         (span factor {f_old}), {new_work} rescheduled (span factor {f_new})"
                    ),
                );
            }
        }
        // Mirror the new placement; the held-interval and estimate
        // checks follow the rescheduled departure from here on. The
        // estimate rescale mirrors the schedulers' own arithmetic
        // (processor ratio times the extension-factor ratio).
        if let Some(info) = self.job_mut(id) {
            info.span = to_clusters.len();
            info.assignments = to;
            info.occupancy = resize.new_end.seconds() - info.start;
            if info.est_end.is_finite() && new_total > 0.0 {
                info.est_end = t + (info.est_end - t) * old_total / new_total * (f_new / f_old);
            }
        }
    }

    fn on_run_end(&mut self, now: SimTime) {
        self.check_time(now);
        // Started-but-unfinished jobs would still hold processors; a
        // drained run must have returned every allocated processor (up
        // to the effective capacity — a trace may leave a cluster down
        // at the end of the run).
        let stuck: Vec<(usize, u32, u32)> = self
            .idle
            .iter()
            .zip(self.effective.iter())
            .enumerate()
            .filter(|(_, (idle, eff))| idle != eff)
            .map(|(i, (&idle, &eff))| (i, idle, eff))
            .collect();
        for (i, idle, eff) in stuck {
            self.violation(
                ViolationKind::JobStateError,
                now.seconds(),
                None,
                format!("run ended with cluster {i} at {idle}/{eff} idle"),
            );
        }
    }
}
