//! The invariant auditor: re-derives every decision and records
//! violations of the paper's scheduling rules.

use std::collections::VecDeque;

use coalloc_workload::{JobRequest, Workload};
use desim::{Duration, SimTime};

use crate::job::{ActiveJob, JobId, SubmitQueue};
use crate::placement::{place_scoped, PlacementRule};
use crate::sim::SimConfig;
use crate::system::SystemSpec;

use super::{PlacementDecision, SimObserver};

/// Relative tolerance for time/occupancy comparisons; far below any
/// real discrepancy (a mis-applied 1.25 extension is a 25% error).
const TOL: f64 = 1e-9;

/// How many violations are kept verbatim; the total count keeps
/// growing so a flood is still visible.
const MAX_RECORDED: usize = 200;

/// The kinds of rule violations the auditor can detect.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum ViolationKind {
    /// A placement claimed more processors than a cluster had idle (or
    /// a release pushed a cluster above its capacity).
    CapacityExceeded,
    /// Two components of one job were assigned to the same cluster.
    DuplicateCluster,
    /// The chosen assignment differs from what the configured placement
    /// rule (Worst Fit in the paper) dictates for the observed idle
    /// state, or does not cover the request.
    PlacementRuleViolation,
    /// A job started while an earlier job in the same queue was still
    /// waiting (FCFS overtaking; GB is exempt — it backfills by
    /// design).
    FcfsOvertaking,
    /// A job's occupancy does not equal base service times the
    /// extension factor for the clusters it spans — the factor was
    /// dropped, doubled, or applied to a single-cluster job.
    ExtensionMismatch,
    /// An event carried a time earlier than its predecessor's.
    NonMonotonicTime,
    /// An event contradicts the job lifecycle (started twice, placed
    /// while not waiting, completed while not running, …).
    JobStateError,
    /// The idle snapshot a scheduler reported disagrees with the
    /// auditor's independently tracked ledger.
    LedgerMismatch,
    /// A component was assigned to a cluster that a failure had taken
    /// fully offline.
    AllocationOnDownCluster,
    /// A job started ahead of a fault victim that was re-queued at the
    /// head of its queue to preserve its FCFS age.
    RequeueOrderViolation,
    /// Fault bookkeeping went wrong: a cluster went down with victims
    /// still running on it, an interruption released processors a job
    /// did not hold, a repair hit a cluster that was not down, or an
    /// interruption hit a job that was not running.
    InterruptAccountingError,
}

impl core::fmt::Display for ViolationKind {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "{self:?}")
    }
}

/// One detected violation.
#[derive(Clone, Debug)]
pub struct Violation {
    /// What rule was broken.
    pub kind: ViolationKind,
    /// Simulated time of the offending event.
    pub t: f64,
    /// The job involved, if any.
    pub job: Option<u64>,
    /// Human-readable specifics.
    pub detail: String,
}

impl core::fmt::Display for Violation {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "[t={:.6}] {}", self.t, self.kind)?;
        if let Some(j) = self.job {
            write!(f, " job {j}")?;
        }
        write!(f, ": {}", self.detail)
    }
}

#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum JobState {
    Waiting,
    Placed,
    Running,
    Done,
}

#[derive(Clone, Debug)]
struct JobInfo {
    request: JobRequest,
    base_service: f64,
    queue: SubmitQueue,
    state: JobState,
    start: f64,
    occupancy: f64,
    span: usize,
    assignments: Vec<(usize, u32)>,
    /// The job is a fault victim re-queued at the head of its queue;
    /// starting any other job from that queue ahead of it violates the
    /// preserved FCFS age.
    requeued_front: bool,
}

/// An observer that checks, at every event, that the simulation obeys
/// the paper's rules (see [`ViolationKind`] for the list). It keeps its
/// own idle-processor ledger and waiting-queue mirror, so a buggy
/// scheduler cannot vouch for itself.
///
/// Attach it via [`crate::sim::SimBuilder::run_observed`]; inspect
/// [`InvariantAuditor::violations`] or call
/// [`InvariantAuditor::assert_clean`] afterwards.
#[derive(Clone, Debug)]
pub struct InvariantAuditor {
    system: SystemSpec,
    idle: Vec<u32>,
    /// Per-cluster *effective* capacity: the full capacity, lowered to
    /// the remaining-usable count while a failure has the cluster down.
    effective: Vec<u32>,
    workload: Workload,
    rule: PlacementRule,
    /// FCFS is enforced per queue unless the policy overtakes by design
    /// (GB's aggressive backfilling).
    strict_fcfs: bool,
    waiting_local: Vec<VecDeque<u64>>,
    waiting_global: VecDeque<u64>,
    jobs: Vec<Option<JobInfo>>,
    last_t: f64,
    violations: Vec<Violation>,
    total: usize,
}

/// What happened to a job's position in its queue mirror when it was
/// placed (resolved first so violations can be reported without holding
/// a borrow on the mirror).
enum FifoOutcome {
    Head,
    Overtook(Vec<u64>),
    Absent,
    NoSuchQueue,
}

impl InvariantAuditor {
    /// An auditor for runs of `cfg` (system shape, workload extension
    /// model, placement rule, and FCFS strictness all follow the
    /// configuration).
    pub fn new(cfg: &SimConfig) -> Self {
        Self::with_parts(
            cfg.system.clone(),
            cfg.workload.clone(),
            cfg.rule,
            cfg.policy != crate::policy::PolicyKind::Gb,
        )
    }

    /// An auditor from explicit parts (for harnesses that drive the
    /// scheduler without a [`SimConfig`]).
    pub fn with_parts(
        system: SystemSpec,
        workload: Workload,
        rule: PlacementRule,
        strict_fcfs: bool,
    ) -> Self {
        let clusters = system.num_clusters();
        InvariantAuditor {
            idle: system.capacities().to_vec(),
            effective: system.capacities().to_vec(),
            system,
            workload,
            rule,
            strict_fcfs,
            waiting_local: vec![VecDeque::new(); clusters],
            waiting_global: VecDeque::new(),
            jobs: Vec::new(),
            last_t: f64::NEG_INFINITY,
            violations: Vec::new(),
            total: 0,
        }
    }

    /// The recorded violations (capped at an internal limit; see
    /// [`InvariantAuditor::total_violations`] for the full count).
    pub fn violations(&self) -> &[Violation] {
        &self.violations
    }

    /// Total violations detected, including any beyond the recording
    /// cap.
    pub fn total_violations(&self) -> usize {
        self.total
    }

    /// Whether the run broke no rules.
    pub fn is_clean(&self) -> bool {
        self.total == 0
    }

    /// Whether any recorded violation is of `kind`.
    pub fn has(&self, kind: ViolationKind) -> bool {
        self.violations.iter().any(|v| v.kind == kind)
    }

    /// A one-line summary plus the first recorded violations.
    pub fn report(&self) -> String {
        use core::fmt::Write as _;
        let mut s = format!("{} violation(s)", self.total);
        for v in self.violations.iter().take(10) {
            let _ = write!(s, "\n  {v}");
        }
        if self.total > 10 {
            let _ = write!(s, "\n  … and {} more", self.total - 10);
        }
        s
    }

    /// Panics with [`InvariantAuditor::report`] if any violation was
    /// detected.
    ///
    /// # Panics
    /// When the audited run broke any rule.
    pub fn assert_clean(&self) {
        assert!(self.is_clean(), "audit failed: {}", self.report());
    }

    fn violation(&mut self, kind: ViolationKind, t: f64, job: Option<u64>, detail: String) {
        self.total += 1;
        if self.violations.len() < MAX_RECORDED {
            self.violations.push(Violation { kind, t, job, detail });
        }
    }

    fn check_time(&mut self, now: SimTime) -> f64 {
        let t = now.seconds();
        if t < self.last_t {
            let last = self.last_t;
            self.violation(
                ViolationKind::NonMonotonicTime,
                t,
                None,
                format!("event at {t} after one at {last}"),
            );
        } else {
            self.last_t = t;
        }
        t
    }

    fn job_mut(&mut self, id: JobId) -> Option<&mut JobInfo> {
        self.jobs.get_mut(id.0 as usize).and_then(Option::as_mut)
    }

    fn unknown_job(&mut self, t: f64, id: JobId, context: &str) {
        self.violation(
            ViolationKind::JobStateError,
            t,
            Some(id.0),
            format!("{context} for a job never seen arriving"),
        );
    }

    /// Removes `id` from the mirror of `queue`, reporting how it sat in
    /// FIFO order.
    fn take_from_fifo(&mut self, queue: SubmitQueue, id: u64) -> FifoOutcome {
        let fifo = match queue {
            SubmitQueue::Global => &mut self.waiting_global,
            SubmitQueue::Local(i) => match self.waiting_local.get_mut(i) {
                Some(f) => f,
                None => return FifoOutcome::NoSuchQueue,
            },
        };
        match fifo.iter().position(|&j| j == id) {
            Some(0) => {
                fifo.pop_front();
                FifoOutcome::Head
            }
            Some(p) => {
                let ahead: Vec<u64> = fifo.iter().take(p).copied().collect();
                fifo.remove(p);
                FifoOutcome::Overtook(ahead)
            }
            None => FifoOutcome::Absent,
        }
    }
}

impl SimObserver for InvariantAuditor {
    fn on_arrival(&mut self, now: SimTime, id: JobId, job: &ActiveJob) {
        let t = self.check_time(now);
        let slot = id.0 as usize;
        if slot < self.jobs.len() && self.jobs[slot].is_some() {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                "arrived twice".to_string(),
            );
            return;
        }
        if slot >= self.jobs.len() {
            self.jobs.resize(slot + 1, None);
        }
        self.jobs[slot] = Some(JobInfo {
            request: job.spec.request.clone(),
            base_service: job.spec.base_service.seconds(),
            queue: job.queue,
            state: JobState::Waiting,
            start: 0.0,
            occupancy: 0.0,
            span: 0,
            assignments: Vec::new(),
            requeued_front: false,
        });
    }

    fn on_enqueue(&mut self, now: SimTime, id: JobId, queue: SubmitQueue) {
        let t = self.check_time(now);
        let known = match self.job_mut(id) {
            Some(info) => Some((info.state, info.queue)),
            None => None,
        };
        let Some((state, routed)) = known else {
            self.unknown_job(t, id, "enqueue");
            return;
        };
        if state != JobState::Waiting {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("enqueued while {state:?}"),
            );
        }
        if routed != queue {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("routed to {routed:?} but enqueued on {queue:?}"),
            );
        }
        let pushed = match queue {
            SubmitQueue::Global => {
                self.waiting_global.push_back(id.0);
                true
            }
            SubmitQueue::Local(i) => match self.waiting_local.get_mut(i) {
                Some(fifo) => {
                    fifo.push_back(id.0);
                    true
                }
                None => false,
            },
        };
        if !pushed {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("enqueued on nonexistent {queue:?}"),
            );
        }
    }

    fn on_pass(&mut self, now: SimTime, _trigger: super::PassTrigger) {
        self.check_time(now);
    }

    fn on_pass_end(&mut self, now: SimTime, started: &[JobId]) {
        let t = self.check_time(now);
        for &id in started {
            let state = self.job_mut(id).map(|info| info.state);
            if state != Some(JobState::Placed) {
                self.violation(
                    ViolationKind::JobStateError,
                    t,
                    Some(id.0),
                    format!("reported started by a pass while {state:?}"),
                );
            }
        }
    }

    fn on_queue_disabled(&mut self, now: SimTime, _queue: SubmitQueue) {
        self.check_time(now);
    }

    fn on_placement(&mut self, now: SimTime, decision: &PlacementDecision<'_>) {
        let t = self.check_time(now);
        let id = decision.id;
        let assignments = decision.placement.assignments().to_vec();

        // The scheduler's view of the system must match the auditor's
        // independent ledger.
        if decision.idle_before != self.idle.as_slice() {
            let (seen, ledger) = (decision.idle_before.to_vec(), self.idle.clone());
            self.violation(
                ViolationKind::LedgerMismatch,
                t,
                Some(id.0),
                format!("scheduler saw idle {seen:?}, ledger says {ledger:?}"),
            );
        }

        // No component may land on a cluster a failure took fully
        // offline (the ledger also catches partial-outage overflow as
        // CapacityExceeded below).
        for &(c, _) in &assignments {
            if self.effective.get(c).copied() == Some(0) {
                self.violation(
                    ViolationKind::AllocationOnDownCluster,
                    t,
                    Some(id.0),
                    format!("component assigned to down cluster {c}"),
                );
            }
        }

        // Components on distinct clusters (§2.3).
        let mut clusters: Vec<usize> = assignments.iter().map(|&(c, _)| c).collect();
        clusters.sort_unstable();
        clusters.dedup();
        if clusters.len() != assignments.len() {
            self.violation(
                ViolationKind::DuplicateCluster,
                t,
                Some(id.0),
                format!("assignments {assignments:?} share a cluster"),
            );
        }

        // Lifecycle + FCFS + rule conformance need the job's record.
        let known = self
            .jobs
            .get(id.0 as usize)
            .and_then(Option::as_ref)
            .map(|info| (info.request.clone(), info.state));
        let Some((request, state)) = known else {
            self.unknown_job(t, id, "placement");
            return;
        };
        if state != JobState::Waiting {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("placed while {state:?}"),
            );
        }

        // FCFS: only the head of a queue may start (unless the policy
        // backfills by design). Either way the job leaves the mirror.
        match self.take_from_fifo(decision.queue, id.0) {
            FifoOutcome::Head => {}
            FifoOutcome::Overtook(ahead) => {
                if self.strict_fcfs {
                    // Overtaking a fault victim that was re-queued at
                    // the head to preserve its FCFS age is its own,
                    // more specific violation.
                    let victims: Vec<u64> = ahead
                        .iter()
                        .copied()
                        .filter(|&j| {
                            self.jobs
                                .get(j as usize)
                                .and_then(Option::as_ref)
                                .is_some_and(|info| info.requeued_front)
                        })
                        .collect();
                    if victims.is_empty() {
                        self.violation(
                            ViolationKind::FcfsOvertaking,
                            t,
                            Some(id.0),
                            format!("started ahead of waiting jobs {ahead:?}"),
                        );
                    } else {
                        self.violation(
                            ViolationKind::RequeueOrderViolation,
                            t,
                            Some(id.0),
                            format!("started ahead of re-queued fault victims {victims:?}"),
                        );
                    }
                }
            }
            FifoOutcome::Absent => self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("placed but never waiting on {:?}", decision.queue),
            ),
            FifoOutcome::NoSuchQueue => self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("placed from nonexistent {:?}", decision.queue),
            ),
        }

        // The placement must be exactly what the configured rule picks
        // given the idle state (Worst Fit in decreasing component
        // order, §2.3) — and must cover the request.
        let total: u32 = assignments.iter().map(|&(_, p)| p).sum();
        if total != request.total() {
            let want = request.total();
            self.violation(
                ViolationKind::PlacementRuleViolation,
                t,
                Some(id.0),
                format!("assignments cover {total} processors, request wants {want}"),
            );
        }
        let expected = place_scoped(&self.idle, &request, decision.scope, self.rule);
        match expected {
            Some(exp) if exp.assignments() == assignments.as_slice() => {}
            Some(exp) => {
                let want = exp.assignments().to_vec();
                let rule = self.rule;
                self.violation(
                    ViolationKind::PlacementRuleViolation,
                    t,
                    Some(id.0),
                    format!("{rule:?} dictates {want:?}, scheduler chose {assignments:?}"),
                );
            }
            None => {
                let idle = self.idle.clone();
                self.violation(
                    ViolationKind::PlacementRuleViolation,
                    t,
                    Some(id.0),
                    format!("placed {assignments:?} although nothing fits in idle {idle:?}"),
                );
            }
        }

        // Apply to the ledger; going below zero idle is a capacity
        // breach.
        for &(c, p) in &assignments {
            let shortfall = match self.idle.get_mut(c) {
                Some(idle) if *idle >= p => {
                    *idle -= p;
                    None
                }
                Some(idle) => {
                    let have = *idle;
                    *idle = 0;
                    Some(format!("component of {p} on cluster {c} with only {have} idle"))
                }
                None => Some(format!("component on nonexistent cluster {c}")),
            };
            if let Some(detail) = shortfall {
                self.violation(ViolationKind::CapacityExceeded, t, Some(id.0), detail);
            }
        }

        let span = clusters.len();
        if let Some(info) = self.job_mut(id) {
            info.state = JobState::Placed;
            info.span = span;
            info.assignments = assignments;
            info.requeued_front = false;
        }
    }

    fn on_start(&mut self, now: SimTime, id: JobId, _job: &ActiveJob, occupancy: Duration) {
        let t = self.check_time(now);
        let occ = occupancy.seconds();
        let known = match self.job_mut(id) {
            Some(info) => {
                let snapshot = (info.state, info.base_service, info.span);
                info.state = JobState::Running;
                info.start = t;
                info.occupancy = occ;
                Some(snapshot)
            }
            None => None,
        };
        let Some((state, base, span)) = known else {
            self.unknown_job(t, id, "start");
            return;
        };
        if state != JobState::Placed {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("started while {state:?}"),
            );
            return; // span is meaningless without a placement
        }
        // The wide-area extension applies exactly once, and only to the
        // clusters the job actually spans (§2.4).
        let factor = self.workload.extension_factor(span);
        let expected = base * factor;
        if (occ - expected).abs() > TOL * expected.max(1.0) {
            self.violation(
                ViolationKind::ExtensionMismatch,
                t,
                Some(id.0),
                format!(
                    "occupancy {occ} but base {base} × factor {factor} (span {span}) = {expected}"
                ),
            );
        }
    }

    fn on_completion(&mut self, now: SimTime, id: JobId, _job: &ActiveJob) {
        let t = self.check_time(now);
        let known = match self.job_mut(id) {
            Some(info) => {
                let snapshot = (info.state, info.start, info.occupancy);
                info.state = JobState::Done;
                Some((snapshot, std::mem::take(&mut info.assignments)))
            }
            None => None,
        };
        let Some(((state, start, occ), assignments)) = known else {
            self.unknown_job(t, id, "completion");
            return;
        };
        if state != JobState::Running {
            self.violation(
                ViolationKind::JobStateError,
                t,
                Some(id.0),
                format!("completed while {state:?}"),
            );
        }
        let held = t - start;
        if state == JobState::Running && (held - occ).abs() > TOL * occ.max(1.0) {
            self.violation(
                ViolationKind::ExtensionMismatch,
                t,
                Some(id.0),
                format!("held processors for {held}, occupancy was {occ}"),
            );
        }
        for (c, p) in assignments {
            // Releases are bounded by the *effective* capacity: while a
            // cluster is degraded, its offline processors cannot come
            // back via a job completion.
            let overflow = match self.idle.get_mut(c) {
                Some(idle) => {
                    *idle += p;
                    if *idle > self.effective[c] {
                        let (have, cap) = (*idle, self.effective[c]);
                        *idle = cap;
                        Some(format!("release left cluster {c} with {have} idle of {cap}"))
                    } else {
                        None
                    }
                }
                None => Some(format!("release on nonexistent cluster {c}")),
            };
            if let Some(detail) = overflow {
                self.violation(ViolationKind::CapacityExceeded, t, Some(id.0), detail);
            }
        }
    }

    fn on_cluster_down(&mut self, now: SimTime, cluster: usize, remaining: u32) {
        let t = self.check_time(now);
        let Some(&cap) = self.system.capacities().get(cluster) else {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                None,
                format!("failure of nonexistent cluster {cluster}"),
            );
            return;
        };
        // Every running component on the cluster must have been
        // interrupted first, and earlier outages must have been
        // repaired (fault traces alternate down/up per cluster) — so
        // the ledger must show the cluster entirely idle at full
        // effective capacity.
        let (idle, eff) = (self.idle[cluster], self.effective[cluster]);
        if eff != cap {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                None,
                format!("cluster {cluster} failed while already degraded to {eff}/{cap}"),
            );
        } else if idle != cap {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                None,
                format!(
                    "cluster {cluster} went down with {} processors still held by running jobs",
                    cap - idle
                ),
            );
        }
        self.idle[cluster] = remaining.min(cap);
        self.effective[cluster] = remaining.min(cap);
    }

    fn on_cluster_up(&mut self, now: SimTime, cluster: usize) {
        let t = self.check_time(now);
        let Some(&cap) = self.system.capacities().get(cluster) else {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                None,
                format!("repair of nonexistent cluster {cluster}"),
            );
            return;
        };
        let eff = self.effective[cluster];
        if eff >= cap {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                None,
                format!("repair of cluster {cluster} which was not down"),
            );
            return;
        }
        self.idle[cluster] += cap - eff;
        self.effective[cluster] = cap;
    }

    fn on_job_interrupted(
        &mut self,
        now: SimTime,
        job: &ActiveJob,
        info: &super::Interruption<'_>,
    ) {
        let t = self.check_time(now);
        let id = info.id;
        let was = self.jobs.get(id.0 as usize).and_then(Option::as_ref).map(|i| i.state);
        let Some(state) = was else {
            self.unknown_job(t, id, "interruption");
            return;
        };
        if state != JobState::Running {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                Some(id.0),
                format!("interrupted while {state:?}"),
            );
        }
        // The released placement must be exactly what the job held.
        let held = self.jobs[id.0 as usize].as_ref().map(|i| i.assignments.clone());
        let released: Vec<(usize, u32)> = info.released.assignments().to_vec();
        if held.as_deref() != Some(released.as_slice()) {
            self.violation(
                ViolationKind::InterruptAccountingError,
                t,
                Some(id.0),
                format!("released {released:?} but held {held:?}"),
            );
        }
        // Return the processors to the ledger, bounded by the effective
        // capacities (the failed cluster is not degraded yet — the
        // session applies the outage after the victims are handled).
        for (c, p) in released {
            let overflow = match self.idle.get_mut(c) {
                Some(idle) => {
                    *idle += p;
                    if *idle > self.effective[c] {
                        let (have, cap) = (*idle, self.effective[c]);
                        *idle = cap;
                        Some(format!("interruption left cluster {c} with {have} idle of {cap}"))
                    } else {
                        None
                    }
                }
                None => Some(format!("interruption released on nonexistent cluster {c}")),
            };
            if let Some(detail) = overflow {
                self.violation(ViolationKind::InterruptAccountingError, t, Some(id.0), detail);
            }
        }
        // The victim's fate: back into the queue mirror (possibly with
        // a re-split request), or out of the system entirely.
        if let Some(slot) = self.jobs.get_mut(id.0 as usize).and_then(Option::as_mut) {
            slot.assignments.clear();
            slot.span = 0;
            slot.request = job.spec.request.clone();
            match info.disposition {
                crate::fault::InterruptPolicy::Abort => slot.state = JobState::Done,
                crate::fault::InterruptPolicy::RequeueFront
                | crate::fault::InterruptPolicy::RequeueBack => slot.state = JobState::Waiting,
            }
        }
        match info.disposition {
            crate::fault::InterruptPolicy::Abort => {}
            disposition => {
                let front = disposition == crate::fault::InterruptPolicy::RequeueFront;
                let pushed = match job.queue {
                    SubmitQueue::Global => {
                        if front {
                            self.waiting_global.push_front(id.0);
                        } else {
                            self.waiting_global.push_back(id.0);
                        }
                        true
                    }
                    SubmitQueue::Local(i) => match self.waiting_local.get_mut(i) {
                        Some(fifo) => {
                            if front {
                                fifo.push_front(id.0);
                            } else {
                                fifo.push_back(id.0);
                            }
                            true
                        }
                        None => false,
                    },
                };
                if !pushed {
                    self.violation(
                        ViolationKind::JobStateError,
                        t,
                        Some(id.0),
                        format!("re-queued on nonexistent {:?}", job.queue),
                    );
                } else if front {
                    if let Some(slot) = self.jobs.get_mut(id.0 as usize).and_then(Option::as_mut) {
                        slot.requeued_front = true;
                    }
                }
            }
        }
    }

    fn on_run_end(&mut self, now: SimTime) {
        self.check_time(now);
        // Started-but-unfinished jobs would still hold processors; a
        // drained run must have returned every allocated processor (up
        // to the effective capacity — a trace may leave a cluster down
        // at the end of the run).
        let stuck: Vec<(usize, u32, u32)> = self
            .idle
            .iter()
            .zip(self.effective.iter())
            .enumerate()
            .filter(|(_, (idle, eff))| idle != eff)
            .map(|(i, (&idle, &eff))| (i, idle, eff))
            .collect();
        for (i, idle, eff) in stuck {
            self.violation(
                ViolationKind::JobStateError,
                now.seconds(),
                None,
                format!("run ended with cluster {i} at {idle}/{eff} idle"),
            );
        }
    }
}
