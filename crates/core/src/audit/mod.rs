//! Structured observation of scheduling decisions (the audit layer).
//!
//! Every consequential step the simulator takes — a job arriving, a
//! queue being disabled, a placement being chosen, a job starting or
//! completing — is exposed through the [`SimObserver`] trait. Observers
//! are passive: they see borrowed snapshots of the decision and cannot
//! influence it, so an attached observer never perturbs a run (the
//! golden regression values are identical with and without one).
//!
//! Three observers ship with the crate:
//!
//! * [`NullObserver`] — the default; every hook is an empty default
//!   method, and the simulation entry points are generic over the
//!   observer type, so the no-observer path monomorphizes to the exact
//!   pre-audit code (verified by the engine benchmark).
//! * [`JsonlSink`] — serializes each event as one JSON line, for
//!   offline analysis and the byte-stable event-log regression test
//!   (exposed as `coalloc-exp runjson … --events <path>`).
//! * [`InvariantAuditor`] — re-derives every decision from its inputs
//!   and records a [`Violation`] when the simulator strays from the
//!   paper's rules: cluster over capacity, components sharing a
//!   cluster, a placement that contradicts the configured fit rule,
//!   FCFS overtaking, a mis-applied wide-area extension factor, or
//!   non-monotone event times (exposed as `--audit`).
//!
//! The auditor is deliberately paranoid: `audit::mutants` wires
//! deliberately broken schedulers into the full simulation loop and
//! asserts each seeded bug trips its distinct violation kind.

mod event;
mod invariants;
#[cfg(test)]
mod mutants;

pub use event::{EventRecord, JsonlSink};
pub use invariants::{InvariantAuditor, Violation, ViolationKind};

use coalloc_workload::JobRequest;
use desim::{Duration, SimTime};

use crate::job::{ActiveJob, JobId, Placement, SubmitQueue};

/// What prompted a scheduling pass.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PassTrigger {
    /// A job arrived.
    Arrival,
    /// A job departed and released its processors.
    Departure,
    /// A cluster failed or was repaired (see [`crate::fault`]).
    Fault,
}

/// The scope a placement was chosen in.
///
/// GS, GB, and the multi-component side of LS/LP choose clusters
/// system-wide; LS and LP restrict single-component jobs to the cluster
/// of their local queue (§2.5).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PlacementScope {
    /// The scheduler chose among all clusters
    /// ([`crate::placement::place_request`]).
    System,
    /// The job was restricted to this cluster
    /// ([`crate::placement::place_on_cluster`]).
    Cluster(usize),
}

/// One job losing its processors to a cluster failure, observed at the
/// instant the simulator has released its placement and decided its
/// fate (see [`crate::fault::InterruptPolicy`]).
#[derive(Debug)]
pub struct Interruption<'a> {
    /// The interrupted job.
    pub id: JobId,
    /// The cluster whose failure killed one of its components.
    pub cluster: usize,
    /// The placement the job held; its processors were just released.
    pub released: &'a Placement,
    /// What happens to the job now (requeue at the head, at the tail,
    /// or abort).
    pub disposition: crate::fault::InterruptPolicy,
    /// Whether the request was re-split against the surviving clusters
    /// (the job at the hook already carries the new request).
    pub resplit: bool,
}

/// One running job changing its processor allocation in place (the
/// `Malleable` disposition): observed at the instant the resize has
/// been applied to the system and the job's departure rescheduled.
///
/// Resizes conserve the job's remaining *base* work: the invariant
/// auditor checks `(old_end − now)·from.total()/f_old ==
/// (new_end − now)·to.total()/f_new`, where `f` is the wide-area
/// extension factor for the clusters spanned on each side (under a
/// contended bandwidth-sharing network the nominal formula does not
/// apply and the auditor checks the end against its mirrored flow
/// rates instead).
#[derive(Debug)]
pub struct Resize<'a> {
    /// The resized job.
    pub id: JobId,
    /// The placement it held before the resize.
    pub from: &'a Placement,
    /// The placement it holds now.
    pub to: &'a Placement,
    /// When the job would have departed under the old placement.
    pub old_end: SimTime,
    /// When it will depart under the new one.
    pub new_end: SimTime,
}

/// One successful placement decision, borrowed from the scheduler at
/// the instant it commits.
#[derive(Debug)]
pub struct PlacementDecision<'a> {
    /// The job being started.
    pub id: JobId,
    /// The queue it was taken from.
    pub queue: SubmitQueue,
    /// Whether the choice was system-wide or cluster-restricted.
    pub scope: PlacementScope,
    /// Idle processors per cluster *before* this placement was applied.
    pub idle_before: &'a [u32],
    /// The chosen `(cluster, processors)` assignments.
    pub placement: &'a Placement,
}

/// A passive observer of one simulation run.
///
/// All hooks are no-op defaults, so observers implement only what they
/// need. Hooks receive the current simulated time first; times are
/// non-decreasing over a run (the auditor checks this too).
pub trait SimObserver {
    /// A job arrived and was recorded in the job table. `job.spec`
    /// carries the sampled request — including how a total request was
    /// split into components — and the base service time.
    fn on_arrival(&mut self, now: SimTime, id: JobId, job: &ActiveJob) {
        let _ = (now, id, job);
    }

    /// The arrived job was appended to `queue`.
    fn on_enqueue(&mut self, now: SimTime, id: JobId, queue: SubmitQueue) {
        let _ = (now, id, queue);
    }

    /// A scheduling pass begins (one runs after every arrival and every
    /// departure).
    fn on_pass(&mut self, now: SimTime, trigger: PassTrigger) {
        let _ = (now, trigger);
    }

    /// A scheduling pass ended having started `started` (in order).
    fn on_pass_end(&mut self, now: SimTime, started: &[JobId]) {
        let _ = (now, started);
    }

    /// A queue's head did not fit; the queue is disabled until the next
    /// departure.
    fn on_queue_disabled(&mut self, now: SimTime, queue: SubmitQueue) {
        let _ = (now, queue);
    }

    /// A scheduler committed to a placement (processors are applied to
    /// the system immediately after).
    fn on_placement(&mut self, now: SimTime, decision: &PlacementDecision<'_>) {
        let _ = (now, decision);
    }

    /// A placed job starts running and will hold its processors for
    /// `occupancy` (base service times the wide-area extension factor
    /// for the clusters it actually spans).
    fn on_start(&mut self, now: SimTime, id: JobId, job: &ActiveJob, occupancy: Duration) {
        let _ = (now, id, job, occupancy);
    }

    /// A running job completed and released its processors.
    fn on_completion(&mut self, now: SimTime, id: JobId, job: &ActiveJob) {
        let _ = (now, id, job);
    }

    /// A cluster failed: every job running a component on it has been
    /// interrupted (each with an [`SimObserver::on_job_interrupted`]
    /// call, all *before* this hook) and `remaining` of its processors
    /// stay usable for new work until the repair.
    fn on_cluster_down(&mut self, now: SimTime, cluster: usize, remaining: u32) {
        let _ = (now, cluster, remaining);
    }

    /// A failed cluster was repaired to full capacity.
    fn on_cluster_up(&mut self, now: SimTime, cluster: usize) {
        let _ = (now, cluster);
    }

    /// A cluster failure killed a running job's component. `job` is the
    /// post-interruption state: placement and start already cleared,
    /// request possibly re-split (see [`Interruption::resplit`]).
    fn on_job_interrupted(&mut self, now: SimTime, job: &ActiveJob, info: &Interruption<'_>) {
        let _ = (now, job, info);
    }

    /// A moldable job's component split was re-chosen at schedule time:
    /// `from` is the submitted request, `to` the split it will actually
    /// start with. Emitted *before* the corresponding
    /// [`SimObserver::on_placement`], and only when the split actually
    /// changed (rigid runs never see this hook).
    fn on_job_molded(&mut self, now: SimTime, id: JobId, from: &JobRequest, to: &JobRequest) {
        let _ = (now, id, from, to);
    }

    /// A running malleable job grew onto idle processors or shrank away
    /// from a failed cluster. `job` already carries the new placement
    /// (`resize.to`); processors were applied/released immediately
    /// before this hook.
    fn on_job_resized(&mut self, now: SimTime, job: &ActiveJob, resize: &Resize<'_>) {
        let _ = (now, job, resize);
    }

    /// The run ended (event queue drained) at `now`.
    fn on_run_end(&mut self, now: SimTime) {
        let _ = now;
    }
}

/// The do-nothing observer: every hook is the empty default. Simulation
/// entry points are generic over the observer, so runs with a
/// `NullObserver` compile down to the unobserved code.
#[derive(Clone, Copy, Debug, Default)]
pub struct NullObserver;

impl SimObserver for NullObserver {}

/// Fans events out to two observers in order (`a` first), so e.g. a
/// [`JsonlSink`] and an [`InvariantAuditor`] can watch the same run.
#[derive(Debug)]
pub struct Tee<'a, A: ?Sized, B: ?Sized> {
    a: &'a mut A,
    b: &'a mut B,
}

impl<'a, A: SimObserver + ?Sized, B: SimObserver + ?Sized> Tee<'a, A, B> {
    /// Combines two observers.
    pub fn new(a: &'a mut A, b: &'a mut B) -> Self {
        Tee { a, b }
    }
}

impl<A: SimObserver + ?Sized, B: SimObserver + ?Sized> SimObserver for Tee<'_, A, B> {
    fn on_arrival(&mut self, now: SimTime, id: JobId, job: &ActiveJob) {
        self.a.on_arrival(now, id, job);
        self.b.on_arrival(now, id, job);
    }

    fn on_enqueue(&mut self, now: SimTime, id: JobId, queue: SubmitQueue) {
        self.a.on_enqueue(now, id, queue);
        self.b.on_enqueue(now, id, queue);
    }

    fn on_pass(&mut self, now: SimTime, trigger: PassTrigger) {
        self.a.on_pass(now, trigger);
        self.b.on_pass(now, trigger);
    }

    fn on_pass_end(&mut self, now: SimTime, started: &[JobId]) {
        self.a.on_pass_end(now, started);
        self.b.on_pass_end(now, started);
    }

    fn on_queue_disabled(&mut self, now: SimTime, queue: SubmitQueue) {
        self.a.on_queue_disabled(now, queue);
        self.b.on_queue_disabled(now, queue);
    }

    fn on_placement(&mut self, now: SimTime, decision: &PlacementDecision<'_>) {
        self.a.on_placement(now, decision);
        self.b.on_placement(now, decision);
    }

    fn on_start(&mut self, now: SimTime, id: JobId, job: &ActiveJob, occupancy: Duration) {
        self.a.on_start(now, id, job, occupancy);
        self.b.on_start(now, id, job, occupancy);
    }

    fn on_completion(&mut self, now: SimTime, id: JobId, job: &ActiveJob) {
        self.a.on_completion(now, id, job);
        self.b.on_completion(now, id, job);
    }

    fn on_cluster_down(&mut self, now: SimTime, cluster: usize, remaining: u32) {
        self.a.on_cluster_down(now, cluster, remaining);
        self.b.on_cluster_down(now, cluster, remaining);
    }

    fn on_cluster_up(&mut self, now: SimTime, cluster: usize) {
        self.a.on_cluster_up(now, cluster);
        self.b.on_cluster_up(now, cluster);
    }

    fn on_job_interrupted(&mut self, now: SimTime, job: &ActiveJob, info: &Interruption<'_>) {
        self.a.on_job_interrupted(now, job, info);
        self.b.on_job_interrupted(now, job, info);
    }

    fn on_job_molded(&mut self, now: SimTime, id: JobId, from: &JobRequest, to: &JobRequest) {
        self.a.on_job_molded(now, id, from, to);
        self.b.on_job_molded(now, id, from, to);
    }

    fn on_job_resized(&mut self, now: SimTime, job: &ActiveJob, resize: &Resize<'_>) {
        self.a.on_job_resized(now, job, resize);
        self.b.on_job_resized(now, job, resize);
    }

    fn on_run_end(&mut self, now: SimTime) {
        self.a.on_run_end(now);
        self.b.on_run_end(now);
    }
}

impl SubmitQueue {
    /// A stable textual name for event records (`"global"`, `"local2"`).
    pub fn audit_label(self) -> String {
        match self {
            SubmitQueue::Global => "global".to_string(),
            SubmitQueue::Local(i) => format!("local{i}"),
        }
    }
}
