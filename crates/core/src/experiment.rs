//! Response-time-vs-utilization sweeps — the machinery behind every
//! figure in the paper's evaluation.
//!
//! A sweep runs one simulation per (target utilization × replication)
//! pair and aggregates replications into a mean with a 95 % confidence
//! interval. Runs are independent, so they execute in parallel on scoped
//! worker threads (crossbeam); results are deterministic for a fixed
//! seed regardless of thread count.

use std::sync::atomic::{AtomicUsize, Ordering};

use desim::stats::{t_975, Estimate, Welford};

use crate::sim::{run, SimConfig, SimOutcome};

/// Configuration of a sweep over target gross utilizations.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The target gross utilizations to simulate (the x-axis).
    pub utilizations: Vec<f64>,
    /// Independent replications per utilization (different seeds).
    pub replications: u64,
    /// Base seed; replication `r` uses `base_seed + r`.
    pub base_seed: u64,
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            utilizations: (1..=9).map(|i| f64::from(i) * 0.1).collect(),
            replications: 3,
            base_seed: 2003,
            threads: 0,
        }
    }
}

impl SweepConfig {
    /// A reduced sweep for fast test/CI runs.
    pub fn quick() -> Self {
        SweepConfig {
            utilizations: vec![0.2, 0.4, 0.6],
            replications: 2,
            base_seed: 2003,
            threads: 0,
        }
    }

    fn effective_threads(&self, tasks: usize) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            self.threads
        };
        t.clamp(1, tasks.max(1))
    }
}

/// Replication-aggregated results at one target utilization.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ReplicatedOutcome {
    /// Mean response time across replications, with a 95 % CI over
    /// replication means.
    pub response: Estimate,
    /// Mean measured gross utilization across replications.
    pub gross_utilization: f64,
    /// Mean measured net utilization across replications.
    pub net_utilization: f64,
    /// Mean response of local-queue jobs (LS/LP).
    pub response_local: f64,
    /// Mean response of global-queue jobs (GS/LP).
    pub response_global: f64,
    /// Whether any replication saturated.
    pub saturated: bool,
    /// The individual runs.
    pub runs: Vec<SimOutcome>,
}

/// One point of a sweep: the target utilization and what was measured.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SweepPoint {
    /// Target offered gross utilization.
    pub target_utilization: f64,
    /// Aggregated measurements.
    pub outcome: ReplicatedOutcome,
}

fn aggregate(runs: Vec<SimOutcome>) -> ReplicatedOutcome {
    assert!(!runs.is_empty());
    let mut resp = Welford::new();
    let mut gross = Welford::new();
    let mut net = Welford::new();
    let mut local = Welford::new();
    let mut global = Welford::new();
    let mut saturated = false;
    for r in &runs {
        resp.add(r.metrics.mean_response);
        gross.add(r.metrics.gross_utilization);
        net.add(r.metrics.net_utilization);
        local.add(r.metrics.response_local);
        global.add(r.metrics.response_global);
        saturated |= r.saturated;
    }
    let k = resp.count();
    let half =
        if k >= 2 { t_975(k - 1) * resp.std_dev() / (k as f64).sqrt() } else { f64::INFINITY };
    ReplicatedOutcome {
        response: Estimate { mean: resp.mean(), half_width: half, n: k },
        gross_utilization: gross.mean(),
        net_utilization: net.mean(),
        response_local: local.mean(),
        response_global: global.mean(),
        saturated,
        runs,
    }
}

/// Runs a sweep: `make_cfg` builds the simulation configuration for a
/// target utilization; the sweep runs `replications` seeds of it at every
/// utilization, in parallel, and aggregates.
pub fn sweep<F>(make_cfg: F, sweep_cfg: &SweepConfig) -> Vec<SweepPoint>
where
    F: Fn(f64) -> SimConfig + Sync,
{
    assert!(!sweep_cfg.utilizations.is_empty(), "sweep needs at least one utilization");
    assert!(sweep_cfg.replications > 0, "sweep needs at least one replication");

    // Task list: (utilization index, replication).
    let tasks: Vec<(usize, u64)> = sweep_cfg
        .utilizations
        .iter()
        .enumerate()
        .flat_map(|(ui, _)| (0..sweep_cfg.replications).map(move |r| (ui, r)))
        .collect();

    let next = AtomicUsize::new(0);
    let threads = sweep_cfg.effective_threads(tasks.len());

    // Lock-free result collection: workers claim task indices from one
    // atomic counter and append (index, outcome) pairs to a worker-local
    // vector returned through the join handle — the only shared mutable
    // state is the counter, so runs never contend on a results lock.
    // Results are re-slotted by task index after the join barrier, which
    // keeps the outcome deterministic whatever the interleaving.
    let per_worker: Vec<Vec<(usize, SimOutcome)>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut mine: Vec<(usize, SimOutcome)> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(&(ui, rep)) = tasks.get(i) else { break mine };
                        let util = sweep_cfg.utilizations[ui];
                        let cfg = make_cfg(util).with_seed(sweep_cfg.base_seed.wrapping_add(rep));
                        mine.push((i, run(&cfg)));
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    })
    .expect("sweep scope failed");

    // Disjoint slots: task i was (ui, rep) with i = ui * replications + rep.
    let mut slots: Vec<Option<SimOutcome>> = (0..tasks.len()).map(|_| None).collect();
    for (i, outcome) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "task {i} ran twice");
        slots[i] = Some(outcome);
    }
    let reps = sweep_cfg.replications as usize;
    sweep_cfg
        .utilizations
        .iter()
        .enumerate()
        .map(|(ui, &u)| SweepPoint {
            target_utilization: u,
            outcome: aggregate(
                slots[ui * reps..(ui + 1) * reps]
                    .iter_mut()
                    .map(|o| o.take().expect("every task ran"))
                    .collect(),
            ),
        })
        .collect()
}

/// The verdict of a statistical comparison at one utilization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Verdict {
    /// A's mean response is significantly lower (95 % CIs disjoint).
    AWins,
    /// B's mean response is significantly lower.
    BWins,
    /// The confidence intervals overlap — no significant difference.
    Tie,
}

/// Compares two sweeps point by point using the replication confidence
/// intervals: a side "wins" at a utilization when its CI lies entirely
/// below the other's. Sweeps must use the same target-utilization grid.
///
/// # Panics
/// Panics if the grids differ.
pub fn compare_sweeps(a: &[SweepPoint], b: &[SweepPoint]) -> Vec<(f64, Verdict)> {
    assert_eq!(a.len(), b.len(), "sweeps must share the utilization grid");
    a.iter()
        .zip(b)
        .map(|(pa, pb)| {
            assert!(
                (pa.target_utilization - pb.target_utilization).abs() < 1e-9,
                "sweeps must share the utilization grid"
            );
            let (ra, rb) = (&pa.outcome.response, &pb.outcome.response);
            let a_sat = pa.outcome.saturated;
            let b_sat = pb.outcome.saturated;
            let verdict = if a_sat != b_sat {
                // Only one side is unstable: the stable side wins.
                if a_sat {
                    Verdict::BWins
                } else {
                    Verdict::AWins
                }
            } else if ra.mean + ra.half_width < rb.mean - rb.half_width {
                Verdict::AWins
            } else if rb.mean + rb.half_width < ra.mean - ra.half_width {
                Verdict::BWins
            } else {
                Verdict::Tie
            };
            (pa.target_utilization, verdict)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn quick_cfg(policy: PolicyKind) -> impl Fn(f64) -> SimConfig + Sync {
        move |util| {
            let mut cfg = SimConfig::das(policy, 16, util);
            cfg.total_jobs = 4_000;
            cfg.warmup_jobs = 500;
            cfg.batch_size = 100;
            cfg
        }
    }

    #[test]
    fn sweep_returns_one_point_per_utilization() {
        let points = sweep(quick_cfg(PolicyKind::Gs), &SweepConfig::quick());
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.outcome.runs.len(), 2);
            assert!(p.outcome.response.mean > 0.0);
        }
    }

    #[test]
    fn response_grows_with_utilization() {
        let points = sweep(quick_cfg(PolicyKind::Gs), &SweepConfig::quick());
        assert!(
            points[0].outcome.response.mean < points[2].outcome.response.mean,
            "response must grow from util 0.2 to 0.6: {} vs {}",
            points[0].outcome.response.mean,
            points[2].outcome.response.mean
        );
    }

    #[test]
    fn parallel_equals_serial() {
        let mut serial_cfg = SweepConfig::quick();
        serial_cfg.threads = 1;
        let mut parallel_cfg = SweepConfig::quick();
        parallel_cfg.threads = 4;
        let a = sweep(quick_cfg(PolicyKind::Ls), &serial_cfg);
        let b = sweep(quick_cfg(PolicyKind::Ls), &parallel_cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.outcome.response.mean, y.outcome.response.mean);
            assert_eq!(x.outcome.gross_utilization, y.outcome.gross_utilization);
        }
    }

    #[test]
    fn compare_sweeps_verdicts() {
        use crate::policy::PolicyKind;
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![0.55, 0.65];
        cfg.replications = 3;
        let ls = sweep(quick_cfg(PolicyKind::Ls), &cfg);
        let lp = sweep(quick_cfg(PolicyKind::Lp), &cfg);
        let verdicts = compare_sweeps(&ls, &lp);
        assert_eq!(verdicts.len(), 2);
        // At 0.65, LS must significantly beat LP (limit 16).
        assert_eq!(verdicts[1].1, Verdict::AWins, "{verdicts:?}");
        // Self-comparison is all ties.
        for (_, v) in compare_sweeps(&ls, &ls) {
            assert_eq!(v, Verdict::Tie);
        }
    }

    #[test]
    #[should_panic(expected = "grid")]
    fn compare_sweeps_rejects_mismatched_grids() {
        let a: Vec<SweepPoint> = vec![];
        let b = sweep(quick_cfg(crate::policy::PolicyKind::Gs), &{
            let mut c = SweepConfig::quick();
            c.utilizations = vec![0.3];
            c.replications = 1;
            c
        });
        compare_sweeps(&a, &b);
    }

    #[test]
    fn aggregation_flags_saturation() {
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![1.5];
        cfg.replications = 1;
        let points = sweep(quick_cfg(PolicyKind::Gs), &cfg);
        assert!(points[0].outcome.saturated);
    }
}
