//! Response-time-vs-utilization sweeps — the machinery behind every
//! figure in the paper's evaluation.
//!
//! A sweep estimates the mean response time at each target utilization
//! from independent replications. Instead of a fixed replication count,
//! a round-based **adaptive engine** drives every point to a target
//! relative 95 % confidence half-width (see [`desim::stopping`]): each
//! round runs the pending replications of *all* points through one
//! work-stealing worker pool, then the stopping rule decides per point
//! whether to stop (precision met, cap hit, or saturated) or how many
//! replications to add. Because decisions depend only on completed
//! replications in replication order — never on scheduling interleaving
//! — results are deterministic for a fixed seed regardless of thread
//! count.
//!
//! Replication seeds are derived via [`RngStream::substream`] from the
//! base seed and the replication index *only*, so two sweeps with the
//! same base seed see common random numbers at every replication across
//! policies and utilizations — the variance-reduction discipline behind
//! [`compare_sweeps`].
//!
//! Long sweeps checkpoint their completed replications to JSON after
//! every round ([`SweepConfig::checkpoint`]); an interrupted sweep
//! resumes from the file and finishes exactly as an uninterrupted run
//! would.
//!
//! Replications are **panic-isolated**: a panicking run (an invariant
//! violation under `audit`, a bad configuration, a bug) is caught at
//! the worker, recorded as a [`FailedReplication`], and the rest of the
//! sweep proceeds. Failures consume their replication index — the seeds
//! of later replications never shift — so a sweep with failures is
//! still deterministic for a fixed seed at any thread count.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};

use desim::stats::{t_975, Estimate, Welford};
use desim::stopping::{Decision, StoppingRule};
use desim::RngStream;

use crate::audit::InvariantAuditor;
use crate::sim::{SimBuilder, SimConfig, SimOutcome};

/// Configuration of a sweep over target gross utilizations.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The target gross utilizations to simulate (the x-axis).
    pub utilizations: Vec<f64>,
    /// Replications every point runs before the first assessment.
    pub min_replications: u64,
    /// Hard cap on replications per point.
    pub max_replications: u64,
    /// Target relative 95 % half-width of the mean response per point
    /// (0.05 = ±5 %). Points stop adding replications once they meet it.
    pub rel_ci_target: f64,
    /// Base seed; replication `r` runs on the substream-derived seed
    /// [`replication_seed`]`(base_seed, r)` at every utilization.
    pub base_seed: u64,
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
    /// Checkpoint file: completed replications are written here after
    /// every round, and a matching file is loaded before the first.
    pub checkpoint: Option<PathBuf>,
    /// Attach a fresh [`InvariantAuditor`] to every replication and
    /// panic on any violation. Observers are passive, so an audited
    /// sweep produces bit-identical results to an unaudited one — at
    /// the cost of the auditor's bookkeeping per event.
    pub audit: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            utilizations: (1..=9).map(|i| f64::from(i) * 0.1).collect(),
            min_replications: 3,
            max_replications: 12,
            rel_ci_target: 0.05,
            base_seed: 2003,
            threads: 0,
            checkpoint: None,
            audit: false,
        }
    }
}

impl SweepConfig {
    /// A reduced sweep for fast test/CI runs: fixed two replications
    /// (min = max), so the adaptive engine never adds rounds.
    pub fn quick() -> Self {
        SweepConfig {
            utilizations: vec![0.2, 0.4, 0.6],
            min_replications: 2,
            max_replications: 2,
            rel_ci_target: 0.05,
            base_seed: 2003,
            threads: 0,
            checkpoint: None,
            audit: false,
        }
    }

    /// Pins the engine to exactly `n` replications per point (min = max),
    /// recovering the classic fixed-replication design.
    pub fn fixed_replications(mut self, n: u64) -> Self {
        self.min_replications = n;
        self.max_replications = n;
        self
    }

    fn effective_threads(&self, tasks: usize) -> usize {
        let t = if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            self.threads
        };
        t.clamp(1, tasks.max(1))
    }

    fn validate(&self) {
        assert!(!self.utilizations.is_empty(), "sweep needs at least one utilization");
        assert!(self.min_replications > 0, "sweep needs at least one replication");
        assert!(
            self.max_replications >= self.min_replications,
            "replication cap below the minimum"
        );
        assert!(
            self.rel_ci_target > 0.0 && self.rel_ci_target.is_finite(),
            "relative-CI target must be positive and finite"
        );
    }

    fn rule(&self) -> StoppingRule {
        StoppingRule::new(self.rel_ci_target, self.min_replications, self.max_replications)
    }
}

/// The master seed of replication `rep` under `base_seed`: an
/// independent substream derived from `(base_seed, rep)` alone. Every
/// policy and utilization sees the *same* seed at replication `rep`, so
/// compared sweeps run on common random numbers, and adding utilization
/// points or changing the policy never reshuffles the randomness of
/// existing replications.
pub fn replication_seed(base_seed: u64, rep: u64) -> u64 {
    RngStream::new(base_seed).substream(rep).seed()
}

/// A replication that panicked instead of producing a [`SimOutcome`].
///
/// The panic is caught at the sweep worker ([`std::panic::catch_unwind`]),
/// so one poisoned replication never takes down the rest of the sweep.
/// The failure keeps its replication index: replication `rep` stays
/// spent, and the seeds of every other replication are unchanged.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FailedReplication {
    /// The replication index that failed.
    pub rep: u64,
    /// The seed the replication ran on ([`replication_seed`]).
    pub seed: u64,
    /// The panic payload, when it was a string (the common case for
    /// `panic!`/`assert!`); a placeholder otherwise.
    pub cause: String,
}

/// Replication-aggregated results at one target utilization.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ReplicatedOutcome {
    /// Mean response time with a 95 % CI over the means of the
    /// *non-saturated* replications (`n` counts those); a saturated
    /// run's mean response reflects queue blow-up, not steady state, so
    /// it never enters this estimate. When every replication saturated,
    /// the mean is 0 with an infinite half-width — consult `saturated`
    /// and `runs`.
    pub response: Estimate,
    /// Mean measured gross utilization across all replications.
    pub gross_utilization: f64,
    /// Mean measured net utilization across all replications.
    pub net_utilization: f64,
    /// Mean response of local-queue jobs (LS/LP) over replications that
    /// measured any; `None` when the class is empty everywhere (GS/SC).
    pub response_local: Option<f64>,
    /// Mean response of global-queue jobs (GS/LP) over replications
    /// that measured any; `None` when the class is empty everywhere.
    pub response_global: Option<f64>,
    /// Whether any replication saturated.
    pub saturated: bool,
    /// The individual runs, in replication order (failed replications
    /// are absent here — see `failures`).
    pub runs: Vec<SimOutcome>,
    /// Replications that panicked instead of completing, in replication
    /// order. Empty in a healthy sweep.
    pub failures: Vec<FailedReplication>,
}

/// One point of a sweep: the target utilization and what was measured.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SweepPoint {
    /// Target offered gross utilization.
    pub target_utilization: f64,
    /// Aggregated measurements.
    pub outcome: ReplicatedOutcome,
}

/// The CI over non-saturated replication mean responses. `n` is the
/// number of observations *kept*, not replications spent.
fn response_estimate(runs: &[SimOutcome]) -> Estimate {
    let mut resp = Welford::new();
    for r in runs.iter().filter(|r| !r.saturated) {
        resp.add(r.metrics.mean_response);
    }
    let k = resp.count();
    let half =
        if k >= 2 { t_975(k - 1) * resp.std_dev() / (k as f64).sqrt() } else { f64::INFINITY };
    Estimate { mean: resp.mean(), half_width: half, n: k }
}

fn aggregate(runs: Vec<SimOutcome>, failures: Vec<FailedReplication>) -> ReplicatedOutcome {
    assert!(!runs.is_empty() || !failures.is_empty());
    let response = response_estimate(&runs);
    let mut gross = Welford::new();
    let mut net = Welford::new();
    let mut local = Welford::new();
    let mut global = Welford::new();
    let mut saturated = false;
    for r in &runs {
        gross.add(r.metrics.gross_utilization);
        net.add(r.metrics.net_utilization);
        // Empty classes are None, not 0.0: averaging a GS run's absent
        // local-queue mean as zero used to poison the aggregate.
        if let Some(x) = r.metrics.response_local {
            local.add(x);
        }
        if let Some(x) = r.metrics.response_global {
            global.add(x);
        }
        saturated |= r.saturated;
    }
    ReplicatedOutcome {
        response,
        gross_utilization: gross.mean(),
        net_utilization: net.mean(),
        response_local: local.mean_opt(),
        response_global: global.mean_opt(),
        saturated,
        runs,
        failures,
    }
}

/// Replications the adaptive engine still owes one point. Saturated
/// points stop at the minimum: their steady-state response is unbounded,
/// so no replication count buys precision there. Failed replications
/// count as *spent* — they consumed their index and seed — but
/// contribute no observation, so the precision estimate comes from the
/// completed runs alone.
fn replications_to_add(rule: &StoppingRule, runs: &[SimOutcome], failed: usize) -> u64 {
    let spent = (runs.len() + failed) as u64;
    if spent >= rule.min_n && runs.iter().any(|r| r.saturated) {
        return 0;
    }
    match rule.assess(spent, &response_estimate(runs)) {
        Decision::Continue { add } => add,
        Decision::Stop(_) => 0,
    }
}

/// The payload of a caught replication panic, rendered as a string.
/// `panic!`/`assert!` payloads are `&str` or `String`; anything else
/// (a `panic_any` with a custom type) gets a placeholder.
fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs `cfgs` through the lock-free worker pool and returns per-task
/// results in task order. Workers claim task indices from one atomic
/// counter and append `(index, result)` pairs to a worker-local vector
/// returned through the join handle — the only shared mutable state is
/// the counter, so runs never contend on a results lock. Results are
/// re-slotted by task index after the join barrier, which keeps the
/// outcome deterministic whatever the interleaving.
///
/// Each replication runs under [`std::panic::catch_unwind`]: a panic
/// (invariant violation under `audit`, configuration bug) becomes an
/// `Err` carrying the panic message instead of unwinding the worker,
/// so the remaining tasks still run.
pub(crate) fn run_parallel_isolated(
    cfgs: &[SimConfig],
    threads: usize,
    audit: bool,
) -> Vec<Result<SimOutcome, String>> {
    let next = AtomicUsize::new(0);
    let run_one = |cfg: &SimConfig| {
        if audit {
            let mut auditor = InvariantAuditor::new(cfg);
            let outcome = SimBuilder::new(cfg).run_observed(&mut auditor);
            assert!(
                auditor.is_clean(),
                "invariant violations at seed {}: {}",
                cfg.seed,
                auditor.report()
            );
            outcome
        } else {
            SimBuilder::new(cfg).run()
        }
    };
    type Slot = (usize, Result<SimOutcome, String>);
    let per_worker: Vec<Vec<Slot>> = crossbeam::thread::scope(|scope| {
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                scope.spawn(|_| {
                    let mut mine: Vec<Slot> = Vec::new();
                    loop {
                        let i = next.fetch_add(1, Ordering::Relaxed);
                        let Some(cfg) = cfgs.get(i) else { break mine };
                        let result =
                            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| run_one(cfg)))
                                .map_err(panic_cause);
                        mine.push((i, result));
                    }
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("sweep worker panicked")).collect()
    })
    .expect("sweep scope failed");

    let mut slots: Vec<Option<Result<SimOutcome, String>>> =
        (0..cfgs.len()).map(|_| None).collect();
    for (i, result) in per_worker.into_iter().flatten() {
        debug_assert!(slots[i].is_none(), "task {i} ran twice");
        slots[i] = Some(result);
    }
    slots.into_iter().map(|o| o.expect("every task ran")).collect()
}

/// [`run_parallel_isolated`] for callers that treat a replication panic
/// as fatal (e.g. saturation search, where a lost run would silently
/// bias the boundary estimate): the first failure is re-raised.
pub(crate) fn run_parallel(cfgs: &[SimConfig], threads: usize, audit: bool) -> Vec<SimOutcome> {
    run_parallel_isolated(cfgs, threads, audit)
        .into_iter()
        .map(|r| r.unwrap_or_else(|cause| panic!("replication panicked: {cause}")))
        .collect()
}

/// On-disk state of a partially completed sweep: every finished
/// replication, per utilization point, in replication order. The
/// fingerprint is `(version, base_seed, utilizations)` — precision knobs
/// (`rel_ci_target`, the replication bounds) may change between the
/// interrupted and the resuming invocation without invalidating the
/// completed runs, because replication seeds depend only on the base
/// seed and the replication index.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SweepCheckpoint {
    /// Format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The sweep's base seed.
    pub base_seed: u64,
    /// The target-utilization grid.
    pub utilizations: Vec<f64>,
    /// Completed runs: `runs[i][r]` is replication `r` of point `i`.
    pub runs: Vec<Vec<SimOutcome>>,
    /// Failed (panicked) replications per point, in replication order.
    /// Absent in v1 checkpoints, which therefore fail to parse and
    /// restart the sweep — the safe reading of a pre-fault-era file.
    pub failures: Vec<Vec<FailedReplication>>,
}

/// Current checkpoint format version. Bumped to 2 when failed
/// replications became part of the on-disk state.
pub const CHECKPOINT_VERSION: u32 = 2;

/// Loads a checkpoint if `path` holds one matching this sweep's
/// fingerprint; a missing, corrupt (truncated, bit-flipped, wrong
/// version), or mismatched file restarts the sweep from scratch (with a
/// note on stderr for the non-missing cases). Restarting is always
/// safe: the checkpoint is an optimization, never the source of truth.
#[allow(clippy::type_complexity)]
fn load_checkpoint(
    path: &Path,
    cfg: &SweepConfig,
) -> Option<(Vec<Vec<SimOutcome>>, Vec<Vec<FailedReplication>>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let cp: SweepCheckpoint = match serde_json::from_str(&text) {
        Ok(cp) => cp,
        Err(e) => {
            eprintln!("sweep checkpoint {} unreadable ({e}); restarting", path.display());
            return None;
        }
    };
    let grid_matches = cp.utilizations.len() == cfg.utilizations.len()
        && cp.utilizations.iter().zip(&cfg.utilizations).all(|(a, b)| (a - b).abs() < 1e-12);
    if cp.version != CHECKPOINT_VERSION
        || cp.base_seed != cfg.base_seed
        || !grid_matches
        || cp.runs.len() != cfg.utilizations.len()
        || cp.failures.len() != cfg.utilizations.len()
    {
        eprintln!(
            "sweep checkpoint {} belongs to a different sweep (seed/grid/version); restarting",
            path.display()
        );
        return None;
    }
    Some((cp.runs, cp.failures))
}

/// Writes the checkpoint atomically (temp file + rename) so an
/// interruption mid-write never corrupts the previous round's state. A
/// write failure (disk full, permissions) is reported on stderr and
/// otherwise ignored: the sweep's results live in memory, and losing a
/// resume point must not kill hours of completed replications.
fn save_checkpoint(
    path: &Path,
    cfg: &SweepConfig,
    runs: &[Vec<SimOutcome>],
    failures: &[Vec<FailedReplication>],
) {
    let cp = SweepCheckpoint {
        version: CHECKPOINT_VERSION,
        base_seed: cfg.base_seed,
        utilizations: cfg.utilizations.clone(),
        runs: runs.to_vec(),
        failures: failures.to_vec(),
    };
    let json = serde_json::to_string(&cp).expect("checkpoint serializes");
    let tmp = path.with_extension("tmp");
    if let Err(e) = std::fs::write(&tmp, json) {
        eprintln!("warning: cannot write checkpoint {}: {e}; continuing", tmp.display());
        return;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        eprintln!("warning: cannot commit checkpoint {}: {e}; continuing", path.display());
    }
}

/// Runs an adaptive sweep: `make_cfg` builds the simulation for a target
/// utilization; the engine replicates every point until its relative
/// 95 % CI meets `rel_ci_target` (or the cap / saturation ends it),
/// running each round's mixed batch through the worker pool.
pub fn sweep<F>(make_cfg: F, sweep_cfg: &SweepConfig) -> Vec<SweepPoint>
where
    F: Fn(f64) -> SimConfig + Sync,
{
    sweep_cfg.validate();
    let rule = sweep_cfg.rule();

    let n_points = sweep_cfg.utilizations.len();
    let (mut runs, mut failures): (Vec<Vec<SimOutcome>>, Vec<Vec<FailedReplication>>) = sweep_cfg
        .checkpoint
        .as_deref()
        .and_then(|p| load_checkpoint(p, sweep_cfg))
        .unwrap_or_else(|| (vec![Vec::new(); n_points], vec![Vec::new(); n_points]));

    loop {
        // Plan the round from completed state only: (point, replication)
        // tasks for every point the stopping rule keeps open. The plan —
        // and therefore every seed — is a pure function of prior rounds,
        // so thread count and interleaving cannot change it. Failed
        // replications stay spent: their indices are never re-issued.
        let batch: Vec<(usize, u64)> = runs
            .iter()
            .zip(&failures)
            .enumerate()
            .flat_map(|(ui, (point_runs, point_failures))| {
                let first = (point_runs.len() + point_failures.len()) as u64;
                let add = replications_to_add(&rule, point_runs, point_failures.len());
                (first..first + add).map(move |rep| (ui, rep))
            })
            .collect();
        if batch.is_empty() {
            break;
        }
        let cfgs: Vec<SimConfig> = batch
            .iter()
            .map(|&(ui, rep)| {
                make_cfg(sweep_cfg.utilizations[ui])
                    .with_seed(replication_seed(sweep_cfg.base_seed, rep))
            })
            .collect();
        let results =
            run_parallel_isolated(&cfgs, sweep_cfg.effective_threads(cfgs.len()), sweep_cfg.audit);
        for (&(ui, rep), result) in batch.iter().zip(results) {
            match result {
                Ok(outcome) => runs[ui].push(outcome),
                Err(cause) => failures[ui].push(FailedReplication {
                    rep,
                    seed: replication_seed(sweep_cfg.base_seed, rep),
                    cause,
                }),
            }
        }
        if let Some(path) = sweep_cfg.checkpoint.as_deref() {
            save_checkpoint(path, sweep_cfg, &runs, &failures);
        }
    }

    sweep_cfg
        .utilizations
        .iter()
        .zip(runs.into_iter().zip(failures))
        .map(|(&u, (point_runs, point_failures))| SweepPoint {
            target_utilization: u,
            outcome: aggregate(point_runs, point_failures),
        })
        .collect()
}

/// The verdict of a statistical comparison at one utilization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Verdict {
    /// A's mean response is significantly lower (95 % CIs disjoint).
    AWins,
    /// B's mean response is significantly lower.
    BWins,
    /// The confidence intervals overlap — no significant difference.
    Tie,
}

/// Compares two sweeps point by point using the replication confidence
/// intervals: a side "wins" at a utilization when its CI lies entirely
/// below the other's. Sweeps must use the same target-utilization grid.
///
/// # Panics
/// Panics if the grids differ.
pub fn compare_sweeps(a: &[SweepPoint], b: &[SweepPoint]) -> Vec<(f64, Verdict)> {
    assert_eq!(a.len(), b.len(), "sweeps must share the utilization grid");
    a.iter()
        .zip(b)
        .map(|(pa, pb)| {
            assert!(
                (pa.target_utilization - pb.target_utilization).abs() < 1e-9,
                "sweeps must share the utilization grid"
            );
            let (ra, rb) = (&pa.outcome.response, &pb.outcome.response);
            let a_sat = pa.outcome.saturated;
            let b_sat = pb.outcome.saturated;
            let verdict = if a_sat != b_sat {
                // Only one side is unstable: the stable side wins.
                if a_sat {
                    Verdict::BWins
                } else {
                    Verdict::AWins
                }
            } else if ra.mean + ra.half_width < rb.mean - rb.half_width {
                Verdict::AWins
            } else if rb.mean + rb.half_width < ra.mean - ra.half_width {
                Verdict::BWins
            } else {
                Verdict::Tie
            };
            (pa.target_utilization, verdict)
        })
        .collect()
}

/// Runs two adaptive sweeps on the *same* base seed (common random
/// numbers: replication `r` of either side sees identical arrivals and
/// service draws) and compares them point by point.
///
/// # Panics
/// Panics if `sweep_cfg.checkpoint` is set — the two sweeps would
/// clobber one file; checkpoint each side separately via [`sweep`].
pub fn compare<FA, FB>(
    make_a: FA,
    make_b: FB,
    sweep_cfg: &SweepConfig,
) -> (Vec<SweepPoint>, Vec<SweepPoint>, Vec<(f64, Verdict)>)
where
    FA: Fn(f64) -> SimConfig + Sync,
    FB: Fn(f64) -> SimConfig + Sync,
{
    assert!(
        sweep_cfg.checkpoint.is_none(),
        "compare runs two sweeps; checkpoint each separately via sweep()"
    );
    let a = sweep(make_a, sweep_cfg);
    let b = sweep(make_b, sweep_cfg);
    let verdicts = compare_sweeps(&a, &b);
    (a, b, verdicts)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn quick_cfg(policy: PolicyKind) -> impl Fn(f64) -> SimConfig + Sync {
        move |util| {
            let mut cfg = SimConfig::das(policy, 16, util);
            cfg.total_jobs = 4_000;
            cfg.warmup_jobs = 500;
            cfg.batch_size = 100;
            cfg
        }
    }

    #[test]
    fn sweep_returns_one_point_per_utilization() {
        let points = sweep(quick_cfg(PolicyKind::Gs), &SweepConfig::quick());
        assert_eq!(points.len(), 3);
        for p in &points {
            assert_eq!(p.outcome.runs.len(), 2);
            assert!(p.outcome.response.mean > 0.0);
        }
    }

    #[test]
    fn response_grows_with_utilization() {
        let points = sweep(quick_cfg(PolicyKind::Gs), &SweepConfig::quick());
        assert!(
            points[0].outcome.response.mean < points[2].outcome.response.mean,
            "response must grow from util 0.2 to 0.6: {} vs {}",
            points[0].outcome.response.mean,
            points[2].outcome.response.mean
        );
    }

    #[test]
    fn parallel_equals_serial() {
        let mut serial_cfg = SweepConfig::quick();
        serial_cfg.threads = 1;
        let mut parallel_cfg = SweepConfig::quick();
        parallel_cfg.threads = 4;
        let a = sweep(quick_cfg(PolicyKind::Ls), &serial_cfg);
        let b = sweep(quick_cfg(PolicyKind::Ls), &parallel_cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.outcome.response.mean, y.outcome.response.mean);
            assert_eq!(x.outcome.gross_utilization, y.outcome.gross_utilization);
        }
    }

    #[test]
    fn adaptive_engine_stops_by_precision_or_cap() {
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![0.3, 0.6];
        cfg.min_replications = 2;
        cfg.max_replications = 5;
        cfg.rel_ci_target = 0.15;
        let points = sweep(quick_cfg(PolicyKind::Gs), &cfg);
        for p in &points {
            let n = p.outcome.runs.len() as u64;
            assert!((2..=5).contains(&n), "replications {n} outside bounds");
            assert!(
                p.outcome.saturated
                    || p.outcome.response.relative_error() <= 0.15
                    || n == cfg.max_replications,
                "point {} stopped early: rel {} at n {n}",
                p.target_utilization,
                p.outcome.response.relative_error()
            );
        }
    }

    #[test]
    fn adaptive_replication_count_follows_the_target() {
        // A loose target stops every stable point at the minimum; an
        // unreachably tight target drives the same points to the cap.
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![0.3, 0.5];
        cfg.min_replications = 2;
        cfg.max_replications = 4;
        cfg.rel_ci_target = 10.0;
        let loose = sweep(quick_cfg(PolicyKind::Gs), &cfg);
        for p in &loose {
            assert_eq!(p.outcome.runs.len(), 2, "loose target must stop at the minimum");
        }
        cfg.rel_ci_target = 1e-6;
        let tight = sweep(quick_cfg(PolicyKind::Gs), &cfg);
        for p in &tight {
            assert_eq!(p.outcome.runs.len(), 4, "unreachable target must drive to the cap");
        }
        // The first min_replications runs are shared: the tight sweep
        // extends the loose one, it does not reshuffle seeds.
        for (l, t) in loose.iter().zip(&tight) {
            for (a, b) in l.outcome.runs.iter().zip(&t.outcome.runs) {
                assert_eq!(a.metrics.mean_response, b.metrics.mean_response);
            }
        }
    }

    #[test]
    fn audited_sweep_is_bit_identical_and_clean() {
        let mut audited_cfg = SweepConfig::quick();
        audited_cfg.utilizations = vec![0.4];
        audited_cfg.audit = true;
        let mut plain_cfg = audited_cfg.clone();
        plain_cfg.audit = false;
        // The auditor panics inside the sweep on any violation, so a
        // returned result is certified clean; and observers are passive,
        // so the numbers match the unaudited sweep exactly.
        let audited = sweep(quick_cfg(PolicyKind::Ls), &audited_cfg);
        let plain = sweep(quick_cfg(PolicyKind::Ls), &plain_cfg);
        for (a, p) in audited.iter().zip(&plain) {
            assert_eq!(a.outcome.response.mean, p.outcome.response.mean);
            assert_eq!(a.outcome.gross_utilization, p.outcome.gross_utilization);
        }
    }

    #[test]
    fn replication_seeds_are_common_random_numbers() {
        // Replication r's seed depends only on (base_seed, rep): the
        // same at every utilization and for every policy.
        assert_eq!(replication_seed(2003, 0), replication_seed(2003, 0));
        assert_ne!(replication_seed(2003, 0), replication_seed(2003, 1));
        assert_ne!(replication_seed(2003, 0), replication_seed(2004, 0));
        // And no longer the old base_seed + rep scheme.
        assert_ne!(replication_seed(2003, 1), 2004);
    }

    #[test]
    fn compare_sweeps_verdicts() {
        use crate::policy::PolicyKind;
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![0.55, 0.65];
        cfg = cfg.fixed_replications(3);
        let ls = sweep(quick_cfg(PolicyKind::Ls), &cfg);
        let lp = sweep(quick_cfg(PolicyKind::Lp), &cfg);
        let verdicts = compare_sweeps(&ls, &lp);
        assert_eq!(verdicts.len(), 2);
        // At 0.65, LS must significantly beat LP (limit 16).
        assert_eq!(verdicts[1].1, Verdict::AWins, "{verdicts:?}");
        // Self-comparison is all ties.
        for (_, v) in compare_sweeps(&ls, &ls) {
            assert_eq!(v, Verdict::Tie);
        }
    }

    #[test]
    fn compare_runs_both_sides_on_common_random_numbers() {
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![0.55];
        let (a, b, verdicts) = compare(quick_cfg(PolicyKind::Ls), quick_cfg(PolicyKind::Lp), &cfg);
        assert_eq!(a.len(), 1);
        assert_eq!(b.len(), 1);
        assert_eq!(verdicts.len(), 1);
        // CRN: both sides' replication r ran the same seed.
        assert_eq!(a[0].outcome.runs.len(), b[0].outcome.runs.len());
    }

    #[test]
    #[should_panic(expected = "grid")]
    fn compare_sweeps_rejects_mismatched_grids() {
        let a: Vec<SweepPoint> = vec![];
        let b = sweep(quick_cfg(crate::policy::PolicyKind::Gs), &{
            let mut c = SweepConfig::quick();
            c.utilizations = vec![0.3];
            c.fixed_replications(1)
        });
        compare_sweeps(&a, &b);
    }

    #[test]
    fn aggregation_flags_saturation_and_keeps_ci_clean() {
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![1.5];
        cfg = cfg.fixed_replications(1);
        let points = sweep(quick_cfg(PolicyKind::Gs), &cfg);
        let o = &points[0].outcome;
        assert!(o.saturated);
        // The saturated run's garbage mean response stays out of the CI.
        assert_eq!(o.response.n, 0, "no non-saturated observations");
        assert!(o.response.half_width.is_infinite());
        assert_eq!(o.runs.len(), 1, "the raw run is kept");
    }

    #[test]
    fn saturated_points_stop_at_the_minimum() {
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![1.5];
        cfg.min_replications = 2;
        cfg.max_replications = 8;
        cfg.rel_ci_target = 0.01;
        let points = sweep(quick_cfg(PolicyKind::Gs), &cfg);
        assert!(points[0].outcome.saturated);
        assert_eq!(points[0].outcome.runs.len(), 2, "no precision chasing past saturation");
    }

    #[test]
    fn empty_response_classes_stay_out_of_aggregates() {
        // GS: every job is global, so the local class must be None —
        // not an average over per-run 0.0 placeholders.
        let points = sweep(quick_cfg(PolicyKind::Gs), &SweepConfig::quick());
        for p in &points {
            assert_eq!(p.outcome.response_local, None);
            assert!(p.outcome.response_global.is_some());
        }
        // LS routes everything locally: the global class is None.
        let points = sweep(quick_cfg(PolicyKind::Ls), &SweepConfig::quick());
        for p in &points {
            assert_eq!(p.outcome.response_global, None);
            assert!(p.outcome.response_local.is_some());
        }
    }

    /// A config builder whose high-utilization point panics inside the
    /// run (warm-up swallows every job, which `SimConfig::validate`
    /// rejects) while the low point is healthy — the fixture for the
    /// panic-isolation tests.
    fn partly_failing_cfg() -> impl Fn(f64) -> SimConfig + Sync {
        move |util| {
            let mut cfg = SimConfig::das(PolicyKind::Gs, 16, util);
            cfg.total_jobs = 4_000;
            cfg.warmup_jobs = if util > 0.45 { 4_000 } else { 500 };
            cfg.batch_size = 100;
            cfg
        }
    }

    #[test]
    fn panicking_replications_are_isolated_and_recorded() {
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![0.3, 0.5];
        cfg = cfg.fixed_replications(2);
        let points = sweep(partly_failing_cfg(), &cfg);
        // The healthy point is untouched by its neighbour's panics.
        let ok = &points[0].outcome;
        assert_eq!(ok.runs.len(), 2);
        assert!(ok.failures.is_empty());
        assert!(ok.response.mean > 0.0);
        // The broken point recorded every panic instead of propagating:
        // failures keep their replication index and seed, and the
        // response estimate simply has no observations.
        let bad = &points[1].outcome;
        assert!(bad.runs.is_empty());
        assert_eq!(bad.failures.len(), 2);
        assert_eq!(bad.failures[0].rep, 0);
        assert_eq!(bad.failures[1].rep, 1);
        assert_eq!(bad.failures[0].seed, replication_seed(cfg.base_seed, 0));
        assert_eq!(bad.failures[1].seed, replication_seed(cfg.base_seed, 1));
        assert!(bad.failures[0].cause.contains("warm-up"), "cause: {}", bad.failures[0].cause);
        assert_eq!(bad.response.n, 0);
        assert!(bad.response.half_width.is_infinite());
    }

    #[test]
    fn failures_are_deterministic_across_thread_counts() {
        let mut serial = SweepConfig::quick();
        serial.utilizations = vec![0.3, 0.5];
        serial = serial.fixed_replications(2);
        let mut parallel = serial.clone();
        serial.threads = 1;
        parallel.threads = 4;
        let a = sweep(partly_failing_cfg(), &serial);
        let b = sweep(partly_failing_cfg(), &parallel);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.outcome.response.mean, y.outcome.response.mean);
            assert_eq!(x.outcome.runs.len(), y.outcome.runs.len());
            assert_eq!(x.outcome.failures, y.outcome.failures);
        }
    }

    fn cp_path(tag: &str) -> PathBuf {
        std::env::temp_dir().join(format!("coalloc_sweep_cp_{}_{tag}.json", std::process::id()))
    }

    #[test]
    fn checkpoint_records_failures_and_resumes_identically() {
        let path = cp_path("resume");
        let _ = std::fs::remove_file(&path);
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![0.3, 0.5];
        cfg = cfg.fixed_replications(2);
        cfg.checkpoint = Some(path.clone());
        let first = sweep(partly_failing_cfg(), &cfg);
        let cp: SweepCheckpoint =
            serde_json::from_str(&std::fs::read_to_string(&path).expect("checkpoint written"))
                .expect("checkpoint parses");
        assert_eq!(cp.version, CHECKPOINT_VERSION);
        assert_eq!(cp.failures.len(), 2);
        assert_eq!(cp.failures[1].len(), 2, "failures are part of the on-disk state");
        // Resuming the finished sweep re-runs nothing and reproduces the
        // result, failed replications included.
        let second = sweep(partly_failing_cfg(), &cfg);
        for (a, b) in first.iter().zip(&second) {
            assert_eq!(a.outcome.response.mean, b.outcome.response.mean);
            assert_eq!(a.outcome.runs.len(), b.outcome.runs.len());
            assert_eq!(a.outcome.failures, b.outcome.failures);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn truncated_checkpoint_restarts_cleanly() {
        let path = cp_path("truncated");
        let _ = std::fs::remove_file(&path);
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![0.3];
        cfg = cfg.fixed_replications(2);
        cfg.checkpoint = Some(path.clone());
        let fresh = sweep(quick_cfg(PolicyKind::Gs), &cfg);
        // Simulate a checkpoint cut off mid-write (e.g. a full disk on a
        // non-atomic filesystem): keep only the first half of the bytes.
        let text = std::fs::read_to_string(&path).expect("checkpoint written");
        std::fs::write(&path, &text[..text.len() / 2]).expect("truncate");
        let resumed = sweep(quick_cfg(PolicyKind::Gs), &cfg);
        for (a, b) in fresh.iter().zip(&resumed) {
            assert_eq!(a.outcome.response.mean, b.outcome.response.mean);
            assert_eq!(a.outcome.gross_utilization, b.outcome.gross_utilization);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn bit_flipped_checkpoint_restarts_cleanly() {
        let path = cp_path("bitflip");
        let _ = std::fs::remove_file(&path);
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![0.3];
        cfg = cfg.fixed_replications(2);
        cfg.checkpoint = Some(path.clone());
        let fresh = sweep(quick_cfg(PolicyKind::Gs), &cfg);
        // Flip a bit inside the stored base seed: the file still parses,
        // but the fingerprint no longer matches this sweep and the
        // corrupt state is discarded rather than trusted.
        let mut bytes = std::fs::read(&path).expect("checkpoint written");
        let needle = b"\"base_seed\":";
        let pos =
            bytes.windows(needle.len()).position(|w| w == needle).expect("base_seed field present")
                + needle.len();
        bytes[pos] ^= 0x01;
        std::fs::write(&path, &bytes).expect("corrupt");
        let resumed = sweep(quick_cfg(PolicyKind::Gs), &cfg);
        for (a, b) in fresh.iter().zip(&resumed) {
            assert_eq!(a.outcome.response.mean, b.outcome.response.mean);
        }
        let _ = std::fs::remove_file(&path);
    }

    #[test]
    fn pre_failure_era_checkpoint_restarts_cleanly() {
        // A v1 file has no `failures` field: deserialization fails and
        // the sweep restarts rather than trusting a half-understood file.
        let path = cp_path("v1");
        let v1 = r#"{"version":1,"base_seed":2003,"utilizations":[0.3],"runs":[[]]}"#;
        std::fs::write(&path, v1).expect("write v1 checkpoint");
        let mut cfg = SweepConfig::quick();
        cfg.utilizations = vec![0.3];
        cfg = cfg.fixed_replications(1);
        cfg.checkpoint = Some(path.clone());
        let points = sweep(quick_cfg(PolicyKind::Gs), &cfg);
        assert_eq!(points[0].outcome.runs.len(), 1, "sweep restarted and ran");
        let _ = std::fs::remove_file(&path);
    }
}
