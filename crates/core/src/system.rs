//! The multicluster system (§2.2): `C` clusters of possibly different
//! sizes with identical processor service rates.

use crate::cluster::Cluster;
use crate::job::Placement;

/// The processors of a multicluster system.
///
/// The per-cluster idle counts are cached in a flat vector kept in sync
/// by [`MultiCluster::apply`]/[`MultiCluster::release`], so the
/// schedulers' fit checks ([`MultiCluster::idle_per_cluster`]) borrow a
/// slice instead of collecting a fresh `Vec` on every placement attempt.
#[derive(Clone, Debug)]
pub struct MultiCluster {
    clusters: Vec<Cluster>,
    /// Idle processors per cluster, mirroring `clusters` (the
    /// allocation-free fast path for placement fit checks).
    idle: Vec<u32>,
}

impl MultiCluster {
    /// Builds a system from per-cluster capacities.
    pub fn new(capacities: &[u32]) -> Self {
        assert!(!capacities.is_empty(), "a system needs at least one cluster");
        MultiCluster {
            clusters: capacities.iter().map(|&c| Cluster::new(c)).collect(),
            idle: capacities.to_vec(),
        }
    }

    /// The paper's simulated multicluster: 4 clusters of 32 processors.
    pub fn das_multicluster() -> Self {
        MultiCluster::new(&[32, 32, 32, 32])
    }

    /// The paper's single-cluster comparison system: 128 processors.
    pub fn das_single_cluster() -> Self {
        MultiCluster::new(&[128])
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Total processors across all clusters.
    pub fn total_capacity(&self) -> u32 {
        self.clusters.iter().map(Cluster::capacity).sum()
    }

    /// Total busy processors.
    pub fn total_busy(&self) -> u32 {
        self.clusters.iter().map(Cluster::busy).sum()
    }

    /// Idle processors in each cluster, as a borrowed slice (no
    /// allocation; the cache is maintained by apply/release).
    pub fn idle_per_cluster(&self) -> &[u32] {
        debug_assert!(self.idle.iter().zip(&self.clusters).all(|(&i, c)| i == c.idle()));
        &self.idle
    }

    /// Idle processors in one cluster.
    pub fn idle(&self, cluster: usize) -> u32 {
        self.clusters[cluster].idle()
    }

    /// Capacity of one cluster.
    pub fn capacity(&self, cluster: usize) -> u32 {
        self.clusters[cluster].capacity()
    }

    /// Applies a placement: allocates every component's processors.
    ///
    /// # Panics
    /// Panics (in [`Cluster::allocate`]) if the placement does not fit —
    /// placements must come from a fit check against the current state.
    pub fn apply(&mut self, placement: &Placement) {
        for &(cluster, procs) in placement.assignments() {
            self.clusters[cluster].allocate(procs);
            self.idle[cluster] -= procs;
        }
    }

    /// Undoes a placement: releases every component's processors.
    pub fn release(&mut self, placement: &Placement) {
        for &(cluster, procs) in placement.assignments() {
            self.clusters[cluster].release(procs);
            self.idle[cluster] += procs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das_geometries() {
        let mc = MultiCluster::das_multicluster();
        assert_eq!(mc.num_clusters(), 4);
        assert_eq!(mc.total_capacity(), 128);
        let sc = MultiCluster::das_single_cluster();
        assert_eq!(sc.num_clusters(), 1);
        assert_eq!(sc.total_capacity(), 128);
    }

    #[test]
    fn apply_and_release_roundtrip() {
        let mut mc = MultiCluster::das_multicluster();
        let p = Placement::new(vec![(0, 16), (2, 16), (3, 10)]);
        mc.apply(&p);
        assert_eq!(mc.total_busy(), 42);
        assert_eq!(mc.idle_per_cluster(), vec![16, 32, 16, 22]);
        mc.release(&p);
        assert_eq!(mc.total_busy(), 0);
    }

    #[test]
    fn heterogeneous_capacities() {
        // The DAS2 itself is 72+32+32+32+32; the model allows different
        // cluster sizes even though the paper simulates equal ones.
        let mc = MultiCluster::new(&[72, 32, 32, 32, 32]);
        assert_eq!(mc.total_capacity(), 200);
        assert_eq!(mc.capacity(0), 72);
        assert_eq!(mc.idle(0), 72);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_system_rejected() {
        MultiCluster::new(&[]);
    }
}
