//! The multicluster system (§2.2): `C` clusters of possibly different
//! sizes with identical processor service rates.

use crate::cluster::Cluster;
use crate::job::Placement;
use crate::placement::MAX_CLUSTERS;

/// A first-class description of a multicluster's shape: how many
/// clusters, and how many processors each has.
///
/// `SystemSpec` replaces the raw `Vec<u32>` capacity lists that used to
/// be threaded ad hoc through configs, policies, the auditor and the
/// CLI. It validates itself ([`SystemSpec::validate`]), knows its own
/// totals, renders itself (`4×32`, `72+32+32+32+32`), parses the CLI's
/// `--capacities a,b,c` syntax, and derives the capacity-proportional
/// queue routing a heterogeneous system wants.
#[derive(Clone, Debug, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize)]
pub struct SystemSpec {
    capacities: Vec<u32>,
}

/// Why a [`SystemSpec`] (possibly combined with a component-size limit)
/// is unusable.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum SystemSpecError {
    /// The capacity list is empty.
    Empty,
    /// A cluster has zero processors.
    ZeroCapacity {
        /// Index of the offending cluster.
        cluster: usize,
    },
    /// More clusters than the placement bitmask supports.
    TooManyClusters {
        /// The requested cluster count.
        clusters: usize,
    },
    /// The workload's component-size limit exceeds the smallest cluster,
    /// so some components could never be placed there.
    LimitExceedsSmallestCluster {
        /// The component-size limit.
        limit: u32,
        /// The smallest cluster's capacity.
        min_capacity: u32,
    },
}

impl core::fmt::Display for SystemSpecError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match *self {
            SystemSpecError::Empty => write!(f, "a system needs at least one cluster"),
            SystemSpecError::ZeroCapacity { cluster } => {
                write!(f, "cluster {cluster} has zero capacity")
            }
            SystemSpecError::TooManyClusters { clusters } => {
                write!(f, "{clusters} clusters exceed the supported maximum of {MAX_CLUSTERS}")
            }
            SystemSpecError::LimitExceedsSmallestCluster { limit, min_capacity } => write!(
                f,
                "component-size limit {limit} exceeds the smallest cluster \
                 ({min_capacity} processors)"
            ),
        }
    }
}

impl std::error::Error for SystemSpecError {}

impl SystemSpec {
    /// Builds a spec from per-cluster capacities (not yet validated; see
    /// [`SystemSpec::validate`]).
    pub fn new(capacities: impl Into<Vec<u32>>) -> Self {
        SystemSpec { capacities: capacities.into() }
    }

    /// A homogeneous system: `clusters` clusters of `capacity` each.
    pub fn homogeneous(clusters: usize, capacity: u32) -> Self {
        SystemSpec { capacities: vec![capacity; clusters] }
    }

    /// The paper's simulated multicluster: 4 clusters of 32 processors.
    pub fn das_multicluster() -> Self {
        SystemSpec::homogeneous(4, 32)
    }

    /// The paper's single-cluster comparison system: 128 processors.
    pub fn das_single_cluster() -> Self {
        SystemSpec::new([128])
    }

    /// The real DAS-2 geometry: one 72-processor cluster plus four of 32.
    pub fn das2() -> Self {
        SystemSpec::new([72, 32, 32, 32, 32])
    }

    /// Parses the CLI's `--capacities a,b,c,...` syntax.
    pub fn parse(s: &str) -> Result<Self, String> {
        let capacities = s
            .split(',')
            .map(|part| {
                part.trim()
                    .parse::<u32>()
                    .map_err(|_| format!("bad capacity {part:?} in {s:?} (want e.g. 72,32,32)"))
            })
            .collect::<Result<Vec<u32>, String>>()?;
        let spec = SystemSpec::new(capacities);
        spec.validate().map_err(|e| e.to_string())?;
        Ok(spec)
    }

    /// Per-cluster capacities.
    pub fn capacities(&self) -> &[u32] {
        &self.capacities
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.capacities.len()
    }

    /// Total processors across all clusters.
    pub fn total_capacity(&self) -> u32 {
        self.capacities.iter().sum()
    }

    /// Capacity of the smallest cluster (0 for an empty spec).
    pub fn min_capacity(&self) -> u32 {
        self.capacities.iter().copied().min().unwrap_or(0)
    }

    /// Whether every cluster has the same capacity.
    pub fn is_homogeneous(&self) -> bool {
        self.capacities.windows(2).all(|w| w[0] == w[1])
    }

    /// Checks the spec is usable: at least one cluster, no zero-capacity
    /// cluster, and no more clusters than placement supports.
    pub fn validate(&self) -> Result<(), SystemSpecError> {
        if self.capacities.is_empty() {
            return Err(SystemSpecError::Empty);
        }
        if let Some(cluster) = self.capacities.iter().position(|&c| c == 0) {
            return Err(SystemSpecError::ZeroCapacity { cluster });
        }
        if self.capacities.len() > MAX_CLUSTERS {
            return Err(SystemSpecError::TooManyClusters { clusters: self.capacities.len() });
        }
        Ok(())
    }

    /// Checks a component-size limit against the smallest cluster: a
    /// component larger than its cluster can never be placed.
    pub fn validate_limit(&self, limit: u32) -> Result<(), SystemSpecError> {
        self.validate()?;
        if limit > self.min_capacity() {
            return Err(SystemSpecError::LimitExceedsSmallestCluster {
                limit,
                min_capacity: self.min_capacity(),
            });
        }
        Ok(())
    }

    /// The queue routing that loads each cluster in proportion to its
    /// capacity — the natural choice for heterogeneous systems (balanced
    /// routing would overload the small clusters).
    pub fn proportional_routing(&self) -> coalloc_workload::QueueRouting {
        let total = f64::from(self.total_capacity());
        let weights: Vec<f64> = self.capacities.iter().map(|&c| f64::from(c) / total).collect();
        coalloc_workload::QueueRouting::custom(&weights)
    }

    /// The offered gross utilization an arrival rate generates on this
    /// system under the given workload.
    pub fn offered_gross_utilization(
        &self,
        workload: &coalloc_workload::Workload,
        arrival_rate: f64,
    ) -> f64 {
        arrival_rate * workload.mean_gross_work() / f64::from(self.total_capacity())
    }
}

impl core::fmt::Display for SystemSpec {
    /// `4×32` for homogeneous systems, `72+32+32+32+32` otherwise.
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        if self.is_homogeneous() && !self.capacities.is_empty() {
            write!(f, "{}\u{d7}{}", self.capacities.len(), self.capacities[0])
        } else {
            let mut first = true;
            for &c in &self.capacities {
                if !first {
                    f.write_str("+")?;
                }
                write!(f, "{c}")?;
                first = false;
            }
            Ok(())
        }
    }
}

impl std::str::FromStr for SystemSpec {
    type Err = String;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        SystemSpec::parse(s)
    }
}

/// The processors of a multicluster system.
///
/// The per-cluster idle counts are cached in a flat vector kept in sync
/// by [`MultiCluster::apply`]/[`MultiCluster::release`], so the
/// schedulers' fit checks ([`MultiCluster::idle_per_cluster`]) borrow a
/// slice instead of collecting a fresh `Vec` on every placement attempt.
#[derive(Clone, Debug)]
pub struct MultiCluster {
    clusters: Vec<Cluster>,
    /// Idle processors per cluster, mirroring `clusters` (the
    /// allocation-free fast path for placement fit checks). Under an
    /// outage this is the *effective* idle count: the offline share is
    /// subtracted so fit checks see only usable processors.
    idle: Vec<u32>,
    /// Processors currently offline per cluster (0 = healthy). Empty
    /// until the first fault touches the system, so fault-free runs pay
    /// nothing.
    outage: Vec<u32>,
}

impl MultiCluster {
    /// Builds a system from per-cluster capacities.
    pub fn new(capacities: &[u32]) -> Self {
        assert!(!capacities.is_empty(), "a system needs at least one cluster");
        MultiCluster {
            clusters: capacities.iter().map(|&c| Cluster::new(c)).collect(),
            idle: capacities.to_vec(),
            outage: Vec::new(),
        }
    }

    /// Builds a system from a validated [`SystemSpec`].
    ///
    /// # Panics
    /// Panics with the spec's own error message if the spec is invalid.
    pub fn from_spec(spec: &SystemSpec) -> Self {
        if let Err(e) = spec.validate() {
            panic!("{e}");
        }
        MultiCluster::new(spec.capacities())
    }

    /// The paper's simulated multicluster: 4 clusters of 32 processors.
    pub fn das_multicluster() -> Self {
        MultiCluster::new(&[32, 32, 32, 32])
    }

    /// The paper's single-cluster comparison system: 128 processors.
    pub fn das_single_cluster() -> Self {
        MultiCluster::new(&[128])
    }

    /// Number of clusters.
    pub fn num_clusters(&self) -> usize {
        self.clusters.len()
    }

    /// Total processors across all clusters.
    pub fn total_capacity(&self) -> u32 {
        self.clusters.iter().map(Cluster::capacity).sum()
    }

    /// Total busy processors.
    pub fn total_busy(&self) -> u32 {
        self.clusters.iter().map(Cluster::busy).sum()
    }

    /// Idle processors in each cluster, as a borrowed slice (no
    /// allocation; the cache is maintained by apply/release). Offline
    /// processors are not idle: under an outage the entries are the
    /// *usable* idle counts.
    pub fn idle_per_cluster(&self) -> &[u32] {
        debug_assert!(self
            .idle
            .iter()
            .zip(&self.clusters)
            .enumerate()
            .all(|(k, (&i, c))| i + self.outage_of(k) == c.idle()));
        &self.idle
    }

    /// Idle *usable* processors in one cluster.
    pub fn idle(&self, cluster: usize) -> u32 {
        self.clusters[cluster].idle() - self.outage_of(cluster)
    }

    /// Capacity of one cluster.
    pub fn capacity(&self, cluster: usize) -> u32 {
        self.clusters[cluster].capacity()
    }

    /// Processors of one cluster currently offline (0 when healthy).
    fn outage_of(&self, cluster: usize) -> u32 {
        self.outage.get(cluster).copied().unwrap_or(0)
    }

    /// Usable capacity of one cluster: full capacity minus the outage.
    pub fn effective_capacity(&self, cluster: usize) -> u32 {
        self.clusters[cluster].capacity() - self.outage_of(cluster)
    }

    /// Total processors currently offline across all clusters.
    pub fn total_offline(&self) -> u32 {
        self.outage.iter().sum()
    }

    /// Whether the cluster is (fully or partially) down.
    pub fn is_degraded(&self, cluster: usize) -> bool {
        self.outage_of(cluster) > 0
    }

    /// Takes a cluster down to `remaining` usable processors (0 for a
    /// full outage). The cluster must be healthy and *empty* — the
    /// session kills every running component on it first.
    ///
    /// # Panics
    /// Panics if the cluster is already degraded, still has busy
    /// processors, or `remaining` is not below its capacity.
    pub fn set_down(&mut self, cluster: usize, remaining: u32) {
        let cap = self.clusters[cluster].capacity();
        assert!(!self.is_degraded(cluster), "cluster {cluster} is already down");
        assert_eq!(
            self.clusters[cluster].busy(),
            0,
            "cluster {cluster} still has busy processors; kill its jobs first"
        );
        assert!(remaining < cap, "remaining {remaining} is not below capacity {cap}");
        if self.outage.is_empty() {
            self.outage = vec![0; self.clusters.len()];
        }
        self.outage[cluster] = cap - remaining;
        self.idle[cluster] = remaining;
    }

    /// Repairs a cluster back to full capacity.
    ///
    /// # Panics
    /// Panics if the cluster is not down.
    pub fn set_up(&mut self, cluster: usize) {
        let offline = self.outage_of(cluster);
        assert!(offline > 0, "cluster {cluster} is not down");
        self.outage[cluster] = 0;
        self.idle[cluster] += offline;
    }

    /// Applies a placement: allocates every component's processors.
    ///
    /// # Panics
    /// Panics (in [`Cluster::allocate`]) if the placement does not fit —
    /// placements must come from a fit check against the current state.
    /// On a degraded cluster the raw allocator would wrongly count
    /// offline processors as idle, so the fit is checked here against
    /// the *effective* idle count and the non-panicking
    /// [`Cluster::try_allocate`] does the bookkeeping.
    pub fn apply(&mut self, placement: &Placement) {
        for &(cluster, procs) in placement.assignments() {
            if self.is_degraded(cluster) {
                assert!(
                    procs <= self.idle[cluster],
                    "allocating {procs} processors on degraded cluster {cluster} \
                     but only {} usable",
                    self.idle[cluster]
                );
                let fit = self.clusters[cluster].try_allocate(procs);
                debug_assert!(fit, "raw idle cannot be below effective idle");
            } else {
                self.clusters[cluster].allocate(procs);
            }
            self.idle[cluster] -= procs;
        }
    }

    /// Undoes a placement: releases every component's processors.
    pub fn release(&mut self, placement: &Placement) {
        for &(cluster, procs) in placement.assignments() {
            if self.is_degraded(cluster) {
                let held = self.clusters[cluster].try_release(procs);
                debug_assert!(held, "releasing more than the cluster holds");
            } else {
                self.clusters[cluster].release(procs);
            }
            self.idle[cluster] += procs;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn das_geometries() {
        let mc = MultiCluster::das_multicluster();
        assert_eq!(mc.num_clusters(), 4);
        assert_eq!(mc.total_capacity(), 128);
        let sc = MultiCluster::das_single_cluster();
        assert_eq!(sc.num_clusters(), 1);
        assert_eq!(sc.total_capacity(), 128);
    }

    #[test]
    fn apply_and_release_roundtrip() {
        let mut mc = MultiCluster::das_multicluster();
        let p = Placement::new(vec![(0, 16), (2, 16), (3, 10)]);
        mc.apply(&p);
        assert_eq!(mc.total_busy(), 42);
        assert_eq!(mc.idle_per_cluster(), vec![16, 32, 16, 22]);
        mc.release(&p);
        assert_eq!(mc.total_busy(), 0);
    }

    #[test]
    fn heterogeneous_capacities() {
        // The DAS2 itself is 72+32+32+32+32; the model allows different
        // cluster sizes even though the paper simulates equal ones.
        let mc = MultiCluster::new(&[72, 32, 32, 32, 32]);
        assert_eq!(mc.total_capacity(), 200);
        assert_eq!(mc.capacity(0), 72);
        assert_eq!(mc.idle(0), 72);
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_system_rejected() {
        MultiCluster::new(&[]);
    }

    #[test]
    fn spec_accessors_and_das_geometries() {
        let das = SystemSpec::das_multicluster();
        assert_eq!(das.num_clusters(), 4);
        assert_eq!(das.total_capacity(), 128);
        assert_eq!(das.min_capacity(), 32);
        assert!(das.is_homogeneous());
        assert_eq!(das.capacities(), &[32, 32, 32, 32]);
        let das2 = SystemSpec::das2();
        assert_eq!(das2.total_capacity(), 200);
        assert!(!das2.is_homogeneous());
        assert_eq!(SystemSpec::das_single_cluster().num_clusters(), 1);
        let mc = MultiCluster::from_spec(&das2);
        assert_eq!(mc.total_capacity(), 200);
        assert_eq!(mc.capacity(0), 72);
    }

    #[test]
    fn spec_validation_rejects_empty() {
        assert_eq!(SystemSpec::new(Vec::new()).validate(), Err(SystemSpecError::Empty));
    }

    #[test]
    fn spec_validation_rejects_zero_capacity_clusters() {
        assert_eq!(
            SystemSpec::new([32, 0, 32]).validate(),
            Err(SystemSpecError::ZeroCapacity { cluster: 1 })
        );
    }

    #[test]
    fn spec_validation_rejects_too_many_clusters() {
        assert_eq!(
            SystemSpec::homogeneous(65, 1).validate(),
            Err(SystemSpecError::TooManyClusters { clusters: 65 })
        );
        assert_eq!(SystemSpec::homogeneous(64, 1).validate(), Ok(()));
    }

    #[test]
    fn spec_validation_rejects_limits_exceeding_the_smallest_cluster() {
        let spec = SystemSpec::new([8, 120]);
        assert_eq!(
            spec.validate_limit(16),
            Err(SystemSpecError::LimitExceedsSmallestCluster { limit: 16, min_capacity: 8 })
        );
        assert_eq!(spec.validate_limit(8), Ok(()));
        // Error messages carry the numbers a user needs.
        let msg = spec.validate_limit(16).unwrap_err().to_string();
        assert!(msg.contains("16") && msg.contains("smallest cluster"), "{msg}");
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn from_spec_panics_on_invalid_specs() {
        let _ = MultiCluster::from_spec(&SystemSpec::new([4, 0]));
    }

    #[test]
    fn spec_display_and_parse_roundtrip() {
        assert_eq!(SystemSpec::das_multicluster().to_string(), "4\u{d7}32");
        assert_eq!(SystemSpec::das2().to_string(), "72+32+32+32+32");
        assert_eq!(SystemSpec::parse("72,32, 32,32,32"), Ok(SystemSpec::das2()));
        assert!(SystemSpec::parse("72,x").is_err());
        assert!(SystemSpec::parse("").is_err());
        assert!(SystemSpec::parse("32,0").is_err(), "parse validates");
        let parsed: SystemSpec = "128".parse().expect("FromStr works");
        assert_eq!(parsed, SystemSpec::das_single_cluster());
    }

    #[test]
    fn set_down_and_up_track_effective_capacity() {
        let mut mc = MultiCluster::das_multicluster();
        mc.set_down(1, 0);
        assert!(mc.is_degraded(1));
        assert_eq!(mc.effective_capacity(1), 0);
        assert_eq!(mc.idle(1), 0);
        assert_eq!(mc.total_offline(), 32);
        assert_eq!(mc.idle_per_cluster(), vec![32, 0, 32, 32]);
        mc.set_up(1);
        assert!(!mc.is_degraded(1));
        assert_eq!(mc.idle(1), 32);
        assert_eq!(mc.total_offline(), 0);
    }

    #[test]
    fn partial_outage_leaves_remaining_processors_usable() {
        let mut mc = MultiCluster::das_multicluster();
        mc.set_down(2, 8);
        assert_eq!(mc.effective_capacity(2), 8);
        assert_eq!(mc.idle(2), 8);
        // Work fits within the remaining share, and releases cleanly.
        let p = Placement::new(vec![(2, 8)]);
        mc.apply(&p);
        assert_eq!(mc.idle(2), 0);
        assert_eq!(mc.total_busy(), 8);
        mc.release(&p);
        assert_eq!(mc.idle(2), 8);
        mc.set_up(2);
        assert_eq!(mc.idle(2), 32);
    }

    #[test]
    #[should_panic(expected = "only 8 usable")]
    fn apply_beyond_the_remaining_share_panics() {
        let mut mc = MultiCluster::das_multicluster();
        mc.set_down(2, 8);
        mc.apply(&Placement::new(vec![(2, 9)]));
    }

    #[test]
    #[should_panic(expected = "kill its jobs first")]
    fn set_down_requires_an_empty_cluster() {
        let mut mc = MultiCluster::das_multicluster();
        mc.apply(&Placement::new(vec![(0, 4)]));
        mc.set_down(0, 0);
    }

    #[test]
    #[should_panic(expected = "already down")]
    fn double_down_panics() {
        let mut mc = MultiCluster::das_multicluster();
        mc.set_down(0, 0);
        mc.set_down(0, 0);
    }

    #[test]
    #[should_panic(expected = "not down")]
    fn repairing_a_healthy_cluster_panics() {
        let mut mc = MultiCluster::das_multicluster();
        mc.set_up(3);
    }

    #[test]
    fn proportional_routing_matches_capacities() {
        let routing = SystemSpec::das2().proportional_routing();
        assert_eq!(routing.queues(), 5);
        let w = routing.shares();
        assert!((w[0] - 0.36).abs() < 1e-12, "{w:?}");
        assert!((w[1] - 0.16).abs() < 1e-12, "{w:?}");
    }
}
