//! Component placement (§2.3).
//!
//! "To determine whether an unordered request fits, we try to schedule its
//! components in decreasing order of their sizes on distinct clusters. We
//! use Worst Fit (WF) to place the components on clusters."
//!
//! Worst Fit is the paper's rule; Best Fit and First Fit are provided as
//! ablation alternatives (see the placement bench and DESIGN.md).

use desim::SimTime;

use crate::audit::{PlacementDecision, PlacementScope, SimObserver};
use crate::job::{JobId, Placement, SubmitQueue};

/// How a component picks among the clusters it fits on.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum PlacementRule {
    /// Pick the cluster with the *most* idle processors (the paper).
    WorstFit,
    /// Pick the cluster with the *fewest* idle processors that still fits.
    BestFit,
    /// Pick the lowest-numbered cluster that fits.
    FirstFit,
}

/// The largest system [`place_unordered`] supports: the already-used
/// clusters of an attempt are tracked in a `u64` bitmask so a *failed*
/// fit check touches no heap memory at all (fit checks dominate the
/// scheduling pass under load).
pub const MAX_CLUSTERS: usize = 64;

impl PlacementRule {
    /// Chooses a cluster index for a component of `size` among clusters
    /// whose current idle counts are `idle`, excluding clusters whose
    /// bit is set in `used`. Ties break to the lowest index.
    fn choose(self, idle: &[u32], used: u64, size: u32) -> Option<usize> {
        let mut best: Option<(usize, u32)> = None;
        for (i, &free) in idle.iter().enumerate() {
            if used & (1 << i) != 0 || free < size {
                continue;
            }
            match self {
                PlacementRule::FirstFit => return Some(i),
                PlacementRule::WorstFit => {
                    if best.is_none_or(|(_, b)| free > b) {
                        best = Some((i, free));
                    }
                }
                PlacementRule::BestFit => {
                    if best.is_none_or(|(_, b)| free < b) {
                        best = Some((i, free));
                    }
                }
            }
        }
        best.map(|(i, _)| i)
    }
}

/// Attempts to place an unordered request: components (given non-
/// increasing) go to *distinct* clusters, greedily in size order, each
/// choosing its cluster by `rule`. Returns `None` if some component finds
/// no cluster — the request does not fit now.
///
/// `idle` is the current idle count of every cluster; it is not modified.
///
/// ```
/// use coalloc_core::{place_unordered, PlacementRule};
/// let idle = [10, 30, 20, 5];
/// let p = place_unordered(&idle, &[16, 8], PlacementRule::WorstFit).unwrap();
/// // Worst Fit: the 16 goes to the emptiest cluster (1), the 8 to the next (2).
/// assert_eq!(p.assignments(), &[(1, 16), (2, 8)]);
/// assert!(place_unordered(&idle, &[25, 25], PlacementRule::WorstFit).is_none());
/// ```
pub fn place_unordered(idle: &[u32], components: &[u32], rule: PlacementRule) -> Option<Placement> {
    debug_assert!(
        components.windows(2).all(|w| w[0] >= w[1]),
        "components must be non-increasing: {components:?}"
    );
    assert!(
        components.len() <= idle.len(),
        "{} components cannot go to {} distinct clusters",
        components.len(),
        idle.len()
    );
    assert!(idle.len() <= MAX_CLUSTERS, "at most {MAX_CLUSTERS} clusters supported");
    // Stack-only placement: the chosen assignments live in a fixed
    // array and the distinctness constraint in a bitmask, so neither a
    // failed attempt nor a paper-scale success touches the heap — the
    // resulting `Placement` stores small assignment lists inline.
    let mut pairs = [(0usize, 0u32); MAX_CLUSTERS];
    if rule == PlacementRule::WorstFit && components.len() > 1 {
        // Worst Fit fast path. `idle` is not decremented between
        // components (distinctness is the only coupling), so greedy WF
        // pairs the j-th largest component with the j-th cluster in
        // (idle desc, index asc) order; the attempt fails iff some
        // component outgrows its cluster in that pairing. One partial
        // selection sort replaces a full cluster scan per component.
        let m = components.len();
        let mut order = [0u8; MAX_CLUSTERS];
        for (slot, o) in order.iter_mut().enumerate().take(idle.len()) {
            *o = slot as u8;
        }
        for j in 0..m {
            let mut best = j;
            for i in j + 1..idle.len() {
                let (c, b) = (order[i] as usize, order[best] as usize);
                // Ties break to the lowest cluster index, as in `choose`
                // (earlier swaps scramble the scan order, so position
                // order alone does not give that).
                if idle[c] > idle[b] || (idle[c] == idle[b] && c < b) {
                    best = i;
                }
            }
            order.swap(j, best);
            let cluster = order[j] as usize;
            if idle[cluster] < components[j] {
                return None;
            }
            pairs[j] = (cluster, components[j]);
        }
        return Some(Placement::from_slice(&pairs[..m]));
    }
    let mut used: u64 = 0;
    for (slot, &comp) in components.iter().enumerate() {
        let cluster = rule.choose(idle, used, comp)?;
        used |= 1 << cluster;
        pairs[slot] = (cluster, comp);
    }
    Some(Placement::from_slice(&pairs[..components.len()]))
}

/// Attempts to place a single-component job on one *specific* cluster
/// (LS restricts single-component jobs to their local cluster, §2.5).
pub fn place_on_cluster(idle: &[u32], cluster: usize, size: u32) -> Option<Placement> {
    if idle[cluster] >= size {
        Some(Placement::from_slice(&[(cluster, size)]))
    } else {
        None
    }
}

/// Attempts to place an *ordered* request: `components[i]` must run on
/// cluster `targets[i]` — the scheduler has no freedom (the JSSPP
/// request-taxonomy extension).
pub fn place_ordered(idle: &[u32], components: &[u32], targets: &[usize]) -> Option<Placement> {
    assert_eq!(components.len(), targets.len(), "one target per component");
    for (&comp, &t) in components.iter().zip(targets) {
        assert!(t < idle.len(), "target cluster {t} does not exist");
        if idle[t] < comp {
            return None;
        }
    }
    Some(Placement::new(components.iter().zip(targets).map(|(&c, &t)| (t, c)).collect()))
}

/// Attempts to place a *flexible* request for `total` processors: the
/// scheduler splits the total over the clusters' idle processors, taking
/// chunks from clusters in the preference order of `rule` (Worst Fit:
/// emptiest first). Fits whenever the system-wide idle count suffices —
/// flexible requests never suffer multicluster fragmentation.
pub fn place_flexible(idle: &[u32], total: u32, rule: PlacementRule) -> Option<Placement> {
    assert!(total > 0, "a request needs at least one processor");
    if idle.iter().map(|&x| u64::from(x)).sum::<u64>() < u64::from(total) {
        return None;
    }
    let mut order: Vec<usize> = (0..idle.len()).filter(|&i| idle[i] > 0).collect();
    match rule {
        PlacementRule::WorstFit => order.sort_by_key(|&i| (std::cmp::Reverse(idle[i]), i)),
        PlacementRule::BestFit => order.sort_by_key(|&i| (idle[i], i)),
        PlacementRule::FirstFit => {}
    }
    let mut remaining = total;
    let mut assignments = Vec::new();
    for i in order {
        if remaining == 0 {
            break;
        }
        let take = idle[i].min(remaining);
        assignments.push((i, take));
        remaining -= take;
    }
    debug_assert_eq!(remaining, 0, "total idle was checked above");
    Some(Placement::new(assignments))
}

/// Places any request according to its structure: the single dispatch
/// point policies use.
pub fn place_request(
    idle: &[u32],
    request: &coalloc_workload::JobRequest,
    rule: PlacementRule,
) -> Option<Placement> {
    use coalloc_workload::RequestKind;
    match request.kind() {
        RequestKind::Unordered | RequestKind::Total => {
            place_unordered(idle, request.components(), rule)
        }
        RequestKind::Ordered => place_ordered(
            idle,
            request.components(),
            request.targets().expect("ordered requests carry targets"),
        ),
        RequestKind::Flexible => place_flexible(idle, request.total(), rule),
    }
}

/// Places a request within a [`PlacementScope`]: system-wide via
/// [`place_request`], or restricted to one cluster via
/// [`place_on_cluster`] (how LS/LP treat single-component jobs). This
/// is the function the policies *and* the invariant auditor share, so
/// the auditor recomputes decisions with exactly the production code
/// path.
pub fn place_scoped(
    idle: &[u32],
    request: &coalloc_workload::JobRequest,
    scope: PlacementScope,
    rule: PlacementRule,
) -> Option<Placement> {
    match scope {
        PlacementScope::System => place_request(idle, request, rule),
        PlacementScope::Cluster(c) => place_on_cluster(idle, c, request.total()),
    }
}

/// [`place_scoped`], announcing a successful decision to the observer
/// (with the pre-placement idle snapshot) before returning it. The
/// single emission point all policies go through.
#[allow(clippy::too_many_arguments)]
pub fn place_scoped_observed(
    idle: &[u32],
    request: &coalloc_workload::JobRequest,
    scope: PlacementScope,
    rule: PlacementRule,
    now: SimTime,
    id: JobId,
    queue: SubmitQueue,
    obs: &mut dyn SimObserver,
) -> Option<Placement> {
    let placement = place_scoped(idle, request, scope, rule)?;
    obs.on_placement(
        now,
        &PlacementDecision { id, queue, scope, idle_before: idle, placement: &placement },
    );
    Some(placement)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn worst_fit_prefers_emptiest() {
        let idle = [10, 30, 20, 5];
        let p = place_unordered(&idle, &[8], PlacementRule::WorstFit).expect("fits");
        assert_eq!(p.assignments(), &[(1, 8)]);
    }

    #[test]
    fn best_fit_prefers_fullest_that_fits() {
        let idle = [10, 30, 20, 5];
        let p = place_unordered(&idle, &[8], PlacementRule::BestFit).expect("fits");
        assert_eq!(p.assignments(), &[(0, 8)]);
    }

    #[test]
    fn first_fit_takes_lowest_index() {
        let idle = [10, 30, 20, 5];
        let p = place_unordered(&idle, &[8], PlacementRule::FirstFit).expect("fits");
        assert_eq!(p.assignments(), &[(0, 8)]);
    }

    #[test]
    fn components_go_to_distinct_clusters() {
        let idle = [32, 32, 32, 32];
        let p = place_unordered(&idle, &[16, 16, 16, 16], PlacementRule::WorstFit).expect("fits");
        let mut clusters: Vec<usize> = p.assignments().iter().map(|&(c, _)| c).collect();
        clusters.sort_unstable();
        assert_eq!(clusters, vec![0, 1, 2, 3]);
    }

    #[test]
    fn fails_when_any_component_has_no_cluster() {
        let idle = [20, 20, 20, 20];
        // (22, 21, 21) cannot fit anywhere.
        assert!(place_unordered(&idle, &[22, 21, 21], PlacementRule::WorstFit).is_none());
        // Two components of 20 fit, three do not once clusters are distinct.
        let idle2 = [20, 20, 5, 5];
        assert!(place_unordered(&idle2, &[20, 20], PlacementRule::WorstFit).is_some());
        assert!(place_unordered(&idle2, &[20, 20, 20], PlacementRule::WorstFit).is_none());
    }

    #[test]
    fn paper_packing_pathology_limit_24() {
        // §3.3: after placing (22,21,21) in an empty 4×32 system the idle
        // vector is (10,11,11,32); a second size-64 job split as
        // (22,21,21) does not fit, while (16,16,16,16) and (32,32) would.
        let mut idle = [32u32, 32, 32, 32];
        let p = place_unordered(&idle, &[22, 21, 21], PlacementRule::WorstFit).expect("fits");
        for &(c, n) in p.assignments() {
            idle[c] -= n;
        }
        let mut sorted = idle;
        sorted.sort_unstable();
        assert_eq!(sorted, [10, 11, 11, 32]);
        assert!(place_unordered(&idle, &[22, 21, 21], PlacementRule::WorstFit).is_none());
        // Under limit 16 the second job *would* fit in the 16-split world:
        let mut idle16 = [32u32, 32, 32, 32];
        let p16 =
            place_unordered(&idle16, &[16, 16, 16, 16], PlacementRule::WorstFit).expect("fits");
        for &(c, n) in p16.assignments() {
            idle16[c] -= n;
        }
        assert!(place_unordered(&idle16, &[16, 16, 16, 16], PlacementRule::WorstFit).is_some());
    }

    #[test]
    fn worst_fit_ties_break_low_index() {
        let idle = [32, 32, 32, 32];
        let p = place_unordered(&idle, &[8, 8], PlacementRule::WorstFit).expect("fits");
        assert_eq!(p.assignments(), &[(0, 8), (1, 8)]);
    }

    #[test]
    fn place_on_cluster_respects_target() {
        let idle = [10, 2, 30, 30];
        assert!(place_on_cluster(&idle, 1, 8).is_none());
        let p = place_on_cluster(&idle, 0, 8).expect("fits");
        assert_eq!(p.assignments(), &[(0, 8)]);
    }

    #[test]
    #[should_panic(expected = "distinct clusters")]
    fn too_many_components_panics() {
        place_unordered(&[32, 32], &[8, 8, 8], PlacementRule::WorstFit);
    }
}

#[cfg(test)]
mod request_kind_tests {
    use super::*;
    use coalloc_workload::JobRequest;

    #[test]
    fn ordered_requires_exact_targets() {
        let idle = [32, 5, 32, 32];
        assert!(place_ordered(&idle, &[16, 16], &[0, 2]).is_some());
        // Cluster 1 has only 5 idle; ordered cannot re-route.
        assert!(place_ordered(&idle, &[16, 16], &[0, 1]).is_none());
        // The unordered version of the same request fits fine.
        assert!(place_unordered(&idle, &[16, 16], PlacementRule::WorstFit).is_some());
    }

    #[test]
    fn ordered_placement_lands_on_targets() {
        let p = place_ordered(&[32, 32, 32, 32], &[8, 4], &[3, 1]).expect("fits");
        assert_eq!(p.assignments(), &[(3, 8), (1, 4)]);
    }

    #[test]
    fn flexible_fits_whenever_total_idle_suffices() {
        // (22,21,21) unordered does not fit in (20,20,20,4), but a
        // flexible request for 64 does: 64 <= 20+20+20+4.
        let idle = [20, 20, 20, 4];
        assert!(place_unordered(&idle, &[22, 21, 21], PlacementRule::WorstFit).is_none());
        let p = place_flexible(&idle, 64, PlacementRule::WorstFit).expect("fits");
        assert_eq!(p.total(), 64);
        assert_eq!(p.assignments(), &[(0, 20), (1, 20), (2, 20), (3, 4)]);
    }

    #[test]
    fn flexible_worst_fit_prefers_emptiest() {
        let idle = [5, 30, 10, 0];
        let p = place_flexible(&idle, 8, PlacementRule::WorstFit).expect("fits");
        assert_eq!(p.assignments(), &[(1, 8)], "whole chunk from the emptiest cluster");
        let p = place_flexible(&idle, 35, PlacementRule::WorstFit).expect("fits");
        assert_eq!(p.assignments(), &[(1, 30), (2, 5)]);
    }

    #[test]
    fn flexible_best_and_first_fit_orders() {
        let idle = [5, 30, 10, 2];
        let p = place_flexible(&idle, 7, PlacementRule::BestFit).expect("fits");
        assert_eq!(p.assignments(), &[(3, 2), (0, 5)], "fullest-first consumes fragments");
        let p = place_flexible(&idle, 7, PlacementRule::FirstFit).expect("fits");
        assert_eq!(p.assignments(), &[(0, 5), (1, 2)]);
    }

    #[test]
    fn flexible_insufficient_idle_fails() {
        assert!(place_flexible(&[3, 3], 7, PlacementRule::WorstFit).is_none());
    }

    #[test]
    fn dispatch_follows_request_kind() {
        let idle = [20, 20, 20, 4];
        let unordered = JobRequest::from_total(64, 24, 4); // (22,21,21)
        assert!(place_request(&idle, &unordered, PlacementRule::WorstFit).is_none());
        let flexible = JobRequest::flexible(64, 24, 4);
        assert!(place_request(&idle, &flexible, PlacementRule::WorstFit).is_some());
        let ordered = JobRequest::ordered(vec![20, 20], vec![0, 1]);
        let p = place_request(&idle, &ordered, PlacementRule::WorstFit).expect("fits");
        assert_eq!(p.assignments(), &[(0, 20), (1, 20)]);
        let total = JobRequest::total_request(20);
        assert!(place_request(&idle, &total, PlacementRule::WorstFit).is_some());
    }
}
