//! FCFS queues with the paper's enable/disable bookkeeping (§2.5).
//!
//! A queue whose head job does not fit is *disabled* until the next job
//! departs from the system; at each departure, disabled queues are
//! re-enabled *in the order in which they were disabled*.

use std::collections::VecDeque;

use desim::SimTime;

use crate::audit::SimObserver;
use crate::job::{JobId, SubmitQueue};

/// The order in which waiting jobs may be started (every policy's
/// queues accept any of these; the paper's experiments are all FCFS).
///
/// Both backfilling variants need runtime estimates: a job's submitted
/// [`coalloc_workload::JobRequest::estimate`] when present, otherwise a
/// configured multiplier on its base service time.
#[derive(
    Clone, Copy, Debug, Default, PartialEq, Eq, Hash, serde::Serialize, serde::Deserialize,
)]
pub enum QueueDiscipline {
    /// Strict first-come first-served: only the head may start (§2.5).
    #[default]
    Fcfs,
    /// EASY backfilling (Lifka '95): the head gets a reservation at the
    /// earliest time enough processors free up; any later job may jump
    /// ahead if it fits now *and* is estimated to finish strictly before
    /// that reservation.
    Easy,
    /// Conservative backfilling: a backfilled job must not delay *any*
    /// earlier-queued job's reservation, not just the head's.
    Conservative,
}

impl QueueDiscipline {
    /// Parses a discipline name as written on a command line.
    pub fn parse(s: &str) -> Option<Self> {
        match s.to_ascii_lowercase().as_str() {
            "fcfs" => Some(QueueDiscipline::Fcfs),
            "easy" => Some(QueueDiscipline::Easy),
            "conservative" | "cons" => Some(QueueDiscipline::Conservative),
            _ => None,
        }
    }

    /// The canonical lowercase label (inverse of [`QueueDiscipline::parse`]).
    pub fn label(self) -> &'static str {
        match self {
            QueueDiscipline::Fcfs => "fcfs",
            QueueDiscipline::Easy => "easy",
            QueueDiscipline::Conservative => "conservative",
        }
    }

    /// Whether this discipline may start jobs other than the head.
    pub fn backfills(self) -> bool {
        self != QueueDiscipline::Fcfs
    }
}

impl core::fmt::Display for QueueDiscipline {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str(self.label())
    }
}

impl std::str::FromStr for QueueDiscipline {
    type Err = String;
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        QueueDiscipline::parse(s)
            .ok_or_else(|| format!("unknown queue discipline `{s}` (fcfs|easy|conservative)"))
    }
}

/// A FIFO queue of waiting jobs plus an enabled flag.
#[derive(Clone, Debug, Default)]
pub struct JobQueue {
    items: VecDeque<JobId>,
    enabled: bool,
}

impl JobQueue {
    /// An empty, enabled queue.
    pub fn new() -> Self {
        JobQueue { items: VecDeque::new(), enabled: true }
    }

    /// Appends a job.
    pub fn push(&mut self, id: JobId) {
        self.items.push_back(id);
    }

    /// Prepends a job — the `RequeueFront` interrupt policy's re-entry
    /// point: a job killed by a cluster failure keeps its FCFS age by
    /// going back to the head of its queue.
    pub fn push_front(&mut self, id: JobId) {
        self.items.push_front(id);
    }

    /// The job at the head (the only one FCFS may start).
    pub fn head(&self) -> Option<JobId> {
        self.items.front().copied()
    }

    /// Removes and returns the head job.
    pub fn pop(&mut self) -> Option<JobId> {
        self.items.pop_front()
    }

    /// The job at position `i` (0 = head), if any.
    pub fn get(&self, i: usize) -> Option<JobId> {
        self.items.get(i).copied()
    }

    /// Removes and returns the job at position `i` — the backfilling
    /// disciplines' mid-queue extraction (FCFS only ever pops the head).
    pub fn remove(&mut self, i: usize) -> Option<JobId> {
        self.items.remove(i)
    }

    /// Iterates the waiting jobs in queue order (head first).
    pub fn iter(&self) -> impl Iterator<Item = JobId> + '_ {
        self.items.iter().copied()
    }

    /// Number of waiting jobs.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether no jobs wait here.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Whether the scheduler may currently look at this queue.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Disables the queue (its head did not fit).
    pub fn disable(&mut self) {
        self.enabled = false;
    }

    /// Re-enables the queue (a job departed).
    pub fn enable(&mut self) {
        self.enabled = true;
    }

    /// [`JobQueue::disable`], announcing the transition to the observer
    /// (only when the queue was actually enabled, so repeated disables
    /// emit one event). `label` names this queue in the event stream.
    pub fn disable_observed(
        &mut self,
        now: SimTime,
        label: SubmitQueue,
        obs: &mut dyn SimObserver,
    ) {
        if self.enabled {
            obs.on_queue_disabled(now, label);
        }
        self.disable();
    }
}

/// A set of queues plus the disable-order bookkeeping the paper's LS and
/// LP policies require.
///
/// Pushes and pops must go through [`QueueSet::push`]/[`QueueSet::pop`]
/// so the set can keep an O(1) total-queued counter — the simulation
/// loop reads that total after every event, and re-summing the queues
/// there would put an O(clusters) walk on the hot path.
#[derive(Clone, Debug, Default)]
pub struct QueueSet {
    queues: Vec<JobQueue>,
    /// Indices of disabled queues, in the order they were disabled.
    disabled_order: Vec<usize>,
    /// Jobs waiting across all queues (kept in sync by push/pop).
    queued: usize,
}

impl QueueSet {
    /// `n` empty, enabled queues.
    pub fn new(n: usize) -> Self {
        assert!(n > 0);
        QueueSet {
            queues: (0..n).map(|_| JobQueue::new()).collect(),
            disabled_order: Vec::new(),
            queued: 0,
        }
    }

    /// Number of queues.
    pub fn len(&self) -> usize {
        self.queues.len()
    }

    /// Whether the set holds no queues (never true after construction).
    pub fn is_empty(&self) -> bool {
        self.queues.is_empty()
    }

    /// Access one queue.
    pub fn queue(&self, i: usize) -> &JobQueue {
        &self.queues[i]
    }

    /// Appends a job to queue `i`, maintaining the total-queued counter.
    pub fn push(&mut self, i: usize, id: JobId) {
        self.queues[i].push(id);
        self.queued += 1;
    }

    /// Prepends a job to queue `i`, maintaining the total-queued counter
    /// (see [`JobQueue::push_front`]).
    pub fn push_front(&mut self, i: usize, id: JobId) {
        self.queues[i].push_front(id);
        self.queued += 1;
    }

    /// Removes and returns the head of queue `i`, maintaining the
    /// total-queued counter.
    pub fn pop(&mut self, i: usize) -> Option<JobId> {
        let id = self.queues[i].pop();
        if id.is_some() {
            self.queued -= 1;
        }
        id
    }

    /// Removes and returns the job at position `pos` of queue `i`,
    /// maintaining the total-queued counter (backfilling's mid-queue
    /// extraction).
    pub fn remove(&mut self, i: usize, pos: usize) -> Option<JobId> {
        let id = self.queues[i].remove(pos);
        if id.is_some() {
            self.queued -= 1;
        }
        id
    }

    /// Disables queue `i`, recording its position in the disable order.
    pub fn disable(&mut self, i: usize) {
        if self.queues[i].is_enabled() {
            self.queues[i].disable();
            self.disabled_order.push(i);
        }
    }

    /// [`QueueSet::disable`], announcing the transition to the observer
    /// (only when queue `i` was actually enabled).
    pub fn disable_observed(&mut self, i: usize, now: SimTime, obs: &mut dyn SimObserver) {
        if self.queues[i].is_enabled() {
            obs.on_queue_disabled(now, SubmitQueue::Local(i));
        }
        self.disable(i);
    }

    /// Re-enables every disabled queue in the order it was disabled
    /// (called at job departures). Callers that need the re-enable order
    /// use [`QueueSet::enable_all_into`]; this variant discards it
    /// without allocating.
    pub fn enable_all(&mut self) {
        for &i in &self.disabled_order {
            self.queues[i].enable();
        }
        self.disabled_order.clear();
    }

    /// [`QueueSet::enable_all`], appending the re-enable order to `out`
    /// (the caller-owned buffer pattern: no allocation once `out` has
    /// capacity).
    pub fn enable_all_into(&mut self, out: &mut Vec<usize>) {
        for &i in &self.disabled_order {
            self.queues[i].enable();
            out.push(i);
        }
        self.disabled_order.clear();
    }

    /// Indices of currently enabled queues, ascending (diagnostics; not
    /// on the hot path).
    pub fn enabled_indices(&self) -> Vec<usize> {
        (0..self.queues.len()).filter(|&i| self.queues[i].is_enabled()).collect()
    }

    /// Total jobs waiting across all queues — O(1), from the counter
    /// maintained by [`QueueSet::push`]/[`QueueSet::pop`].
    pub fn total_queued(&self) -> usize {
        debug_assert_eq!(self.queued, self.queues.iter().map(JobQueue::len).sum::<usize>());
        self.queued
    }

    /// Whether at least one queue is empty (LP's global-queue gate).
    pub fn any_empty(&self) -> bool {
        self.queues.iter().any(JobQueue::is_empty)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order() {
        let mut q = JobQueue::new();
        q.push(JobId(1));
        q.push(JobId(2));
        assert_eq!(q.head(), Some(JobId(1)));
        assert_eq!(q.pop(), Some(JobId(1)));
        assert_eq!(q.pop(), Some(JobId(2)));
        assert_eq!(q.pop(), None);
        assert!(q.is_empty());
    }

    #[test]
    fn enable_disable_flag() {
        let mut q = JobQueue::new();
        assert!(q.is_enabled());
        q.disable();
        assert!(!q.is_enabled());
        q.enable();
        assert!(q.is_enabled());
    }

    #[test]
    fn queue_set_disable_order_preserved() {
        let mut s = QueueSet::new(4);
        s.disable(2);
        s.disable(0);
        s.disable(3);
        assert_eq!(s.enabled_indices(), vec![1]);
        let mut order = Vec::new();
        s.enable_all_into(&mut order);
        assert_eq!(order, vec![2, 0, 3], "re-enabled in disable order");
        assert_eq!(s.enabled_indices(), vec![0, 1, 2, 3]);
        order.clear();
        s.enable_all_into(&mut order);
        assert!(order.is_empty(), "nothing left disabled");
    }

    #[test]
    fn double_disable_recorded_once() {
        let mut s = QueueSet::new(2);
        s.disable(1);
        s.disable(1);
        let mut order = Vec::new();
        s.enable_all_into(&mut order);
        assert_eq!(order, vec![1]);
    }

    #[test]
    fn enable_all_without_order() {
        let mut s = QueueSet::new(3);
        s.disable(2);
        s.disable(0);
        s.enable_all();
        assert_eq!(s.enabled_indices(), vec![0, 1, 2]);
        let mut order = Vec::new();
        s.enable_all_into(&mut order);
        assert!(order.is_empty(), "enable_all drained the disable order");
    }

    #[test]
    fn push_front_takes_the_head() {
        let mut q = JobQueue::new();
        q.push(JobId(1));
        q.push(JobId(2));
        q.push_front(JobId(9));
        assert_eq!(q.head(), Some(JobId(9)));
        assert_eq!(q.pop(), Some(JobId(9)));
        assert_eq!(q.pop(), Some(JobId(1)));

        let mut s = QueueSet::new(2);
        s.push(1, JobId(1));
        s.push_front(1, JobId(7));
        assert_eq!(s.total_queued(), 2, "push_front maintains the counter");
        assert_eq!(s.pop(1), Some(JobId(7)));
        assert_eq!(s.total_queued(), 1);
    }

    #[test]
    fn queue_set_counters() {
        let mut s = QueueSet::new(3);
        s.push(0, JobId(1));
        s.push(0, JobId(2));
        s.push(2, JobId(3));
        assert_eq!(s.total_queued(), 3);
        assert!(s.any_empty(), "queue 1 is empty");
        s.push(1, JobId(4));
        assert!(!s.any_empty());
        assert_eq!(s.len(), 3);
        assert_eq!(s.pop(0), Some(JobId(1)));
        assert_eq!(s.total_queued(), 3);
        assert_eq!(s.pop(1), Some(JobId(4)));
        assert_eq!(s.pop(1), None, "empty pop leaves the counter alone");
        assert_eq!(s.total_queued(), 2);
    }
}
