//! The simulation loop: arrivals, scheduling passes, departures.

use coalloc_workload::{QueueRouting, Workload};
use desim::{Duration, RngStream, Simulation};

use crate::audit::{NullObserver, PassTrigger, SimObserver};
use crate::feed::{JobFeed, StochasticFeed, TraceFeed};
use crate::job::{ActiveJob, JobId, JobTable};
use crate::metrics::{Metrics, MetricsReport};
use crate::placement::PlacementRule;
use crate::policy::{PolicyKind, Scheduler};
use crate::system::MultiCluster;

/// Events driving the co-allocation simulation.
#[derive(Debug, Clone, Copy)]
enum SimEvent {
    /// The next job arrives.
    Arrival,
    /// A running job finishes and releases its processors.
    Departure(JobId),
}

/// How the warm-up transient is chosen.
///
/// The serde impls only matter for configs embedded in JSON reports;
/// the variant carries no data so the vendored derive can handle it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Warmup {
    /// Discard the first `warmup_jobs` departures — the paper's rule,
    /// and the default.
    #[default]
    Fixed,
    /// Pick the discard count automatically with MSER-5 (White 1997): a
    /// pilot run with the same seed records the full response series,
    /// the truncation minimizing the standard error of the remaining
    /// mean becomes `warmup_jobs` for the measured run. Falls back to
    /// the configured `warmup_jobs` when the pilot yields too short a
    /// series to judge (fewer than 10 departures).
    Auto,
}

/// Configuration of a single simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The scheduling policy under test.
    pub policy: PolicyKind,
    /// The workload model (sizes, service times, limit, extension).
    pub workload: Workload,
    /// Routing of jobs to local queues (LS: all jobs; LP: single-
    /// component jobs; ignored by GS/SC).
    pub routing: QueueRouting,
    /// Cluster capacities.
    pub capacities: Vec<u32>,
    /// Job arrival rate (jobs per second).
    pub arrival_rate: f64,
    /// Squared coefficient of variation of the interarrival times
    /// (1.0 = the paper's Poisson arrivals; > 1 = burstier renewals).
    pub arrival_cv2: f64,
    /// Number of arrivals to generate.
    pub total_jobs: u64,
    /// Departures to discard as warm-up before the observation window.
    /// With [`Warmup::Auto`] this is only the fallback when the MSER
    /// pilot cannot judge.
    pub warmup_jobs: u64,
    /// How `warmup_jobs` is chosen (fixed, or MSER-5 via a pilot run).
    pub warmup: Warmup,
    /// Batch size for the batch-means response-time estimate.
    pub batch_size: u64,
    /// Component placement rule (the paper uses Worst Fit).
    pub rule: PlacementRule,
    /// Master seed; two runs with equal config and seed are identical.
    pub seed: u64,
    /// Record the raw response series in the outcome (one `f64` per
    /// measured departure) for warm-up / autocorrelation analysis.
    pub record_series: bool,
}

impl SimConfig {
    /// The paper's multicluster setup: a 4×32 system under the DAS
    /// workload with the given component-size limit and target gross
    /// utilization, balanced local queues.
    pub fn das(policy: PolicyKind, limit: u32, target_gross_util: f64) -> Self {
        let workload = Workload::das(limit);
        let rate = workload.rate_for_gross_utilization(target_gross_util, 128);
        SimConfig {
            policy,
            workload,
            routing: QueueRouting::balanced(4),
            capacities: vec![32; 4],
            arrival_rate: rate,
            arrival_cv2: 1.0,
            total_jobs: 60_000,
            warmup_jobs: 5_000,
            warmup: Warmup::Fixed,
            batch_size: 500,
            rule: PlacementRule::WorstFit,
            seed: 2003,
            record_series: false,
        }
    }

    /// The paper's single-cluster baseline: SC over 128 processors with
    /// total requests at the given target gross utilization.
    pub fn das_single_cluster(target_gross_util: f64) -> Self {
        let workload = Workload::single_cluster();
        let rate = workload.rate_for_gross_utilization(target_gross_util, 128);
        SimConfig {
            policy: PolicyKind::Sc,
            workload,
            routing: QueueRouting::balanced(1),
            capacities: vec![128],
            arrival_rate: rate,
            arrival_cv2: 1.0,
            total_jobs: 60_000,
            warmup_jobs: 5_000,
            warmup: Warmup::Fixed,
            batch_size: 500,
            rule: PlacementRule::WorstFit,
            seed: 2003,
            record_series: false,
        }
    }

    /// Switches to the unbalanced 40/20/20/20 routing (§3.1.2).
    pub fn unbalanced(mut self) -> Self {
        self.routing = QueueRouting::unbalanced(self.capacities.len());
        self
    }

    /// Replaces the seed (for replications).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Total processors in the configured system.
    pub fn capacity(&self) -> u32 {
        self.capacities.iter().sum()
    }

    /// The offered gross utilization this configuration generates.
    pub fn offered_gross_utilization(&self) -> f64 {
        self.arrival_rate * self.workload.mean_gross_work() / f64::from(self.capacity())
    }

    fn validate(&self) {
        assert!(!self.capacities.is_empty(), "need at least one cluster");
        assert!(self.arrival_rate > 0.0, "arrival rate must be positive");
        assert!(self.arrival_cv2 >= 1.0, "interarrival CV^2 must be >= 1");
        assert!(self.total_jobs > 0, "need at least one job");
        assert!(self.warmup_jobs < self.total_jobs, "warm-up must leave jobs to measure");
        if self.policy.has_local_queues() {
            assert_eq!(
                self.routing.queues(),
                self.capacities.len(),
                "routing must have one weight per cluster"
            );
            // Single-component jobs are confined to the cluster of their
            // local queue (LS/LP, §2.5) — except ordered requests, which
            // name their clusters themselves. Such a job routed to a
            // cluster smaller than its size blocks its queue forever, so
            // the largest single-component size must fit the *smallest*
            // cluster, not just the system.
            if self.workload.request_kind != coalloc_workload::RequestKind::Ordered {
                let min_cap = *self.capacities.iter().min().expect("non-empty");
                let max_single = self
                    .workload
                    .sizes
                    .support()
                    .iter()
                    .map(|&(s, _)| s)
                    .filter(|&s| !self.workload.is_multi(s))
                    .max();
                if let Some(m) = max_single {
                    assert!(
                        m <= min_cap,
                        "single-component jobs of size {m} can never start: they are \
                         confined to their local cluster and the smallest cluster has \
                         only {min_cap} processors"
                    );
                }
            }
        }
        let max_size = self.workload.sizes.max_size();
        assert!(
            max_size <= self.capacity(),
            "jobs of size {max_size} can never fit in {} processors",
            self.capacity()
        );
    }
}

/// The outcome of one simulation run.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SimOutcome {
    /// Policy label.
    pub policy: String,
    /// The offered gross utilization (from the arrival rate).
    pub offered_gross_utilization: f64,
    /// Everything measured in the observation window.
    pub metrics: MetricsReport,
    /// Arrivals generated.
    pub arrivals: u64,
    /// Jobs completed over the whole run.
    pub completed: u64,
    /// Jobs still waiting in queues when the run ended.
    pub residual_queued: usize,
    /// Jobs waiting at the instant the last arrival was generated — the
    /// backlog an ever-running system would carry.
    pub backlog_at_last_arrival: usize,
    /// Largest backlog seen during the run.
    pub peak_backlog: usize,
    /// Whether the run shows saturation: at the end of the arrival
    /// process a substantial fraction of all jobs was still waiting
    /// (queues grow without bound in steady state).
    pub saturated: bool,
    /// Final simulated time in seconds.
    pub end_time: f64,
    /// Raw response series (empty unless `record_series` was set).
    pub response_series: Vec<f64>,
}

/// How the wide-area extension enters a started job's occupancy.
///
/// [`OccupancyModel::Faithful`] is the paper's model and what every
/// public entry point uses. The broken variants are seeded bugs for
/// mutation-testing the [`crate::audit::InvariantAuditor`] — they exist
/// so the test suite can prove the auditor catches a mis-applied
/// extension factor in the *full* simulation loop, not a synthetic
/// event stream.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum OccupancyModel {
    /// Base service × extension factor for the spanned clusters,
    /// applied exactly once (§2.4).
    #[default]
    Faithful,
    /// The extension factor applied twice to multi-cluster jobs (a
    /// seeded bug).
    DoubleExtension,
}

impl OccupancyModel {
    fn occupancy(self, job: &ActiveJob, workload: &Workload) -> Duration {
        let faithful = job.occupancy_in(workload);
        match self {
            OccupancyModel::Faithful => faithful,
            OccupancyModel::DoubleExtension => {
                let span = job.placement.as_ref().map_or(1, |p| p.assignments().len());
                faithful.scaled(workload.extension_factor(span))
            }
        }
    }
}

/// Runs one simulation to completion (all arrivals generated, then the
/// system drained of *running* jobs; waiting jobs that can never start
/// are left queued and reported).
pub fn run(cfg: &SimConfig) -> SimOutcome {
    run_observed(cfg, &mut NullObserver)
}

/// [`run`] with an observer attached (see [`crate::audit`]). Observers
/// are passive: the outcome is bit-identical to [`run`]'s.
pub fn run_observed<O: SimObserver>(cfg: &SimConfig, obs: &mut O) -> SimOutcome {
    cfg.validate();
    if cfg.warmup == Warmup::Auto {
        let resolved = resolve_auto_warmup(cfg, run);
        return run_observed(&resolved, obs);
    }
    let master = RngStream::new(cfg.seed);
    let mut feed = StochasticFeed::new(
        cfg.workload.clone(),
        cfg.arrival_rate,
        cfg.arrival_cv2,
        cfg.total_jobs,
        &master,
    );
    run_with_feed_observed(cfg, &mut feed, cfg.offered_gross_utilization(), obs)
}

/// Resolves [`Warmup::Auto`] into a concrete `warmup_jobs` by running an
/// unobserved pilot (same seed, zero warm-up, response series on) through
/// `run_pilot` and applying MSER-5 to the series. The observer never sees
/// the pilot: only the measured rerun is reported. MSER restricts
/// truncation to the first half of the series, so the resolved warm-up
/// always leaves jobs to measure.
fn resolve_auto_warmup(
    cfg: &SimConfig,
    run_pilot: impl FnOnce(&SimConfig) -> SimOutcome,
) -> SimConfig {
    let mut pilot = cfg.clone();
    pilot.warmup = Warmup::Fixed;
    pilot.warmup_jobs = 0;
    pilot.record_series = true;
    let series = run_pilot(&pilot).response_series;
    let mut resolved = cfg.clone();
    resolved.warmup = Warmup::Fixed;
    if series.len() >= 10 {
        resolved.warmup_jobs = desim::mser5(&series).truncate as u64;
    }
    resolved
}

/// Runs a *trace-driven* simulation: the log's submit times (compressed
/// by `time_scale`; values < 1 raise the offered load), sizes (split
/// under the workload's limit) and runtimes replace the stochastic
/// sampling. The workload's size/service distributions are ignored; its
/// limit, clusters and extension model still apply.
pub fn run_trace(cfg: &SimConfig, trace: &coalloc_trace::Trace, time_scale: f64) -> SimOutcome {
    let mut cfg = cfg.clone();
    let mut feed = TraceFeed::new(trace, cfg.workload.limit, cfg.workload.clusters, time_scale);
    // The feed drops zero-runtime records (cancelled jobs); the run is
    // sized by what will actually be replayed, not the raw log length.
    cfg.total_jobs = feed.len() as u64;
    cfg.validate();
    if cfg.warmup == Warmup::Auto {
        // The pilot replays the same trace (replay is deterministic), so
        // MSER judges exactly the series the measured run will produce.
        cfg = resolve_auto_warmup(&cfg, |pilot| run_trace(pilot, trace, time_scale));
    }
    // Offered gross utilization of the replay: the trace's gross work
    // over its (scaled) span times the capacity.
    let span = trace.jobs.last().expect("non-empty").submit * time_scale;
    let ratio = cfg.workload.gross_net_ratio();
    let work: f64 = trace.jobs.iter().map(|j| f64::from(j.size) * j.runtime).sum::<f64>() * ratio;
    let offered = if span > 0.0 { work / (span * f64::from(cfg.capacity())) } else { f64::NAN };
    run_with_feed(&cfg, &mut feed, offered)
}

/// The shared event loop, driven by any [`JobFeed`].
pub fn run_with_feed(cfg: &SimConfig, feed: &mut dyn JobFeed, offered: f64) -> SimOutcome {
    run_with_feed_observed(cfg, feed, offered, &mut NullObserver)
}

/// [`run_with_feed`] with an observer attached. Generic over the
/// observer so the [`NullObserver`] path monomorphizes to the
/// unobserved loop (every hook is an empty inlined default).
pub fn run_with_feed_observed<O: SimObserver>(
    cfg: &SimConfig,
    feed: &mut dyn JobFeed,
    offered: f64,
    obs: &mut O,
) -> SimOutcome {
    let routing_rng = RngStream::new(cfg.seed).labelled("routing");
    let policy = cfg.policy.build(cfg.capacities.len(), cfg.routing.clone(), routing_rng, cfg.rule);
    run_with_scheduler(cfg, feed, offered, policy, obs, OccupancyModel::Faithful)
}

/// The event loop with an explicitly supplied scheduler and occupancy
/// model, bypassing [`PolicyKind::build`]. This is the seam the
/// mutation tests use to wire deliberately broken schedulers (or a
/// broken extension model) into the *real* loop and prove the
/// [`crate::audit::InvariantAuditor`] catches them; it also serves
/// ablations that implement [`Scheduler`] outside this crate. `cfg` is
/// validated, but its `policy` field only labels the outcome (and
/// configures the auditor) — the supplied `policy` does the
/// scheduling.
pub fn run_with_scheduler<O: SimObserver>(
    cfg: &SimConfig,
    feed: &mut dyn JobFeed,
    offered: f64,
    mut policy: Box<dyn Scheduler>,
    obs: &mut O,
    model: OccupancyModel,
) -> SimOutcome {
    cfg.validate();
    let mut system = MultiCluster::new(&cfg.capacities);
    let mut table = JobTable::with_capacity(cfg.total_jobs as usize);
    let queues = policy.num_queues();
    let mut metrics = Metrics::new(cfg.capacity(), queues, cfg.batch_size);
    if cfg.record_series {
        metrics.record_series();
    }

    let mut sim: Simulation<SimEvent> = Simulation::new();
    let mut pending: Option<coalloc_workload::JobSpec> = None;
    if let Some((t, spec)) = feed.next_job() {
        pending = Some(spec);
        sim.schedule_at(t, SimEvent::Arrival);
    }

    let mut generated: u64 = 0;
    let mut completed: u64 = 0;
    let mut backlog_at_last_arrival: usize = 0;
    let mut peak_backlog: usize = 0;
    let warmup_done = |completed: u64| completed >= cfg.warmup_jobs;
    // Caller-owned scratch for the scheduling pass (see the Scheduler
    // trait's allocation-free contract): cleared per pass, capacity
    // reused for the whole run.
    let mut started: Vec<JobId> = Vec::new();

    while let Some(ev) = sim.step() {
        let now = sim.now();
        let trigger = match ev.payload {
            SimEvent::Arrival => {
                generated += 1;
                let spec = pending.take().expect("an Arrival always has a pending spec");
                let queue = policy.route(&spec);
                let id = table.insert(ActiveJob::new(spec, now, queue));
                obs.on_arrival(now, id, table.get(id));
                policy.enqueue(id, queue);
                obs.on_enqueue(now, id, queue);
                metrics.record_arrival(now);
                if let Some((t, spec)) = feed.next_job() {
                    pending = Some(spec);
                    sim.schedule_at(t.max(now), SimEvent::Arrival);
                } else {
                    backlog_at_last_arrival = policy.queued();
                }
                PassTrigger::Arrival
            }
            SimEvent::Departure(id) => {
                // Borrow the placement out of the table for the release
                // (it stays the job's state); cloning it here would put
                // one heap round-trip on every departure.
                let job = table.get(id);
                let placement = job.placement.as_ref().expect("departing job was started");
                system.release(placement);
                let released = placement.total();
                obs.on_completion(now, id, job);
                metrics.record_release(now, released);
                metrics.record_exit(now);
                completed += 1;
                if completed == cfg.warmup_jobs {
                    metrics.reset_window(now);
                } else if warmup_done(completed) {
                    metrics.record_departure(now, job);
                }
                policy.on_departure();
                PassTrigger::Departure
            }
        };
        // A scheduling pass follows every arrival and every departure.
        obs.on_pass(now, trigger);
        started.clear();
        policy.schedule_into(now, &mut system, &mut table, obs, &mut started);
        obs.on_pass_end(now, &started);
        for &id in &started {
            let job = table.get(id);
            let occupancy: Duration = model.occupancy(job, &cfg.workload);
            let procs = job.spec.request.total();
            obs.on_start(now, id, job, occupancy);
            metrics.record_allocate(now, procs);
            sim.schedule_at(now + occupancy, SimEvent::Departure(id));
        }
        let queued_now = policy.queued();
        metrics.record_queue_length(now, queued_now);
        peak_backlog = peak_backlog.max(queued_now);
        debug_assert!(system.total_busy() <= cfg.capacity(), "more processors busy than exist");
    }

    let now = sim.now();
    obs.on_run_end(now);
    let residual = policy.queued();
    // Saturation heuristic: if a non-trivial share of all generated jobs
    // was still waiting when the arrival process ended, the queues were
    // growing without bound (the post-arrival drain always empties them,
    // so the *final* residual is not informative; jobs that can never
    // fit are the exception and show up in `residual_queued`).
    let saturated =
        backlog_at_last_arrival as f64 > (0.02 * cfg.total_jobs as f64).max(50.0) || residual > 0;

    let report = metrics.report(now);
    SimOutcome {
        policy: cfg.policy.label().to_string(),
        offered_gross_utilization: offered,
        metrics: report,
        arrivals: generated,
        completed,
        residual_queued: residual,
        backlog_at_last_arrival,
        peak_backlog,
        saturated,
        end_time: now.seconds(),
        response_series: metrics.take_series(),
    }
}

/// Convenience: the observation-window mean response time of a run.
pub fn mean_response(cfg: &SimConfig) -> f64 {
    run(cfg).metrics.mean_response
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(policy: PolicyKind, limit: u32, util: f64) -> SimConfig {
        let mut cfg = SimConfig::das(policy, limit, util);
        cfg.total_jobs = 6_000;
        cfg.warmup_jobs = 1_000;
        cfg.batch_size = 100;
        cfg
    }

    #[test]
    fn run_completes_and_conserves_jobs() {
        let cfg = quick(PolicyKind::Gs, 16, 0.4);
        let out = run(&cfg);
        assert_eq!(out.arrivals, 6_000);
        assert_eq!(out.completed as usize + out.residual_queued, 6_000);
        assert!(!out.saturated, "residual {}", out.residual_queued);
        assert!(out.metrics.mean_response > 0.0);
        assert!(out.end_time > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let cfg = quick(PolicyKind::Ls, 16, 0.5);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.metrics.mean_response, b.metrics.mean_response);
        assert_eq!(a.completed, b.completed);
        let c = run(&cfg.clone().with_seed(999));
        assert_ne!(a.metrics.mean_response, c.metrics.mean_response);
    }

    #[test]
    fn measured_utilization_tracks_offered() {
        let cfg = quick(PolicyKind::Gs, 32, 0.4);
        let out = run(&cfg);
        let offered = out.offered_gross_utilization;
        assert!((offered - 0.4).abs() < 1e-9);
        assert!(
            (out.metrics.gross_utilization - offered).abs() < 0.08,
            "measured {} vs offered {offered}",
            out.metrics.gross_utilization
        );
        // Gross exceeds net by roughly the closed-form ratio.
        let ratio = out.metrics.gross_utilization / out.metrics.net_utilization;
        let expected = cfg.workload.gross_net_ratio();
        assert!((ratio - expected).abs() < 0.05, "ratio {ratio} vs {expected}");
    }

    #[test]
    fn all_policies_run_at_moderate_load() {
        for policy in [PolicyKind::Gs, PolicyKind::Ls, PolicyKind::Lp] {
            let out = run(&quick(policy, 16, 0.3));
            assert!(!out.saturated, "{policy} saturated at 0.3");
            assert!(out.metrics.departures > 0, "{policy}");
        }
        let sc = {
            let mut cfg = SimConfig::das_single_cluster(0.3);
            cfg.total_jobs = 6_000;
            cfg.warmup_jobs = 1_000;
            run(&cfg)
        };
        assert!(!sc.saturated);
    }

    #[test]
    fn overload_is_detected_as_saturation() {
        let cfg = quick(PolicyKind::Gs, 16, 1.4);
        let out = run(&cfg);
        assert!(out.saturated, "offered 1.4 must saturate; residual {}", out.residual_queued);
    }

    #[test]
    fn response_includes_extension() {
        // At very low load every job starts immediately: single-component
        // mean response ≈ mean base service; multi-component ≈ 1.25×.
        let mut cfg = quick(PolicyKind::Gs, 16, 0.05);
        cfg.total_jobs = 4_000;
        cfg.warmup_jobs = 500;
        let out = run(&cfg);
        let m = &out.metrics;
        let base = cfg.workload.service.mean_secs();
        assert!(
            (m.response_single - base).abs() < 0.1 * base,
            "single {} vs base {base}",
            m.response_single
        );
        assert!(
            (m.response_multi - 1.25 * base).abs() < 0.1 * base,
            "multi {} vs extended {}",
            m.response_multi,
            1.25 * base
        );
    }

    #[test]
    fn auto_warmup_is_deterministic_and_leaves_jobs_measured() {
        let mut cfg = quick(PolicyKind::Gs, 16, 0.5);
        cfg.warmup = Warmup::Auto;
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.metrics.mean_response, b.metrics.mean_response, "pilot + rerun deterministic");
        // MSER truncates within the first half of the series, so at
        // least half the departures stay in the observation window.
        assert!(
            a.metrics.departures >= cfg.total_jobs / 2,
            "only {} of {} departures measured",
            a.metrics.departures,
            cfg.total_jobs
        );
        assert!(a.metrics.mean_response > 0.0);
    }

    #[test]
    fn auto_warmup_resolves_to_a_fixed_mser_truncation() {
        let mut cfg = quick(PolicyKind::Ls, 16, 0.5);
        cfg.warmup = Warmup::Auto;
        let resolved = resolve_auto_warmup(&cfg, run);
        assert_eq!(resolved.warmup, Warmup::Fixed);
        // MSER-5 truncations are multiples of the batch size.
        assert_eq!(resolved.warmup_jobs % 5, 0);
        assert!(resolved.warmup_jobs <= cfg.total_jobs / 2 + 5);
        // The resolution itself is deterministic.
        let again = resolve_auto_warmup(&cfg, run);
        assert_eq!(resolved.warmup_jobs, again.warmup_jobs);
    }

    #[test]
    #[should_panic(expected = "can never start")]
    fn local_queues_reject_clusters_too_small_for_single_jobs() {
        // Under LS a single-component job is confined to the cluster of
        // its local queue: a size-16 job routed to the 8-processor
        // cluster blocks its queue forever. The old validation only
        // compared the max *total* size (128) against the *system*
        // capacity (128) and let this config through.
        let mut cfg = quick(PolicyKind::Ls, 16, 0.4);
        cfg.capacities = vec![8, 120];
        cfg.routing = QueueRouting::balanced(2);
        run(&cfg);
    }

    #[test]
    fn sc_has_no_multi_jobs() {
        let mut cfg = SimConfig::das_single_cluster(0.4);
        cfg.total_jobs = 4_000;
        cfg.warmup_jobs = 500;
        let out = run(&cfg);
        assert_eq!(out.metrics.response_multi, 0.0, "no multi-component jobs under SC");
        // Gross equals net for SC (no extension applies).
        let m = &out.metrics;
        assert!(
            (m.gross_utilization - m.net_utilization).abs() < 0.01,
            "gross {} vs net {}",
            m.gross_utilization,
            m.net_utilization
        );
    }
}

#[cfg(test)]
mod trace_replay_tests {
    use super::*;
    use coalloc_trace::{generate_das1_log, DasLogConfig};

    #[test]
    fn replay_runs_the_whole_log() {
        let log = generate_das1_log(&DasLogConfig { jobs: 4_000, ..Default::default() });
        let mut cfg = SimConfig::das(PolicyKind::Ls, 16, 0.5); // rate ignored
        cfg.warmup_jobs = 400;
        let out = run_trace(&cfg, &log, 1.0);
        assert_eq!(out.arrivals, 4_000);
        assert_eq!(out.completed as usize + out.residual_queued, 4_000);
        assert!(out.metrics.mean_response > 0.0);
        assert!(out.offered_gross_utilization.is_finite());
    }

    #[test]
    fn compressing_time_raises_load_and_response() {
        let log = generate_das1_log(&DasLogConfig { jobs: 6_000, ..Default::default() });
        let mut cfg = SimConfig::das(PolicyKind::Gs, 16, 0.5);
        cfg.warmup_jobs = 600;
        let relaxed = run_trace(&cfg, &log, 1.0);
        let compressed = run_trace(&cfg, &log, 0.25);
        assert!(
            compressed.offered_gross_utilization > 2.0 * relaxed.offered_gross_utilization,
            "offered {} vs {}",
            compressed.offered_gross_utilization,
            relaxed.offered_gross_utilization
        );
        assert!(
            compressed.metrics.mean_response > relaxed.metrics.mean_response,
            "response {} vs {}",
            compressed.metrics.mean_response,
            relaxed.metrics.mean_response
        );
    }

    #[test]
    fn replay_skips_zero_runtime_records() {
        // Cancelled jobs (runtime 0) do not enter the replay: the run is
        // sized by the filtered feed, so arrivals and the conservation
        // identity both reflect only real jobs.
        let mut log = generate_das1_log(&DasLogConfig { jobs: 3_000, ..Default::default() });
        for j in log.jobs.iter_mut().step_by(10) {
            j.runtime = 0.0;
        }
        let mut cfg = SimConfig::das(PolicyKind::Gs, 16, 0.5);
        cfg.warmup_jobs = 200;
        let out = run_trace(&cfg, &log, 1.0);
        assert_eq!(out.arrivals, 2_700);
        assert_eq!(out.completed as usize + out.residual_queued, 2_700);
    }

    #[test]
    fn replay_is_deterministic_per_policy() {
        let log = generate_das1_log(&DasLogConfig { jobs: 2_000, ..Default::default() });
        let cfg = {
            let mut c = SimConfig::das(PolicyKind::Lp, 16, 0.5);
            c.warmup_jobs = 200;
            c
        };
        let a = run_trace(&cfg, &log, 1.0);
        let b = run_trace(&cfg, &log, 1.0);
        assert_eq!(a.metrics.mean_response, b.metrics.mean_response);
    }
}
