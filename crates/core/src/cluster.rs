//! A single cluster: a pool of identical processors under space sharing.

/// One cluster of the multicluster system. Processors are identical and
/// exclusively allocated (space sharing, §1): a job component occupies its
/// processors from start to departure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    capacity: u32,
    busy: u32,
}

impl Cluster {
    /// A cluster with `capacity` processors, all idle.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "a cluster needs at least one processor");
        Cluster { capacity, busy: 0 }
    }

    /// Total processors.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Processors currently allocated.
    #[inline]
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Processors currently idle.
    #[inline]
    pub fn idle(&self) -> u32 {
        self.capacity - self.busy
    }

    /// Allocates `n` processors.
    ///
    /// # Panics
    /// Panics if fewer than `n` processors are idle — schedulers must
    /// check fit before allocating; over-allocation is always a bug.
    pub fn allocate(&mut self, n: u32) {
        assert!(n <= self.idle(), "allocating {n} processors but only {} idle", self.idle());
        self.busy += n;
    }

    /// Releases `n` processors.
    ///
    /// # Panics
    /// Panics if fewer than `n` processors are busy.
    pub fn release(&mut self, n: u32) {
        assert!(n <= self.busy, "releasing {n} processors but only {} busy", self.busy);
        self.busy -= n;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_release_cycle() {
        let mut c = Cluster::new(32);
        assert_eq!(c.idle(), 32);
        c.allocate(20);
        assert_eq!(c.busy(), 20);
        assert_eq!(c.idle(), 12);
        c.allocate(12);
        assert_eq!(c.idle(), 0);
        c.release(32);
        assert_eq!(c.idle(), 32);
    }

    #[test]
    #[should_panic(expected = "only 12 idle")]
    fn over_allocation_panics() {
        let mut c = Cluster::new(32);
        c.allocate(20);
        c.allocate(13);
    }

    #[test]
    #[should_panic(expected = "only 0 busy")]
    fn over_release_panics() {
        let mut c = Cluster::new(32);
        c.release(1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        Cluster::new(0);
    }
}
