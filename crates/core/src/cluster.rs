//! A single cluster: a pool of identical processors under space sharing.

/// One cluster of the multicluster system. Processors are identical and
/// exclusively allocated (space sharing, §1): a job component occupies its
/// processors from start to departure.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Cluster {
    capacity: u32,
    busy: u32,
}

impl Cluster {
    /// A cluster with `capacity` processors, all idle.
    pub fn new(capacity: u32) -> Self {
        assert!(capacity > 0, "a cluster needs at least one processor");
        Cluster { capacity, busy: 0 }
    }

    /// Total processors.
    #[inline]
    pub fn capacity(&self) -> u32 {
        self.capacity
    }

    /// Processors currently allocated.
    #[inline]
    pub fn busy(&self) -> u32 {
        self.busy
    }

    /// Processors currently idle.
    #[inline]
    pub fn idle(&self) -> u32 {
        self.capacity - self.busy
    }

    /// Allocates `n` processors.
    ///
    /// # Panics
    /// Panics if fewer than `n` processors are idle — schedulers must
    /// check fit before allocating; over-allocation is always a bug.
    pub fn allocate(&mut self, n: u32) {
        assert!(n <= self.idle(), "allocating {n} processors but only {} idle", self.idle());
        self.busy += n;
    }

    /// Releases `n` processors.
    ///
    /// # Panics
    /// Panics if fewer than `n` processors are busy.
    pub fn release(&mut self, n: u32) {
        assert!(n <= self.busy, "releasing {n} processors but only {} busy", self.busy);
        self.busy -= n;
    }

    /// Allocates `n` processors if that many are idle, returning whether
    /// the allocation happened. The non-panicking twin of
    /// [`Cluster::allocate`], for paths where a failed fit is an
    /// expected outcome rather than a bug (the degraded-capacity path).
    #[must_use]
    pub fn try_allocate(&mut self, n: u32) -> bool {
        if n > self.idle() {
            return false;
        }
        self.busy += n;
        true
    }

    /// Releases `n` processors if that many are busy, returning whether
    /// the release happened. The non-panicking twin of
    /// [`Cluster::release`].
    #[must_use]
    pub fn try_release(&mut self, n: u32) -> bool {
        if n > self.busy {
            return false;
        }
        self.busy -= n;
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocate_release_cycle() {
        let mut c = Cluster::new(32);
        assert_eq!(c.idle(), 32);
        c.allocate(20);
        assert_eq!(c.busy(), 20);
        assert_eq!(c.idle(), 12);
        c.allocate(12);
        assert_eq!(c.idle(), 0);
        c.release(32);
        assert_eq!(c.idle(), 32);
    }

    #[test]
    #[should_panic(expected = "only 12 idle")]
    fn over_allocation_panics() {
        let mut c = Cluster::new(32);
        c.allocate(20);
        c.allocate(13);
    }

    #[test]
    #[should_panic(expected = "only 0 busy")]
    fn over_release_panics() {
        let mut c = Cluster::new(32);
        c.release(1);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn zero_capacity_rejected() {
        Cluster::new(0);
    }

    #[test]
    fn try_allocate_refuses_without_panicking() {
        let mut c = Cluster::new(32);
        assert!(c.try_allocate(20));
        assert_eq!(c.busy(), 20);
        assert!(!c.try_allocate(13), "13 > 12 idle is refused");
        assert_eq!(c.busy(), 20, "a refused allocation changes nothing");
        assert!(c.try_allocate(12));
        assert_eq!(c.idle(), 0);
    }

    #[test]
    fn try_release_refuses_without_panicking() {
        let mut c = Cluster::new(32);
        assert!(!c.try_release(1), "nothing busy yet");
        assert!(c.try_allocate(8));
        assert!(!c.try_release(9), "more than held is refused");
        assert_eq!(c.busy(), 8, "a refused release changes nothing");
        assert!(c.try_release(8));
        assert_eq!(c.idle(), 32);
    }
}
