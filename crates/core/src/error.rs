//! The workspace-wide typed error: everything the CLI, trace loading
//! and checkpoint I/O can report instead of panicking.
//!
//! Hand-rolled in the `thiserror` style (the workspace vendors its
//! dependencies): an enum per failure class, a human-readable
//! [`core::fmt::Display`] naming the offending input, and
//! [`std::error::Error::source`] chaining for I/O causes.

use std::path::PathBuf;

use crate::system::SystemSpecError;

/// A typed error for the co-allocation toolchain's fallible paths.
#[derive(Debug)]
pub enum CoallocError {
    /// A command-line flag was given without its value.
    MissingValue {
        /// The flag that wanted a value (e.g. `--utils`).
        flag: String,
    },
    /// A command-line flag's value failed to parse.
    InvalidValue {
        /// The flag (or positional argument) name.
        flag: String,
        /// The offending value, verbatim.
        value: String,
        /// What a valid value looks like.
        want: String,
    },
    /// An unrecognized experiment target, subcommand or policy name.
    UnknownTarget {
        /// The name that matched nothing.
        name: String,
        /// What kind of name was expected (e.g. `policy`, `target`).
        what: String,
    },
    /// A fault specification was malformed or does not fit the system.
    FaultSpec {
        /// The spec string, verbatim.
        spec: String,
        /// Why it was rejected.
        detail: String,
    },
    /// The system geometry was rejected.
    System(SystemSpecError),
    /// An I/O operation failed.
    Io {
        /// What was being done (e.g. `writing checkpoint /tmp/x.json`).
        context: String,
        /// The underlying I/O error.
        source: std::io::Error,
    },
    /// A checkpoint file exists but cannot be used.
    Checkpoint {
        /// The checkpoint path.
        path: PathBuf,
        /// Why it was rejected (truncated, corrupt, wrong fingerprint…).
        detail: String,
    },
}

impl CoallocError {
    /// Convenience constructor for [`CoallocError::InvalidValue`].
    pub fn invalid(flag: &str, value: &str, want: &str) -> Self {
        CoallocError::InvalidValue {
            flag: flag.to_string(),
            value: value.to_string(),
            want: want.to_string(),
        }
    }

    /// Convenience constructor for [`CoallocError::Io`].
    pub fn io(context: impl Into<String>, source: std::io::Error) -> Self {
        CoallocError::Io { context: context.into(), source }
    }
}

impl core::fmt::Display for CoallocError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            CoallocError::MissingValue { flag } => {
                write!(f, "flag {flag} needs a value")
            }
            CoallocError::InvalidValue { flag, value, want } => {
                write!(f, "bad value `{value}` for {flag}: want {want}")
            }
            CoallocError::UnknownTarget { name, what } => {
                write!(f, "unknown {what} `{name}`")
            }
            CoallocError::FaultSpec { spec, detail } => {
                write!(f, "bad fault spec `{spec}`: {detail}")
            }
            CoallocError::System(e) => write!(f, "bad system: {e}"),
            CoallocError::Io { context, source } => {
                write!(f, "{context}: {source}")
            }
            CoallocError::Checkpoint { path, detail } => {
                write!(f, "checkpoint {}: {detail}", path.display())
            }
        }
    }
}

impl std::error::Error for CoallocError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            CoallocError::Io { source, .. } => Some(source),
            CoallocError::System(e) => Some(e),
            _ => None,
        }
    }
}

impl From<SystemSpecError> for CoallocError {
    fn from(e: SystemSpecError) -> Self {
        CoallocError::System(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::error::Error as _;

    #[test]
    fn display_names_the_offending_input() {
        let e = CoallocError::invalid("--utils", "0.1,zap", "comma-separated numbers in (0,1]");
        let text = e.to_string();
        assert!(text.contains("--utils") && text.contains("0.1,zap"), "{text}");

        let e = CoallocError::MissingValue { flag: "--checkpoint".into() };
        assert!(e.to_string().contains("--checkpoint"));

        let e = CoallocError::UnknownTarget { name: "zorp".into(), what: "policy".into() };
        assert!(e.to_string().contains("zorp") && e.to_string().contains("policy"));

        let e = CoallocError::FaultSpec { spec: "exp:x".into(), detail: "bad MTTF `x`".into() };
        assert!(e.to_string().contains("exp:x") && e.to_string().contains("MTTF"));
    }

    #[test]
    fn io_errors_chain_their_source() {
        let inner = std::io::Error::new(std::io::ErrorKind::NotFound, "gone");
        let e = CoallocError::io("reading trace log", inner);
        assert!(e.to_string().contains("reading trace log"));
        assert!(e.source().is_some(), "io source preserved");
    }

    #[test]
    fn system_errors_convert() {
        let spec_err = crate::system::SystemSpec::new(Vec::new()).validate().unwrap_err();
        let e: CoallocError = spec_err.into();
        assert!(matches!(e, CoallocError::System(_)));
        assert!(e.source().is_some());
    }
}
