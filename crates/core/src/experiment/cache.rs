//! The scenario cache: memoized per-replication outcomes shared across
//! sweeps, optionally bounded in memory and backed by a crash-safe disk
//! store.
//!
//! A replication is fully determined by `(scenario digest, base seed,
//! replication index)` — the digest pins every configuration axis, and
//! the seed is the base seed's substream at the index (common random
//! numbers). Two sweeps whose utilization grids overlap therefore ask
//! for *the same* replications at the shared points, and a long-running
//! `coalloc-exp serve` process answers the second request from memory,
//! bit-identically, instead of re-simulating.
//!
//! Concurrent requests share in-flight work too: [`ScenarioCache::claim`]
//! reserves a key so only one requester executes it, and peers
//! [`ScenarioCache::wait`] for the stored result. The deadlock-free
//! protocol is *claim everything without blocking, execute and fulfil
//! your own reservations, only then wait on other people's* — every
//! waiter is past its own stores, so every pending key has an owner that
//! finishes without waiting.
//!
//! Two optional capacities bound a long-lived daemon
//! ([`ScenarioCache::with`]):
//!
//! * a **disk store** ([`super::store::ResultStore`]): every completed
//!   result is written through on fulfilment, and a memory miss falls
//!   back to the store before reserving — so a restarted daemon answers
//!   previously computed replications as *disk hits* instead of
//!   re-executing them, bit-identically (a stored result and a re-run
//!   are the same pure function of the key);
//! * a **memory cap**: completed entries carry an LRU stamp, and
//!   inserting past the cap evicts the least-recently-used completed
//!   entries (never pending reservations — those are owned obligations).
//!   With a store attached, evicted entries remain disk hits; without
//!   one, a re-claim simply re-executes deterministically.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};
use std::time::Duration;

use super::cancel::{CancelReason, CancelToken};
use super::relock;
use super::store::ResultStore;
use crate::sim::SimOutcome;

/// Key of one memoized replication: `(point scenario digest, base seed,
/// replication index)`. See [`super::grid::point_digest`].
type Key = (u64, u64, u64);

enum Entry {
    /// Reserved by a live [`Reservation`]; the result is on its way.
    Pending,
    /// A completed replication (boxed: outcomes are large, pendings are
    /// plentiful) with its last-touch LRU stamp.
    Done { result: Box<Result<SimOutcome, String>>, stamp: u64 },
}

/// The guarded state: the entry map plus the LRU clock and a completed
/// count kept incrementally so cap checks are O(1).
#[derive(Default)]
struct CacheMap {
    map: HashMap<Key, Entry>,
    /// Monotonic touch clock; every hit or insert advances it.
    tick: u64,
    /// `Done` entries currently held.
    done: usize,
}

impl CacheMap {
    fn stamp(&mut self) -> u64 {
        self.tick += 1;
        self.tick
    }

    /// Inserts a completed result (replacing a pending reservation or a
    /// stale duplicate) and evicts down to `cap` if one is set.
    fn insert_done(&mut self, key: Key, result: Result<SimOutcome, String>, cap: Option<usize>) {
        let stamp = self.stamp();
        let prior = self.map.insert(key, Entry::Done { result: Box::new(result), stamp });
        if !matches!(prior, Some(Entry::Done { .. })) {
            self.done += 1;
        }
        if let Some(cap) = cap {
            self.evict_to(cap);
        }
    }

    /// Evicts least-recently-used completed entries until at most `cap`
    /// remain. Pending reservations are never evicted: they are owned
    /// obligations with waiters, not cached data.
    fn evict_to(&mut self, cap: usize) {
        if self.done <= cap {
            return;
        }
        let mut stamps: Vec<(u64, Key)> = self
            .map
            .iter()
            .filter_map(|(k, e)| match e {
                Entry::Done { stamp, .. } => Some((*stamp, *k)),
                Entry::Pending => None,
            })
            .collect();
        stamps.sort_unstable();
        for &(_, key) in stamps.iter().take(self.done - cap) {
            self.map.remove(&key);
        }
        self.done = cap;
    }
}

/// A concurrent memo of completed replications, keyed by scenario
/// digest, base seed, and replication index. Failed replications are
/// cached too — a deterministic panic would only repeat.
#[derive(Default)]
pub struct ScenarioCache {
    inner: Mutex<CacheMap>,
    changed: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
    disk_hits: AtomicU64,
    disk: Option<ResultStore>,
    cap: Option<usize>,
}

/// What [`ScenarioCache::claim`] found; never blocks.
pub enum Claim<'a> {
    /// The replication is memoized; here it is. `disk` marks a result
    /// rehydrated from the backing store rather than found in memory.
    Hit {
        /// The memoized result.
        result: Box<Result<SimOutcome, String>>,
        /// Whether the hit came from the disk store.
        disk: bool,
    },
    /// Nobody has it: the key is now reserved for this caller, who must
    /// [`Reservation::fulfil`] it (dropping the reservation un-reserves).
    Reserved(Reservation<'a>),
    /// Another requester reserved it; [`ScenarioCache::wait`] after
    /// fulfilling your own reservations.
    Busy,
}

/// An exclusive obligation to compute one replication; see [`Claim`].
pub struct Reservation<'a> {
    cache: &'a ScenarioCache,
    key: Key,
    fulfilled: bool,
}

impl Reservation<'_> {
    /// Publishes the computed result — written through to the disk
    /// store first, when one is attached — and wakes every waiter.
    pub fn fulfil(mut self, result: Result<SimOutcome, String>) {
        self.fulfilled = true;
        self.cache.write_through(self.key, &result);
        let mut inner = relock(&self.cache.inner);
        inner.insert_done(self.key, result, self.cache.cap);
        self.cache.changed.notify_all();
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        // The owner died (a panicking handler unwound past the engine)
        // or its request was cancelled: un-reserve so waiters stop
        // waiting and re-claim the key.
        let mut inner = relock(&self.cache.inner);
        if matches!(inner.map.get(&self.key), Some(Entry::Pending)) {
            inner.map.remove(&self.key);
        }
        self.cache.changed.notify_all();
    }
}

impl ScenarioCache {
    /// An unbounded, memory-only cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// A cache with an optional backing [`ResultStore`] (write-through
    /// on fulfilment, fallback on memory misses) and an optional cap on
    /// completed entries held in memory (LRU eviction past it).
    pub fn with(disk: Option<ResultStore>, cap: Option<usize>) -> Self {
        ScenarioCache { disk, cap, ..Self::default() }
    }

    /// The backing disk store, when one is attached.
    pub fn disk_store(&self) -> Option<&ResultStore> {
        self.disk.as_ref()
    }

    fn write_through(&self, key: Key, result: &Result<SimOutcome, String>) {
        if let Some(store) = &self.disk {
            let (digest, seed, rep) = key;
            store.append(digest, seed, rep, result);
        }
    }

    /// Claims one replication without blocking; counts a hit or a miss
    /// (a [`Claim::Busy`] counts on the eventual [`Self::wait`] instead).
    /// A memory miss consults the backing store before reserving: a
    /// stored result is rehydrated into memory and returned as a disk
    /// hit.
    pub fn claim(&self, point_digest: u64, base_seed: u64, rep: u64) -> Claim<'_> {
        let key = (point_digest, base_seed, rep);
        let mut inner = relock(&self.inner);
        let touch = inner.tick + 1;
        match inner.map.get_mut(&key) {
            Some(Entry::Done { result, stamp }) => {
                let result = result.clone();
                *stamp = touch;
                inner.tick = touch;
                self.hits.fetch_add(1, Ordering::Relaxed);
                Claim::Hit { result, disk: false }
            }
            Some(Entry::Pending) => Claim::Busy,
            None => {
                if let Some(store) = &self.disk {
                    if let Some(result) = store.get(point_digest, base_seed, rep) {
                        inner.insert_done(key, result.clone(), self.cap);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Claim::Hit { result: Box::new(result), disk: true };
                    }
                }
                inner.map.insert(key, Entry::Pending);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Claim::Reserved(Reservation { cache: self, key, fulfilled: false })
            }
        }
    }

    /// Blocks until a [`Claim::Busy`] key resolves. `Some` (counted as a
    /// hit) is the peer's result; `None` means the peer abandoned its
    /// reservation — re-[`claim`](Self::claim) and execute it yourself.
    /// Only call after fulfilling your own reservations.
    pub fn wait(
        &self,
        point_digest: u64,
        base_seed: u64,
        rep: u64,
    ) -> Option<Result<SimOutcome, String>> {
        self.wait_cancellable(point_digest, base_seed, rep, None)
            .expect("waits without a token never cancel")
    }

    /// [`Self::wait`] with a cancellation token: returns
    /// `Err(CancelReason)` as soon as the token fires (checked every few
    /// tens of milliseconds), leaving the key to its owner. The waiter
    /// holds no reservation here, so abandoning the wait frees nothing
    /// and blocks nobody.
    pub fn wait_cancellable(
        &self,
        point_digest: u64,
        base_seed: u64,
        rep: u64,
        cancel: Option<&CancelToken>,
    ) -> Result<Option<Result<SimOutcome, String>>, CancelReason> {
        let key = (point_digest, base_seed, rep);
        let mut inner = relock(&self.inner);
        loop {
            match inner.map.get(&key) {
                Some(Entry::Done { result, .. }) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Ok(Some(result.as_ref().clone()));
                }
                Some(Entry::Pending) => {
                    if let Some(reason) = cancel.and_then(CancelToken::state) {
                        return Err(reason);
                    }
                    inner = match cancel {
                        // Bounded waits so the token is re-checked even
                        // if no fulfilment ever wakes us.
                        Some(_) => {
                            let (guard, _) = self
                                .changed
                                .wait_timeout(inner, Duration::from_millis(25))
                                .unwrap_or_else(std::sync::PoisonError::into_inner);
                            guard
                        }
                        None => self
                            .changed
                            .wait(inner)
                            .unwrap_or_else(std::sync::PoisonError::into_inner),
                    };
                }
                None => return Ok(None),
            }
        }
    }

    /// The memoized result for a replication, if any; counts a hit or a
    /// miss either way. Never blocks and never reserves — the read-only
    /// sibling of [`Self::claim`] (the disk store is still consulted on
    /// a memory miss).
    pub fn lookup(
        &self,
        point_digest: u64,
        base_seed: u64,
        rep: u64,
    ) -> Option<Result<SimOutcome, String>> {
        let mut inner = relock(&self.inner);
        match inner.map.get(&(point_digest, base_seed, rep)) {
            Some(Entry::Done { result, .. }) => {
                let result = result.as_ref().clone();
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(result)
            }
            _ => {
                if let Some(store) = &self.disk {
                    if let Some(result) = store.get(point_digest, base_seed, rep) {
                        inner.insert_done((point_digest, base_seed, rep), result.clone(), self.cap);
                        self.hits.fetch_add(1, Ordering::Relaxed);
                        self.disk_hits.fetch_add(1, Ordering::Relaxed);
                        return Some(result);
                    }
                }
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a completed replication directly (no reservation
    /// needed), writing through to the disk store when one is attached.
    /// Concurrent stores of the same key are harmless: determinism
    /// guarantees they carry equal values.
    pub fn store(
        &self,
        point_digest: u64,
        base_seed: u64,
        rep: u64,
        result: Result<SimOutcome, String>,
    ) {
        let key = (point_digest, base_seed, rep);
        self.write_through(key, &result);
        let mut inner = relock(&self.inner);
        inner.insert_done(key, result, self.cap);
        self.changed.notify_all();
    }

    /// Lookups answered without execution since construction (memory
    /// and disk hits both count).
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to execution since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Hits answered by rehydrating the backing store (a subset of
    /// [`Self::hits`]).
    pub fn disk_hits(&self) -> u64 {
        self.disk_hits.load(Ordering::Relaxed)
    }

    /// Memoized replications currently held in memory (pending
    /// reservations not included).
    pub fn entries(&self) -> usize {
        relock(&self.inner).done
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::pool::execute_isolated;
    use crate::policy::PolicyKind;
    use crate::sim::SimConfig;

    fn temp_store(tag: &str) -> ResultStore {
        let dir = std::env::temp_dir().join(format!("coalloc-cache-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        ResultStore::open(dir).expect("store opens")
    }

    #[test]
    fn lookup_counts_hits_and_misses_and_returns_stored_results() {
        let cache = ScenarioCache::new();
        assert!(cache.lookup(1, 2, 0).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let mut cfg = SimConfig::das(PolicyKind::Gs, 16, 0.3);
        cfg.total_jobs = 800;
        cfg.warmup_jobs = 100;
        let outcome = execute_isolated(&cfg, false);
        cache.store(1, 2, 0, outcome.clone());
        assert_eq!(cache.entries(), 1);

        let back = cache.lookup(1, 2, 0).expect("stored entry");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(back.unwrap().metrics.mean_response, outcome.unwrap().metrics.mean_response);

        cache.store(1, 2, 1, Err("poisoned".into()));
        assert!(cache.lookup(1, 2, 1).expect("failure memoized").is_err());
    }

    #[test]
    fn claims_are_exclusive_and_waiters_get_the_fulfilled_result() {
        let cache = std::sync::Arc::new(ScenarioCache::new());
        let res = match cache.claim(7, 7, 0) {
            Claim::Reserved(r) => r,
            _ => panic!("first claim reserves"),
        };
        assert!(matches!(cache.claim(7, 7, 0), Claim::Busy));

        let waiter = {
            let cache = std::sync::Arc::clone(&cache);
            std::thread::spawn(move || cache.wait(7, 7, 0))
        };
        res.fulfil(Err("done".into()));
        let got = waiter.join().expect("waiter").expect("fulfilled");
        assert_eq!(got.unwrap_err(), "done");
        assert!(matches!(cache.claim(7, 7, 0), Claim::Hit { .. }));
    }

    #[test]
    fn an_abandoned_reservation_unblocks_waiters_for_a_reclaim() {
        let cache = std::sync::Arc::new(ScenarioCache::new());
        let res = match cache.claim(9, 9, 3) {
            Claim::Reserved(r) => r,
            _ => panic!("first claim reserves"),
        };
        let waiter = {
            let cache = std::sync::Arc::clone(&cache);
            std::thread::spawn(move || cache.wait(9, 9, 3))
        };
        drop(res);
        assert!(waiter.join().expect("waiter").is_none(), "abandonment reported");
        assert!(matches!(cache.claim(9, 9, 3), Claim::Reserved(_)), "key is free again");
    }

    #[test]
    fn the_cap_evicts_least_recently_used_entries_first() {
        let cache = ScenarioCache::with(None, Some(2));
        cache.store(1, 0, 0, Err("a".into()));
        cache.store(2, 0, 0, Err("b".into()));
        // Touch `a` so `b` becomes the LRU entry.
        assert!(matches!(cache.claim(1, 0, 0), Claim::Hit { .. }));
        cache.store(3, 0, 0, Err("c".into()));
        assert_eq!(cache.entries(), 2, "the cap holds");

        // `b` was evicted; `a` (touched) and `c` (newest) survive.
        assert!(matches!(cache.claim(2, 0, 0), Claim::Reserved(_)), "LRU entry evicted");
        assert!(matches!(cache.claim(1, 0, 0), Claim::Hit { disk: false, .. }));
        assert!(matches!(cache.claim(3, 0, 0), Claim::Hit { disk: false, .. }));
    }

    #[test]
    fn eviction_never_touches_pending_reservations() {
        let cache = ScenarioCache::with(None, Some(1));
        let res = match cache.claim(1, 0, 0) {
            Claim::Reserved(r) => r,
            _ => panic!("first claim reserves"),
        };
        cache.store(2, 0, 0, Err("b".into()));
        cache.store(3, 0, 0, Err("c".into()));
        assert!(matches!(cache.claim(1, 0, 0), Claim::Busy), "reservation survives eviction");
        res.fulfil(Err("a".into()));
        assert!(matches!(cache.claim(1, 0, 0), Claim::Hit { .. }));
    }

    #[test]
    fn an_evicted_entry_comes_back_as_a_disk_hit() {
        let cache = ScenarioCache::with(Some(temp_store("evict")), Some(1));
        cache.store(1, 0, 0, Err("a".into()));
        cache.store(2, 0, 0, Err("b".into()));
        assert_eq!(cache.entries(), 1, "memory stays capped");

        // `a` left memory, but the write-through store still has it.
        match cache.claim(1, 0, 0) {
            Claim::Hit { result, disk } => {
                assert!(disk, "rehydrated from the store");
                assert_eq!(result.unwrap_err(), "a");
            }
            _ => panic!("evicted entry must be a disk hit"),
        }
        assert_eq!(cache.disk_hits(), 1);
        let dir = cache.disk_store().expect("store attached").dir().to_path_buf();
        drop(cache);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn a_fresh_cache_over_an_old_store_rehydrates_instead_of_reserving() {
        let store = temp_store("rehydrate");
        let dir = store.dir().to_path_buf();
        {
            let cache = ScenarioCache::with(Some(store), None);
            cache.store(5, 6, 0, Err("first life".into()));
        }
        // A second cache over the same directory: the restart path.
        let cache =
            ScenarioCache::with(Some(ResultStore::open(&dir).expect("store reopens")), None);
        match cache.claim(5, 6, 0) {
            Claim::Hit { result, disk } => {
                assert!(disk);
                assert_eq!(result.unwrap_err(), "first life");
            }
            _ => panic!("the restarted cache must answer from disk"),
        }
        // Now in memory: the second claim is a plain hit.
        assert!(matches!(cache.claim(5, 6, 0), Claim::Hit { disk: false, .. }));
        assert_eq!(cache.disk_hits(), 1);
        drop(cache);
        std::fs::remove_dir_all(dir).ok();
    }

    #[test]
    fn a_cancelled_wait_returns_the_reason_and_leaves_the_key_reserved() {
        let cache = std::sync::Arc::new(ScenarioCache::new());
        let res = match cache.claim(4, 4, 0) {
            Claim::Reserved(r) => r,
            _ => panic!("first claim reserves"),
        };
        let token = CancelToken::new();
        let waiter = {
            let cache = std::sync::Arc::clone(&cache);
            let token = token.clone();
            std::thread::spawn(move || cache.wait_cancellable(4, 4, 0, Some(&token)))
        };
        token.cancel();
        assert!(matches!(waiter.join().expect("waiter"), Err(CancelReason::Cancelled)));
        // The owner is unaffected and can still fulfil.
        assert!(matches!(cache.claim(4, 4, 0), Claim::Busy));
        res.fulfil(Err("owned".into()));
        assert!(matches!(cache.claim(4, 4, 0), Claim::Hit { .. }));
    }
}
