//! The scenario cache: memoized per-replication outcomes shared across
//! sweeps.
//!
//! A replication is fully determined by `(scenario digest, base seed,
//! replication index)` — the digest pins every configuration axis, and
//! the seed is the base seed's substream at the index (common random
//! numbers). Two sweeps whose utilization grids overlap therefore ask
//! for *the same* replications at the shared points, and a long-running
//! `coalloc-exp serve` process answers the second request from memory,
//! bit-identically, instead of re-simulating.
//!
//! Concurrent requests share in-flight work too: [`ScenarioCache::claim`]
//! reserves a key so only one requester executes it, and peers
//! [`ScenarioCache::wait`] for the stored result. The deadlock-free
//! protocol is *claim everything without blocking, execute and fulfil
//! your own reservations, only then wait on other people's* — every
//! waiter is past its own stores, so every pending key has an owner that
//! finishes without waiting.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Condvar, Mutex};

use crate::sim::SimOutcome;

/// Key of one memoized replication: `(point scenario digest, base seed,
/// replication index)`. See [`super::grid::point_digest`].
type Key = (u64, u64, u64);

enum Entry {
    /// Reserved by a live [`Reservation`]; the result is on its way.
    Pending,
    /// A completed replication (boxed: outcomes are large, pendings are
    /// plentiful).
    Done(Box<Result<SimOutcome, String>>),
}

/// A concurrent memo of completed replications, keyed by scenario
/// digest, base seed, and replication index. Failed replications are
/// cached too — a deterministic panic would only repeat.
#[derive(Default)]
pub struct ScenarioCache {
    entries: Mutex<HashMap<Key, Entry>>,
    changed: Condvar,
    hits: AtomicU64,
    misses: AtomicU64,
}

/// What [`ScenarioCache::claim`] found; never blocks.
pub enum Claim<'a> {
    /// The replication is memoized; here it is.
    Hit(Box<Result<SimOutcome, String>>),
    /// Nobody has it: the key is now reserved for this caller, who must
    /// [`Reservation::fulfil`] it (dropping the reservation un-reserves).
    Reserved(Reservation<'a>),
    /// Another requester reserved it; [`ScenarioCache::wait`] after
    /// fulfilling your own reservations.
    Busy,
}

/// An exclusive obligation to compute one replication; see [`Claim`].
pub struct Reservation<'a> {
    cache: &'a ScenarioCache,
    key: Key,
    fulfilled: bool,
}

impl Reservation<'_> {
    /// Publishes the computed result and wakes every waiter.
    pub fn fulfil(mut self, result: Result<SimOutcome, String>) {
        self.fulfilled = true;
        let mut map = self.cache.entries.lock().expect("cache lock");
        map.insert(self.key, Entry::Done(Box::new(result)));
        self.cache.changed.notify_all();
    }
}

impl Drop for Reservation<'_> {
    fn drop(&mut self) {
        if self.fulfilled {
            return;
        }
        // The owner died (a panicking handler unwound past the engine):
        // un-reserve so waiters stop waiting and re-claim the key.
        let mut map = self.cache.entries.lock().expect("cache lock");
        if matches!(map.get(&self.key), Some(Entry::Pending)) {
            map.remove(&self.key);
        }
        self.cache.changed.notify_all();
    }
}

impl ScenarioCache {
    /// An empty cache.
    pub fn new() -> Self {
        Self::default()
    }

    /// Claims one replication without blocking; counts a hit or a miss
    /// (a [`Claim::Busy`] counts on the eventual [`Self::wait`] instead).
    pub fn claim(&self, point_digest: u64, base_seed: u64, rep: u64) -> Claim<'_> {
        let key = (point_digest, base_seed, rep);
        let mut map = self.entries.lock().expect("cache lock");
        match map.get(&key) {
            Some(Entry::Done(r)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Claim::Hit(r.clone())
            }
            Some(Entry::Pending) => Claim::Busy,
            None => {
                map.insert(key, Entry::Pending);
                self.misses.fetch_add(1, Ordering::Relaxed);
                Claim::Reserved(Reservation { cache: self, key, fulfilled: false })
            }
        }
    }

    /// Blocks until a [`Claim::Busy`] key resolves. `Some` (counted as a
    /// hit) is the peer's result; `None` means the peer abandoned its
    /// reservation — re-[`claim`](Self::claim) and execute it yourself.
    /// Only call after fulfilling your own reservations.
    pub fn wait(
        &self,
        point_digest: u64,
        base_seed: u64,
        rep: u64,
    ) -> Option<Result<SimOutcome, String>> {
        let key = (point_digest, base_seed, rep);
        let mut map = self.entries.lock().expect("cache lock");
        loop {
            match map.get(&key) {
                Some(Entry::Done(r)) => {
                    self.hits.fetch_add(1, Ordering::Relaxed);
                    return Some(r.as_ref().clone());
                }
                Some(Entry::Pending) => {
                    map = self.changed.wait(map).expect("cache lock");
                }
                None => return None,
            }
        }
    }

    /// The memoized result for a replication, if any; counts a hit or a
    /// miss either way. Never blocks and never reserves — the read-only
    /// sibling of [`Self::claim`].
    pub fn lookup(
        &self,
        point_digest: u64,
        base_seed: u64,
        rep: u64,
    ) -> Option<Result<SimOutcome, String>> {
        let map = self.entries.lock().expect("cache lock");
        match map.get(&(point_digest, base_seed, rep)) {
            Some(Entry::Done(r)) => {
                self.hits.fetch_add(1, Ordering::Relaxed);
                Some(r.as_ref().clone())
            }
            _ => {
                self.misses.fetch_add(1, Ordering::Relaxed);
                None
            }
        }
    }

    /// Memoizes a completed replication directly (no reservation needed).
    /// Concurrent stores of the same key are harmless: determinism
    /// guarantees they carry equal values.
    pub fn store(
        &self,
        point_digest: u64,
        base_seed: u64,
        rep: u64,
        result: Result<SimOutcome, String>,
    ) {
        let mut map = self.entries.lock().expect("cache lock");
        map.insert((point_digest, base_seed, rep), Entry::Done(Box::new(result)));
        self.changed.notify_all();
    }

    /// Lookups answered from memory since construction.
    pub fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Lookups that fell through to execution since construction.
    pub fn misses(&self) -> u64 {
        self.misses.load(Ordering::Relaxed)
    }

    /// Memoized replications currently held (pending reservations not
    /// included).
    pub fn entries(&self) -> usize {
        self.entries
            .lock()
            .expect("cache lock")
            .values()
            .filter(|e| matches!(e, Entry::Done(_)))
            .count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::pool::execute_isolated;
    use crate::policy::PolicyKind;
    use crate::sim::SimConfig;

    #[test]
    fn lookup_counts_hits_and_misses_and_returns_stored_results() {
        let cache = ScenarioCache::new();
        assert!(cache.lookup(1, 2, 0).is_none());
        assert_eq!((cache.hits(), cache.misses()), (0, 1));

        let mut cfg = SimConfig::das(PolicyKind::Gs, 16, 0.3);
        cfg.total_jobs = 800;
        cfg.warmup_jobs = 100;
        let outcome = execute_isolated(&cfg, false);
        cache.store(1, 2, 0, outcome.clone());
        assert_eq!(cache.entries(), 1);

        let back = cache.lookup(1, 2, 0).expect("stored entry");
        assert_eq!((cache.hits(), cache.misses()), (1, 1));
        assert_eq!(back.unwrap().metrics.mean_response, outcome.unwrap().metrics.mean_response);

        cache.store(1, 2, 1, Err("poisoned".into()));
        assert!(cache.lookup(1, 2, 1).expect("failure memoized").is_err());
    }

    #[test]
    fn claims_are_exclusive_and_waiters_get_the_fulfilled_result() {
        let cache = std::sync::Arc::new(ScenarioCache::new());
        let res = match cache.claim(7, 7, 0) {
            Claim::Reserved(r) => r,
            _ => panic!("first claim reserves"),
        };
        assert!(matches!(cache.claim(7, 7, 0), Claim::Busy));

        let waiter = {
            let cache = std::sync::Arc::clone(&cache);
            std::thread::spawn(move || cache.wait(7, 7, 0))
        };
        res.fulfil(Err("done".into()));
        let got = waiter.join().expect("waiter").expect("fulfilled");
        assert_eq!(got.unwrap_err(), "done");
        assert!(matches!(cache.claim(7, 7, 0), Claim::Hit(_)));
    }

    #[test]
    fn an_abandoned_reservation_unblocks_waiters_for_a_reclaim() {
        let cache = std::sync::Arc::new(ScenarioCache::new());
        let res = match cache.claim(9, 9, 3) {
            Claim::Reserved(r) => r,
            _ => panic!("first claim reserves"),
        };
        let waiter = {
            let cache = std::sync::Arc::clone(&cache);
            std::thread::spawn(move || cache.wait(9, 9, 3))
        };
        drop(res);
        assert!(waiter.join().expect("waiter").is_none(), "abandonment reported");
        assert!(matches!(cache.claim(9, 9, 3), Claim::Reserved(_)), "key is free again");
    }
}
