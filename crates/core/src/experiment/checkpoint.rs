//! Atomic, fingerprinted sweep checkpoints.
//!
//! After every round the engine writes the queue's completed state to
//! JSON; an interrupted sweep resumes from the file and finishes
//! exactly as an uninterrupted run would. The file carries the sweep's
//! full scenario fingerprint ([`super::grid::sweep_digest`]): resuming
//! under *any* changed configuration — policy, capacities, disposition,
//! discipline, faults, network, warm-up, run lengths, seed, or grid —
//! rejects the file and restarts. (Earlier revisions matched only
//! `(version, base_seed, utilizations)` and silently reused outcomes
//! from a different scenario.) Precision knobs — `rel_ci_target` and
//! the replication bounds — stay *out* of the fingerprint on purpose:
//! completed replications are valid under any precision target, because
//! replication seeds depend only on the base seed and the index.

use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};

use super::grid::SweepConfig;
use super::outcome::FailedReplication;
use crate::sim::SimOutcome;

/// On-disk state of a partially completed sweep: every finished
/// replication, per utilization point, in replication order.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SweepCheckpoint {
    /// Format version (see [`CHECKPOINT_VERSION`]).
    pub version: u32,
    /// The sweep's base seed.
    pub base_seed: u64,
    /// The full-scenario fingerprint ([`super::grid::sweep_digest`])
    /// this state was computed under. Also the scenario-cache key
    /// prefix: matching digests mean bit-identical replications.
    pub scenario: u64,
    /// The target-utilization grid.
    pub utilizations: Vec<f64>,
    /// Completed runs: `runs[i][r]` is replication `r` of point `i`.
    pub runs: Vec<Vec<SimOutcome>>,
    /// Failed (panicked) replications per point, in replication order.
    pub failures: Vec<Vec<FailedReplication>>,
}

/// Current checkpoint format version. Bumped to 3 when the fingerprint
/// grew from `(version, base_seed, utilizations)` to the full scenario
/// digest (v2 carried no digest, so a v2 file written under a different
/// policy or system would resume silently; v3 rejects it).
pub const CHECKPOINT_VERSION: u32 = 3;

/// Loads a checkpoint if `path` holds one matching this sweep's
/// fingerprint; a missing, corrupt (truncated, bit-flipped, wrong
/// version), or mismatched file restarts the sweep from scratch (with a
/// note on stderr for the non-missing cases). Restarting is always
/// safe: the checkpoint is an optimization, never the source of truth.
#[allow(clippy::type_complexity)]
pub(crate) fn load_checkpoint(
    path: &Path,
    cfg: &SweepConfig,
    scenario: u64,
) -> Option<(Vec<Vec<SimOutcome>>, Vec<Vec<FailedReplication>>)> {
    let text = std::fs::read_to_string(path).ok()?;
    let cp: SweepCheckpoint = match serde_json::from_str(&text) {
        Ok(cp) => cp,
        Err(e) => {
            eprintln!("sweep checkpoint {} unreadable ({e}); restarting", path.display());
            return None;
        }
    };
    let grid_matches = cp.utilizations.len() == cfg.utilizations.len()
        && cp.utilizations.iter().zip(&cfg.utilizations).all(|(a, b)| (a - b).abs() < 1e-12);
    if cp.version != CHECKPOINT_VERSION
        || cp.base_seed != cfg.base_seed
        || cp.scenario != scenario
        || !grid_matches
        || cp.runs.len() != cfg.utilizations.len()
        || cp.failures.len() != cfg.utilizations.len()
    {
        eprintln!(
            "sweep checkpoint {} belongs to a different scenario (fingerprint mismatch); \
             restarting",
            path.display()
        );
        return None;
    }
    Some((cp.runs, cp.failures))
}

/// Per-process temp-name counter; see [`unique_tmp_path`].
static TMP_SEQ: AtomicU64 = AtomicU64::new(0);

/// A temp path no other writer — in this process or another — is using:
/// `<file>.<pid>-<seq>.tmp` next to the target. A fixed `<path>.tmp`
/// used to race when two sweeps sharing a checkpoint directory (routine
/// under `coalloc-exp serve`) saved at once: one writer's rename could
/// publish the other's half-written file.
pub(crate) fn unique_tmp_path(path: &Path) -> PathBuf {
    let seq = TMP_SEQ.fetch_add(1, Ordering::Relaxed);
    let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("checkpoint");
    path.with_file_name(format!("{name}.{}-{seq}.tmp", std::process::id()))
}

/// Writes the checkpoint atomically (unique temp file + rename) so an
/// interruption mid-write never corrupts the previous round's state. A
/// write failure (disk full, permissions) is reported on stderr and
/// otherwise ignored: the sweep's results live in memory, and losing a
/// resume point must not kill hours of completed replications.
pub(crate) fn save_checkpoint(
    path: &Path,
    cfg: &SweepConfig,
    scenario: u64,
    runs: &[Vec<SimOutcome>],
    failures: &[Vec<FailedReplication>],
) {
    let cp = SweepCheckpoint {
        version: CHECKPOINT_VERSION,
        base_seed: cfg.base_seed,
        scenario,
        utilizations: cfg.utilizations.clone(),
        runs: runs.to_vec(),
        failures: failures.to_vec(),
    };
    let json = serde_json::to_string(&cp).expect("checkpoint serializes");
    let tmp = unique_tmp_path(path);
    if let Err(e) = std::fs::write(&tmp, json) {
        eprintln!("warning: cannot write checkpoint {}: {e}; continuing", tmp.display());
        return;
    }
    if let Err(e) = std::fs::rename(&tmp, path) {
        eprintln!("warning: cannot commit checkpoint {}: {e}; continuing", path.display());
        let _ = std::fs::remove_file(&tmp);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn temp_names_are_unique_per_writer() {
        let path = Path::new("/tmp/some/dir/cp.json");
        let a = unique_tmp_path(path);
        let b = unique_tmp_path(path);
        assert_ne!(a, b, "two writers must never share a temp file");
        for t in [&a, &b] {
            assert_eq!(t.parent(), path.parent(), "temp stays beside the target (same fs)");
            assert!(t.file_name().unwrap().to_str().unwrap().starts_with("cp.json."));
            assert!(t.extension().is_some_and(|e| e == "tmp"));
        }
    }

    #[test]
    fn concurrent_savers_on_one_path_never_clobber_mid_write() {
        let dir = std::env::temp_dir();
        let path = dir.join(format!("coalloc_cp_race_{}.json", std::process::id()));
        let _ = std::fs::remove_file(&path);
        let cfg = SweepConfig { utilizations: vec![0.5], ..SweepConfig::quick() };
        // Hammer the same target from many threads; every published file
        // must be a complete, parseable checkpoint (an interleaved
        // fixed-name temp would intermittently produce garbage).
        std::thread::scope(|s| {
            for k in 0..8u64 {
                let (path, cfg) = (&path, &cfg);
                s.spawn(move || {
                    for _ in 0..20 {
                        save_checkpoint(path, cfg, k, &[vec![]], &[vec![]]);
                        let text = std::fs::read_to_string(path).expect("published file");
                        let cp: SweepCheckpoint =
                            serde_json::from_str(&text).expect("complete checkpoint");
                        assert_eq!(cp.version, CHECKPOINT_VERSION);
                    }
                });
            }
        });
        let _ = std::fs::remove_file(&path);
    }
}
