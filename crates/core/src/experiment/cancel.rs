//! Cooperative request cancellation for the sweep engine.
//!
//! A [`CancelToken`] is a cheap, cloneable handle shared between a
//! request's owner (who may [`cancel`](CancelToken::cancel) it) and the
//! machinery running on its behalf — the engine round loop, the
//! [`super::pool::WorkerPool`] workers, the saturation bisection, and
//! the cache's peer-wait. Cancellation is *cooperative*: the token is
//! checked between replications, never mid-simulation, so a cancelled
//! request stops at the next replication boundary, frees its cache
//! reservations through the ordinary RAII drop path (waiting peers
//! re-claim and finish the work), and reports a typed
//! [`CancelReason`] instead of a result.
//!
//! Deadlines ride on the same token: a token built with
//! [`CancelToken::with_timeout`] starts reporting
//! [`CancelReason::TimedOut`] once the deadline passes, through exactly
//! the same checks — a timeout is just a cancellation nobody had to
//! send.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Why a request stopped before completing.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelReason {
    /// The owner cancelled the request explicitly.
    Cancelled,
    /// The request's deadline passed.
    TimedOut,
}

impl CancelReason {
    /// The in-band event name `serve` reports for this reason.
    pub fn label(self) -> &'static str {
        match self {
            CancelReason::Cancelled => "cancelled",
            CancelReason::TimedOut => "timeout",
        }
    }
}

struct Inner {
    cancelled: AtomicBool,
    deadline: Option<Instant>,
}

/// A cloneable cancellation handle; see the module docs.
#[derive(Clone)]
pub struct CancelToken {
    inner: Arc<Inner>,
}

impl Default for CancelToken {
    fn default() -> Self {
        Self::new()
    }
}

impl CancelToken {
    /// A token that only cancels when told to.
    pub fn new() -> Self {
        CancelToken { inner: Arc::new(Inner { cancelled: AtomicBool::new(false), deadline: None }) }
    }

    /// A token that additionally times out `timeout` from now.
    pub fn with_timeout(timeout: Duration) -> Self {
        CancelToken {
            inner: Arc::new(Inner {
                cancelled: AtomicBool::new(false),
                deadline: Some(Instant::now() + timeout),
            }),
        }
    }

    /// Requests cancellation; every holder of a clone observes it at
    /// its next check.
    pub fn cancel(&self) {
        self.inner.cancelled.store(true, Ordering::Release);
    }

    /// Why work should stop, or `None` to keep going. An explicit
    /// cancel wins over a passed deadline (the owner's intent is the
    /// more specific signal).
    pub fn state(&self) -> Option<CancelReason> {
        if self.inner.cancelled.load(Ordering::Acquire) {
            return Some(CancelReason::Cancelled);
        }
        match self.inner.deadline {
            Some(d) if Instant::now() >= d => Some(CancelReason::TimedOut),
            _ => None,
        }
    }

    /// Whether the token has fired (for checks that don't need the
    /// reason).
    pub fn is_cancelled(&self) -> bool {
        self.state().is_some()
    }
}

impl std::fmt::Debug for CancelToken {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("CancelToken")
            .field("state", &self.state())
            .field("deadline", &self.inner.deadline)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn a_fresh_token_is_live_and_cancel_propagates_to_clones() {
        let token = CancelToken::new();
        let clone = token.clone();
        assert_eq!(token.state(), None);
        assert!(!clone.is_cancelled());
        token.cancel();
        assert_eq!(clone.state(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn a_zero_timeout_reports_timed_out_until_explicitly_cancelled() {
        let token = CancelToken::with_timeout(Duration::ZERO);
        assert_eq!(token.state(), Some(CancelReason::TimedOut));
        // An explicit cancel is the more specific signal and wins.
        token.cancel();
        assert_eq!(token.state(), Some(CancelReason::Cancelled));
    }

    #[test]
    fn a_distant_deadline_leaves_the_token_live() {
        let token = CancelToken::with_timeout(Duration::from_secs(3600));
        assert_eq!(token.state(), None);
    }
}
