//! The crash-safe on-disk result store behind the scenario cache.
//!
//! A [`ResultStore`] is an append-only, checksummed segment log of
//! completed replications keyed `(point_digest, base_seed, rep)` — the
//! same key as [`super::cache::ScenarioCache`], which writes through to
//! the store and falls back to it on memory misses. Because a
//! replication is a pure function of its key (common random numbers,
//! full-scenario digests), a restarted daemon that reopens its store
//! answers previously computed replications from disk, bit-identically,
//! instead of re-executing them.
//!
//! ## Format
//!
//! A store is a directory of segment files `store-<n>.seg`. Each
//! segment starts with an 8-byte magic (`COALSTO1`) followed by framed
//! records:
//!
//! ```text
//! [u32 le payload len][u64 le FNV-1a(payload)][payload bytes]
//! ```
//!
//! where the payload is the JSON rendering of one record (key plus
//! outcome-or-failure). Appends go to a segment opened by *this*
//! process only — a reopened store never appends after an old tail, so
//! a damaged suffix can never corrupt the framing of later writes —
//! and every append is flushed before [`append`](ResultStore::append)
//! returns.
//!
//! ## Recovery contract
//!
//! Recovery is sequential per segment and **drops only the damaged
//! suffix**: a truncated tail (the process was SIGKILLed mid-append), a
//! bit-flipped length, checksum, or payload byte, or an unparseable
//! record stops the scan of that segment with a warning on stderr —
//! every record before the damage is kept, recovery never panics, and
//! a zero-length or foreign file simply contributes nothing. The store
//! is an optimization over re-running, never the source of truth, so
//! dropping a record is always safe.
//!
//! ## Compaction
//!
//! Duplicate keys (a record superseded by a newer append, or segments
//! overlapping after repeated restarts) are *dead*: the index keeps
//! only the newest. [`compact`](ResultStore::compact) rewrites every
//! live record into one fresh segment (unique temp file + atomic
//! rename, the checkpoint discipline) and deletes the old segments, so
//! a long-lived daemon's disk footprint tracks its live entries.

use std::collections::HashMap;
use std::fs::File;
use std::io::{Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};
use std::sync::Mutex;

use super::checkpoint::unique_tmp_path;
use super::grid::fnv1a;
use crate::sim::SimOutcome;

/// Key of one stored replication: `(point scenario digest, base seed,
/// replication index)` — identical to the scenario-cache key.
type Key = (u64, u64, u64);

/// Magic bytes opening every segment file (name + format version).
const MAGIC: &[u8; 8] = b"COALSTO1";

/// Frame header size: u32 payload length + u64 payload checksum.
const FRAME_HEADER: usize = 4 + 8;

/// Upper bound on one record's payload; a "length" beyond it is a
/// corrupt frame, not a real record (keeps a bit-flipped length from
/// asking for a multi-gigabyte read).
const MAX_PAYLOAD: u32 = 64 * 1024 * 1024;

/// One record's JSON payload: the key plus either a completed outcome
/// or a failure cause (the cache memoizes both — a deterministic panic
/// would only repeat).
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
struct StoreRecord {
    digest: u64,
    seed: u64,
    rep: u64,
    outcome: Option<SimOutcome>,
    cause: Option<String>,
}

impl StoreRecord {
    fn from_result(key: Key, result: &Result<SimOutcome, String>) -> Self {
        let (digest, seed, rep) = key;
        match result {
            Ok(o) => StoreRecord { digest, seed, rep, outcome: Some(o.clone()), cause: None },
            Err(c) => StoreRecord { digest, seed, rep, outcome: None, cause: Some(c.clone()) },
        }
    }

    fn into_result(self) -> Option<(Key, Result<SimOutcome, String>)> {
        let key = (self.digest, self.seed, self.rep);
        match (self.outcome, self.cause) {
            (Some(o), None) => Some((key, Ok(o))),
            (None, Some(c)) => Some((key, Err(c))),
            // Neither or both: not a shape this store ever writes.
            _ => None,
        }
    }
}

/// Where a live record lives on disk.
#[derive(Clone, Copy, Debug)]
struct Loc {
    /// Index into `StoreInner::segments`.
    seg: usize,
    /// Byte offset of the frame (the length word) within the segment.
    offset: u64,
    /// Payload length.
    len: u32,
}

struct StoreInner {
    /// Live segment files, oldest first; the active one (if any) is
    /// last.
    segments: Vec<PathBuf>,
    /// Newest location of every key.
    index: HashMap<Key, Loc>,
    /// The segment this process appends to, opened lazily.
    writer: Option<ActiveSegment>,
    /// Next segment number to allocate.
    next_segment: u64,
    /// Records superseded by a newer append or dropped as duplicates at
    /// load — reclaimable by [`ResultStore::compact`].
    dead: u64,
    /// Appends that failed (disk full, permissions); the store keeps
    /// serving from what it has.
    append_errors: u64,
}

struct ActiveSegment {
    file: File,
    /// Byte offset the next frame starts at.
    offset: u64,
}

/// What [`ResultStore::open`] recovered, for the operator log.
#[derive(Clone, Copy, Debug, Default)]
pub struct RecoveryReport {
    /// Live records indexed (newest per key).
    pub live: u64,
    /// Records superseded by a newer duplicate during the scan.
    pub superseded: u64,
    /// Segments whose tail was damaged (truncated or bit-flipped); only
    /// the damaged suffix was dropped.
    pub damaged_segments: u64,
}

/// The crash-safe on-disk result store; see the module docs.
pub struct ResultStore {
    dir: PathBuf,
    inner: Mutex<StoreInner>,
    recovery: RecoveryReport,
}

/// Poison-safe lock: a panicking holder leaves the data intact (every
/// mutation below is a single insert/append), so recover the guard
/// instead of cascading the panic into every later request.
fn relock<T>(m: &Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

impl ResultStore {
    /// Opens (creating if needed) the store directory and recovers
    /// every undamaged record from its segments. Damage is contained,
    /// never fatal: a truncated or bit-flipped segment loses only its
    /// suffix, with a warning on stderr.
    pub fn open(dir: impl Into<PathBuf>) -> std::io::Result<ResultStore> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir)?;
        let mut segments: Vec<(u64, PathBuf)> = Vec::new();
        for entry in std::fs::read_dir(&dir)? {
            let path = entry?.path();
            if let Some(n) = segment_number(&path) {
                segments.push((n, path));
            }
        }
        segments.sort();
        let next_segment = segments.last().map_or(0, |(n, _)| n + 1);

        let mut index: HashMap<Key, Loc> = HashMap::new();
        let mut recovery = RecoveryReport::default();
        let paths: Vec<PathBuf> = segments.into_iter().map(|(_, p)| p).collect();
        for (seg, path) in paths.iter().enumerate() {
            if !scan_segment(path, seg, &mut index, &mut recovery) {
                recovery.damaged_segments += 1;
            }
        }
        recovery.live = index.len() as u64;
        Ok(ResultStore {
            dir,
            inner: Mutex::new(StoreInner {
                segments: paths,
                index,
                writer: None,
                next_segment,
                dead: recovery.superseded,
                append_errors: 0,
            }),
            recovery,
        })
    }

    /// What [`open`](Self::open) recovered.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// The store directory.
    pub fn dir(&self) -> &Path {
        &self.dir
    }

    /// Live records currently indexed.
    pub fn len(&self) -> usize {
        relock(&self.inner).index.len()
    }

    /// Whether the store holds no records.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Segment files currently on disk.
    pub fn segments(&self) -> usize {
        relock(&self.inner).segments.len()
    }

    /// Whether compaction would reclaim anything: dead records exist or
    /// the log is spread over more than one segment.
    pub fn fragmented(&self) -> bool {
        let inner = relock(&self.inner);
        inner.dead > 0 || inner.segments.len() > 1
    }

    /// Reads one record back, verifying its checksum again (the bytes
    /// may have rotted since recovery). Any damage reads as a miss —
    /// the caller re-executes, which is always correct.
    pub fn get(&self, digest: u64, seed: u64, rep: u64) -> Option<Result<SimOutcome, String>> {
        let inner = relock(&self.inner);
        let loc = *inner.index.get(&(digest, seed, rep))?;
        let path = inner.segments.get(loc.seg)?.clone();
        match read_record(&path, loc) {
            Ok(record) => record.into_result().map(|(_, r)| r),
            Err(e) => {
                eprintln!(
                    "warning: result store record at {}:{} unreadable ({e}); treating as a miss",
                    path.display(),
                    loc.offset
                );
                None
            }
        }
    }

    /// Appends one record and flushes it to the operating system before
    /// returning, so a SIGKILL after `append` never loses the record. A
    /// failed append (disk full, permissions) warns on stderr and the
    /// store keeps serving — durability degrades, correctness does not.
    pub fn append(&self, digest: u64, seed: u64, rep: u64, result: &Result<SimOutcome, String>) {
        let key = (digest, seed, rep);
        let record = StoreRecord::from_result(key, result);
        let payload = serde_json::to_string(&record).expect("store record serializes");
        let mut inner = relock(&self.inner);
        if let Err(e) = inner.append_frame(&self.dir, key, payload.as_bytes()) {
            inner.append_errors += 1;
            if inner.append_errors <= 3 {
                eprintln!("warning: result store append failed ({e}); continuing without it");
            }
        }
    }

    /// Rewrites every live record into one fresh segment (temp file +
    /// atomic rename) and deletes the old segments. Safe at any time: a
    /// crash mid-compaction leaves either the old segments or the new
    /// one plus harmless duplicates, both of which recover fully.
    pub fn compact(&self) -> std::io::Result<()> {
        let mut inner = relock(&self.inner);
        inner.writer = None; // flushes and closes the active segment

        // Collect every live record (key order, for a deterministic
        // layout) by re-reading the frames we already trust.
        let mut keys: Vec<Key> = inner.index.keys().copied().collect();
        keys.sort_unstable();
        let mut frames: Vec<(Key, Vec<u8>)> = Vec::with_capacity(keys.len());
        for key in keys {
            let loc = inner.index[&key];
            let path = &inner.segments[loc.seg];
            match read_record(path, loc) {
                Ok(record) => {
                    let payload = serde_json::to_string(&record).expect("store record serializes");
                    frames.push((key, payload.into_bytes()));
                }
                Err(e) => eprintln!(
                    "warning: dropping unreadable store record during compaction \
                     ({}:{}: {e})",
                    path.display(),
                    loc.offset
                ),
            }
        }

        let seg_no = inner.next_segment;
        inner.next_segment += 1;
        let target = self.dir.join(format!("store-{seg_no:06}.seg"));
        let tmp = unique_tmp_path(&target);
        {
            let mut file = File::create(&tmp)?;
            file.write_all(MAGIC)?;
            let mut offset = MAGIC.len() as u64;
            let mut index = HashMap::with_capacity(frames.len());
            for (key, payload) in &frames {
                write_frame(&mut file, payload)?;
                index.insert(*key, Loc { seg: 0, offset, len: payload.len() as u32 });
                offset += (FRAME_HEADER + payload.len()) as u64;
            }
            file.sync_all()?;
            std::fs::rename(&tmp, &target)?;
            let old = std::mem::replace(&mut inner.segments, vec![target]);
            inner.index = index;
            inner.dead = 0;
            drop(inner);
            for path in old {
                let _ = std::fs::remove_file(path);
            }
        }
        Ok(())
    }
}

impl StoreInner {
    fn append_frame(&mut self, dir: &Path, key: Key, payload: &[u8]) -> std::io::Result<()> {
        if self.writer.is_none() {
            let seg_no = self.next_segment;
            self.next_segment += 1;
            let path = dir.join(format!("store-{seg_no:06}.seg"));
            let mut file = std::fs::OpenOptions::new().create_new(true).write(true).open(&path)?;
            file.write_all(MAGIC)?;
            file.flush()?;
            self.segments.push(path);
            self.writer = Some(ActiveSegment { file, offset: MAGIC.len() as u64 });
        }
        let seg = self.segments.len() - 1;
        let active = self.writer.as_mut().expect("active segment just ensured");
        let offset = active.offset;
        write_frame(&mut active.file, payload)?;
        active.file.flush()?;
        active.offset += (FRAME_HEADER + payload.len()) as u64;
        if self.index.insert(key, Loc { seg, offset, len: payload.len() as u32 }).is_some() {
            self.dead += 1;
        }
        Ok(())
    }
}

/// The segment number of `store-<n>.seg`, or `None` for foreign files.
fn segment_number(path: &Path) -> Option<u64> {
    let name = path.file_name()?.to_str()?;
    let digits = name.strip_prefix("store-")?.strip_suffix(".seg")?;
    digits.parse().ok()
}

fn write_frame(w: &mut impl Write, payload: &[u8]) -> std::io::Result<()> {
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(&fnv1a(payload).to_le_bytes())?;
    w.write_all(payload)
}

/// Scans one segment into the index, newest record winning. Returns
/// `false` (after warning) when a damaged suffix was dropped; the
/// records before the damage are kept either way.
fn scan_segment(
    path: &Path,
    seg: usize,
    index: &mut HashMap<Key, Loc>,
    recovery: &mut RecoveryReport,
) -> bool {
    let bytes = match std::fs::read(path) {
        Ok(b) => b,
        Err(e) => {
            eprintln!("warning: cannot read store segment {} ({e}); skipping", path.display());
            return false;
        }
    };
    if bytes.is_empty() {
        // A segment created but never written (or truncated to nothing):
        // nothing to recover, nothing to warn about.
        return true;
    }
    if bytes.len() < MAGIC.len() || &bytes[..MAGIC.len()] != MAGIC {
        eprintln!(
            "warning: store segment {} has no valid header; ignoring the file",
            path.display()
        );
        return false;
    }
    let mut offset = MAGIC.len();
    loop {
        if offset == bytes.len() {
            return true; // clean end of segment
        }
        let Some(frame) = decode_frame(&bytes[offset..]) else {
            eprintln!(
                "warning: store segment {} damaged at byte {offset}; \
                 dropping the suffix ({} records recovered so far)",
                path.display(),
                index.len()
            );
            return false;
        };
        let (payload, frame_len) = frame;
        match serde_json::from_str::<StoreRecord>(payload).ok().and_then(StoreRecord::into_result) {
            Some((key, _)) => {
                let loc =
                    Loc { seg, offset: offset as u64, len: (frame_len - FRAME_HEADER) as u32 };
                if index.insert(key, loc).is_some() {
                    recovery.superseded += 1;
                }
            }
            None => {
                // The checksum matched but the payload is not a record
                // this store writes — same containment as bit damage.
                eprintln!(
                    "warning: store segment {} holds an unparseable record at byte {offset}; \
                     dropping the suffix",
                    path.display()
                );
                return false;
            }
        }
        offset += frame_len;
    }
}

/// Decodes one frame at the head of `bytes`: `Some((payload, total
/// frame length))` when the length is plausible, the bytes are all
/// present, the checksum matches, and the payload is UTF-8.
fn decode_frame(bytes: &[u8]) -> Option<(&str, usize)> {
    if bytes.len() < FRAME_HEADER {
        return None;
    }
    let len = u32::from_le_bytes(bytes[0..4].try_into().expect("4 bytes")) as usize;
    if len > MAX_PAYLOAD as usize || bytes.len() < FRAME_HEADER + len {
        return None;
    }
    let checksum = u64::from_le_bytes(bytes[4..12].try_into().expect("8 bytes"));
    let payload = &bytes[FRAME_HEADER..FRAME_HEADER + len];
    if fnv1a(payload) != checksum {
        return None;
    }
    std::str::from_utf8(payload).ok().map(|p| (p, FRAME_HEADER + len))
}

/// Re-reads one frame from disk and verifies it end to end.
fn read_record(path: &Path, loc: Loc) -> std::io::Result<StoreRecord> {
    let mut file = File::open(path)?;
    file.seek(SeekFrom::Start(loc.offset))?;
    let mut frame = vec![0u8; FRAME_HEADER + loc.len as usize];
    file.read_exact(&mut frame)?;
    let (payload, _) = decode_frame(&frame)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "corrupt frame"))?;
    serde_json::from_str(payload)
        .map_err(|e| std::io::Error::new(std::io::ErrorKind::InvalidData, e.to_string()))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::pool::execute_isolated;
    use crate::policy::PolicyKind;
    use crate::sim::SimConfig;

    fn temp_store_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("coalloc-store-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn outcome(seed: u64) -> Result<SimOutcome, String> {
        let mut cfg = SimConfig::das(PolicyKind::Gs, 16, 0.3);
        cfg.total_jobs = 400;
        cfg.warmup_jobs = 50;
        execute_isolated(&cfg.with_seed(seed), false)
    }

    /// The failure cause stored under a key, or `None` on a miss /
    /// non-failure (`SimOutcome` has no `PartialEq`, so tests compare
    /// causes and individual metrics instead of whole results).
    fn stored_err(store: &ResultStore, digest: u64, seed: u64, rep: u64) -> Option<String> {
        match store.get(digest, seed, rep) {
            Some(Err(cause)) => Some(cause),
            _ => None,
        }
    }

    #[test]
    fn appended_records_survive_a_reopen_bit_identically() {
        let dir = temp_store_dir("roundtrip");
        let ok = outcome(7);
        {
            let store = ResultStore::open(&dir).expect("store opens");
            store.append(1, 2, 0, &ok);
            store.append(1, 2, 1, &Err("boom".into()));
            assert_eq!(store.len(), 2);
        }
        let store = ResultStore::open(&dir).expect("store reopens");
        assert_eq!(store.len(), 2);
        assert_eq!(store.recovery().live, 2);
        let back = store.get(1, 2, 0).expect("stored outcome");
        assert_eq!(back.unwrap().metrics.mean_response, ok.as_ref().unwrap().metrics.mean_response);
        assert_eq!(stored_err(&store, 1, 2, 1), Some("boom".into()));
        assert!(store.get(9, 9, 9).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn newest_duplicate_wins_and_compaction_reclaims_the_dead() {
        let dir = temp_store_dir("compact");
        let store = ResultStore::open(&dir).expect("store opens");
        store.append(1, 2, 0, &Err("old".into()));
        store.append(1, 2, 0, &Err("new".into()));
        store.append(3, 4, 0, &Err("live".into()));
        assert!(store.fragmented(), "a superseded record is reclaimable");
        assert_eq!(stored_err(&store, 1, 2, 0), Some("new".into()));

        store.compact().expect("compaction succeeds");
        assert_eq!(store.segments(), 1);
        assert!(!store.fragmented());
        assert_eq!(store.len(), 2);
        assert_eq!(stored_err(&store, 1, 2, 0), Some("new".into()));
        assert_eq!(stored_err(&store, 3, 4, 0), Some("live".into()));

        // And the compacted layout recovers like any other.
        drop(store);
        let reopened = ResultStore::open(&dir).expect("store reopens");
        assert_eq!(reopened.len(), 2);
        assert_eq!(stored_err(&reopened, 1, 2, 0), Some("new".into()));
        std::fs::remove_dir_all(&dir).ok();
    }

    /// The single segment a fresh store wrote.
    fn only_segment(dir: &Path) -> PathBuf {
        let mut segs: Vec<PathBuf> = std::fs::read_dir(dir)
            .expect("store dir")
            .map(|e| e.expect("entry").path())
            .filter(|p| segment_number(p).is_some())
            .collect();
        assert_eq!(segs.len(), 1, "expected exactly one segment");
        segs.pop().expect("one segment")
    }

    #[test]
    fn a_truncated_tail_loses_only_the_damaged_suffix() {
        let dir = temp_store_dir("truncated");
        {
            let store = ResultStore::open(&dir).expect("store opens");
            for rep in 0..4 {
                store.append(1, 2, rep, &Err(format!("r{rep}")));
            }
        }
        let seg = only_segment(&dir);
        let len = std::fs::metadata(&seg).expect("segment metadata").len();
        // Cut into the last record's payload: a mid-append SIGKILL.
        let file = std::fs::OpenOptions::new().write(true).open(&seg).expect("segment opens");
        file.set_len(len - 7).expect("truncate");

        let store = ResultStore::open(&dir).expect("recovery never fails");
        assert_eq!(store.len(), 3, "only the torn record is lost");
        assert_eq!(store.recovery().damaged_segments, 1);
        for rep in 0..3 {
            assert_eq!(stored_err(&store, 1, 2, rep), Some(format!("r{rep}")));
        }
        assert!(store.get(1, 2, 3).is_none());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn a_bit_flipped_record_drops_it_and_the_suffix_but_keeps_the_prefix() {
        let dir = temp_store_dir("bitflip");
        {
            let store = ResultStore::open(&dir).expect("store opens");
            for rep in 0..4 {
                store.append(1, 2, rep, &Err(format!("r{rep}")));
            }
        }
        let seg = only_segment(&dir);
        let mut bytes = std::fs::read(&seg).expect("segment bytes");
        // Flip one payload bit around 60% of the file: records before it
        // must survive, the flipped one and everything after must go.
        let hit = bytes.len() * 6 / 10;
        bytes[hit] ^= 0x40;
        std::fs::write(&seg, &bytes).expect("rewrite segment");

        let store = ResultStore::open(&dir).expect("recovery never fails");
        assert!(store.len() < 4, "the damaged record is gone");
        assert!(!store.is_empty(), "the undamaged prefix survives");
        assert_eq!(store.recovery().damaged_segments, 1);
        for rep in 0..store.len() as u64 {
            assert_eq!(stored_err(&store, 1, 2, rep), Some(format!("r{rep}")));
        }
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn zero_length_and_foreign_files_recover_to_an_empty_store() {
        let dir = temp_store_dir("empty");
        std::fs::create_dir_all(&dir).expect("dir");
        std::fs::write(dir.join("store-000000.seg"), b"").expect("zero-length segment");
        std::fs::write(dir.join("store-000001.seg"), b"not a segment at all").expect("foreign");
        std::fs::write(dir.join("README.txt"), b"ignored").expect("unrelated file");

        let store = ResultStore::open(&dir).expect("recovery never fails");
        assert_eq!(store.len(), 0);
        assert_eq!(store.recovery().damaged_segments, 1, "only the foreign segment warns");
        // The store still accepts appends (to a fresh segment).
        store.append(5, 5, 0, &Err("after recovery".into()));
        drop(store);
        let reopened = ResultStore::open(&dir).expect("store reopens");
        assert_eq!(stored_err(&reopened, 5, 5, 0), Some("after recovery".into()));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn concurrent_appenders_interleave_without_corruption() {
        let dir = temp_store_dir("concurrent");
        let store = std::sync::Arc::new(ResultStore::open(&dir).expect("store opens"));
        std::thread::scope(|s| {
            for t in 0..4u64 {
                let store = std::sync::Arc::clone(&store);
                s.spawn(move || {
                    for rep in 0..25u64 {
                        store.append(t, 0, rep, &Err(format!("{t}/{rep}")));
                    }
                });
            }
        });
        assert_eq!(store.len(), 100);
        drop(store);
        let reopened = ResultStore::open(&dir).expect("store reopens");
        assert_eq!(reopened.len(), 100, "every interleaved record recovers");
        assert_eq!(stored_err(&reopened, 3, 0, 24), Some("3/24".into()));
        std::fs::remove_dir_all(&dir).ok();
    }
}
