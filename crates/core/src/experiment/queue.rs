//! The resumable replication task queue at the heart of the sweep
//! engine.
//!
//! The queue holds, per sweep point, every completed run and every
//! failed replication — nothing else. Each round it derives a *plan*
//! (which `(point, replication)` tasks to run next) purely from that
//! completed state via [`StoppingRule::plan`], records the round's
//! results, and repeats until every point is closed. Because the plan —
//! and therefore every replication seed — is a pure function of prior
//! rounds, results are deterministic for a fixed base seed regardless
//! of worker count, scheduling interleaving, cache hits, or how often
//! the queue was checkpointed and resumed in between.
//!
//! Failed replications stay *spent*: their indices are never re-issued,
//! so the seeds of later replications never shift (thread-count and
//! resume invariance would otherwise break under panics).

use desim::stopping::StoppingRule;

use super::outcome::{aggregate, response_estimate, FailedReplication, SweepPoint};
use crate::sim::SimOutcome;

/// One schedulable unit: replication `rep` of sweep point `point`.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RepTask {
    /// Index into the sweep's utilization grid.
    pub point: usize,
    /// The replication index (feeds [`super::replication_seed`]).
    pub rep: u64,
}

/// Per-point completed state plus the stopping rule that plans rounds.
pub struct ReplicationQueue {
    rule: StoppingRule,
    runs: Vec<Vec<SimOutcome>>,
    failures: Vec<Vec<FailedReplication>>,
}

impl ReplicationQueue {
    /// An empty queue over `n_points` sweep points.
    pub fn new(n_points: usize, rule: StoppingRule) -> Self {
        ReplicationQueue {
            rule,
            runs: vec![Vec::new(); n_points],
            failures: vec![Vec::new(); n_points],
        }
    }

    /// A queue resumed from checkpointed state (completed runs and
    /// failures per point, in replication order). The next plan
    /// continues exactly where the checkpointed engine would have.
    pub fn resume(
        rule: StoppingRule,
        runs: Vec<Vec<SimOutcome>>,
        failures: Vec<Vec<FailedReplication>>,
    ) -> Self {
        assert_eq!(runs.len(), failures.len(), "per-point state out of step");
        ReplicationQueue { rule, runs, failures }
    }

    /// Plans the next round: for every point the stopping rule keeps
    /// open, the consecutive replication indices it is owed. An empty
    /// plan means the sweep is complete.
    pub fn plan_round(&self) -> Vec<RepTask> {
        self.runs
            .iter()
            .zip(&self.failures)
            .enumerate()
            .flat_map(|(point, (runs, failures))| {
                let spent = (runs.len() + failures.len()) as u64;
                let saturated = runs.iter().any(|r| r.saturated);
                let add = self.rule.plan(spent, saturated, &response_estimate(runs));
                (spent..spent + add).map(move |rep| RepTask { point, rep })
            })
            .collect()
    }

    /// Records one task's result. Must be called in plan order per
    /// point (the engine replays each round's tasks in order), so runs
    /// and failures stay sorted by replication index.
    pub fn record(&mut self, task: RepTask, seed: u64, result: Result<SimOutcome, String>) {
        match result {
            Ok(outcome) => self.runs[task.point].push(outcome),
            Err(cause) => {
                self.failures[task.point].push(FailedReplication { rep: task.rep, seed, cause })
            }
        }
    }

    /// The number of points the stopping rule still keeps open.
    pub fn open_points(&self) -> usize {
        self.runs
            .iter()
            .zip(&self.failures)
            .filter(|(runs, failures)| {
                let spent = (runs.len() + failures.len()) as u64;
                let saturated = runs.iter().any(|r| r.saturated);
                self.rule.plan(spent, saturated, &response_estimate(runs)) > 0
            })
            .count()
    }

    /// The completed state, for checkpointing.
    pub fn state(&self) -> (&[Vec<SimOutcome>], &[Vec<FailedReplication>]) {
        (&self.runs, &self.failures)
    }

    /// Consumes the queue into aggregated sweep points.
    pub fn into_points(self, utilizations: &[f64]) -> Vec<SweepPoint> {
        assert_eq!(utilizations.len(), self.runs.len(), "grid/state mismatch");
        utilizations
            .iter()
            .zip(self.runs.into_iter().zip(self.failures))
            .map(|(&u, (runs, failures))| SweepPoint {
                target_utilization: u,
                outcome: aggregate(runs, failures),
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rule() -> StoppingRule {
        StoppingRule::new(0.05, 2, 4)
    }

    #[test]
    fn a_fresh_queue_plans_the_minimum_for_every_point() {
        let q = ReplicationQueue::new(2, rule());
        let plan = q.plan_round();
        assert_eq!(
            plan,
            vec![
                RepTask { point: 0, rep: 0 },
                RepTask { point: 0, rep: 1 },
                RepTask { point: 1, rep: 0 },
                RepTask { point: 1, rep: 1 },
            ]
        );
        assert_eq!(q.open_points(), 2);
    }

    #[test]
    fn failures_consume_indices_without_reissue() {
        let mut q = ReplicationQueue::new(1, rule());
        q.record(RepTask { point: 0, rep: 0 }, 17, Err("boom".into()));
        q.record(RepTask { point: 0, rep: 1 }, 18, Err("boom".into()));
        // Two spent, zero observations: the rule plans more (towards the
        // cap), starting at index 2 — indices 0 and 1 are never reused.
        let plan = q.plan_round();
        assert_eq!(plan.first(), Some(&RepTask { point: 0, rep: 2 }));
        let (runs, failures) = q.state();
        assert!(runs[0].is_empty());
        assert_eq!(failures[0].len(), 2);
        assert_eq!(failures[0][0].rep, 0);
        assert_eq!(failures[0][0].seed, 17);
    }

    #[test]
    fn resume_plans_exactly_like_the_uninterrupted_queue() {
        let mut live = ReplicationQueue::new(1, rule());
        live.record(RepTask { point: 0, rep: 0 }, 1, Err("x".into()));
        live.record(RepTask { point: 0, rep: 1 }, 2, Err("y".into()));
        let (runs, failures) = live.state();
        let resumed = ReplicationQueue::resume(rule(), runs.to_vec(), failures.to_vec());
        assert_eq!(live.plan_round(), resumed.plan_round());
    }
}
