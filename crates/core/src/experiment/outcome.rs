//! What a sweep point reports: per-replication outcomes aggregated into
//! estimates, plus the failures that consumed replication indices
//! without producing observations.

use desim::stats::{t_975, Estimate, Welford};

use crate::sim::SimOutcome;

/// A replication that panicked instead of producing a [`SimOutcome`].
///
/// The panic is caught at the worker ([`std::panic::catch_unwind`] in
/// [`super::pool`]), so one poisoned replication never takes down the
/// rest of the sweep. The failure keeps its replication index:
/// replication `rep` stays spent, and the seeds of every other
/// replication are unchanged.
#[derive(Clone, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub struct FailedReplication {
    /// The replication index that failed.
    pub rep: u64,
    /// The seed the replication ran on ([`super::replication_seed`]).
    pub seed: u64,
    /// The panic payload, when it was a string (the common case for
    /// `panic!`/`assert!`); a placeholder otherwise.
    pub cause: String,
}

/// Replication-aggregated results at one target utilization.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct ReplicatedOutcome {
    /// Mean response time with a 95 % CI over the means of the
    /// *non-saturated* replications (`n` counts those); a saturated
    /// run's mean response reflects queue blow-up, not steady state, so
    /// it never enters this estimate. When every replication saturated,
    /// the mean is 0 with an infinite half-width — consult `saturated`
    /// and `runs`.
    pub response: Estimate,
    /// Mean measured gross utilization across all replications.
    pub gross_utilization: f64,
    /// Mean measured net utilization across all replications.
    pub net_utilization: f64,
    /// Mean response of local-queue jobs (LS/LP) over replications that
    /// measured any; `None` when the class is empty everywhere (GS/SC).
    pub response_local: Option<f64>,
    /// Mean response of global-queue jobs (GS/LP) over replications
    /// that measured any; `None` when the class is empty everywhere.
    pub response_global: Option<f64>,
    /// Whether any replication saturated.
    pub saturated: bool,
    /// The individual runs, in replication order (failed replications
    /// are absent here — see `failures`).
    pub runs: Vec<SimOutcome>,
    /// Replications that panicked instead of completing, in replication
    /// order. Empty in a healthy sweep.
    pub failures: Vec<FailedReplication>,
}

/// One point of a sweep: the target utilization and what was measured.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SweepPoint {
    /// Target offered gross utilization.
    pub target_utilization: f64,
    /// Aggregated measurements.
    pub outcome: ReplicatedOutcome,
}

/// The CI over non-saturated replication mean responses. `n` is the
/// number of observations *kept*, not replications spent.
pub(crate) fn response_estimate(runs: &[SimOutcome]) -> Estimate {
    let mut resp = Welford::new();
    for r in runs.iter().filter(|r| !r.saturated) {
        resp.add(r.metrics.mean_response);
    }
    let k = resp.count();
    let half =
        if k >= 2 { t_975(k - 1) * resp.std_dev() / (k as f64).sqrt() } else { f64::INFINITY };
    Estimate { mean: resp.mean(), half_width: half, n: k }
}

pub(crate) fn aggregate(
    runs: Vec<SimOutcome>,
    failures: Vec<FailedReplication>,
) -> ReplicatedOutcome {
    assert!(!runs.is_empty() || !failures.is_empty());
    let response = response_estimate(&runs);
    let mut gross = Welford::new();
    let mut net = Welford::new();
    let mut local = Welford::new();
    let mut global = Welford::new();
    let mut saturated = false;
    for r in &runs {
        gross.add(r.metrics.gross_utilization);
        net.add(r.metrics.net_utilization);
        // Empty classes are None, not 0.0: averaging a GS run's absent
        // local-queue mean as zero used to poison the aggregate.
        if let Some(x) = r.metrics.response_local {
            local.add(x);
        }
        if let Some(x) = r.metrics.response_global {
            global.add(x);
        }
        saturated |= r.saturated;
    }
    ReplicatedOutcome {
        response,
        gross_utilization: gross.mean(),
        net_utilization: net.mean(),
        response_local: local.mean_opt(),
        response_global: global.mean_opt(),
        saturated,
        runs,
        failures,
    }
}
