//! Response-time-vs-utilization sweeps — the machinery behind every
//! figure in the paper's evaluation — layered as an engine:
//!
//! * [`grid`] — what a sweep *is*: the [`SweepConfig`] scenario grid and
//!   its fingerprint ([`point_digest`] / [`sweep_digest`]), the identity
//!   under which results may be cached, checkpointed, and shared.
//! * [`queue`] — the resumable [`ReplicationQueue`]: plans each round of
//!   `(point, replication)` tasks purely from completed state, so
//!   results are deterministic for a fixed seed at any thread count.
//! * [`pool`] — the persistent [`WorkerPool`] the tasks run on:
//!   lock-free task claiming, panic isolation per replication,
//!   concurrent submitters sharing one set of workers.
//! * [`cache`] — the [`ScenarioCache`]: memoized per-replication
//!   outcomes keyed by `(scenario digest, base seed, replication)`, so
//!   overlapping sweeps share replications bit-identically.
//! * [`checkpoint`] — fingerprinted on-disk resume state, written
//!   atomically after every round.
//! * [`store`] — the crash-safe [`ResultStore`]: an append-only,
//!   checksummed segment log behind the cache, so a restarted daemon
//!   answers previously computed replications from disk instead of
//!   re-executing them.
//! * [`cancel`] — the cooperative [`CancelToken`] checked at
//!   replication boundaries, so a request can be cancelled or timed out
//!   without losing completed work or wedging its peers.
//!
//! [`sweep`], [`compare`], and the saturation search are thin clients of
//! [`sweep_on`], which wires the five layers together; `coalloc-exp
//! serve` drives the same entry point with a long-lived pool and cache.
//!
//! Replication seeds are derived via [`RngStream::substream`] from the
//! base seed and the replication index *only*, so two sweeps with the
//! same base seed see common random numbers at every replication across
//! policies and utilizations — the variance-reduction discipline behind
//! [`compare_sweeps`], and the reason overlapping grids can share cached
//! replications.

pub mod cache;
pub mod cancel;
pub mod checkpoint;
pub mod grid;
pub mod outcome;
pub mod pool;
pub mod queue;
pub mod store;

pub use cache::ScenarioCache;
pub use cancel::{CancelReason, CancelToken};
pub use checkpoint::{SweepCheckpoint, CHECKPOINT_VERSION};
pub use grid::{point_digest, sweep_digest, SweepConfig};
pub use outcome::{FailedReplication, ReplicatedOutcome, SweepPoint};
pub use pool::WorkerPool;
pub use queue::{RepTask, ReplicationQueue};
pub use store::{RecoveryReport, ResultStore};

use desim::RngStream;

use crate::sim::SimConfig;

/// Poison-safe lock used across the experiment layer: a panicking
/// holder leaves the guarded data intact (every critical section here
/// is a single insert/claim/append), so recover the guard instead of
/// cascading the panic into every later request of a long-lived daemon.
pub(crate) fn relock<T>(m: &std::sync::Mutex<T>) -> std::sync::MutexGuard<'_, T> {
    m.lock().unwrap_or_else(std::sync::PoisonError::into_inner)
}

/// The master seed of replication `rep` under `base_seed`: an
/// independent substream derived from `(base_seed, rep)` alone. Every
/// policy and utilization sees the *same* seed at replication `rep`, so
/// compared sweeps run on common random numbers, and adding utilization
/// points or changing the policy never reshuffles the randomness of
/// existing replications.
pub fn replication_seed(base_seed: u64, rep: u64) -> u64 {
    RngStream::new(base_seed).substream(rep).seed()
}

/// What one engine round did; streamed to [`sweep_on`]'s observer as the
/// round completes (the hook behind `coalloc-exp serve`'s progress
/// events).
#[derive(Clone, Copy, Debug)]
pub struct RoundReport {
    /// 1-based round number.
    pub round: usize,
    /// Tasks the queue planned this round.
    pub tasks: usize,
    /// Tasks answered from the scenario cache (memory and disk).
    pub cache_hits: usize,
    /// Cache hits answered by rehydrating the backing disk store (a
    /// subset of `cache_hits`; 0 without a store).
    pub disk_hits: usize,
    /// Tasks that actually simulated.
    pub executed: usize,
    /// Points the stopping rule still keeps open after the round.
    pub open_points: usize,
}

/// Where a finished sweep's replications came from.
#[derive(Clone, Copy, Debug, Default)]
pub struct SweepStats {
    /// Engine rounds run.
    pub rounds: usize,
    /// Replications that simulated.
    pub executed: u64,
    /// Replications answered from the scenario cache (memory and disk).
    pub cache_hits: u64,
    /// Cache hits answered by rehydrating the backing disk store (a
    /// subset of `cache_hits`; 0 without a store).
    pub disk_hits: u64,
    /// Replications recovered from the checkpoint before round one.
    pub resumed: u64,
}

/// Runs an adaptive sweep on an existing [`WorkerPool`], optionally
/// memoizing replications in a [`ScenarioCache`] and reporting each
/// round to `on_round`. This is the full engine; [`sweep`] and
/// [`compare`] are thin wrappers, and `coalloc-exp serve` calls it with
/// a process-lifetime pool and cache shared across requests.
///
/// `make_cfg` builds the simulation template for a target utilization;
/// it is called once per point, on the calling thread. The engine
/// replicates every point until its relative 95 % CI meets
/// `rel_ci_target` (or the cap / saturation ends it), planning each
/// round from completed state only, so the result is bit-identical for
/// a fixed base seed at any pool width, with or without the cache, and
/// across checkpoint interruptions.
pub fn sweep_on<F, R>(
    pool: &WorkerPool,
    cache: Option<&ScenarioCache>,
    make_cfg: F,
    sweep_cfg: &SweepConfig,
    on_round: R,
) -> (Vec<SweepPoint>, SweepStats)
where
    F: Fn(f64) -> SimConfig,
    R: FnMut(&RoundReport),
{
    sweep_on_cancellable(pool, cache, make_cfg, sweep_cfg, None, on_round)
        .expect("sweeps without a token never cancel")
}

/// [`sweep_on`] under a cooperative [`CancelToken`]: the token is
/// checked at every round boundary, before each replication a worker
/// starts, and while waiting on a peer's reservation. Once it fires the
/// sweep returns `Err(CancelReason)` promptly — replications already
/// executing finish first (cancellation lands at replication
/// boundaries, never mid-simulation), completed results are still
/// published to the cache (and its store) for whoever asks next, and
/// every unfulfilled reservation is dropped so waiting peers re-claim
/// and finish the work themselves. A cancelled sweep records nothing:
/// the checkpoint and the returned points are all-or-nothing, so
/// cancellation can never perturb the bit-identical results of a later
/// uncancelled run.
pub fn sweep_on_cancellable<F, R>(
    pool: &WorkerPool,
    cache: Option<&ScenarioCache>,
    make_cfg: F,
    sweep_cfg: &SweepConfig,
    cancel: Option<&CancelToken>,
    mut on_round: R,
) -> Result<(Vec<SweepPoint>, SweepStats), CancelReason>
where
    F: Fn(f64) -> SimConfig,
    R: FnMut(&RoundReport),
{
    sweep_cfg.validate();
    // One template per point; replications clone it and swap the seed.
    // The digests fingerprint the whole scenario (seed normalized out).
    let templates: Vec<SimConfig> = sweep_cfg.utilizations.iter().map(|&u| make_cfg(u)).collect();
    let digests: Vec<u64> = templates.iter().map(point_digest).collect();
    let scenario = sweep_digest(sweep_cfg.base_seed, &digests);

    let mut stats = SweepStats::default();
    let mut queue = match sweep_cfg
        .checkpoint
        .as_deref()
        .and_then(|p| checkpoint::load_checkpoint(p, sweep_cfg, scenario))
    {
        Some((runs, failures)) => {
            stats.resumed = runs.iter().map(Vec::len).sum::<usize>() as u64
                + failures.iter().map(Vec::len).sum::<usize>() as u64;
            ReplicationQueue::resume(sweep_cfg.rule(), runs, failures)
        }
        None => ReplicationQueue::new(templates.len(), sweep_cfg.rule()),
    };

    loop {
        if let Some(reason) = cancel.and_then(CancelToken::state) {
            return Err(reason);
        }
        let plan = queue.plan_round();
        if plan.is_empty() {
            break;
        }
        stats.rounds += 1;

        // Results land in slots aligned with the plan so recording stays
        // strictly in plan order — per-point runs must be in replication
        // order or aggregates (and stopping decisions) would drift.
        //
        // With a cache, the deadlock-free sharing protocol (see
        // [`cache`]): claim every task without blocking — hits fill
        // their slots, fresh reservations become this round's pool
        // batch, keys a concurrent sweep already reserved are deferred —
        // then execute and fulfil our own reservations, and only then
        // wait on the peers'. An abandoned peer reservation (its sweep
        // panicked) comes back `None`; re-claim and execute it ourselves.
        let mut slots: Vec<Option<Result<crate::sim::SimOutcome, String>>> =
            (0..plan.len()).map(|_| None).collect();
        let mut cache_hits = 0usize;
        let mut disk_hits = 0usize;
        let mut round_executed = 0usize;
        let mut pending: Vec<usize> = (0..plan.len()).collect();
        while !pending.is_empty() {
            let mut miss_slots = Vec::new();
            let mut miss_res: Vec<Option<cache::Reservation<'_>>> = Vec::new();
            let mut miss_cfgs = Vec::new();
            let mut busy = Vec::new();
            for i in pending {
                let task = plan[i];
                let seed = replication_seed(sweep_cfg.base_seed, task.rep);
                match cache.map(|c| c.claim(digests[task.point], sweep_cfg.base_seed, task.rep)) {
                    Some(cache::Claim::Hit { result, disk }) => {
                        slots[i] = Some(*result);
                        cache_hits += 1;
                        disk_hits += usize::from(disk);
                    }
                    Some(cache::Claim::Busy) => busy.push(i),
                    Some(cache::Claim::Reserved(res)) => {
                        miss_slots.push(i);
                        miss_res.push(Some(res));
                        miss_cfgs.push(templates[task.point].clone().with_seed(seed));
                    }
                    None => {
                        miss_slots.push(i);
                        miss_res.push(None);
                        miss_cfgs.push(templates[task.point].clone().with_seed(seed));
                    }
                }
            }
            let results = pool.run_cancellable(miss_cfgs, sweep_cfg.audit, cancel);
            let mut skipped = false;
            let mut batch_executed = 0usize;
            for ((i, res), result) in miss_slots.into_iter().zip(miss_res).zip(results) {
                match result {
                    Some(result) => {
                        batch_executed += 1;
                        // Completed replications are published even when
                        // the round is about to be abandoned: they are
                        // valid, deterministic results a peer (or the
                        // retried request) reuses.
                        if let Some(res) = res {
                            res.fulfil(result.clone());
                        }
                        slots[i] = Some(result);
                    }
                    // A skipped task: the token fired mid-batch. Its
                    // reservation drops here, waking waiting peers to
                    // re-claim and execute the key themselves.
                    None => skipped = true,
                }
            }
            round_executed += batch_executed;
            stats.executed += batch_executed as u64;
            if skipped {
                return Err(cancel
                    .and_then(CancelToken::state)
                    .unwrap_or(cancel::CancelReason::Cancelled));
            }
            pending = Vec::new();
            for i in busy {
                let task = plan[i];
                let c = cache.expect("busy claims only happen with a cache");
                // We hold no reservations past this point, so abandoning
                // the wait on cancellation blocks nobody.
                match c.wait_cancellable(digests[task.point], sweep_cfg.base_seed, task.rep, cancel)
                {
                    Ok(Some(r)) => {
                        slots[i] = Some(r);
                        cache_hits += 1;
                    }
                    Ok(None) => pending.push(i),
                    Err(reason) => return Err(reason),
                }
            }
        }
        stats.cache_hits += cache_hits as u64;
        stats.disk_hits += disk_hits as u64;

        for (task, slot) in plan.iter().zip(slots) {
            let seed = replication_seed(sweep_cfg.base_seed, task.rep);
            queue.record(*task, seed, slot.expect("every planned task resolved"));
        }

        if let Some(path) = sweep_cfg.checkpoint.as_deref() {
            let (runs, failures) = queue.state();
            checkpoint::save_checkpoint(path, sweep_cfg, scenario, runs, failures);
        }
        on_round(&RoundReport {
            round: stats.rounds,
            tasks: plan.len(),
            cache_hits,
            disk_hits,
            executed: round_executed,
            open_points: queue.open_points(),
        });
    }

    Ok((queue.into_points(&sweep_cfg.utilizations), stats))
}

/// Runs an adaptive sweep: `make_cfg` builds the simulation for a target
/// utilization; the engine replicates every point until its relative
/// 95 % CI meets `rel_ci_target` (or the cap / saturation ends it),
/// running each round's mixed batch through the worker pool. A
/// convenience over [`sweep_on`] with a sweep-lifetime pool and no
/// cache.
pub fn sweep<F>(make_cfg: F, sweep_cfg: &SweepConfig) -> Vec<SweepPoint>
where
    F: Fn(f64) -> SimConfig,
{
    let pool = WorkerPool::new(sweep_cfg.resolved_threads());
    sweep_on(&pool, None, make_cfg, sweep_cfg, |_| {}).0
}

/// The verdict of a statistical comparison at one utilization.
#[derive(Clone, Copy, Debug, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Verdict {
    /// A's mean response is significantly lower (95 % CIs disjoint).
    AWins,
    /// B's mean response is significantly lower.
    BWins,
    /// The confidence intervals overlap — no significant difference.
    Tie,
}

/// Compares two sweeps point by point using the replication confidence
/// intervals: a side "wins" at a utilization when its CI lies entirely
/// below the other's. Sweeps must use the same target-utilization grid.
///
/// # Panics
/// Panics if the grids differ.
pub fn compare_sweeps(a: &[SweepPoint], b: &[SweepPoint]) -> Vec<(f64, Verdict)> {
    assert_eq!(a.len(), b.len(), "sweeps must share the utilization grid");
    a.iter()
        .zip(b)
        .map(|(pa, pb)| {
            assert!(
                (pa.target_utilization - pb.target_utilization).abs() < 1e-9,
                "sweeps must share the utilization grid"
            );
            let (ra, rb) = (&pa.outcome.response, &pb.outcome.response);
            let a_sat = pa.outcome.saturated;
            let b_sat = pb.outcome.saturated;
            let verdict = if a_sat != b_sat {
                // Only one side is unstable: the stable side wins.
                if a_sat {
                    Verdict::BWins
                } else {
                    Verdict::AWins
                }
            } else if ra.mean + ra.half_width < rb.mean - rb.half_width {
                Verdict::AWins
            } else if rb.mean + rb.half_width < ra.mean - ra.half_width {
                Verdict::BWins
            } else {
                Verdict::Tie
            };
            (pa.target_utilization, verdict)
        })
        .collect()
}

/// Runs two adaptive sweeps on the *same* base seed (common random
/// numbers: replication `r` of either side sees identical arrivals and
/// service draws) and the *same* worker pool, and compares them point by
/// point.
///
/// # Panics
/// Panics if `sweep_cfg.checkpoint` is set — the two sweeps would
/// clobber one file; checkpoint each side separately via [`sweep`].
pub fn compare<FA, FB>(
    make_a: FA,
    make_b: FB,
    sweep_cfg: &SweepConfig,
) -> (Vec<SweepPoint>, Vec<SweepPoint>, Vec<(f64, Verdict)>)
where
    FA: Fn(f64) -> SimConfig,
    FB: Fn(f64) -> SimConfig,
{
    assert!(
        sweep_cfg.checkpoint.is_none(),
        "compare runs two sweeps; checkpoint each separately via sweep()"
    );
    let pool = WorkerPool::new(sweep_cfg.resolved_threads());
    let (a, _) = sweep_on(&pool, None, make_a, sweep_cfg, |_| {});
    let (b, _) = sweep_on(&pool, None, make_b, sweep_cfg, |_| {});
    let verdicts = compare_sweeps(&a, &b);
    (a, b, verdicts)
}
