//! The persistent, panic-isolating worker pool every replication runs
//! on.
//!
//! Earlier revisions spawned a fresh set of scoped threads for every
//! sweep round; a long-running service cannot afford that, so the pool
//! is now a first-class object: `N` workers live for the pool's
//! lifetime, batches of [`SimConfig`]s are submitted from any thread
//! (concurrent submitters interleave on the same workers), and each
//! batch's results come back slotted by task index.
//!
//! The hot path is lock-free: workers claim task indices from one
//! atomic cursor per batch, so runs never contend on a results lock.
//! Because results are re-slotted by index after completion, the
//! outcome of a batch is deterministic whatever the interleaving or
//! worker count.
//!
//! Each replication runs under [`std::panic::catch_unwind`]: a panic
//! (invariant violation under `audit`, a configuration bug) becomes an
//! `Err` carrying the panic message instead of unwinding the worker, so
//! the remaining tasks — and every later batch — still run.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar, Mutex};

use super::cancel::CancelToken;
use super::relock;
use crate::audit::InvariantAuditor;
use crate::sim::{SimBuilder, SimConfig, SimOutcome};

/// The payload of a caught replication panic, rendered as a string.
/// `panic!`/`assert!` payloads are `&str` or `String`; anything else
/// (a `panic_any` with a custom type) gets a placeholder.
fn panic_cause(payload: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = payload.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = payload.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

/// Runs one replication, catching panics. Under `audit` a fresh
/// [`InvariantAuditor`] observes the run and any violation panics —
/// which this function then catches like any other replication failure.
pub(crate) fn execute_isolated(cfg: &SimConfig, audit: bool) -> Result<SimOutcome, String> {
    std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
        if audit {
            let mut auditor = InvariantAuditor::new(cfg);
            let outcome = SimBuilder::new(cfg).run_observed(&mut auditor);
            assert!(
                auditor.is_clean(),
                "invariant violations at seed {}: {}",
                cfg.seed,
                auditor.report()
            );
            outcome
        } else {
            SimBuilder::new(cfg).run()
        }
    }))
    .map_err(panic_cause)
}

/// One submitted unit of work: a batch of replications and its result
/// slots. Shared between the submitter (which waits on `done`) and the
/// workers (which claim indices from `next`).
struct Batch {
    cfgs: Vec<SimConfig>,
    audit: bool,
    /// When set, workers check the token before starting each task and
    /// skip (leaving the slot empty) once it fires — cancellation is
    /// cooperative at replication granularity, never mid-simulation.
    cancel: Option<CancelToken>,
    /// The lock-free task cursor: `fetch_add` claims the next index.
    next: AtomicUsize,
    /// Results, slotted by task index as workers finish.
    slots: Vec<Mutex<Option<Result<SimOutcome, String>>>>,
    /// Completed-task count; the batch is done when it reaches
    /// `cfgs.len()`, signalled through `done`.
    progress: Mutex<usize>,
    done: Condvar,
}

impl Batch {
    fn is_exhausted(&self) -> bool {
        self.next.load(Ordering::Relaxed) >= self.cfgs.len()
    }
}

struct PoolState {
    /// Batches with unclaimed tasks, in submission order. Fully claimed
    /// batches are popped by whichever worker notices.
    batches: VecDeque<Arc<Batch>>,
    shutdown: bool,
}

struct Shared {
    state: Mutex<PoolState>,
    work_ready: Condvar,
}

/// A persistent pool of simulation workers; see the module docs.
///
/// Dropping the pool shuts the workers down after the queued batches
/// drain (submitters hold the batch until completion, so no submitted
/// work is ever lost).
pub struct WorkerPool {
    shared: Arc<Shared>,
    workers: Vec<std::thread::JoinHandle<()>>,
}

impl WorkerPool {
    /// Spawns a pool of `threads` workers (0 = one per available core).
    pub fn new(threads: usize) -> Self {
        let threads = if threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            threads
        };
        let shared = Arc::new(Shared {
            state: Mutex::new(PoolState { batches: VecDeque::new(), shutdown: false }),
            work_ready: Condvar::new(),
        });
        let workers = (0..threads)
            .map(|_| {
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || worker_loop(&shared))
            })
            .collect();
        WorkerPool { shared, workers }
    }

    /// The number of worker threads.
    pub fn threads(&self) -> usize {
        self.workers.len()
    }

    /// Runs a batch of replications and returns results in task order.
    /// Blocks until the batch completes; concurrent callers share the
    /// same workers, their batches interleaving at task granularity.
    pub fn run(&self, cfgs: Vec<SimConfig>, audit: bool) -> Vec<Result<SimOutcome, String>> {
        self.run_cancellable(cfgs, audit, None)
            .into_iter()
            .map(|slot| slot.expect("uncancellable batches fill every slot"))
            .collect()
    }

    /// [`run`](Self::run) under a cooperative [`CancelToken`]: workers
    /// check the token before starting each task, so once it fires the
    /// remaining tasks are *skipped* and come back `None` (tasks already
    /// executing finish — cancellation lands at replication
    /// boundaries). Without a token every slot is `Some`.
    pub fn run_cancellable(
        &self,
        cfgs: Vec<SimConfig>,
        audit: bool,
        cancel: Option<&CancelToken>,
    ) -> Vec<Option<Result<SimOutcome, String>>> {
        if cfgs.is_empty() {
            return Vec::new();
        }
        let n = cfgs.len();
        let batch = Arc::new(Batch {
            slots: (0..n).map(|_| Mutex::new(None)).collect(),
            next: AtomicUsize::new(0),
            progress: Mutex::new(0),
            done: Condvar::new(),
            cancel: cancel.cloned(),
            cfgs,
            audit,
        });
        relock(&self.shared.state).batches.push_back(Arc::clone(&batch));
        self.shared.work_ready.notify_all();
        let mut completed = relock(&batch.progress);
        while *completed < n {
            completed =
                batch.done.wait(completed).unwrap_or_else(std::sync::PoisonError::into_inner);
        }
        drop(completed);
        batch.slots.iter().map(|s| relock(s).take()).collect()
    }

    /// [`run`](Self::run) for callers that treat a replication panic as
    /// fatal (e.g. saturation search, where a lost run would silently
    /// bias the boundary estimate): the first failure is re-raised.
    pub fn run_or_panic(&self, cfgs: Vec<SimConfig>, audit: bool) -> Vec<SimOutcome> {
        self.run(cfgs, audit)
            .into_iter()
            .map(|r| r.unwrap_or_else(|cause| panic!("replication panicked: {cause}")))
            .collect()
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        relock(&self.shared.state).shutdown = true;
        self.shared.work_ready.notify_all();
        for w in self.workers.drain(..) {
            let _ = w.join();
        }
    }
}

fn worker_loop(shared: &Shared) {
    loop {
        // Find the oldest batch with unclaimed work, discarding fully
        // claimed ones; park when there is none.
        let batch = {
            let mut st = relock(&shared.state);
            loop {
                while st.batches.front().is_some_and(|b| b.is_exhausted()) {
                    st.batches.pop_front();
                }
                if let Some(b) = st.batches.front() {
                    break Arc::clone(b);
                }
                if st.shutdown {
                    return;
                }
                st = shared.work_ready.wait(st).unwrap_or_else(std::sync::PoisonError::into_inner);
            }
        };
        // Drain the batch: claim indices lock-free until it runs dry. A
        // fired cancel token skips the remaining tasks (slots stay
        // empty) but still counts them, so the submitter wakes promptly.
        loop {
            let i = batch.next.fetch_add(1, Ordering::Relaxed);
            let Some(cfg) = batch.cfgs.get(i) else { break };
            if !batch.cancel.as_ref().is_some_and(CancelToken::is_cancelled) {
                let result = execute_isolated(cfg, batch.audit);
                *relock(&batch.slots[i]) = Some(result);
            }
            let mut done = relock(&batch.progress);
            *done += 1;
            if *done == batch.cfgs.len() {
                batch.done.notify_all();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    fn tiny(util: f64, seed: u64) -> SimConfig {
        let mut cfg = SimConfig::das(PolicyKind::Gs, 16, util);
        cfg.total_jobs = 800;
        cfg.warmup_jobs = 100;
        cfg.batch_size = 50;
        cfg.with_seed(seed)
    }

    #[test]
    fn results_come_back_in_task_order_at_any_width() {
        let cfgs: Vec<SimConfig> = (0..6).map(|i| tiny(0.3, 2003 + i)).collect();
        let serial = WorkerPool::new(1).run(cfgs.clone(), false);
        let wide = WorkerPool::new(4).run(cfgs, false);
        assert_eq!(serial.len(), 6);
        for (a, b) in serial.iter().zip(&wide) {
            let (a, b) = (a.as_ref().unwrap(), b.as_ref().unwrap());
            assert_eq!(a.metrics.mean_response, b.metrics.mean_response);
        }
    }

    #[test]
    fn a_pool_outlives_many_batches_and_concurrent_submitters() {
        let pool = Arc::new(WorkerPool::new(2));
        let solo = pool.run(vec![tiny(0.3, 7)], false);
        let handles: Vec<_> = (0..3)
            .map(|k| {
                let pool = Arc::clone(&pool);
                std::thread::spawn(move || pool.run(vec![tiny(0.3, 7), tiny(0.4, 7 + k)], false))
            })
            .collect();
        for h in handles {
            let rs = h.join().expect("submitter");
            // Task 0 is the same config everywhere: results must agree
            // with the solo batch bit for bit.
            assert_eq!(
                rs[0].as_ref().unwrap().metrics.mean_response,
                solo[0].as_ref().unwrap().metrics.mean_response
            );
        }
    }

    #[test]
    fn panics_are_isolated_per_task_and_workers_survive() {
        let pool = WorkerPool::new(2);
        let mut poisoned = tiny(0.3, 7);
        poisoned.warmup_jobs = poisoned.total_jobs; // fails validation inside the run
        let results = pool.run(vec![tiny(0.3, 7), poisoned, tiny(0.4, 7)], false);
        assert!(results[0].is_ok());
        assert!(results[1].as_ref().is_err_and(|e| e.contains("warm-up")));
        assert!(results[2].is_ok());
        // The pool is still alive and serves the next batch.
        assert!(pool.run(vec![tiny(0.3, 7)], false)[0].is_ok());
    }

    #[test]
    #[should_panic(expected = "replication panicked")]
    fn run_or_panic_reraises_the_first_failure() {
        let mut poisoned = tiny(0.3, 7);
        poisoned.warmup_jobs = poisoned.total_jobs;
        WorkerPool::new(1).run_or_panic(vec![poisoned], false);
    }

    #[test]
    fn a_poisoned_pool_lock_does_not_take_down_later_batches() {
        let pool = WorkerPool::new(2);
        let shared = Arc::clone(&pool.shared);
        let poisoner = std::thread::spawn(move || {
            let _guard = shared.state.lock().unwrap();
            panic!("poison the pool lock while holding it");
        });
        assert!(poisoner.join().is_err(), "the poisoner panics by design");
        // The pool lock is now poisoned. Before lock-poisoning recovery
        // this panicked on `.expect("pool lock")` — one crashed thread
        // wedged every later submitter — whereas a long-lived daemon
        // must keep serving.
        assert!(pool.run(vec![tiny(0.3, 7)], false)[0].is_ok());
    }

    #[test]
    fn a_fired_token_skips_every_remaining_task_and_the_pool_survives() {
        let pool = WorkerPool::new(2);
        let token = CancelToken::new();
        token.cancel();
        let skipped = pool.run_cancellable(vec![tiny(0.3, 7), tiny(0.4, 8)], false, Some(&token));
        assert_eq!(skipped.len(), 2);
        assert!(skipped.iter().all(Option::is_none), "a fired token skips every task");
        // The pool is unaffected: a token-free batch runs normally, and
        // a live token leaves results intact.
        let live = CancelToken::new();
        let results = pool.run_cancellable(vec![tiny(0.3, 7)], false, Some(&live));
        assert!(results[0].as_ref().expect("not skipped").is_ok());
    }
}
