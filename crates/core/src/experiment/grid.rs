//! Sweep scenarios and their fingerprints.
//!
//! A sweep is a *scenario* — everything that determines a replication's
//! outcome except the replication index — crossed with a target-
//! utilization grid. The scenario is identified by a 64-bit digest of
//! the **full** simulation configuration (policy, system shape,
//! workload, disposition, discipline, faults, network, warm-up, run
//! lengths, …) with the per-replication seed normalized out. That
//! digest is the checkpoint fingerprint *and* the scenario-cache key:
//! two sweeps agree on a point's replication exactly when their digests
//! and base seeds agree, in which case the replication is bit-identical
//! and may be shared or resumed freely.

use std::path::PathBuf;

use desim::stopping::StoppingRule;

use crate::sim::SimConfig;

/// Configuration of a sweep over target gross utilizations.
#[derive(Clone, Debug)]
pub struct SweepConfig {
    /// The target gross utilizations to simulate (the x-axis).
    pub utilizations: Vec<f64>,
    /// Replications every point runs before the first assessment.
    pub min_replications: u64,
    /// Hard cap on replications per point.
    pub max_replications: u64,
    /// Target relative 95 % half-width of the mean response per point
    /// (0.05 = ±5 %). Points stop adding replications once they meet it.
    pub rel_ci_target: f64,
    /// Base seed; replication `r` runs on the substream-derived seed
    /// [`super::replication_seed`]`(base_seed, r)` at every utilization.
    pub base_seed: u64,
    /// Worker threads; 0 means one per available core.
    pub threads: usize,
    /// Checkpoint file: completed replications are written here after
    /// every round, and a matching file is loaded before the first.
    pub checkpoint: Option<PathBuf>,
    /// Attach a fresh [`crate::audit::InvariantAuditor`] to every
    /// replication and panic on any violation. Observers are passive, so
    /// an audited sweep produces bit-identical results to an unaudited
    /// one — at the cost of the auditor's bookkeeping per event.
    pub audit: bool,
}

impl Default for SweepConfig {
    fn default() -> Self {
        SweepConfig {
            utilizations: (1..=9).map(|i| f64::from(i) * 0.1).collect(),
            min_replications: 3,
            max_replications: 12,
            rel_ci_target: 0.05,
            base_seed: 2003,
            threads: 0,
            checkpoint: None,
            audit: false,
        }
    }
}

impl SweepConfig {
    /// A reduced sweep for fast test/CI runs: fixed two replications
    /// (min = max), so the adaptive engine never adds rounds.
    pub fn quick() -> Self {
        SweepConfig {
            utilizations: vec![0.2, 0.4, 0.6],
            min_replications: 2,
            max_replications: 2,
            rel_ci_target: 0.05,
            base_seed: 2003,
            threads: 0,
            checkpoint: None,
            audit: false,
        }
    }

    /// Pins the engine to exactly `n` replications per point (min = max),
    /// recovering the classic fixed-replication design.
    pub fn fixed_replications(mut self, n: u64) -> Self {
        self.min_replications = n;
        self.max_replications = n;
        self
    }

    /// The worker-pool width this configuration asks for: `threads`,
    /// with 0 resolved to one per available core.
    pub(crate) fn resolved_threads(&self) -> usize {
        if self.threads == 0 {
            std::thread::available_parallelism().map(|n| n.get()).unwrap_or(4)
        } else {
            self.threads
        }
    }

    pub(crate) fn validate(&self) {
        assert!(!self.utilizations.is_empty(), "sweep needs at least one utilization");
        assert!(self.min_replications > 0, "sweep needs at least one replication");
        assert!(
            self.max_replications >= self.min_replications,
            "replication cap below the minimum"
        );
        assert!(
            self.rel_ci_target > 0.0 && self.rel_ci_target.is_finite(),
            "relative-CI target must be positive and finite"
        );
    }

    pub(crate) fn rule(&self) -> StoppingRule {
        StoppingRule::new(self.rel_ci_target, self.min_replications, self.max_replications)
    }
}

/// FNV-1a over a byte string: small, dependency-free, and stable for a
/// given build — exactly the lifetime a checkpoint, cache entry, or
/// store record has (all are optimizations over re-running, never
/// sources of truth). The result store frames every record with it.
pub(crate) fn fnv1a(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// The scenario digest of one sweep point: a hash of the complete
/// [`SimConfig`] with the seed normalized to zero (the sweep overwrites
/// it with [`super::replication_seed`] per replication, so it is not
/// part of the scenario). Every field that can change a replication's
/// outcome — policy, system, workload, faults, network, disposition,
/// discipline, warm-up, run lengths — feeds the digest through the
/// config's `Debug` rendering, so adding a scenario axis to `SimConfig`
/// automatically widens the fingerprint.
pub fn point_digest(cfg: &SimConfig) -> u64 {
    let normalized = cfg.clone().with_seed(0);
    fnv1a(format!("{normalized:?}").as_bytes())
}

/// The fingerprint of a whole sweep: the base seed and the per-point
/// scenario digests, folded in grid order. Checkpoints carry this value
/// and refuse to resume under any other scenario.
pub fn sweep_digest(base_seed: u64, point_digests: &[u64]) -> u64 {
    let mut bytes = Vec::with_capacity(8 * (1 + point_digests.len()));
    bytes.extend_from_slice(&base_seed.to_le_bytes());
    for d in point_digests {
        bytes.extend_from_slice(&d.to_le_bytes());
    }
    fnv1a(&bytes)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;

    #[test]
    fn digest_ignores_the_seed_but_nothing_else() {
        let cfg = SimConfig::das(PolicyKind::Gs, 16, 0.5);
        assert_eq!(point_digest(&cfg), point_digest(&cfg.clone().with_seed(99)));

        let mut other = cfg.clone();
        other.policy = PolicyKind::Ls;
        assert_ne!(point_digest(&cfg), point_digest(&other));

        let mut other = cfg.clone();
        other.disposition = coalloc_workload::JobDisposition::Moldable;
        assert_ne!(point_digest(&cfg), point_digest(&other));

        let mut other = cfg.clone();
        other.discipline = crate::queue::QueueDiscipline::Easy;
        assert_ne!(point_digest(&cfg), point_digest(&other));

        let mut other = cfg.clone();
        other.faults = Some(crate::fault::FaultSpec::parse("exp:50000:5000").unwrap());
        assert_ne!(point_digest(&cfg), point_digest(&other));

        let mut other = cfg.clone();
        other.network = Some("2".parse().unwrap());
        assert_ne!(point_digest(&cfg), point_digest(&other));

        let other = SimConfig::heterogeneous(
            PolicyKind::Gs,
            16,
            0.5,
            crate::system::SystemSpec::new([72, 32, 32, 32, 32]),
        );
        assert_ne!(point_digest(&cfg), point_digest(&other));
    }

    #[test]
    fn sweep_digest_depends_on_base_seed_and_grid_order() {
        let a = point_digest(&SimConfig::das(PolicyKind::Gs, 16, 0.3));
        let b = point_digest(&SimConfig::das(PolicyKind::Gs, 16, 0.5));
        assert_ne!(a, b, "different utilizations are different scenarios");
        assert_ne!(sweep_digest(2003, &[a, b]), sweep_digest(2004, &[a, b]));
        assert_ne!(sweep_digest(2003, &[a, b]), sweep_digest(2003, &[b, a]));
        assert_eq!(sweep_digest(2003, &[a, b]), sweep_digest(2003, &[a, b]));
    }
}
