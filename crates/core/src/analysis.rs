//! Static packing analysis (§3.3).
//!
//! The paper explains the poor performance of component-size limit 24
//! by hand: a size-64 job splits into (22,21,21), and after placing it
//! in an empty 4×32 system "only single-component jobs with maximum
//! sizes of 10 and 11 can fit in three of the clusters … a second job
//! with a size of 64 would also fit in the first two cases, but not in
//! the third." This module mechanizes that reasoning for any size,
//! limit and system, so the packing structure of a workload can be
//! inspected without running a simulation.

use coalloc_workload::JobRequest;

use crate::placement::{place_request, PlacementRule};
use crate::report::format_table;
use crate::system::MultiCluster;

/// The idle vector (descending) left after placing `request` in an empty
/// system, or `None` if it does not even fit alone.
pub fn residual_idle(
    capacities: &[u32],
    request: &JobRequest,
    rule: PlacementRule,
) -> Option<Vec<u32>> {
    let mut system = MultiCluster::new(capacities);
    let placement = place_request(system.idle_per_cluster(), request, rule)?;
    system.apply(&placement);
    let mut idle = system.idle_per_cluster().to_vec();
    idle.sort_unstable_by(|a, b| b.cmp(a));
    Some(idle)
}

/// Whether `second` fits after `first` has been placed in an empty
/// system.
pub fn fits_after(
    capacities: &[u32],
    first: &JobRequest,
    second: &JobRequest,
    rule: PlacementRule,
) -> bool {
    let mut system = MultiCluster::new(capacities);
    let Some(p1) = place_request(system.idle_per_cluster(), first, rule) else {
        return false;
    };
    system.apply(&p1);
    place_request(system.idle_per_cluster(), second, rule).is_some()
}

/// Whether two jobs of the same total size co-fit in an empty system
/// under the given component-size limit — the paper's litmus test for a
/// good limit (it fails for size 64 at limit 24).
///
/// ```
/// use coalloc_core::{self_compatible, PlacementRule};
/// let das = [32, 32, 32, 32];
/// assert!(self_compatible(&das, 64, 16, PlacementRule::WorstFit));
/// assert!(!self_compatible(&das, 64, 24, PlacementRule::WorstFit)); // §3.3
/// ```
pub fn self_compatible(capacities: &[u32], total: u32, limit: u32, rule: PlacementRule) -> bool {
    let clusters = capacities.len();
    let r = JobRequest::from_total(total, limit, clusters);
    fits_after(capacities, &r, &r, rule)
}

/// One row of the packing report: how a size splits under a limit and
/// what it leaves behind.
#[derive(Clone, Debug, PartialEq, serde::Serialize, serde::Deserialize)]
pub struct PackingRow {
    /// Total job size.
    pub total: u32,
    /// The split components.
    pub components: Vec<u32>,
    /// Idle vector (descending) after placement in an empty 4×32 system.
    pub residual: Vec<u32>,
    /// Whether a second identical job still fits.
    pub self_compatible: bool,
}

/// The packing structure of the popular (power-of-two) sizes under a
/// limit, on the paper's 4×32 system.
pub fn packing_rows(limit: u32) -> Vec<PackingRow> {
    let capacities = [32u32; 4];
    coalloc_trace::TABLE1_POWERS
        .iter()
        .map(|&(total, _)| {
            let r = JobRequest::from_total(total, limit, 4);
            PackingRow {
                total,
                components: r.components().to_vec(),
                residual: residual_idle(&capacities, &r, PlacementRule::WorstFit)
                    .expect("powers of two always fit an empty 4x32 system"),
                self_compatible: self_compatible(
                    &capacities,
                    total,
                    limit,
                    PlacementRule::WorstFit,
                ),
            }
        })
        .collect()
}

/// Renders the packing report for one limit as a table.
pub fn packing_report(limit: u32) -> String {
    let rows: Vec<Vec<String>> = packing_rows(limit)
        .into_iter()
        .map(|r| {
            vec![
                r.total.to_string(),
                format!("{:?}", r.components),
                format!("{:?}", r.residual),
                if r.self_compatible { "yes" } else { "NO" }.to_string(),
            ]
        })
        .collect();
    format_table(
        &format!("Packing analysis, component-size limit {limit} (empty 4x32 system, Worst Fit)"),
        &["size", "split", "idle after placement", "2nd identical job fits?"],
        &rows,
    )
}

/// How many *identical* copies of `request` fit in an empty system,
/// placing greedily one after another. For a workload of identical jobs
/// under constant backlog, the maximal utilization is exactly
/// `count · total / capacity` — an analytic anchor for the saturation
/// machinery (the multicluster analogue of `floor(c/s)·s/c`).
pub fn max_identical_packing(capacities: &[u32], request: &JobRequest, rule: PlacementRule) -> u32 {
    let mut system = MultiCluster::new(capacities);
    let mut count = 0;
    while let Some(p) = place_request(system.idle_per_cluster(), request, rule) {
        system.apply(&p);
        count += 1;
        if count > 10_000 {
            unreachable!("a positive-size request cannot fit unboundedly");
        }
    }
    count
}

/// The exact maximal utilization of a constant-backlog system fed with
/// identical jobs of `total` processors under the given limit.
pub fn identical_jobs_max_utilization(capacities: &[u32], total: u32, limit: u32) -> f64 {
    let request = JobRequest::from_total(total, limit, capacities.len());
    let count = max_identical_packing(capacities, &request, PlacementRule::WorstFit);
    let capacity: u32 = capacities.iter().sum();
    f64::from(count * total) / f64::from(capacity)
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAS: [u32; 4] = [32, 32, 32, 32];

    #[test]
    fn paper_worked_example_size_64() {
        // Limit 16: (16,16,16,16) leaves (16,16,16,16); self-compatible.
        assert!(self_compatible(&DAS, 64, 16, PlacementRule::WorstFit));
        // Limit 32: (32,32) leaves (32,32,0,0); self-compatible.
        assert!(self_compatible(&DAS, 64, 32, PlacementRule::WorstFit));
        // Limit 24: (22,21,21) leaves (32,11,10,10)-ish; NOT.
        assert!(!self_compatible(&DAS, 64, 24, PlacementRule::WorstFit));
        let r = JobRequest::from_total(64, 24, 4);
        let idle = residual_idle(&DAS, &r, PlacementRule::WorstFit).expect("fits alone");
        assert_eq!(idle, vec![32, 11, 11, 10]);
    }

    #[test]
    fn whole_system_jobs_are_never_self_compatible() {
        for limit in [16u32, 24, 32] {
            assert!(!self_compatible(&DAS, 128, limit, PlacementRule::WorstFit));
        }
    }

    #[test]
    fn small_jobs_always_self_compatible() {
        for limit in [16u32, 24, 32] {
            for total in 1..=32 {
                assert!(
                    self_compatible(&DAS, total, limit, PlacementRule::WorstFit),
                    "size {total} limit {limit}"
                );
            }
        }
    }

    #[test]
    fn fits_after_is_order_sensitive_with_fragmentation() {
        // A (22,21,21) then (32,32): the 64-at-24 split blocks the
        // (32,32) pair? Residual (32,11,11,10): one 32 fits, not two.
        let a = JobRequest::from_total(64, 24, 4);
        let b = JobRequest::from_total(64, 32, 4);
        assert!(!fits_after(&DAS, &a, &b, PlacementRule::WorstFit));
        // The other order: (32,32) leaves (32,32): (22,21,21) needs
        // three clusters — does not fit either.
        assert!(!fits_after(&DAS, &b, &a, PlacementRule::WorstFit));
        // But (16,16,16,16) then (32,32)? leaves (16,16,16,16): no.
        let c = JobRequest::from_total(64, 16, 4);
        assert!(!fits_after(&DAS, &c, &b, PlacementRule::WorstFit));
        // (16,16,16,16) twice: yes.
        assert!(fits_after(&DAS, &c, &c, PlacementRule::WorstFit));
    }

    #[test]
    fn oversized_first_job_reports_unfit() {
        let too_big = JobRequest::new(vec![33]);
        assert!(residual_idle(&DAS, &too_big, PlacementRule::WorstFit).is_none());
        let ok = JobRequest::new(vec![4]);
        assert!(!fits_after(&DAS, &too_big, &ok, PlacementRule::WorstFit));
    }

    #[test]
    fn identical_packing_counts() {
        // floor(128/48) = 2 on a single cluster.
        let r = JobRequest::total_request(48);
        assert_eq!(max_identical_packing(&[128], &r, PlacementRule::WorstFit), 2);
        assert!((identical_jobs_max_utilization(&[128], 48, 128) - 0.75).abs() < 1e-12);
        // (22,21,21) on 4x32: exactly one fits.
        let r = JobRequest::from_total(64, 24, 4);
        assert_eq!(max_identical_packing(&DAS, &r, PlacementRule::WorstFit), 1);
        assert!((identical_jobs_max_utilization(&DAS, 64, 24) - 0.5).abs() < 1e-12);
        // (16,16,16,16): two fit -> full utilization.
        assert!((identical_jobs_max_utilization(&DAS, 64, 16) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn packing_report_flags_limit_24() {
        let report = packing_report(24);
        assert!(report.contains("NO"), "{report}");
        let rows = packing_rows(24);
        let row64 = rows.iter().find(|r| r.total == 64).expect("64 in powers");
        assert_eq!(row64.components, vec![22, 21, 21]);
        assert!(!row64.self_compatible);
        // At limit 16 every power except 128 is self-compatible.
        let rows16 = packing_rows(16);
        for r in &rows16 {
            assert_eq!(r.self_compatible, r.total != 128, "size {}", r.total);
        }
    }
}
