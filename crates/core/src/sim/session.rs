//! The layered Session engine: arrivals, scheduling passes, departures.
//!
//! [`SimBuilder`] is the single front door: it resolves the warm-up
//! lifecycle, builds the feed and the scheduler, and hands a fully
//! wired [`Session`] its event loop. The legacy `run*` free functions
//! are thin deprecated shims over it (see the module docs of
//! [`crate::sim`]).

use coalloc_workload::{JobDisposition, JobRequest, JobSpec, RequestKind};
use desim::{
    CalendarKind, CalendarQueue, Duration, EventCalendar, EventId, Exponential, HeapCalendar,
    RngStream, SimTime, Simulation, Variate,
};

use crate::audit::{Interruption, NullObserver, PassTrigger, Resize, SimObserver};
use crate::fault::{FaultKind, FaultSpec, InterruptPolicy, ResizePolicy};
use crate::feed::{JobFeed, StochasticFeed, TraceFeed};
use crate::job::{ActiveJob, JobId, JobTable, Placement};
use crate::metrics::Metrics;
use crate::policy::{PolicyKind, PolicyOptions, Scheduler};
use crate::system::MultiCluster;

use super::arena::{cluster_mask, RunArena, SlotId};
use super::config::{SimConfig, Warmup};
use super::network::{self, NetworkSpec};
use super::outcome::{OccupancyModel, SimOutcome};
use super::warmup::resolve_auto_warmup;

/// Events driving the co-allocation simulation.
#[derive(Debug, Clone, Copy)]
enum SimEvent {
    /// The next job arrives.
    Arrival,
    /// A running job finishes and releases its processors. The payload
    /// carries the job's [`SlotId`] in the running-set arena, so the
    /// departure path reads its hot fields without any lookup.
    Departure(JobId, SlotId),
    /// A cluster fails; `remaining` of its processors stay usable.
    ClusterDown { cluster: usize, remaining: u32 },
    /// A failed cluster is repaired to full capacity.
    ClusterUp(usize),
}

/// How fault events are generated over a run.
#[derive(Debug)]
enum FaultDriver {
    /// Every event came from a [`crate::fault::FaultTrace`] and was
    /// pre-scheduled when the session started.
    Scripted,
    /// Exponential failure/repair processes, one independent RNG stream
    /// per cluster (`labelled("faults").substream(k)`, so enabling
    /// faults does not perturb the workload's streams). A repair is
    /// always scheduled after a failure; the *next* failure is drawn
    /// only while arrivals remain, so the event queue drains.
    Exponential { mttf: f64, mttr: f64, streams: Vec<RngStream> },
}

/// The per-run fault-injection state; absent (`None` in
/// [`EngineState`]) for fault-free runs, which therefore take only a
/// handful of branch checks over the pre-fault engine.
#[derive(Debug)]
struct FaultState {
    interrupt: InterruptPolicy,
    driver: FaultDriver,
}

/// One running multi-cluster job's wide-area flow under
/// [`OccupancyModel::Network`].
///
/// Progress accrual is *lazy*: `remaining` is the flow's remaining base
/// service as of `since`, and between stretch changes the flow drains
/// linearly at rate `1/stretch` wall-seconds per base-second, so
/// deferring the subtraction until the stretch actually changes (or the
/// flow leaves) is exact — no per-event bookkeeping on unaffected flows.
#[derive(Debug)]
struct NetFlow {
    id: JobId,
    slot: SlotId,
    /// Cluster bitmask of the placement (the flow's endpoints).
    mask: u64,
    /// Nominal extension factor for the current span.
    factor: f64,
    /// Remaining base-service seconds as of `since`.
    remaining: f64,
    /// Current stretch: wall-seconds per base-second. Equals `factor`
    /// at full bandwidth share, `1 + (factor − 1)/share` below it.
    stretch: f64,
    /// When `remaining` was last made current.
    since: SimTime,
}

/// The per-run network state; absent (`None` in [`EngineState`]) unless
/// the run uses [`OccupancyModel::Network`], so faithful runs pay only
/// an `Option` check per flow-set change.
///
/// Flows live in a `Vec` in start order: removal is `O(running multi
/// jobs)` — a few dozen at most — and iteration order (and with it
/// every float reduction) is deterministic.
#[derive(Debug)]
struct NetState {
    spec: NetworkSpec,
    flows: Vec<NetFlow>,
}

/// Builds and runs simulation [`Session`]s from a [`SimConfig`].
///
/// The builder owns the run's two optional knobs — an explicitly
/// supplied scheduler (bypassing [`crate::policy::PolicyKind::build`];
/// the seam the mutation tests use) and a non-faithful
/// [`OccupancyModel`] — and offers one `run*` method per feed kind:
///
/// * [`SimBuilder::run`] / [`SimBuilder::run_observed`] — stochastic
///   feed sampled from the config's workload;
/// * [`SimBuilder::run_trace`] / [`SimBuilder::run_trace_observed`] —
///   trace replay;
/// * [`SimBuilder::run_feed`] / [`SimBuilder::run_feed_observed`] — any
///   caller-supplied [`JobFeed`].
///
/// ```
/// use coalloc_core::{PolicyKind, SimBuilder, SimConfig};
/// let mut cfg = SimConfig::das(PolicyKind::Gs, 16, 0.4);
/// cfg.total_jobs = 2_000;
/// cfg.warmup_jobs = 200;
/// let outcome = SimBuilder::new(&cfg).run();
/// assert_eq!(outcome.arrivals, 2_000);
/// ```
pub struct SimBuilder<'a> {
    cfg: &'a SimConfig,
    model: OccupancyModel,
    scheduler: Option<Box<dyn Scheduler>>,
}

impl<'a> SimBuilder<'a> {
    /// Starts a builder for the given configuration. A config with a
    /// [`super::network::NetworkSpec`] selects
    /// [`OccupancyModel::Network`]; everything else runs the paper's
    /// [`OccupancyModel::Faithful`].
    pub fn new(cfg: &'a SimConfig) -> Self {
        let model = cfg.network.map_or(OccupancyModel::Faithful, OccupancyModel::Network);
        SimBuilder { cfg, model, scheduler: None }
    }

    /// Replaces the occupancy model (mutation testing only; the default
    /// is the paper's [`OccupancyModel::Faithful`]).
    pub fn occupancy(mut self, model: OccupancyModel) -> Self {
        self.model = model;
        self
    }

    /// Supplies an explicit scheduler instead of building one from the
    /// config's policy. The config's `policy` field then only labels
    /// the outcome (and configures the auditor).
    pub fn scheduler(mut self, policy: Box<dyn Scheduler>) -> Self {
        self.scheduler = Some(policy);
        self
    }

    /// Runs one simulation to completion (all arrivals generated, then
    /// the system drained of *running* jobs; waiting jobs that can never
    /// start are left queued and reported).
    pub fn run(self) -> SimOutcome {
        self.run_observed(&mut NullObserver)
    }

    /// [`SimBuilder::run`] with an observer attached (see
    /// [`crate::audit`]). Observers are passive: the outcome is
    /// bit-identical to the unobserved run's.
    pub fn run_observed<O: SimObserver>(self, obs: &mut O) -> SimOutcome {
        self.cfg.validate();
        if self.cfg.warmup == Warmup::Auto {
            let resolved = resolve_auto_warmup(self.cfg, |pilot| SimBuilder::new(pilot).run());
            let rebuilt =
                SimBuilder { cfg: &resolved, model: self.model, scheduler: self.scheduler };
            return rebuilt.run_observed(obs);
        }
        let master = RngStream::new(self.cfg.seed);
        let mut feed = StochasticFeed::new(
            self.cfg.workload.clone(),
            self.cfg.arrival_rate,
            self.cfg.arrival_cv2,
            self.cfg.total_jobs,
            &master,
        );
        let offered = self.cfg.offered_gross_utilization();
        self.run_feed_observed(&mut feed, offered, obs)
    }

    /// Runs a *trace-driven* simulation: the log's submit times
    /// (compressed by `time_scale`; values < 1 raise the offered load),
    /// sizes (split under the workload's limit) and runtimes replace the
    /// stochastic sampling. The workload's size/service distributions
    /// are ignored; its limit, clusters and extension model still apply.
    pub fn run_trace(self, trace: &coalloc_trace::Trace, time_scale: f64) -> SimOutcome {
        self.run_trace_observed(trace, time_scale, &mut NullObserver)
    }

    /// [`SimBuilder::run_trace`] with an observer attached.
    pub fn run_trace_observed<O: SimObserver>(
        self,
        trace: &coalloc_trace::Trace,
        time_scale: f64,
        obs: &mut O,
    ) -> SimOutcome {
        let mut cfg = self.cfg.clone();
        let mut feed = TraceFeed::new(trace, cfg.workload.limit, cfg.workload.clusters, time_scale);
        // The feed drops zero-runtime records (cancelled jobs); the run
        // is sized by what will actually be replayed, not the raw log
        // length.
        cfg.total_jobs = feed.len() as u64;
        cfg.validate();
        if cfg.warmup == Warmup::Auto {
            // The pilot replays the same trace (replay is deterministic),
            // so MSER judges exactly the series the measured run will
            // produce.
            cfg = resolve_auto_warmup(&cfg, |pilot| {
                SimBuilder::new(pilot).run_trace(trace, time_scale)
            });
        }
        // Offered gross utilization of the replay: the trace's gross
        // work over its (scaled) span times the capacity.
        let span = trace.jobs.last().expect("non-empty").submit * time_scale;
        let ratio = cfg.workload.gross_net_ratio();
        let work: f64 =
            trace.jobs.iter().map(|j| f64::from(j.size) * j.runtime).sum::<f64>() * ratio;
        let offered = if span > 0.0 { work / (span * f64::from(cfg.capacity())) } else { f64::NAN };
        let rebuilt = SimBuilder { cfg: &cfg, model: self.model, scheduler: self.scheduler };
        rebuilt.run_feed_observed(&mut feed, offered, obs)
    }

    /// The shared event loop, driven by any [`JobFeed`].
    pub fn run_feed(self, feed: &mut dyn JobFeed, offered: f64) -> SimOutcome {
        self.run_feed_observed(feed, offered, &mut NullObserver)
    }

    /// [`SimBuilder::run_feed`] with an observer attached. Generic over
    /// the observer so the [`NullObserver`] path monomorphizes to the
    /// unobserved loop (every hook is an empty inlined default).
    pub fn run_feed_observed<O: SimObserver>(
        self,
        feed: &mut dyn JobFeed,
        offered: f64,
        obs: &mut O,
    ) -> SimOutcome {
        self.cfg.validate();
        if let Some(mut policy) = self.scheduler {
            return Session::new(self.cfg, feed, policy.as_mut(), obs, offered, self.model).run();
        }
        // No caller-supplied scheduler: build the policy's *concrete*
        // type and monomorphize the event loop over it. The scheduler
        // hooks run after every event, so keeping them direct calls
        // (inlinable, unlike the `Box<dyn Scheduler>` escape hatch
        // above) measurably raises events/s — see DESIGN.md and
        // EXPERIMENTS.md (BENCH_2).
        let cfg = self.cfg;
        let routing_rng = RngStream::new(cfg.seed).labelled("routing");
        let opts = PolicyOptions {
            disposition: cfg.disposition,
            discipline: cfg.discipline,
            estimate_factor: cfg.estimate_factor,
            workload: cfg.workload.clone(),
        };
        let clusters = cfg.system.num_clusters();
        let (routing, rule, model) = (cfg.routing.clone(), cfg.rule, self.model);
        match cfg.policy {
            PolicyKind::Gs => {
                let mut s = crate::policy::GlobalScheduler::with_options(rule, opts);
                Session::new(cfg, feed, &mut s, obs, offered, model).run()
            }
            PolicyKind::Ls => {
                let mut s = crate::policy::LocalSchedulers::with_options(
                    clusters,
                    routing,
                    routing_rng,
                    rule,
                    opts,
                );
                Session::new(cfg, feed, &mut s, obs, offered, model).run()
            }
            PolicyKind::Lp => {
                let mut s = crate::policy::LocalPriority::with_options(
                    clusters,
                    routing,
                    routing_rng,
                    rule,
                    opts,
                );
                Session::new(cfg, feed, &mut s, obs, offered, model).run()
            }
            PolicyKind::Sc => {
                let mut s = crate::policy::single_cluster_policy_with(rule, opts);
                Session::new(cfg, feed, &mut s, obs, offered, model).run()
            }
            PolicyKind::Gb => {
                let mut s = crate::policy::GlobalBackfill::with_options(rule, opts);
                Session::new(cfg, feed, &mut s, obs, offered, model).run()
            }
        }
    }
}

/// The growing-and-draining state of one run: the machine the event
/// loop mutates. Split out of [`Session`] so arrivals, departures and
/// scheduling passes each read as a focused step over named state.
struct EngineState<C: EventCalendar<SimEvent>> {
    system: MultiCluster,
    table: JobTable,
    metrics: Metrics,
    sim: Simulation<SimEvent, C>,
    /// The spec of the next scheduled Arrival event.
    pending: Option<JobSpec>,
    /// Caller-owned scratch for the scheduling pass (see the Scheduler
    /// trait's allocation-free contract): cleared per pass, capacity
    /// reused for the whole run.
    started: Vec<JobId>,
    generated: u64,
    completed: u64,
    backlog_at_last_arrival: usize,
    peak_backlog: usize,
    /// The engine's running-job registry: the hot fields (departure
    /// event and time, size, cluster mask) of every running job in
    /// struct-of-arrays form. A cluster failure scans it for victims in
    /// `O(running)`; a malleable resize rewrites its slot through the
    /// [`SlotId`] carried by the departure event.
    running: RunArena,
    /// Fault-injection state; `None` unless the config enables faults.
    faults: Option<FaultState>,
    /// Wide-area flow state; `None` unless the run uses
    /// [`OccupancyModel::Network`].
    net: Option<NetState>,
}

/// One fully wired simulation: a config, a feed, a scheduler and an
/// observer, ready to run the event loop to completion.
///
/// Sessions are normally built by [`SimBuilder`]; construct one directly
/// only when you already own all four pieces (e.g. an external harness
/// with its own scheduler implementation).
pub struct Session<'a, F, S, O>
where
    F: JobFeed + ?Sized,
    S: Scheduler + ?Sized,
    O: SimObserver,
{
    cfg: &'a SimConfig,
    feed: &'a mut F,
    scheduler: &'a mut S,
    observer: &'a mut O,
    offered: f64,
    model: OccupancyModel,
}

impl<'a, F, S, O> Session<'a, F, S, O>
where
    F: JobFeed + ?Sized,
    S: Scheduler + ?Sized,
    O: SimObserver,
{
    /// Wires a session together. `offered` is the offered gross
    /// utilization reported in the outcome (the feed knows it; the
    /// session does not derive it).
    pub fn new(
        cfg: &'a SimConfig,
        feed: &'a mut F,
        scheduler: &'a mut S,
        observer: &'a mut O,
        offered: f64,
        model: OccupancyModel,
    ) -> Self {
        cfg.validate();
        Session { cfg, feed, scheduler, observer, offered, model }
    }

    /// Runs the event loop to completion and reports the outcome. The
    /// config's [`CalendarKind`] picks the future-event calendar; each
    /// choice monomorphizes its own copy of the loop, so the default
    /// heap pays nothing for the option.
    pub fn run(self) -> SimOutcome {
        match self.cfg.calendar {
            CalendarKind::Heap => self.run_on(HeapCalendar::new()),
            CalendarKind::CalendarQueue => self.run_on(CalendarQueue::new()),
        }
    }

    /// The event loop over a concrete calendar.
    fn run_on<C: EventCalendar<SimEvent>>(mut self, calendar: C) -> SimOutcome {
        let mut st = self.init(calendar);
        while let Some(ev) = st.sim.step() {
            let now = st.sim.now();
            let trigger = match ev.payload {
                SimEvent::Arrival => self.arrival(&mut st, now),
                SimEvent::Departure(id, slot) => self.departure(&mut st, now, id, slot),
                SimEvent::ClusterDown { cluster, remaining } => {
                    self.cluster_down(&mut st, now, cluster, remaining)
                }
                SimEvent::ClusterUp(cluster) => self.cluster_up(&mut st, now, cluster),
            };
            // A scheduling pass follows every arrival and every departure.
            self.pass(&mut st, now, trigger);
        }
        self.finish(st)
    }

    /// Builds the engine state and primes the first arrival.
    fn init<C: EventCalendar<SimEvent>>(&mut self, calendar: C) -> EngineState<C> {
        let mut metrics =
            Metrics::new(self.cfg.capacity(), self.scheduler.num_queues(), self.cfg.batch_size);
        if self.cfg.record_series {
            metrics.record_series();
        }
        let mut st = EngineState {
            system: MultiCluster::from_spec(&self.cfg.system),
            table: JobTable::with_capacity(self.cfg.total_jobs as usize),
            metrics,
            sim: Simulation::with_calendar(calendar),
            pending: None,
            started: Vec::new(),
            generated: 0,
            completed: 0,
            backlog_at_last_arrival: 0,
            peak_backlog: 0,
            running: RunArena::new(),
            faults: None,
            net: self.model.network().map(|spec| NetState { spec, flows: Vec::new() }),
        };
        if let Some((t, spec)) = self.feed.next_job() {
            st.pending = Some(spec);
            st.sim.schedule_at(t, SimEvent::Arrival);
        }
        if let Some(spec) = &self.cfg.faults {
            st.faults = Some(self.prime_faults(spec, &mut st.sim, st.pending.is_some()));
        }
        st
    }

    /// Builds the fault state and schedules the initial fault events:
    /// the whole script for a [`FaultSpec::Trace`], or the first
    /// failure of each cluster for [`FaultSpec::Exponential`] (only
    /// while arrivals remain, so an empty feed stays an empty run).
    fn prime_faults<C: EventCalendar<SimEvent>>(
        &self,
        spec: &FaultSpec,
        sim: &mut Simulation<SimEvent, C>,
        has_arrivals: bool,
    ) -> FaultState {
        let driver = match spec {
            FaultSpec::Trace(trace) => {
                for ev in trace.events() {
                    let payload = match ev.kind {
                        FaultKind::Down { remaining } => {
                            SimEvent::ClusterDown { cluster: ev.cluster, remaining }
                        }
                        FaultKind::Up => SimEvent::ClusterUp(ev.cluster),
                    };
                    sim.schedule_at(SimTime::new(ev.at), payload);
                }
                FaultDriver::Scripted
            }
            FaultSpec::Exponential { mttf, mttr } => {
                let base = RngStream::new(self.cfg.seed).labelled("faults");
                let mut streams: Vec<RngStream> =
                    (0..self.cfg.system.num_clusters()).map(|k| base.substream(k as u64)).collect();
                if has_arrivals {
                    let dist = Exponential::with_mean(*mttf);
                    for (k, stream) in streams.iter_mut().enumerate() {
                        let at = SimTime::new(dist.sample(stream));
                        sim.schedule_at(at, SimEvent::ClusterDown { cluster: k, remaining: 0 });
                    }
                }
                FaultDriver::Exponential { mttf: *mttf, mttr: *mttr, streams }
            }
        };
        FaultState { interrupt: self.cfg.interrupt, driver }
    }

    /// One arrival: route, record, enqueue, and draw the next arrival
    /// from the feed.
    fn arrival<C: EventCalendar<SimEvent>>(
        &mut self,
        st: &mut EngineState<C>,
        now: SimTime,
    ) -> PassTrigger {
        st.generated += 1;
        let spec = st.pending.take().expect("an Arrival always has a pending spec");
        let queue = self.scheduler.route(&spec);
        let id = st.table.insert(ActiveJob::new(spec, now, queue));
        self.observer.on_arrival(now, id, st.table.get(id));
        self.scheduler.enqueue(id, queue);
        self.observer.on_enqueue(now, id, queue);
        st.metrics.record_arrival(now);
        if let Some((t, spec)) = self.feed.next_job() {
            st.pending = Some(spec);
            st.sim.schedule_at(t.max(now), SimEvent::Arrival);
        } else {
            st.backlog_at_last_arrival = self.scheduler.queued();
        }
        PassTrigger::Arrival
    }

    /// One departure: release processors, measure the job (outside the
    /// warm-up window), and let the policy re-enable queues.
    fn departure<C: EventCalendar<SimEvent>>(
        &mut self,
        st: &mut EngineState<C>,
        now: SimTime,
        id: JobId,
        slot: SlotId,
    ) -> PassTrigger {
        let row = st.running.remove(slot);
        debug_assert_eq!(row.job, id, "departure event names its slot's tenant");
        // Borrow the placement out of the table for the release
        // (it stays the job's state); cloning it here would put
        // one heap round-trip on every departure.
        let job = st.table.get(id);
        let placement = job.placement.as_ref().expect("departing job was started");
        st.system.release(placement);
        let released = placement.total();
        self.observer.on_completion(now, id, job);
        st.metrics.record_release(now, released);
        st.metrics.record_exit(now);
        st.completed += 1;
        if st.completed == self.cfg.warmup_jobs {
            st.metrics.reset_window(now);
        } else if st.completed >= self.cfg.warmup_jobs {
            st.metrics.record_departure(now, job);
        }
        self.scheduler.job_departed(id);
        self.scheduler.on_departure();
        // A departing multi-cluster job frees its bandwidth: the
        // surviving flows speed up and their departures move forward.
        if self.net_remove(st, now, id) {
            self.net_rebalance(st, now);
        }
        PassTrigger::Departure
    }

    /// One cluster failure: every job running a component on the
    /// cluster is killed (its partial work is lost — there is no
    /// checkpointing), each victim's fate follows the configured
    /// [`InterruptPolicy`], the cluster is degraded to `remaining`
    /// usable processors, and — under the exponential driver — the
    /// repair is scheduled.
    fn cluster_down<C: EventCalendar<SimEvent>>(
        &mut self,
        st: &mut EngineState<C>,
        now: SimTime,
        cluster: usize,
        remaining: u32,
    ) -> PassTrigger {
        // The arena's cluster masks answer "who runs here?" in
        // O(running); sorted by job id to keep the victim order (and
        // thus the run) independent of arena slot layout.
        let mut victims: Vec<(JobId, SlotId)> = st
            .running
            .iter()
            .filter(|&(_, row)| row.mask & (1u64 << cluster) != 0)
            .map(|(slot, row)| (row.job, slot))
            .collect();
        victims.sort_unstable_by_key(|&(id, _)| id.0);
        let mut net_changed = false;
        for &(id, slot) in &victims {
            // A malleable multi-component victim sheds only the failed
            // component and keeps running on its surviving clusters —
            // the `ShrinkOnly` half of every ResizePolicy.
            if self.cfg.disposition == JobDisposition::Malleable
                && self.try_shrink(st, now, id, slot, cluster)
            {
                continue;
            }
            let row = st.running.remove(slot);
            let cancelled = st.sim.cancel(row.event);
            debug_assert!(cancelled, "a running job's departure event was pending");
            // Drop the victim's flow *now*: a later victim's shrink
            // rebalances the fabric and must not see a stale slot.
            net_changed |= self.net_remove(st, now, id);
            let job = st.table.get_mut(id);
            let placement = job.placement.take().expect("victim was started");
            let start = job.start.take().expect("victim was started");
            st.system.release(&placement);
            st.metrics.record_release(now, placement.total());
            st.metrics
                .record_interruption(now, f64::from(placement.total()) * (now - start).seconds());
            let resplit = self.maybe_resplit(st, id, cluster, remaining);
            let disposition = st.faults.as_ref().expect("faults enabled").interrupt;
            let job = st.table.get(id);
            let queue = job.queue;
            let info = Interruption { id, cluster, released: &placement, disposition, resplit };
            self.observer.on_job_interrupted(now, job, &info);
            self.scheduler.job_departed(id);
            match disposition {
                InterruptPolicy::RequeueFront => self.scheduler.requeue_front(id, queue),
                InterruptPolicy::RequeueBack => self.scheduler.enqueue(id, queue),
                // The job leaves the system with nothing to show for it.
                InterruptPolicy::Abort => st.metrics.record_exit(now),
            }
        }
        if net_changed {
            self.net_rebalance(st, now);
        }
        st.system.set_down(cluster, remaining);
        self.observer.on_cluster_down(now, cluster, remaining);
        st.metrics.record_outage_level(now, st.system.total_offline());
        // Requeued victims and the changed idle state invalidate every
        // queue-disabled latch (GS's "arrivals never increase idle"
        // skip does not cover faults), so fault events count as
        // departures for the schedulers' re-enable logic.
        self.scheduler.on_departure();
        if let FaultDriver::Exponential { mttr, streams, .. } =
            &mut st.faults.as_mut().expect("faults enabled").driver
        {
            let repair = Exponential::with_mean(*mttr).sample(&mut streams[cluster]);
            st.sim.schedule_at(now + Duration::new(repair), SimEvent::ClusterUp(cluster));
        }
        PassTrigger::Fault
    }

    /// One cluster repair: full capacity returns, and — under the
    /// exponential driver, while arrivals remain — the next failure of
    /// this cluster is scheduled.
    fn cluster_up<C: EventCalendar<SimEvent>>(
        &mut self,
        st: &mut EngineState<C>,
        now: SimTime,
        cluster: usize,
    ) -> PassTrigger {
        st.system.set_up(cluster);
        self.observer.on_cluster_up(now, cluster);
        st.metrics.record_outage_level(now, st.system.total_offline());
        self.scheduler.on_departure();
        let has_arrivals = st.pending.is_some();
        if let FaultDriver::Exponential { mttf, streams, .. } =
            &mut st.faults.as_mut().expect("faults enabled").driver
        {
            if has_arrivals {
                let next = Exponential::with_mean(*mttf).sample(&mut streams[cluster]);
                st.sim.schedule_at(
                    now + Duration::new(next),
                    SimEvent::ClusterDown { cluster, remaining: 0 },
                );
            }
        }
        PassTrigger::Fault
    }

    /// Recomputes every flow's bandwidth share after the flow set
    /// changed, and for each flow whose stretch changed: accrues its
    /// progress at the old rate, adopts the new stretch, and cancels and
    /// reinserts its departure event at the re-derived end (`O(1)` per
    /// job through the event's [`SlotId`]). Flows whose stretch did not
    /// change are untouched — in particular, an uncontended (infinite-
    /// capacity) fabric never cancels anything, so its event sequence is
    /// bit-identical to [`OccupancyModel::Faithful`]'s.
    fn net_rebalance<C: EventCalendar<SimEvent>>(&mut self, st: &mut EngineState<C>, now: SimTime) {
        let EngineState { net, sim, running, .. } = st;
        let Some(net) = net.as_mut() else { return };
        if net.flows.is_empty() {
            return;
        }
        let masks: Vec<u64> = net.flows.iter().map(|f| f.mask).collect();
        let shares = net.spec.shares(&masks);
        for (flow, share) in net.flows.iter_mut().zip(shares) {
            let stretch = network::stretch(flow.factor, share);
            if stretch == flow.stretch {
                continue;
            }
            let dt = (now - flow.since).seconds();
            if dt > 0.0 {
                flow.remaining = (flow.remaining - dt / flow.stretch).max(0.0);
            }
            flow.since = now;
            flow.stretch = stretch;
            let new_end = now + Duration::new(flow.remaining * stretch);
            let row = running.get(flow.slot);
            let cancelled = sim.cancel(row.event);
            debug_assert!(cancelled, "a flow job's departure event was pending");
            let ev = sim.schedule_at(new_end, SimEvent::Departure(flow.id, flow.slot));
            running.resize_slot(flow.slot, ev, new_end, row.size, row.mask);
        }
    }

    /// Drops a departing (or killed) job's flow, if it held one.
    /// Returns whether the flow set changed — the caller rebalances.
    fn net_remove<C: EventCalendar<SimEvent>>(
        &mut self,
        st: &mut EngineState<C>,
        now: SimTime,
        id: JobId,
    ) -> bool {
        let EngineState { net, metrics, .. } = st;
        let Some(net) = net.as_mut() else { return false };
        let before = net.flows.len();
        net.flows.retain(|f| f.id != id);
        if net.flows.len() == before {
            return false;
        }
        metrics.record_flow_level(now, net.flows.len());
        true
    }

    /// Re-derives a resized flow job's departure time under the network
    /// model: accrue progress at the old stretch, rescale the remaining
    /// base work by the processor ratio (work conservation), adopt the
    /// new span's extension factor and mask, and price the remainder at
    /// the share the *new* flow set gives this flow. A job shrinking to
    /// a single cluster leaves the fabric entirely. The caller schedules
    /// the returned end itself and runs [`Session::net_rebalance`]
    /// afterwards for everyone else (this flow's stretch is already
    /// current, so the rebalance skips it).
    #[allow(clippy::too_many_arguments)]
    fn net_resize<C: EventCalendar<SimEvent>>(
        &mut self,
        st: &mut EngineState<C>,
        now: SimTime,
        id: JobId,
        old_total: f64,
        new_total: f64,
        f_new: f64,
        new_mask: u64,
    ) -> SimTime {
        let EngineState { net, metrics, .. } = st;
        let net = net.as_mut().expect("network resize path");
        let idx = net
            .flows
            .iter()
            .position(|f| f.id == id)
            .expect("a resized multi-cluster job holds a flow");
        {
            let flow = &mut net.flows[idx];
            let dt = (now - flow.since).seconds();
            if dt > 0.0 {
                flow.remaining = (flow.remaining - dt / flow.stretch).max(0.0);
            }
            flow.since = now;
            flow.remaining *= old_total / new_total;
            flow.factor = f_new;
            flow.mask = new_mask;
        }
        if new_mask.count_ones() < 2 {
            // The job no longer spans clusters: no flow, no extension
            // (factor 1), remaining base work runs at full speed.
            let flow = net.flows.remove(idx);
            metrics.record_flow_level(now, net.flows.len());
            return now + Duration::new(flow.remaining * f_new);
        }
        let masks: Vec<u64> = net.flows.iter().map(|f| f.mask).collect();
        let shares = net.spec.shares(&masks);
        let flow = &mut net.flows[idx];
        flow.stretch = network::stretch(f_new, shares[idx]);
        now + Duration::new(flow.remaining * flow.stretch)
    }

    /// Shrinks a running malleable job away from a failed cluster: the
    /// failed component is dropped, the surviving components keep
    /// running, and the departure is pushed back so the remaining work
    /// (processor-seconds of *base* service) is conserved — the
    /// remaining extended seconds are deflated by the old span's
    /// extension factor, scaled by the processor ratio, and re-extended
    /// at the new span's factor (a 2→1-cluster shrink sheds the
    /// wide-area extension altogether and finishes *earlier*).
    /// Returns false (no shrink; the caller falls back to the kill
    /// path) for single-component placements, which have nothing to
    /// survive on.
    fn try_shrink<C: EventCalendar<SimEvent>>(
        &mut self,
        st: &mut EngineState<C>,
        now: SimTime,
        id: JobId,
        slot: SlotId,
        cluster: usize,
    ) -> bool {
        let job = st.table.get(id);
        let old = job.placement.clone().expect("victim was started");
        if old.assignments().len() < 2 {
            return false;
        }
        let old_end = st.running.get(slot).end;
        let surviving: Vec<(usize, u32)> =
            old.assignments().iter().copied().filter(|&(c, _)| c != cluster).collect();
        debug_assert!(!surviving.is_empty(), "multi-component victim keeps >=1 component");
        let new = Placement::new(surviving);
        let old_total = f64::from(old.total());
        let new_total = f64::from(new.total());
        // Dropping a component changes the spanned-cluster count, and
        // with it the wide-area extension: conserve the remaining *base*
        // work and re-extend it at the new span. For same-span resizes
        // `f_new / f_old` is exactly 1.0 (IEEE x/x), so this reduces to
        // the plain processor-ratio formula bit for bit.
        let f_old = self.cfg.workload.extension_factor(old.assignments().len());
        let f_new = self.cfg.workload.extension_factor(new.assignments().len());
        let new_end = if st.net.is_some() {
            self.net_resize(
                st,
                now,
                id,
                old_total,
                new_total,
                f_new,
                cluster_mask(new.assignments()),
            )
        } else {
            now + Duration::new((old_end - now).seconds() * old_total / new_total * (f_new / f_old))
        };
        // Swap the allocation: the failed component's processors return
        // to (what is about to become) the degraded cluster, the rest
        // stay busy.
        st.system.release(&old);
        st.system.apply(&new);
        st.metrics.record_release(now, old.total() - new.total());
        let cancelled = st.sim.cancel(st.running.get(slot).event);
        debug_assert!(cancelled, "a running job's departure event was pending");
        let ev = st.sim.schedule_at(new_end, SimEvent::Departure(id, slot));
        st.running.resize_slot(slot, ev, new_end, new.total(), cluster_mask(new.assignments()));
        st.table.get_mut(id).placement = Some(new.clone());
        self.scheduler.job_resized(now, id, &new);
        let resize = Resize { id, from: &old, to: &new, old_end, new_end };
        self.observer.on_job_resized(now, st.table.get(id), &resize);
        // The shrunk flow's mask changed (or it left the fabric), so the
        // surviving flows' shares may have too.
        self.net_rebalance(st, now);
        true
    }

    /// Grows one running malleable job onto idle processors after a
    /// departure left the queues empty: the job with the *latest*
    /// scheduled departure (ties to the smallest id) expands each of
    /// its components up to the workload's component-size limit within
    /// its own cluster — the span (and thus the wide-area extension) is
    /// unchanged — and its departure moves forward conserving the
    /// remaining work.
    fn maybe_grow<C: EventCalendar<SimEvent>>(&mut self, st: &mut EngineState<C>, now: SimTime) {
        // Latest departure wins, ties to the smallest job id — the
        // explicit tie-break keeps the choice independent of arena
        // slot order (the old registry scanned ids ascending).
        let mut best: Option<(SimTime, JobId, SlotId)> = None;
        for (slot, row) in st.running.iter() {
            let better = best.is_none_or(|(bend, bid, _)| {
                row.end > bend || (row.end == bend && row.job.0 < bid.0)
            });
            if better {
                best = Some((row.end, row.job, slot));
            }
        }
        let Some((old_end, id, slot)) = best else { return };
        let old = st.table.get(id).placement.clone().expect("registry lists running jobs");
        let limit = self.cfg.workload.limit;
        let mut grown = Vec::with_capacity(old.assignments().len());
        let mut extras = Vec::new();
        for &(c, procs) in old.assignments() {
            let extra = st.system.idle(c).min(limit.saturating_sub(procs));
            grown.push((c, procs + extra));
            if extra > 0 {
                extras.push((c, extra));
            }
        }
        if extras.is_empty() {
            return;
        }
        let new = Placement::new(grown);
        let old_total = f64::from(old.total());
        let new_total = f64::from(new.total());
        // Growth is per-cluster: the span — and with it the extension
        // factor and the flow's link set — is unchanged, so conserving
        // extended seconds and conserving base seconds coincide.
        let span = old.assignments().len();
        let new_end = if st.net.is_some() && span >= 2 {
            let f = self.cfg.workload.extension_factor(span);
            self.net_resize(st, now, id, old_total, new_total, f, cluster_mask(new.assignments()))
        } else {
            now + Duration::new((old_end - now).seconds() * old_total / new_total)
        };
        st.system.apply(&Placement::new(extras));
        st.metrics.record_allocate(now, new.total() - old.total());
        let cancelled = st.sim.cancel(st.running.get(slot).event);
        debug_assert!(cancelled, "a running job's departure event was pending");
        let ev = st.sim.schedule_at(new_end, SimEvent::Departure(id, slot));
        st.running.resize_slot(slot, ev, new_end, new.total(), cluster_mask(new.assignments()));
        st.table.get_mut(id).placement = Some(new.clone());
        self.scheduler.job_resized(now, id, &new);
        let resize = Resize { id, from: &old, to: &new, old_end, new_end };
        self.observer.on_job_resized(now, st.table.get(id), &resize);
    }

    /// Re-splits an interrupted unordered multi-component request when
    /// the failure leaves fewer up clusters than it has components
    /// (components must land on distinct clusters, §2.3, so the old
    /// split could never start before the repair). The new split is
    /// adopted only when its largest component fits the largest
    /// surviving effective capacity; otherwise the job keeps its
    /// request and waits for the repair.
    fn maybe_resplit<C: EventCalendar<SimEvent>>(
        &self,
        st: &mut EngineState<C>,
        id: JobId,
        cluster: usize,
        remaining: u32,
    ) -> bool {
        let request = &st.table.get(id).spec.request;
        if request.kind() != RequestKind::Unordered || !request.is_multi() {
            return false;
        }
        // Effective capacities as they will stand once this failure is
        // applied (`set_down` runs after the victims are handled).
        let mut surviving = 0usize;
        let mut max_eff = 0u32;
        for k in 0..self.cfg.system.num_clusters() {
            let eff = if k == cluster { remaining } else { st.system.effective_capacity(k) };
            if eff > 0 {
                surviving += 1;
                max_eff = max_eff.max(eff);
            }
        }
        if surviving == 0 || request.num_components() <= surviving {
            return false;
        }
        let candidate = JobRequest::from_total(request.total(), self.cfg.workload.limit, surviving);
        if candidate.max_component() > max_eff {
            return false;
        }
        // Local-queue confinement: a job waiting in a local queue that
        // re-splits down to a *single* component will be offered only to
        // that queue's own cluster (LS's §2.5 rule), so a split that
        // fits some surviving cluster but not *that* one would wait
        // forever — even after the repair. Keep the old request instead
        // and wait for the repair.
        if candidate.num_components() == 1 {
            if let crate::job::SubmitQueue::Local(q) = st.table.get(id).queue {
                let eff = if q == cluster { remaining } else { st.system.effective_capacity(q) };
                if candidate.max_component() > eff {
                    return false;
                }
            }
        }
        st.table.get_mut(id).spec.request = candidate;
        true
    }

    /// One scheduling pass: start everything that fits, schedule the
    /// departures of the started jobs, and track the backlog.
    fn pass<C: EventCalendar<SimEvent>>(
        &mut self,
        st: &mut EngineState<C>,
        now: SimTime,
        trigger: PassTrigger,
    ) {
        self.observer.on_pass(now, trigger);
        st.started.clear();
        self.scheduler.schedule_into(
            now,
            &mut st.system,
            &mut st.table,
            self.observer,
            &mut st.started,
        );
        self.observer.on_pass_end(now, &st.started);
        let mut net_started = false;
        for &id in &st.started {
            let job = st.table.get(id);
            let occupancy: Duration = self.model.occupancy(job, &self.cfg.workload);
            let procs = job.spec.request.total();
            let placement = job.placement.as_ref().expect("started job was placed");
            let span = placement.assignments().len();
            let mask = cluster_mask(placement.assignments());
            let base = job.spec.base_service.seconds();
            self.observer.on_start(now, id, job, occupancy);
            st.metrics.record_allocate(now, procs);
            let end = now + occupancy;
            // The departure event carries its slot, and the slot stores
            // its event: claim the slot first with a placeholder, then
            // patch the real event id in.
            let slot = st.running.insert(id, EventId::from_raw(u64::MAX), end, procs, mask);
            let ev = st.sim.schedule_at(end, SimEvent::Departure(id, slot));
            st.running.set_event(slot, ev);
            // A multi-cluster start opens a wide-area flow. Its initial
            // stretch is the nominal factor (the occupancy above), which
            // is already on the calendar; the rebalance below reschedules
            // it only if the fabric is actually contended.
            if span >= 2 {
                if let Some(net) = st.net.as_mut() {
                    let factor = self.cfg.workload.extension_factor(span);
                    net.flows.push(NetFlow {
                        id,
                        slot,
                        mask,
                        factor,
                        remaining: base,
                        stretch: factor,
                        since: now,
                    });
                    net_started = true;
                }
            }
        }
        if net_started {
            let level = st.net.as_ref().map_or(0, |n| n.flows.len());
            st.metrics.record_flow_level(now, level);
            self.net_rebalance(st, now);
        }
        // A departure that leaves the queues empty hands the freed
        // processors to a running malleable job (the grow half of
        // `ResizePolicy::GrowAndShrink`): queued jobs always have
        // priority over growth, so this runs only when nobody waits.
        if trigger == PassTrigger::Departure
            && self.cfg.disposition == JobDisposition::Malleable
            && self.cfg.resize == ResizePolicy::GrowAndShrink
            && self.scheduler.queued() == 0
        {
            self.maybe_grow(st, now);
        }
        let queued_now = self.scheduler.queued();
        st.metrics.record_queue_length(now, queued_now);
        st.peak_backlog = st.peak_backlog.max(queued_now);
        debug_assert!(
            st.system.total_busy() <= self.cfg.capacity(),
            "more processors busy than exist"
        );
    }

    /// Ends the run: final observer hook, saturation heuristic, report.
    fn finish<C: EventCalendar<SimEvent>>(self, mut st: EngineState<C>) -> SimOutcome {
        let now = st.sim.now();
        self.observer.on_run_end(now);
        let residual = self.scheduler.queued();
        // Saturation heuristic: if a non-trivial share of all generated
        // jobs was still waiting when the arrival process ended, the
        // queues were growing without bound (the post-arrival drain
        // always empties them, so the *final* residual is not
        // informative; jobs that can never fit are the exception and
        // show up in `residual_queued`).
        let saturated = st.backlog_at_last_arrival as f64
            > (0.02 * self.cfg.total_jobs as f64).max(50.0)
            || residual > 0;

        let report = st.metrics.report(now);
        SimOutcome {
            policy: self.cfg.policy.label().to_string(),
            offered_gross_utilization: self.offered,
            metrics: report,
            arrivals: st.generated,
            completed: st.completed,
            residual_queued: residual,
            backlog_at_last_arrival: st.backlog_at_last_arrival,
            peak_backlog: st.peak_backlog,
            saturated,
            end_time: now.seconds(),
            response_series: st.metrics.take_series(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::system::SystemSpec;

    fn quick(policy: PolicyKind, limit: u32, util: f64) -> SimConfig {
        let mut cfg = SimConfig::das(policy, limit, util);
        cfg.total_jobs = 6_000;
        cfg.warmup_jobs = 1_000;
        cfg.batch_size = 100;
        cfg
    }

    fn run(cfg: &SimConfig) -> SimOutcome {
        SimBuilder::new(cfg).run()
    }

    #[test]
    fn run_completes_and_conserves_jobs() {
        let cfg = quick(PolicyKind::Gs, 16, 0.4);
        let out = run(&cfg);
        assert_eq!(out.arrivals, 6_000);
        assert_eq!(out.completed as usize + out.residual_queued, 6_000);
        assert!(!out.saturated, "residual {}", out.residual_queued);
        assert!(out.metrics.mean_response > 0.0);
        assert!(out.end_time > 0.0);
    }

    #[test]
    fn determinism_same_seed_same_outcome() {
        let cfg = quick(PolicyKind::Ls, 16, 0.5);
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.metrics.mean_response, b.metrics.mean_response);
        assert_eq!(a.completed, b.completed);
        let c = run(&cfg.clone().with_seed(999));
        assert_ne!(a.metrics.mean_response, c.metrics.mean_response);
    }

    #[test]
    fn measured_utilization_tracks_offered() {
        let cfg = quick(PolicyKind::Gs, 32, 0.4);
        let out = run(&cfg);
        let offered = out.offered_gross_utilization;
        assert!((offered - 0.4).abs() < 1e-9);
        assert!(
            (out.metrics.gross_utilization - offered).abs() < 0.08,
            "measured {} vs offered {offered}",
            out.metrics.gross_utilization
        );
        // Gross exceeds net by roughly the closed-form ratio.
        let ratio = out.metrics.gross_utilization / out.metrics.net_utilization;
        let expected = cfg.workload.gross_net_ratio();
        assert!((ratio - expected).abs() < 0.05, "ratio {ratio} vs {expected}");
    }

    #[test]
    fn all_policies_run_at_moderate_load() {
        for policy in [PolicyKind::Gs, PolicyKind::Ls, PolicyKind::Lp] {
            let out = run(&quick(policy, 16, 0.3));
            assert!(!out.saturated, "{policy} saturated at 0.3");
            assert!(out.metrics.departures > 0, "{policy}");
        }
        let sc = {
            let mut cfg = SimConfig::das_single_cluster(0.3);
            cfg.total_jobs = 6_000;
            cfg.warmup_jobs = 1_000;
            run(&cfg)
        };
        assert!(!sc.saturated);
    }

    #[test]
    fn overload_is_detected_as_saturation() {
        let cfg = quick(PolicyKind::Gs, 16, 1.4);
        let out = run(&cfg);
        assert!(out.saturated, "offered 1.4 must saturate; residual {}", out.residual_queued);
    }

    #[test]
    fn response_includes_extension() {
        // At very low load every job starts immediately: single-component
        // mean response ≈ mean base service; multi-component ≈ 1.25×.
        let mut cfg = quick(PolicyKind::Gs, 16, 0.05);
        cfg.total_jobs = 4_000;
        cfg.warmup_jobs = 500;
        let out = run(&cfg);
        let m = &out.metrics;
        let base = cfg.workload.service.mean_secs();
        assert!(
            (m.response_single - base).abs() < 0.1 * base,
            "single {} vs base {base}",
            m.response_single
        );
        assert!(
            (m.response_multi - 1.25 * base).abs() < 0.1 * base,
            "multi {} vs extended {}",
            m.response_multi,
            1.25 * base
        );
    }

    #[test]
    fn auto_warmup_is_deterministic_and_leaves_jobs_measured() {
        let mut cfg = quick(PolicyKind::Gs, 16, 0.5);
        cfg.warmup = Warmup::Auto;
        let a = run(&cfg);
        let b = run(&cfg);
        assert_eq!(a.metrics.mean_response, b.metrics.mean_response, "pilot + rerun deterministic");
        // MSER truncates within the first half of the series, so at
        // least half the departures stay in the observation window.
        assert!(
            a.metrics.departures >= cfg.total_jobs / 2,
            "only {} of {} departures measured",
            a.metrics.departures,
            cfg.total_jobs
        );
        assert!(a.metrics.mean_response > 0.0);
    }

    #[test]
    fn sc_has_no_multi_jobs() {
        let mut cfg = SimConfig::das_single_cluster(0.4);
        cfg.total_jobs = 4_000;
        cfg.warmup_jobs = 500;
        let out = run(&cfg);
        assert_eq!(out.metrics.response_multi, 0.0, "no multi-component jobs under SC");
        // Gross equals net for SC (no extension applies).
        let m = &out.metrics;
        assert!(
            (m.gross_utilization - m.net_utilization).abs() < 0.01,
            "gross {} vs net {}",
            m.gross_utilization,
            m.net_utilization
        );
    }

    #[test]
    fn calendar_queue_run_is_byte_identical_to_heap() {
        // The hardest event pattern the engine produces: exponential
        // faults (cancellations + out-of-band failure/repair events) on
        // top of a backfilling policy (departure-time lookahead), with
        // malleable jobs resizing mid-run. The calendar choice must not
        // leak into the outcome at all — not even in the last bit.
        use crate::fault::FaultSpec;
        use desim::CalendarKind;
        let mut cfg = quick(PolicyKind::Gb, 16, 0.5);
        cfg.discipline = crate::queue::QueueDiscipline::Easy;
        cfg.faults = Some(FaultSpec::Exponential { mttf: 40_000.0, mttr: 500.0 });
        let heap = run(&cfg);
        cfg.calendar = CalendarKind::CalendarQueue;
        let cq = run(&cfg);
        assert!(heap.metrics.interruptions > 0, "faults must actually fire");
        let heap_json = serde_json::to_string(&heap).expect("serializable");
        let cq_json = serde_json::to_string(&cq).expect("serializable");
        assert_eq!(heap_json, cq_json, "calendar choice changed the outcome");
    }

    #[test]
    fn heterogeneous_session_runs_under_every_multicluster_policy() {
        for policy in [PolicyKind::Gs, PolicyKind::Ls, PolicyKind::Lp, PolicyKind::Gb] {
            let mut cfg = SimConfig::heterogeneous(policy, 16, 0.35, SystemSpec::das2());
            cfg.total_jobs = 5_000;
            cfg.warmup_jobs = 500;
            cfg.batch_size = 100;
            let out = run(&cfg);
            assert_eq!(out.arrivals, 5_000, "{policy}");
            assert!(!out.saturated, "{policy} saturated at 0.35");
        }
    }
}

#[cfg(test)]
mod trace_replay_tests {
    use super::*;
    use crate::policy::PolicyKind;
    use coalloc_trace::{generate_das1_log, DasLogConfig};

    fn run_trace(cfg: &SimConfig, trace: &coalloc_trace::Trace, time_scale: f64) -> SimOutcome {
        SimBuilder::new(cfg).run_trace(trace, time_scale)
    }

    #[test]
    fn replay_runs_the_whole_log() {
        let log = generate_das1_log(&DasLogConfig { jobs: 4_000, ..Default::default() });
        let mut cfg = SimConfig::das(PolicyKind::Ls, 16, 0.5); // rate ignored
        cfg.warmup_jobs = 400;
        let out = run_trace(&cfg, &log, 1.0);
        assert_eq!(out.arrivals, 4_000);
        assert_eq!(out.completed as usize + out.residual_queued, 4_000);
        assert!(out.metrics.mean_response > 0.0);
        assert!(out.offered_gross_utilization.is_finite());
    }

    #[test]
    fn compressing_time_raises_load_and_response() {
        let log = generate_das1_log(&DasLogConfig { jobs: 6_000, ..Default::default() });
        let mut cfg = SimConfig::das(PolicyKind::Gs, 16, 0.5);
        cfg.warmup_jobs = 600;
        let relaxed = run_trace(&cfg, &log, 1.0);
        let compressed = run_trace(&cfg, &log, 0.25);
        assert!(
            compressed.offered_gross_utilization > 2.0 * relaxed.offered_gross_utilization,
            "offered {} vs {}",
            compressed.offered_gross_utilization,
            relaxed.offered_gross_utilization
        );
        assert!(
            compressed.metrics.mean_response > relaxed.metrics.mean_response,
            "response {} vs {}",
            compressed.metrics.mean_response,
            relaxed.metrics.mean_response
        );
    }

    #[test]
    fn replay_skips_zero_runtime_records() {
        // Cancelled jobs (runtime 0) do not enter the replay: the run is
        // sized by the filtered feed, so arrivals and the conservation
        // identity both reflect only real jobs.
        let mut log = generate_das1_log(&DasLogConfig { jobs: 3_000, ..Default::default() });
        for j in log.jobs.iter_mut().step_by(10) {
            j.runtime = 0.0;
        }
        let mut cfg = SimConfig::das(PolicyKind::Gs, 16, 0.5);
        cfg.warmup_jobs = 200;
        let out = run_trace(&cfg, &log, 1.0);
        assert_eq!(out.arrivals, 2_700);
        assert_eq!(out.completed as usize + out.residual_queued, 2_700);
    }

    #[test]
    fn replay_is_deterministic_per_policy() {
        let log = generate_das1_log(&DasLogConfig { jobs: 2_000, ..Default::default() });
        let cfg = {
            let mut c = SimConfig::das(PolicyKind::Lp, 16, 0.5);
            c.warmup_jobs = 200;
            c
        };
        let a = run_trace(&cfg, &log, 1.0);
        let b = run_trace(&cfg, &log, 1.0);
        assert_eq!(a.metrics.mean_response, b.metrics.mean_response);
    }
}
