//! The simulation layer: configuration, warm-up lifecycle, the Session
//! engine and what a run reports.
//!
//! Runs are built with [`SimBuilder`] and executed by a [`Session`]:
//!
//! ```
//! use coalloc_core::{PolicyKind, SimBuilder, SimConfig};
//! let mut cfg = SimConfig::das(PolicyKind::Gs, 16, 0.4);
//! cfg.total_jobs = 2_000;
//! cfg.warmup_jobs = 200;
//! let outcome = SimBuilder::new(&cfg).run();
//! assert_eq!(outcome.completed, 2_000);
//! ```
//!
//! The historical free-function entry points (`run`, `run_observed`,
//! `run_trace`, `run_with_feed`, `run_with_feed_observed`,
//! `run_with_scheduler`) remain as deprecated shims over the builder and
//! produce bit-identical outcomes.

mod arena;
mod config;
pub(crate) mod network;
mod outcome;
mod session;
mod warmup;

pub use arena::{cluster_mask, RunArena, RunRow, SlotId};
pub use config::{SimConfig, Warmup};
pub use network::{NetworkSpec, NetworkTopology};
pub use outcome::{OccupancyModel, SimOutcome};
pub use session::{Session, SimBuilder};

use crate::audit::SimObserver;
use crate::feed::JobFeed;
use crate::policy::Scheduler;

/// Runs one simulation to completion (all arrivals generated, then the
/// system drained of *running* jobs; waiting jobs that can never start
/// are left queued and reported).
#[deprecated(since = "0.2.0", note = "use `SimBuilder::new(cfg).run()`")]
pub fn run(cfg: &SimConfig) -> SimOutcome {
    SimBuilder::new(cfg).run()
}

/// [`run`] with an observer attached (see [`crate::audit`]). Observers
/// are passive: the outcome is bit-identical to [`run`]'s.
#[deprecated(since = "0.2.0", note = "use `SimBuilder::new(cfg).run_observed(obs)`")]
pub fn run_observed<O: SimObserver>(cfg: &SimConfig, obs: &mut O) -> SimOutcome {
    SimBuilder::new(cfg).run_observed(obs)
}

/// Runs a *trace-driven* simulation (see [`SimBuilder::run_trace`]).
#[deprecated(since = "0.2.0", note = "use `SimBuilder::new(cfg).run_trace(trace, time_scale)`")]
pub fn run_trace(cfg: &SimConfig, trace: &coalloc_trace::Trace, time_scale: f64) -> SimOutcome {
    SimBuilder::new(cfg).run_trace(trace, time_scale)
}

/// The shared event loop, driven by any [`JobFeed`].
#[deprecated(since = "0.2.0", note = "use `SimBuilder::new(cfg).run_feed(feed, offered)`")]
pub fn run_with_feed(cfg: &SimConfig, feed: &mut dyn JobFeed, offered: f64) -> SimOutcome {
    SimBuilder::new(cfg).run_feed(feed, offered)
}

/// [`run_with_feed`] with an observer attached.
#[deprecated(
    since = "0.2.0",
    note = "use `SimBuilder::new(cfg).run_feed_observed(feed, offered, obs)`"
)]
pub fn run_with_feed_observed<O: SimObserver>(
    cfg: &SimConfig,
    feed: &mut dyn JobFeed,
    offered: f64,
    obs: &mut O,
) -> SimOutcome {
    SimBuilder::new(cfg).run_feed_observed(feed, offered, obs)
}

/// The event loop with an explicitly supplied scheduler and occupancy
/// model, bypassing [`crate::policy::PolicyKind::build`] (the mutation
/// tests' seam; also serves ablations implementing [`Scheduler`] outside
/// this crate).
#[deprecated(
    since = "0.2.0",
    note = "use `SimBuilder::new(cfg).scheduler(policy).occupancy(model).run_feed_observed(...)`"
)]
pub fn run_with_scheduler<O: SimObserver>(
    cfg: &SimConfig,
    feed: &mut dyn JobFeed,
    offered: f64,
    policy: Box<dyn Scheduler>,
    obs: &mut O,
    model: OccupancyModel,
) -> SimOutcome {
    SimBuilder::new(cfg).scheduler(policy).occupancy(model).run_feed_observed(feed, offered, obs)
}

/// Convenience: the observation-window mean response time of a run.
pub fn mean_response(cfg: &SimConfig) -> f64 {
    SimBuilder::new(cfg).run().metrics.mean_response
}
