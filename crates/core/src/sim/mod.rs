//! The simulation layer: configuration, warm-up lifecycle, the Session
//! engine and what a run reports.
//!
//! Runs are built with [`SimBuilder`] and executed by a [`Session`]:
//!
//! ```
//! use coalloc_core::{PolicyKind, SimBuilder, SimConfig};
//! let mut cfg = SimConfig::das(PolicyKind::Gs, 16, 0.4);
//! cfg.total_jobs = 2_000;
//! cfg.warmup_jobs = 200;
//! let outcome = SimBuilder::new(&cfg).run();
//! assert_eq!(outcome.completed, 2_000);
//! ```
//!
//! The historical free-function entry points (`run`, `run_observed`,
//! `run_trace`, `run_with_feed`, `run_with_feed_observed`,
//! `run_with_scheduler`) went through a deprecation cycle and are gone;
//! every entry point is a [`SimBuilder`] method now.

mod arena;
mod config;
pub(crate) mod network;
mod outcome;
mod session;
mod warmup;

pub use arena::{cluster_mask, RunArena, RunRow, SlotId};
pub use config::{SimConfig, Warmup};
pub use network::{NetworkSpec, NetworkTopology};
pub use outcome::{OccupancyModel, SimOutcome};
pub use session::{Session, SimBuilder};

/// Convenience: the observation-window mean response time of a run.
pub fn mean_response(cfg: &SimConfig) -> f64 {
    SimBuilder::new(cfg).run().metrics.mean_response
}
