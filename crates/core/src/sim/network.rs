//! The wide-area network model behind [`OccupancyModel::Network`]: a
//! finite-bandwidth fabric whose max-min fair shares make the effective
//! extension of co-allocated jobs load-dependent.
//!
//! The paper charges every multi-component job a *constant* wide-area
//! extension (base service × 1.25, §2.4). Under
//! [`OccupancyModel::Network`](crate::sim::OccupancyModel::Network) the
//! extension becomes emergent instead: every running multi-cluster job
//! holds one *flow* through the fabric, flows get max-min fair bandwidth
//! shares, and a flow at share `s ∈ (0, 1]` runs with stretch
//! `g(s) = 1 + (f − 1)/s`, where `f` is the workload's nominal
//! extension factor for the job's span. At full share the stretch is
//! exactly `f` (an uncontended fabric reproduces the paper bit for
//! bit); as shares shrink, only the *communication* part of the
//! extension dilates — computation is local and unaffected, which is
//! why the stretch is `1 + (f − 1)/s` and not `f/s`.
//!
//! [`OccupancyModel`]: crate::sim::OccupancyModel

use std::str::FromStr;

/// How inter-cluster bandwidth is laid out.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub enum NetworkTopology {
    /// One shared wide-area backbone: every multi-cluster flow crosses
    /// the same link, so `n` concurrent flows each get share
    /// `min(1, capacity / n)`.
    #[default]
    SharedBackbone,
    /// A dedicated link per cluster *pair*, each of the configured
    /// capacity. A flow spanning clusters `{a, b, c}` uses all three
    /// pairwise links; shares are max-min fair (progressive filling)
    /// across the link set.
    PairwiseLinks,
}

/// A finite-bandwidth wide-area fabric for multi-cluster jobs.
///
/// `capacity` is measured in *concurrent-flow units*: a link of
/// capacity `c` sustains `c` flows at full share before contention
/// begins (capacity 1 means the second concurrent flow already halves
/// both shares). `f64::INFINITY` is legal and collapses the model onto
/// [`Faithful`](crate::sim::OccupancyModel::Faithful) bit for bit.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetworkSpec {
    /// Link capacity in concurrent-flow units (must be positive; may be
    /// `f64::INFINITY`).
    pub capacity: f64,
    /// Link layout: one shared backbone, or one link per cluster pair.
    pub topology: NetworkTopology,
}

impl NetworkSpec {
    /// A shared backbone of the given capacity.
    pub fn backbone(capacity: f64) -> Self {
        NetworkSpec { capacity, topology: NetworkTopology::SharedBackbone }
    }

    /// Per-cluster-pair links of the given capacity.
    pub fn pairwise(capacity: f64) -> Self {
        NetworkSpec { capacity, topology: NetworkTopology::PairwiseLinks }
    }

    /// Whether the fabric can never slow a flow down (infinite
    /// capacity ⇒ every share is 1 ⇒ every stretch is the nominal
    /// extension factor).
    pub fn is_uncontended(&self) -> bool {
        self.capacity.is_infinite()
    }

    /// Panics on a spec no simulation should run with.
    pub(crate) fn validate(&self) {
        assert!(
            self.capacity > 0.0,
            "network capacity must be positive (may be `inf`), got {}",
            self.capacity
        );
    }

    /// Max-min fair shares, one per flow, given each flow's cluster
    /// bitmask. Shares are in `(0, 1]` — a flow never runs faster than
    /// its own endpoints allow, whatever the fabric capacity.
    ///
    /// Deterministic: shares depend only on the mask multiset and its
    /// order, and the arithmetic is fixed-order, so equal flow sets
    /// yield bit-equal shares.
    pub(crate) fn shares(&self, masks: &[u64]) -> Vec<f64> {
        let n = masks.len();
        if n == 0 {
            return Vec::new();
        }
        if self.is_uncontended() {
            return vec![1.0; n];
        }
        match self.topology {
            NetworkTopology::SharedBackbone => {
                let share = (self.capacity / n as f64).min(1.0);
                vec![share; n]
            }
            NetworkTopology::PairwiseLinks => self.pairwise_shares(masks),
        }
    }

    /// Progressive filling (water-filling) over the pairwise links: all
    /// unfrozen flows rise at the same rate; whenever a link saturates,
    /// its flows freeze at their current rate. A per-flow cap of 1
    /// (the endpoints' own speed) acts as a virtual access link.
    fn pairwise_shares(&self, masks: &[u64]) -> Vec<f64> {
        let n = masks.len();
        // Links in deterministic (a, b) order with a < b; each carries
        // the indices of the flows crossing it.
        let mut links: Vec<(f64, Vec<usize>)> = Vec::new();
        let mut pair_of: std::collections::BTreeMap<(u32, u32), usize> =
            std::collections::BTreeMap::new();
        for (i, &mask) in masks.iter().enumerate() {
            let clusters: Vec<u32> = (0..64).filter(|&c| mask & (1u64 << c) != 0).collect();
            for (ai, &a) in clusters.iter().enumerate() {
                for &b in &clusters[ai + 1..] {
                    let key = (a, b);
                    let li = *pair_of.entry(key).or_insert_with(|| {
                        links.push((self.capacity, Vec::new()));
                        links.len() - 1
                    });
                    links[li].1.push(i);
                }
            }
        }
        let mut share = vec![0.0f64; n];
        let mut frozen = vec![false; n];
        let mut used: Vec<f64> = vec![0.0; links.len()];
        loop {
            let unfrozen = frozen.iter().filter(|&&f| !f).count();
            if unfrozen == 0 {
                break;
            }
            // The common increment every unfrozen flow can still take:
            // limited by the tightest link and by the per-flow cap of 1.
            let mut delta = f64::INFINITY;
            for (li, (cap, flows)) in links.iter().enumerate() {
                let active = flows.iter().filter(|&&i| !frozen[i]).count();
                if active > 0 {
                    delta = delta.min((cap - used[li]) / active as f64);
                }
            }
            for (i, &f) in frozen.iter().enumerate() {
                if !f {
                    delta = delta.min(1.0 - share[i]);
                }
            }
            debug_assert!(delta.is_finite(), "every unfrozen flow crosses some link");
            let delta = delta.max(0.0);
            for i in 0..n {
                if !frozen[i] {
                    share[i] += delta;
                }
            }
            for (li, (cap, flows)) in links.iter().enumerate() {
                let active = flows.iter().filter(|&&i| !frozen[i]).count();
                used[li] += delta * active as f64;
                if active > 0 && cap - used[li] <= 1e-12 * cap {
                    for &i in flows {
                        frozen[i] = true;
                    }
                }
            }
            for i in 0..n {
                if !frozen[i] && share[i] >= 1.0 {
                    share[i] = 1.0;
                    frozen[i] = true;
                }
            }
        }
        share
    }
}

/// The stretch a flow at bandwidth share `share` runs with, given its
/// nominal extension factor. At full share this is *exactly* the
/// factor — not `1 + (factor − 1)`, whose float round trip could
/// differ in the last bit — so an uncontended fabric collapses onto
/// [`Faithful`](crate::sim::OccupancyModel::Faithful) bit for bit.
pub(crate) fn stretch(factor: f64, share: f64) -> f64 {
    if share >= 1.0 {
        factor
    } else {
        1.0 + (factor - 1.0) / share
    }
}

impl FromStr for NetworkSpec {
    type Err = String;

    /// Parses `bw[:topology]` — e.g. `2`, `inf`, `1.5:backbone`,
    /// `2:pairwise`.
    fn from_str(s: &str) -> Result<Self, String> {
        let (bw, topo) = match s.split_once(':') {
            Some((bw, topo)) => (bw, Some(topo)),
            None => (s, None),
        };
        let capacity: f64 = match bw {
            "inf" => f64::INFINITY,
            other => other
                .parse()
                .map_err(|_| format!("bad bandwidth {other:?}: want a positive number or `inf`"))?,
        };
        if capacity.is_nan() || capacity <= 0.0 {
            return Err(format!("bandwidth must be positive, got {capacity}"));
        }
        let topology = match topo {
            None | Some("backbone") => NetworkTopology::SharedBackbone,
            Some("pairwise") => NetworkTopology::PairwiseLinks,
            Some(other) => return Err(format!("bad topology {other:?}: want backbone|pairwise")),
        };
        Ok(NetworkSpec { capacity, topology })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn backbone_shares_split_evenly_and_cap_at_one() {
        let net = NetworkSpec::backbone(2.0);
        assert_eq!(net.shares(&[0b11]), vec![1.0]);
        assert_eq!(net.shares(&[0b11, 0b101]), vec![1.0, 1.0]);
        assert_eq!(net.shares(&[0b11, 0b101, 0b110, 0b1001]), vec![0.5, 0.5, 0.5, 0.5]);
    }

    #[test]
    fn infinite_capacity_gives_full_shares_everywhere() {
        for net in [NetworkSpec::backbone(f64::INFINITY), NetworkSpec::pairwise(f64::INFINITY)] {
            assert!(net.is_uncontended());
            assert_eq!(net.shares(&[0b11, 0b11, 0b1111]), vec![1.0, 1.0, 1.0]);
        }
    }

    #[test]
    fn pairwise_shares_are_max_min_fair() {
        let net = NetworkSpec::pairwise(1.0);
        // Two flows on disjoint pairs never contend.
        assert_eq!(net.shares(&[0b11, 0b1100]), vec![1.0, 1.0]);
        // Two flows on the same pair split the link.
        assert_eq!(net.shares(&[0b11, 0b11]), vec![0.5, 0.5]);
        // A wide flow crossing a contended link freezes there; the flow
        // it shares the (0,1) link with gets the same bottleneck share,
        // while a flow on an untouched pair keeps full speed.
        let shares = net.shares(&[0b111, 0b11, 0b110000]);
        assert!((shares[0] - 0.5).abs() < 1e-12, "{shares:?}");
        assert!((shares[1] - 0.5).abs() < 1e-12, "{shares:?}");
        assert!((shares[2] - 1.0).abs() < 1e-12, "{shares:?}");
    }

    #[test]
    fn pairwise_filling_gives_unequal_shares_under_asymmetric_load() {
        // Three flows on pair (0,1), one alone on (2,3): the lone flow
        // saturates its own cap at 1, the crowd splits their link.
        let net = NetworkSpec::pairwise(1.0);
        let shares = net.shares(&[0b11, 0b11, 0b11, 0b1100]);
        for s in &shares[..3] {
            assert!((s - 1.0 / 3.0).abs() < 1e-12, "{shares:?}");
        }
        assert!((shares[3] - 1.0).abs() < 1e-12, "{shares:?}");
    }

    #[test]
    fn stretch_is_exactly_the_factor_at_full_share() {
        assert_eq!(stretch(1.25, 1.0), 1.25);
        assert_eq!(stretch(1.25, 2.0), 1.25);
        // Half share doubles the communication part only.
        assert!((stretch(1.25, 0.5) - 1.5).abs() < 1e-15);
        // A span-1 factor of 1.0 never stretches.
        assert_eq!(stretch(1.0, 0.25), 1.0);
    }

    #[test]
    fn parses_the_cli_grammar() {
        assert_eq!("2".parse::<NetworkSpec>().unwrap(), NetworkSpec::backbone(2.0));
        assert_eq!("inf".parse::<NetworkSpec>().unwrap(), NetworkSpec::backbone(f64::INFINITY));
        assert_eq!("1.5:backbone".parse::<NetworkSpec>().unwrap(), NetworkSpec::backbone(1.5));
        assert_eq!("2:pairwise".parse::<NetworkSpec>().unwrap(), NetworkSpec::pairwise(2.0));
        assert!("0".parse::<NetworkSpec>().is_err());
        assert!("-1".parse::<NetworkSpec>().is_err());
        assert!("nan".parse::<NetworkSpec>().is_err());
        assert!("2:ring".parse::<NetworkSpec>().is_err());
    }
}
