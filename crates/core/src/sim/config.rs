//! Simulation configuration: warm-up policy, workload, system shape and
//! the validation rules tying them together.

use coalloc_workload::{JobDisposition, QueueRouting, Workload};
use desim::CalendarKind;

use super::network::NetworkSpec;
use crate::fault::{FaultSpec, InterruptPolicy, ResizePolicy};
use crate::placement::PlacementRule;
use crate::policy::PolicyKind;
use crate::queue::QueueDiscipline;
use crate::system::SystemSpec;

/// How the warm-up transient is chosen.
///
/// The serde impls only matter for configs embedded in JSON reports;
/// the variant carries no data so the vendored derive can handle it.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, serde::Serialize, serde::Deserialize)]
pub enum Warmup {
    /// Discard the first `warmup_jobs` departures — the paper's rule,
    /// and the default.
    #[default]
    Fixed,
    /// Pick the discard count automatically with MSER-5 (White 1997): a
    /// pilot run with the same seed records the full response series,
    /// the truncation minimizing the standard error of the remaining
    /// mean becomes `warmup_jobs` for the measured run. Falls back to
    /// the configured `warmup_jobs` when the pilot yields too short a
    /// series to judge (fewer than 10 departures).
    Auto,
}

/// Configuration of a single simulation run.
#[derive(Clone, Debug)]
pub struct SimConfig {
    /// The scheduling policy under test.
    pub policy: PolicyKind,
    /// The workload model (sizes, service times, limit, extension).
    pub workload: Workload,
    /// Routing of jobs to local queues (LS: all jobs; LP: single-
    /// component jobs; ignored by GS/SC).
    pub routing: QueueRouting,
    /// The system's shape: cluster count and per-cluster capacities.
    pub system: SystemSpec,
    /// Job arrival rate (jobs per second).
    pub arrival_rate: f64,
    /// Squared coefficient of variation of the interarrival times
    /// (1.0 = the paper's Poisson arrivals; > 1 = burstier renewals).
    pub arrival_cv2: f64,
    /// Number of arrivals to generate.
    pub total_jobs: u64,
    /// Departures to discard as warm-up before the observation window.
    /// With [`Warmup::Auto`] this is only the fallback when the MSER
    /// pilot cannot judge.
    pub warmup_jobs: u64,
    /// How `warmup_jobs` is chosen (fixed, or MSER-5 via a pilot run).
    pub warmup: Warmup,
    /// Batch size for the batch-means response-time estimate.
    pub batch_size: u64,
    /// Component placement rule (the paper uses Worst Fit).
    pub rule: PlacementRule,
    /// Master seed; two runs with equal config and seed are identical.
    pub seed: u64,
    /// Record the raw response series in the outcome (one `f64` per
    /// measured departure) for warm-up / autocorrelation analysis.
    pub record_series: bool,
    /// Cluster failure/repair process, if any. `None` (the default)
    /// reproduces the paper's fault-free runs bit for bit.
    pub faults: Option<FaultSpec>,
    /// What happens to jobs whose running components a failure kills.
    pub interrupt: InterruptPolicy,
    /// How much placement freedom jobs grant the scheduler after
    /// submission. `Rigid` (the default) reproduces the paper's runs
    /// bit for bit.
    pub disposition: JobDisposition,
    /// The order in which queued jobs may start. `Fcfs` (the default)
    /// reproduces the paper's runs bit for bit.
    pub discipline: QueueDiscipline,
    /// Runtime-estimate multiplier for the backfilling disciplines:
    /// jobs without a submitted estimate are assumed to run for
    /// `estimate_factor x base_service`. `f64::INFINITY` disables
    /// backfilling entirely (no estimated finish beats any reservation),
    /// collapsing EASY onto FCFS.
    pub estimate_factor: f64,
    /// How malleable jobs may change shape while running (ignored for
    /// rigid and moldable dispositions).
    pub resize: ResizePolicy,
    /// The future-event list the engine runs on. [`CalendarKind::Heap`]
    /// (the default) reproduces historical runs byte for byte; both
    /// calendars drain events identically, so results do not depend on
    /// the choice — only throughput does.
    pub calendar: CalendarKind,
    /// Finite inter-cluster bandwidth, if any. `None` (the default)
    /// keeps the paper's constant extension
    /// ([`crate::sim::OccupancyModel::Faithful`]) and reproduces
    /// historical runs byte for byte; `Some` selects
    /// [`crate::sim::OccupancyModel::Network`], under which the
    /// effective extension of co-allocated jobs grows with load.
    pub network: Option<NetworkSpec>,
}

impl SimConfig {
    /// The paper's multicluster setup: a 4×32 system under the DAS
    /// workload with the given component-size limit and target gross
    /// utilization, balanced local queues.
    pub fn das(policy: PolicyKind, limit: u32, target_gross_util: f64) -> Self {
        let workload = Workload::das(limit);
        let rate = workload.rate_for_gross_utilization(target_gross_util, 128);
        SimConfig {
            policy,
            workload,
            routing: QueueRouting::balanced(4),
            system: SystemSpec::das_multicluster(),
            arrival_rate: rate,
            arrival_cv2: 1.0,
            total_jobs: 60_000,
            warmup_jobs: 5_000,
            warmup: Warmup::Fixed,
            batch_size: 500,
            rule: PlacementRule::WorstFit,
            seed: 2003,
            record_series: false,
            faults: None,
            interrupt: InterruptPolicy::RequeueFront,
            disposition: JobDisposition::Rigid,
            discipline: QueueDiscipline::Fcfs,
            estimate_factor: 2.0,
            resize: ResizePolicy::GrowAndShrink,
            calendar: CalendarKind::Heap,
            network: None,
        }
    }

    /// The paper's single-cluster baseline: SC over 128 processors with
    /// total requests at the given target gross utilization.
    pub fn das_single_cluster(target_gross_util: f64) -> Self {
        let workload = Workload::single_cluster();
        let rate = workload.rate_for_gross_utilization(target_gross_util, 128);
        SimConfig {
            policy: PolicyKind::Sc,
            workload,
            routing: QueueRouting::balanced(1),
            system: SystemSpec::das_single_cluster(),
            arrival_rate: rate,
            arrival_cv2: 1.0,
            total_jobs: 60_000,
            warmup_jobs: 5_000,
            warmup: Warmup::Fixed,
            batch_size: 500,
            rule: PlacementRule::WorstFit,
            seed: 2003,
            record_series: false,
            faults: None,
            interrupt: InterruptPolicy::RequeueFront,
            disposition: JobDisposition::Rigid,
            discipline: QueueDiscipline::Fcfs,
            estimate_factor: 2.0,
            resize: ResizePolicy::GrowAndShrink,
            calendar: CalendarKind::Heap,
            network: None,
        }
    }

    /// A DAS-style workload on an arbitrary — possibly heterogeneous —
    /// system: the component split is capped at the spec's *actual*
    /// cluster count, jobs are routed to local queues in proportion to
    /// cluster capacity, and the arrival rate hits the target gross
    /// utilization on the spec's total capacity.
    ///
    /// For [`PolicyKind::Sc`] the spec's processors are pooled into a
    /// single cluster (SC is the paper's one-big-cluster baseline).
    pub fn heterogeneous(
        policy: PolicyKind,
        limit: u32,
        target_gross_util: f64,
        system: SystemSpec,
    ) -> Self {
        if let Err(e) = system.validate() {
            panic!("{e}");
        }
        if policy == PolicyKind::Sc {
            let single = SystemSpec::new([system.total_capacity()]);
            let workload = Workload::single_cluster();
            let rate =
                workload.rate_for_gross_utilization(target_gross_util, single.total_capacity());
            let mut cfg = SimConfig::das_single_cluster(target_gross_util);
            cfg.workload = workload;
            cfg.system = single;
            cfg.arrival_rate = rate;
            return cfg;
        }
        let workload = Workload::das(limit).with_clusters(system.num_clusters());
        let rate = workload.rate_for_gross_utilization(target_gross_util, system.total_capacity());
        SimConfig {
            policy,
            workload,
            routing: system.proportional_routing(),
            system,
            arrival_rate: rate,
            arrival_cv2: 1.0,
            total_jobs: 60_000,
            warmup_jobs: 5_000,
            warmup: Warmup::Fixed,
            batch_size: 500,
            rule: PlacementRule::WorstFit,
            seed: 2003,
            record_series: false,
            faults: None,
            interrupt: InterruptPolicy::RequeueFront,
            disposition: JobDisposition::Rigid,
            discipline: QueueDiscipline::Fcfs,
            estimate_factor: 2.0,
            resize: ResizePolicy::GrowAndShrink,
            calendar: CalendarKind::Heap,
            network: None,
        }
    }

    /// Switches to the unbalanced 40/20/20/20 routing (§3.1.2).
    pub fn unbalanced(mut self) -> Self {
        self.routing = QueueRouting::unbalanced(self.system.num_clusters());
        self
    }

    /// Replaces the seed (for replications).
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Per-cluster capacities of the configured system.
    pub fn capacities(&self) -> &[u32] {
        self.system.capacities()
    }

    /// Total processors in the configured system.
    pub fn capacity(&self) -> u32 {
        self.system.total_capacity()
    }

    /// The offered gross utilization this configuration generates.
    pub fn offered_gross_utilization(&self) -> f64 {
        self.system.offered_gross_utilization(&self.workload, self.arrival_rate)
    }

    pub(crate) fn validate(&self) {
        if let Err(e) = self.system.validate() {
            panic!("{e}");
        }
        assert!(self.arrival_rate > 0.0, "arrival rate must be positive");
        assert!(self.arrival_cv2 >= 1.0, "interarrival CV^2 must be >= 1");
        assert!(self.total_jobs > 0, "need at least one job");
        assert!(self.warmup_jobs < self.total_jobs, "warm-up must leave jobs to measure");
        if self.policy.has_local_queues() {
            assert_eq!(
                self.routing.queues(),
                self.system.num_clusters(),
                "routing must have one weight per cluster"
            );
            // Single-component jobs are confined to the cluster of their
            // local queue (LS/LP, §2.5) — except ordered requests, which
            // name their clusters themselves. Such a job routed to a
            // cluster smaller than its size blocks its queue forever, so
            // the largest single-component size must fit the *smallest*
            // cluster, not just the system.
            if self.workload.request_kind != coalloc_workload::RequestKind::Ordered {
                let min_cap = self.system.min_capacity();
                let max_single = self
                    .workload
                    .sizes
                    .support()
                    .iter()
                    .map(|&(s, _)| s)
                    .filter(|&s| !self.workload.is_multi(s))
                    .max();
                if let Some(m) = max_single {
                    assert!(
                        m <= min_cap,
                        "single-component jobs of size {m} can never start: they are \
                         confined to their local cluster and the smallest cluster has \
                         only {min_cap} processors"
                    );
                }
                // Even when the sampled sizes happen to dodge it, a
                // component-size limit above the smallest cluster is a
                // misconfiguration under local queues.
                if let Err(e) = self.system.validate_limit(self.workload.limit) {
                    panic!("{e}");
                }
            }
        }
        let max_size = self.workload.sizes.max_size();
        assert!(
            max_size <= self.capacity(),
            "jobs of size {max_size} can never fit in {} processors",
            self.capacity()
        );
        if let Some(spec) = &self.faults {
            if let Err(e) = spec.validate_for(&self.system) {
                panic!("bad fault spec: {e}");
            }
        }
        // Infinity is a legal factor (it turns both backfilling
        // disciplines into FCFS); NaN and non-positive values are not.
        assert!(
            self.estimate_factor > 0.0,
            "estimate factor must be positive, got {}",
            self.estimate_factor
        );
        if let Some(net) = &self.network {
            net.validate();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sim::SimBuilder;
    use coalloc_workload::QueueRouting;

    fn quick(policy: PolicyKind, limit: u32, util: f64) -> SimConfig {
        let mut cfg = SimConfig::das(policy, limit, util);
        cfg.total_jobs = 6_000;
        cfg.warmup_jobs = 1_000;
        cfg.batch_size = 100;
        cfg
    }

    #[test]
    #[should_panic(expected = "can never start")]
    fn local_queues_reject_clusters_too_small_for_single_jobs() {
        // Under LS a single-component job is confined to the cluster of
        // its local queue: a size-16 job routed to the 8-processor
        // cluster blocks its queue forever. The old validation only
        // compared the max *total* size (128) against the *system*
        // capacity (128) and let this config through.
        let mut cfg = quick(PolicyKind::Ls, 16, 0.4);
        cfg.system = SystemSpec::new([8, 120]);
        cfg.routing = QueueRouting::balanced(2);
        SimBuilder::new(&cfg).run();
    }

    #[test]
    #[should_panic(expected = "at least one cluster")]
    fn empty_capacity_list_rejected() {
        let mut cfg = quick(PolicyKind::Gs, 16, 0.4);
        cfg.system = SystemSpec::new(Vec::new());
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "zero capacity")]
    fn zero_capacity_cluster_rejected() {
        let mut cfg = quick(PolicyKind::Gs, 16, 0.4);
        cfg.system = SystemSpec::new([32, 0, 32, 64]);
        cfg.validate();
    }

    #[test]
    #[should_panic(expected = "exceeds the smallest cluster")]
    fn limit_exceeding_smallest_cluster_rejected_under_local_queues() {
        // Sizes that dodge the single-component check (all ≤ 8 or
        // multi-component) still leave the limit itself invalid.
        let mut cfg = quick(PolicyKind::Ls, 16, 0.4);
        cfg.workload.sizes =
            coalloc_workload::JobSizeDist::custom("small-or-wide", &[(8, 0.5), (64, 0.5)]);
        cfg.arrival_rate = cfg.workload.rate_for_gross_utilization(0.4, 128);
        cfg.system = SystemSpec::new([8, 40, 40, 40]);
        cfg.routing = QueueRouting::balanced(4);
        cfg.validate();
    }

    #[test]
    fn heterogeneous_constructor_shapes_the_workload() {
        let cfg = SimConfig::heterogeneous(PolicyKind::Ls, 16, 0.5, SystemSpec::das2());
        assert_eq!(cfg.workload.clusters, 5, "split capped at the actual cluster count");
        assert_eq!(cfg.routing.queues(), 5);
        assert!((cfg.routing.shares()[0] - 0.36).abs() < 1e-12, "proportional routing");
        assert!((cfg.offered_gross_utilization() - 0.5).abs() < 1e-9);
        cfg.validate();
        // An 8-cluster homogeneous variant threads through as well.
        let cfg = SimConfig::heterogeneous(PolicyKind::Gs, 16, 0.4, SystemSpec::homogeneous(8, 32));
        assert_eq!(cfg.workload.clusters, 8);
        cfg.validate();
        // SC pools everything into one big cluster.
        let sc = SimConfig::heterogeneous(PolicyKind::Sc, 16, 0.4, SystemSpec::das2());
        assert_eq!(sc.system.num_clusters(), 1);
        assert_eq!(sc.capacity(), 200);
        sc.validate();
    }
}
