//! Warm-up lifecycle: resolving [`Warmup::Auto`] into a concrete
//! truncation via an MSER-5 pilot run.

use super::config::{SimConfig, Warmup};
use super::outcome::SimOutcome;

/// Resolves [`Warmup::Auto`] into a concrete `warmup_jobs` by running an
/// unobserved pilot (same seed, zero warm-up, response series on) through
/// `run_pilot` and applying MSER-5 to the series. The observer never sees
/// the pilot: only the measured rerun is reported. MSER restricts
/// truncation to the first half of the series, so the resolved warm-up
/// always leaves jobs to measure.
pub(crate) fn resolve_auto_warmup(
    cfg: &SimConfig,
    run_pilot: impl FnOnce(&SimConfig) -> SimOutcome,
) -> SimConfig {
    let mut pilot = cfg.clone();
    pilot.warmup = Warmup::Fixed;
    pilot.warmup_jobs = 0;
    pilot.record_series = true;
    let series = run_pilot(&pilot).response_series;
    let mut resolved = cfg.clone();
    resolved.warmup = Warmup::Fixed;
    if series.len() >= 10 {
        resolved.warmup_jobs = desim::mser5(&series).truncate as u64;
    }
    resolved
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::PolicyKind;
    use crate::sim::SimBuilder;

    #[test]
    fn auto_warmup_resolves_to_a_fixed_mser_truncation() {
        let mut cfg = SimConfig::das(PolicyKind::Ls, 16, 0.5);
        cfg.total_jobs = 6_000;
        cfg.warmup_jobs = 1_000;
        cfg.batch_size = 100;
        cfg.warmup = Warmup::Auto;
        let pilot = |c: &SimConfig| SimBuilder::new(c).run();
        let resolved = resolve_auto_warmup(&cfg, pilot);
        assert_eq!(resolved.warmup, Warmup::Fixed);
        // MSER-5 truncations are multiples of the batch size.
        assert_eq!(resolved.warmup_jobs % 5, 0);
        assert!(resolved.warmup_jobs <= cfg.total_jobs / 2 + 5);
        // The resolution itself is deterministic.
        let again = resolve_auto_warmup(&cfg, pilot);
        assert_eq!(resolved.warmup_jobs, again.warmup_jobs);
    }
}
