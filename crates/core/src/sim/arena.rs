//! Struct-of-arrays storage for the running-job set.
//!
//! The engine's hot scans — "which running jobs touch this failed
//! cluster?", "which running job departs last?" — used to walk a
//! `Vec<Option<(EventId, SimTime)>>` indexed by job id: `O(total_jobs)`
//! per scan and one `Option` branch per slot, even though only a few
//! dozen jobs run at once. [`RunArena`] keeps the hot fields of *running*
//! jobs only, in parallel arrays (ends, sizes, cluster masks), with a
//! dense live list for `O(running)` iteration and a free list for `O(1)`
//! insert/remove.
//!
//! Slots are generational: a [`SlotId`] carries the generation it was
//! minted with, and the departure event carries its job's `SlotId` in the
//! payload, so the departure path never searches for its slot and a slot
//! reused by a later job can never be confused with its previous tenant.

use crate::job::JobId;
use desim::{EventId, SimTime};

/// A generational handle to a slot in the [`RunArena`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SlotId {
    index: u32,
    generation: u32,
}

/// The hot fields of one running job, the row a scan sees.
#[derive(Debug, Clone, Copy)]
pub struct RunRow {
    /// The job occupying the slot.
    pub job: JobId,
    /// Its pending departure event.
    pub event: EventId,
    /// When it departs.
    pub end: SimTime,
    /// Total processors held.
    pub size: u32,
    /// Bitmask of clusters its placement touches (bit `c` set when a
    /// component runs on cluster `c`; `MAX_CLUSTERS == 64` fits a `u64`).
    pub mask: u64,
}

/// Generational struct-of-arrays arena over the running-job set.
#[derive(Debug, Default)]
pub struct RunArena {
    generations: Vec<u32>,
    jobs: Vec<JobId>,
    events: Vec<EventId>,
    ends: Vec<SimTime>,
    sizes: Vec<u32>,
    masks: Vec<u64>,
    /// Indices of vacated slots, reused LIFO.
    free: Vec<u32>,
    /// Dense list of occupied slot indices — the iteration set.
    live: Vec<u32>,
    /// `pos_in_live[i]` locates slot `i` inside `live` for `O(1)`
    /// swap-removal; meaningless for free slots.
    pos_in_live: Vec<u32>,
}

impl RunArena {
    /// An empty arena.
    pub fn new() -> Self {
        RunArena::default()
    }

    /// Number of running jobs.
    pub fn len(&self) -> usize {
        self.live.len()
    }

    /// Whether no job is running.
    pub fn is_empty(&self) -> bool {
        self.live.is_empty()
    }

    /// Claims a slot for a job that just started. The departure event is
    /// usually scheduled *after* the slot is known (its payload carries
    /// the [`SlotId`]); pass a placeholder and fix it up with
    /// [`RunArena::set_event`].
    pub fn insert(
        &mut self,
        job: JobId,
        event: EventId,
        end: SimTime,
        size: u32,
        mask: u64,
    ) -> SlotId {
        let index = match self.free.pop() {
            Some(i) => {
                let i_us = i as usize;
                self.jobs[i_us] = job;
                self.events[i_us] = event;
                self.ends[i_us] = end;
                self.sizes[i_us] = size;
                self.masks[i_us] = mask;
                i
            }
            None => {
                let i = self.generations.len() as u32;
                self.generations.push(0);
                self.jobs.push(job);
                self.events.push(event);
                self.ends.push(end);
                self.sizes.push(size);
                self.masks.push(mask);
                self.pos_in_live.push(0);
                i
            }
        };
        self.pos_in_live[index as usize] = self.live.len() as u32;
        self.live.push(index);
        SlotId { index, generation: self.generations[index as usize] }
    }

    /// Releases a slot when its job departs (or is killed). Bumps the
    /// generation so any stale handle to the old tenant is detectable.
    ///
    /// # Panics
    /// Panics if the handle's generation does not match — a departure
    /// fired for a job that was already removed, which is an engine bug.
    pub fn remove(&mut self, slot: SlotId) -> RunRow {
        let i = slot.index as usize;
        assert_eq!(self.generations[i], slot.generation, "stale RunArena slot {slot:?}");
        let row = RunRow {
            job: self.jobs[i],
            event: self.events[i],
            end: self.ends[i],
            size: self.sizes[i],
            mask: self.masks[i],
        };
        self.generations[i] = self.generations[i].wrapping_add(1);
        let pos = self.pos_in_live[i] as usize;
        let last = *self.live.last().expect("removing from a non-empty live list");
        self.live.swap_remove(pos);
        if pos < self.live.len() {
            self.pos_in_live[last as usize] = pos as u32;
        }
        self.free.push(slot.index);
        row
    }

    /// Reads a slot's row.
    pub fn get(&self, slot: SlotId) -> RunRow {
        let i = slot.index as usize;
        assert_eq!(self.generations[i], slot.generation, "stale RunArena slot {slot:?}");
        RunRow {
            job: self.jobs[i],
            event: self.events[i],
            end: self.ends[i],
            size: self.sizes[i],
            mask: self.masks[i],
        }
    }

    /// Replaces the departure event handle of a running job (slot setup,
    /// and malleable reschedules).
    pub fn set_event(&mut self, slot: SlotId, event: EventId) {
        let i = slot.index as usize;
        assert_eq!(self.generations[i], slot.generation, "stale RunArena slot {slot:?}");
        self.events[i] = event;
    }

    /// Rewrites the hot fields after a malleable resize: new departure
    /// event and time, new total size, new cluster mask.
    pub fn resize_slot(
        &mut self,
        slot: SlotId,
        event: EventId,
        end: SimTime,
        size: u32,
        mask: u64,
    ) {
        let i = slot.index as usize;
        assert_eq!(self.generations[i], slot.generation, "stale RunArena slot {slot:?}");
        self.events[i] = event;
        self.ends[i] = end;
        self.sizes[i] = size;
        self.masks[i] = mask;
    }

    /// Iterates the running set in arbitrary (dense-list) order. Callers
    /// that need a deterministic order sort what they collect — the scans
    /// are `O(running)` either way, and runs stay reproducible.
    pub fn iter(&self) -> impl Iterator<Item = (SlotId, RunRow)> + '_ {
        self.live.iter().map(move |&index| {
            let i = index as usize;
            (
                SlotId { index, generation: self.generations[i] },
                RunRow {
                    job: self.jobs[i],
                    event: self.events[i],
                    end: self.ends[i],
                    size: self.sizes[i],
                    mask: self.masks[i],
                },
            )
        })
    }
}

/// Builds the cluster bitmask of a placement's assignment list.
pub fn cluster_mask(assignments: &[(usize, u32)]) -> u64 {
    assignments.iter().fold(0u64, |m, &(c, _)| m | (1u64 << c))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn slot(arena: &mut RunArena, job: u64, end: f64) -> SlotId {
        arena.insert(JobId(job), EventId::for_tests(job), SimTime::new(end), 4, 0b1)
    }

    #[test]
    fn insert_remove_roundtrip() {
        let mut a = RunArena::new();
        let s0 = slot(&mut a, 0, 10.0);
        let s1 = slot(&mut a, 1, 20.0);
        assert_eq!(a.len(), 2);
        let row = a.remove(s0);
        assert_eq!(row.job, JobId(0));
        assert_eq!(row.end, SimTime::new(10.0));
        assert_eq!(a.len(), 1);
        assert_eq!(a.get(s1).job, JobId(1));
    }

    #[test]
    fn slots_are_reused_with_fresh_generations() {
        let mut a = RunArena::new();
        let s0 = slot(&mut a, 0, 10.0);
        a.remove(s0);
        let s1 = slot(&mut a, 1, 20.0);
        // Same physical slot, different generation.
        assert_eq!(s0.index, s1.index);
        assert_ne!(s0.generation, s1.generation);
        assert_eq!(a.get(s1).job, JobId(1));
    }

    #[test]
    #[should_panic(expected = "stale RunArena slot")]
    fn stale_handle_panics() {
        let mut a = RunArena::new();
        let s0 = slot(&mut a, 0, 10.0);
        a.remove(s0);
        slot(&mut a, 1, 20.0);
        a.get(s0);
    }

    #[test]
    fn live_iteration_covers_exactly_the_running_set() {
        let mut a = RunArena::new();
        let handles: Vec<SlotId> = (0..10).map(|j| slot(&mut a, j, j as f64)).collect();
        a.remove(handles[3]);
        a.remove(handles[7]);
        let mut jobs: Vec<u64> = a.iter().map(|(_, row)| row.job.0).collect();
        jobs.sort_unstable();
        assert_eq!(jobs, vec![0, 1, 2, 4, 5, 6, 8, 9]);
        // Swap-removal keeps pos_in_live consistent: every handle still
        // resolves to its own row.
        for (_, row) in a.iter() {
            assert_ne!(row.job.0, 3);
            assert_ne!(row.job.0, 7);
        }
    }

    #[test]
    fn resize_slot_updates_hot_fields() {
        let mut a = RunArena::new();
        let s = slot(&mut a, 0, 10.0);
        a.resize_slot(s, EventId::for_tests(99), SimTime::new(15.0), 8, 0b11);
        let row = a.get(s);
        assert_eq!(row.event, EventId::for_tests(99));
        assert_eq!(row.end, SimTime::new(15.0));
        assert_eq!(row.size, 8);
        assert_eq!(row.mask, 0b11);
    }

    #[test]
    fn cluster_mask_folds_assignments() {
        assert_eq!(cluster_mask(&[(0, 4), (2, 4), (3, 2)]), 0b1101);
        assert_eq!(cluster_mask(&[]), 0);
    }
}
