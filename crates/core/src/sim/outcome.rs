//! What a run reports, and how started jobs occupy their processors.

use coalloc_workload::Workload;
use desim::Duration;

use super::network::NetworkSpec;
use crate::job::ActiveJob;
use crate::metrics::MetricsReport;

/// The outcome of one simulation run.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct SimOutcome {
    /// Policy label.
    pub policy: String,
    /// The offered gross utilization (from the arrival rate).
    pub offered_gross_utilization: f64,
    /// Everything measured in the observation window.
    pub metrics: MetricsReport,
    /// Arrivals generated.
    pub arrivals: u64,
    /// Jobs completed over the whole run.
    pub completed: u64,
    /// Jobs still waiting in queues when the run ended.
    pub residual_queued: usize,
    /// Jobs waiting at the instant the last arrival was generated — the
    /// backlog an ever-running system would carry.
    pub backlog_at_last_arrival: usize,
    /// Largest backlog seen during the run.
    pub peak_backlog: usize,
    /// Whether the run shows saturation: at the end of the arrival
    /// process a substantial fraction of all jobs was still waiting
    /// (queues grow without bound in steady state).
    pub saturated: bool,
    /// Final simulated time in seconds.
    pub end_time: f64,
    /// Raw response series (empty unless `record_series` was set).
    pub response_series: Vec<f64>,
}

/// How the wide-area extension enters a started job's occupancy.
///
/// [`OccupancyModel::Faithful`] is the paper's model and what every
/// public entry point uses unless [`crate::sim::SimConfig::network`]
/// selects [`OccupancyModel::Network`]. `DoubleExtension` is a seeded
/// bug for mutation-testing the [`crate::audit::InvariantAuditor`] — it
/// exists so the test suite can prove the auditor catches a mis-applied
/// extension factor in the *full* simulation loop, not a synthetic
/// event stream.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub enum OccupancyModel {
    /// Base service × extension factor for the spanned clusters,
    /// applied exactly once (§2.4).
    #[default]
    Faithful,
    /// The extension factor applied twice to multi-cluster jobs (a
    /// seeded bug).
    DoubleExtension,
    /// Load-dependent extension: multi-cluster jobs contend for the
    /// finite inter-cluster bandwidth of a [`NetworkSpec`], so the
    /// achieved extension grows with the number of concurrent flows.
    /// An infinite-capacity spec reproduces `Faithful` bit for bit.
    Network(NetworkSpec),
}

impl OccupancyModel {
    /// The *nominal* occupancy a started job is initially scheduled
    /// with. [`OccupancyModel::Network`] starts every flow at full
    /// share (stretch = the nominal factor) and only reschedules when
    /// contention actually changes the stretch, so its nominal
    /// occupancy is the faithful one.
    pub(crate) fn occupancy(self, job: &ActiveJob, workload: &Workload) -> Duration {
        let faithful = job.occupancy_in(workload);
        match self {
            OccupancyModel::Faithful | OccupancyModel::Network(_) => faithful,
            OccupancyModel::DoubleExtension => {
                let span = job.placement.as_ref().map_or(1, |p| p.assignments().len());
                faithful.scaled(workload.extension_factor(span))
            }
        }
    }

    /// The network spec, when this model carries one.
    pub(crate) fn network(self) -> Option<NetworkSpec> {
        match self {
            OccupancyModel::Network(spec) => Some(spec),
            _ => None,
        }
    }
}
