//! Run-time metrics: response times (overall, per class, per queue) and
//! gross vs net utilization (§2.4, §4).
//!
//! * **Gross utilization** — time-average fraction of processors
//!   allocated; jobs hold processors for their *extended* service time,
//!   "since there is no preemption for communication".
//! * **Net utilization** — only computation plus fast local
//!   communication counts: the non-extended service times. Measured as
//!   the net processor-seconds of jobs departing in the observation
//!   window over capacity × window.

use desim::stats::{BatchMeans, Estimate, TimeWeighted, Welford};
use desim::{P2Quantile, SimTime};

use crate::job::{ActiveJob, SubmitQueue};

/// The job-size classes used for the per-size response breakdown: the
/// buckets mirror the power-of-two structure of the DAS workload.
pub const SIZE_CLASS_BOUNDS: &[u32] = &[8, 16, 32, 64, u32::MAX];

/// Human-readable labels for [`SIZE_CLASS_BOUNDS`].
pub fn size_class_labels() -> Vec<&'static str> {
    vec!["1-8", "9-16", "17-32", "33-64", "65+"]
}

fn size_class(total: u32) -> usize {
    SIZE_CLASS_BOUNDS.iter().position(|&b| total <= b).expect("last bound is MAX")
}

/// Collects metrics over an observation window (opened after warm-up).
#[derive(Debug)]
pub struct Metrics {
    capacity: u32,
    window_start: SimTime,
    /// Gross busy processors as a time-weighted signal.
    busy: TimeWeighted,
    /// Net processor-seconds completed in the window.
    net_work: f64,
    response_all: Welford,
    response_batches: BatchMeans,
    response_local: Welford,
    response_global: Welford,
    response_single: Welford,
    response_multi: Welford,
    response_per_queue: Vec<Welford>,
    response_median: P2Quantile,
    response_p95: P2Quantile,
    wait_all: Welford,
    response_by_size: Vec<Welford>,
    /// Raw response observations, kept only when series recording is on.
    series: Option<Vec<f64>>,
    /// Jobs in the system (queued + running), time-weighted, for the
    /// Little's-law cross-check L = λ·W.
    in_system: TimeWeighted,
    /// Jobs waiting in queues, time-weighted (queue-level Little's law:
    /// Lq = λ·Wq).
    queued: TimeWeighted,
    /// Processors offline due to cluster failures, time-weighted (zero
    /// for the whole run unless fault injection is on).
    unavailable: TimeWeighted,
    /// Running jobs killed by cluster failures in the window.
    interruptions: u64,
    /// Processor-seconds of partial work thrown away by those kills
    /// (processors held × time since the victim's start).
    wasted_work: f64,
    /// Concurrent wide-area flows (running multi-cluster jobs),
    /// time-weighted; only updated under the network occupancy model.
    flows: TimeWeighted,
    /// Seconds multi-cluster jobs actually held their processors, summed
    /// over measured departures (numerator of the achieved extension).
    ext_held: f64,
    /// The same jobs' base service seconds (denominator).
    ext_base: f64,
    departures_in_window: u64,
    batch_size: u64,
}

impl Metrics {
    /// Creates a collector for a system of `capacity` processors and
    /// `queues` queues, batching response times by `batch_size`.
    pub fn new(capacity: u32, queues: usize, batch_size: u64) -> Self {
        Metrics {
            capacity,
            window_start: SimTime::ZERO,
            busy: TimeWeighted::new(SimTime::ZERO, 0.0),
            net_work: 0.0,
            response_all: Welford::new(),
            response_batches: BatchMeans::new(batch_size),
            response_local: Welford::new(),
            response_global: Welford::new(),
            response_single: Welford::new(),
            response_multi: Welford::new(),
            response_per_queue: (0..queues.max(1)).map(|_| Welford::new()).collect(),
            response_median: P2Quantile::new(0.5),
            response_p95: P2Quantile::new(0.95),
            wait_all: Welford::new(),
            response_by_size: (0..SIZE_CLASS_BOUNDS.len()).map(|_| Welford::new()).collect(),
            series: None,
            in_system: TimeWeighted::new(SimTime::ZERO, 0.0),
            queued: TimeWeighted::new(SimTime::ZERO, 0.0),
            unavailable: TimeWeighted::new(SimTime::ZERO, 0.0),
            interruptions: 0,
            wasted_work: 0.0,
            flows: TimeWeighted::new(SimTime::ZERO, 0.0),
            ext_held: 0.0,
            ext_base: 0.0,
            departures_in_window: 0,
            batch_size,
        }
    }

    /// Records the current number of waiting jobs (called after every
    /// scheduling pass).
    pub fn record_queue_length(&mut self, now: SimTime, queued: usize) {
        self.queued.update(now, queued as f64);
    }

    /// Turns on recording of the raw response-time series (for MSER-style
    /// warm-up analysis); costs one `f64` per measured departure.
    pub fn record_series(&mut self) {
        self.series = Some(Vec::new());
    }

    /// Records a job entering the system (submission).
    pub fn record_arrival(&mut self, now: SimTime) {
        self.in_system.add(now, 1.0);
    }

    /// Records processors becoming busy (a job started).
    pub fn record_allocate(&mut self, now: SimTime, procs: u32) {
        self.busy.add(now, f64::from(procs));
    }

    /// Records processors becoming idle (a job departed).
    pub fn record_release(&mut self, now: SimTime, procs: u32) {
        self.busy.add(now, -f64::from(procs));
    }

    /// Records the total number of offline processors after a failure
    /// or repair changed it.
    pub fn record_outage_level(&mut self, now: SimTime, offline: u32) {
        self.unavailable.update(now, f64::from(offline));
    }

    /// Records a running job killed by a cluster failure, throwing away
    /// `wasted` processor-seconds of partial work.
    pub fn record_interruption(&mut self, now: SimTime, wasted: f64) {
        let _ = now;
        self.interruptions += 1;
        self.wasted_work += wasted;
    }

    /// Records the number of concurrent wide-area flows after the flow
    /// set changed (network occupancy model only; fault-free faithful
    /// runs never call this, so `mean_active_flows` reports 0 there).
    pub fn record_flow_level(&mut self, now: SimTime, flows: usize) {
        self.flows.update(now, flows as f64);
    }

    /// Discards everything gathered so far and restarts the observation
    /// window at `now` (end of warm-up). Busy-processor tracking keeps its
    /// current level.
    pub fn reset_window(&mut self, now: SimTime) {
        self.busy.update(now, self.busy.value());
        self.busy.reset_window(now);
        self.window_start = now;
        self.net_work = 0.0;
        self.response_batches = BatchMeans::new(self.batch_size);
        self.response_all = Welford::new();
        self.response_local = Welford::new();
        self.response_global = Welford::new();
        self.response_single = Welford::new();
        self.response_multi = Welford::new();
        for w in &mut self.response_per_queue {
            *w = Welford::new();
        }
        self.response_median = P2Quantile::new(0.5);
        self.response_p95 = P2Quantile::new(0.95);
        self.wait_all = Welford::new();
        for w in &mut self.response_by_size {
            *w = Welford::new();
        }
        if let Some(series) = &mut self.series {
            series.clear();
        }
        let pop = self.in_system.value();
        self.in_system.update(now, pop);
        self.in_system.reset_window(now);
        let q = self.queued.value();
        self.queued.update(now, q);
        self.queued.reset_window(now);
        let off = self.unavailable.value();
        self.unavailable.update(now, off);
        self.unavailable.reset_window(now);
        self.interruptions = 0;
        self.wasted_work = 0.0;
        let fl = self.flows.value();
        self.flows.update(now, fl);
        self.flows.reset_window(now);
        self.ext_held = 0.0;
        self.ext_base = 0.0;
        self.departures_in_window = 0;
    }

    /// Records a job leaving the system, regardless of the window (the
    /// Little's-law population must always balance).
    pub fn record_exit(&mut self, now: SimTime) {
        self.in_system.add(now, -1.0);
    }

    /// Records a job departure inside the observation window.
    pub fn record_departure(&mut self, now: SimTime, job: &ActiveJob) {
        let response = (now - job.arrival).seconds();
        self.response_all.add(response);
        self.response_batches.add(response);
        self.response_median.add(response);
        self.response_p95.add(response);
        if let Some(start) = job.start {
            self.wait_all.add((start - job.arrival).seconds());
        }
        self.response_by_size[size_class(job.spec.request.total())].add(response);
        if let Some(series) = &mut self.series {
            series.push(response);
        }
        match job.queue {
            SubmitQueue::Local(i) => {
                self.response_local.add(response);
                if i < self.response_per_queue.len() {
                    self.response_per_queue[i].add(response);
                }
            }
            SubmitQueue::Global => {
                self.response_global.add(response);
                let last = self.response_per_queue.len() - 1;
                self.response_per_queue[last].add(response);
            }
        }
        if job.spec.request.is_multi() {
            self.response_multi.add(response);
        } else {
            self.response_single.add(response);
        }
        self.net_work += f64::from(job.spec.request.total()) * job.spec.base_service.seconds();
        // The achieved extension: how long multi-cluster jobs *actually*
        // held their processors relative to their base service. Under
        // the faithful model this is the nominal extension factor by
        // construction; under the network model it grows with load.
        if let (Some(p), Some(start)) = (&job.placement, job.start) {
            if p.assignments().len() >= 2 {
                self.ext_held += (now - start).seconds();
                self.ext_base += job.spec.base_service.seconds();
            }
        }
        self.departures_in_window += 1;
    }

    /// Produces the final report at time `now`.
    pub fn report(&self, now: SimTime) -> MetricsReport {
        let window = (now - self.window_start).seconds();
        let denom = f64::from(self.capacity) * window;
        MetricsReport {
            response: self.response_batches.estimate(),
            mean_response: self.response_all.mean(),
            max_response: if self.response_all.count() > 0 { self.response_all.max() } else { 0.0 },
            response_local: self.response_local.mean_opt(),
            response_global: self.response_global.mean_opt(),
            response_single: self.response_single.mean(),
            response_multi: self.response_multi.mean(),
            response_per_queue: self.response_per_queue.iter().map(Welford::mean).collect(),
            mean_wait: self.wait_all.mean(),
            response_by_size: self.response_by_size.iter().map(Welford::mean).collect(),
            median_response: self.response_median.estimate(),
            p95_response: self.response_p95.estimate(),
            mean_jobs_in_system: self.in_system.average(now),
            mean_queue_length: self.queued.average(now),
            throughput: if window > 0.0 { self.departures_in_window as f64 / window } else { 0.0 },
            gross_utilization: if denom > 0.0 { self.busy.integral(now) / denom } else { 0.0 },
            net_utilization: if denom > 0.0 { self.net_work / denom } else { 0.0 },
            departures: self.departures_in_window,
            window_seconds: window,
            availability: if denom > 0.0 {
                1.0 - self.unavailable.integral(now) / denom
            } else {
                1.0
            },
            interruptions: self.interruptions,
            wasted_processor_seconds: self.wasted_work,
            achieved_extension: if self.ext_base > 0.0 {
                self.ext_held / self.ext_base
            } else {
                0.0
            },
            mean_active_flows: self.flows.average(now),
        }
    }

    /// Current number of busy processors (for invariant checks).
    pub fn busy_now(&self) -> f64 {
        self.busy.value()
    }

    /// The recorded raw response series (empty unless
    /// [`Metrics::record_series`] was called).
    pub fn take_series(&mut self) -> Vec<f64> {
        self.series.take().unwrap_or_default()
    }
}

/// The measured quantities of one simulation run's observation window.
#[derive(Clone, Debug, serde::Serialize, serde::Deserialize)]
pub struct MetricsReport {
    /// Batch-means estimate of the mean response time (with 95 % CI).
    pub response: Estimate,
    /// Plain sample mean response time over the window.
    pub mean_response: f64,
    /// Largest observed response time.
    pub max_response: f64,
    /// Mean response of jobs submitted to local queues (LS/LP), `None`
    /// when no measured job used one — under GS/SC every job is global,
    /// and a 0.0 here used to be averaged into sweep aggregates as if it
    /// were a measurement.
    pub response_local: Option<f64>,
    /// Mean response of jobs submitted to the global queue (GS/LP),
    /// `None` when the class is empty (LS routes everything locally).
    pub response_global: Option<f64>,
    /// Mean response of single-component jobs.
    pub response_single: f64,
    /// Mean response of multi-component jobs.
    pub response_multi: f64,
    /// Mean response per queue (local queues first, global last).
    pub response_per_queue: Vec<f64>,
    /// Mean waiting time (start − arrival) of measured jobs.
    pub mean_wait: f64,
    /// Mean response per job-size class (see
    /// [`size_class_labels`]; zero for empty classes).
    pub response_by_size: Vec<f64>,
    /// Streaming (P²) estimate of the median response time.
    pub median_response: f64,
    /// Streaming (P²) estimate of the 95th-percentile response time.
    pub p95_response: f64,
    /// Time-average number of jobs in the system (queued + running).
    pub mean_jobs_in_system: f64,
    /// Time-average number of jobs waiting in queues.
    pub mean_queue_length: f64,
    /// Departures per simulated second in the window.
    pub throughput: f64,
    /// Measured gross utilization (extended occupancy).
    pub gross_utilization: f64,
    /// Measured net utilization (base service only).
    pub net_utilization: f64,
    /// Departures inside the window.
    pub departures: u64,
    /// Window length in simulated seconds.
    pub window_seconds: f64,
    /// Time-average fraction of processors *available* in the window
    /// (1.0 for fault-free runs).
    pub availability: f64,
    /// Running jobs killed by cluster failures in the window.
    pub interruptions: u64,
    /// Processor-seconds of partial work those kills threw away.
    pub wasted_processor_seconds: f64,
    /// Work-weighted mean of (held time / base service) over measured
    /// multi-cluster departures — the extension the run *achieved*.
    /// Exactly the nominal factor under the faithful model; rises with
    /// load under [`crate::sim::OccupancyModel::Network`]; 0.0 when no
    /// multi-cluster job was measured (e.g. SC).
    pub achieved_extension: f64,
    /// Time-average number of concurrent wide-area flows (running
    /// multi-cluster jobs); 0.0 unless the network model is active.
    pub mean_active_flows: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalloc_workload::{JobRequest, JobSpec};
    use desim::Duration;

    fn job(components: &[u32], service: f64, arrival: f64, queue: SubmitQueue) -> ActiveJob {
        ActiveJob::new(
            JobSpec {
                request: JobRequest::new(components.to_vec()),
                base_service: Duration::new(service),
            },
            SimTime::new(arrival),
            queue,
        )
    }

    #[test]
    fn utilization_accounting() {
        let mut m = Metrics::new(100, 1, 10);
        // 50 processors busy over [0, 100): gross integral 5000.
        m.record_allocate(SimTime::ZERO, 50);
        m.record_release(SimTime::new(100.0), 50);
        let j = job(&[50], 80.0, 0.0, SubmitQueue::Global);
        m.record_departure(SimTime::new(100.0), &j);
        let r = m.report(SimTime::new(100.0));
        assert!((r.gross_utilization - 0.5).abs() < 1e-12);
        // Net: 50 procs × 80 s = 4000 over 100×100.
        assert!((r.net_utilization - 0.4).abs() < 1e-12);
        assert_eq!(r.departures, 1);
        assert!((r.mean_response - 100.0).abs() < 1e-12);
    }

    #[test]
    fn class_and_queue_breakdown() {
        let mut m = Metrics::new(128, 5, 10);
        let a = job(&[8], 10.0, 0.0, SubmitQueue::Local(0));
        let b = job(&[8, 8], 10.0, 0.0, SubmitQueue::Global);
        m.record_departure(SimTime::new(50.0), &a);
        m.record_departure(SimTime::new(150.0), &b);
        let r = m.report(SimTime::new(200.0));
        assert!((r.response_local.expect("local jobs measured") - 50.0).abs() < 1e-12);
        assert!((r.response_global.expect("global jobs measured") - 150.0).abs() < 1e-12);
        assert!((r.response_single - 50.0).abs() < 1e-12);
        assert!((r.response_multi - 150.0).abs() < 1e-12);
        assert!((r.mean_response - 100.0).abs() < 1e-12);
        assert!((r.response_per_queue[0] - 50.0).abs() < 1e-12);
        assert!((r.response_per_queue[4] - 150.0).abs() < 1e-12);
    }

    #[test]
    fn warmup_reset_discards_history() {
        let mut m = Metrics::new(10, 1, 5);
        m.record_allocate(SimTime::ZERO, 10);
        let j = job(&[10], 5.0, 0.0, SubmitQueue::Global);
        m.record_departure(SimTime::new(10.0), &j);
        m.reset_window(SimTime::new(100.0));
        // After reset: still 10 busy, but nothing measured yet.
        let r = m.report(SimTime::new(200.0));
        assert_eq!(r.departures, 0);
        assert!((r.gross_utilization - 1.0).abs() < 1e-12, "busy level carries over");
        assert_eq!(r.net_utilization, 0.0);
        assert_eq!(r.mean_response, 0.0);
        assert!((r.window_seconds - 100.0).abs() < 1e-12);
    }

    #[test]
    fn wait_and_size_class_breakdown() {
        let mut m = Metrics::new(128, 1, 10);
        let mut a = job(&[8], 10.0, 0.0, SubmitQueue::Global);
        a.start = Some(SimTime::new(30.0)); // waited 30 s
        let mut b = job(&[64], 10.0, 0.0, SubmitQueue::Global);
        b.start = Some(SimTime::new(0.0)); // no wait
        m.record_departure(SimTime::new(100.0), &a);
        m.record_departure(SimTime::new(100.0), &b);
        let r = m.report(SimTime::new(100.0));
        assert!((r.mean_wait - 15.0).abs() < 1e-12);
        let labels = size_class_labels();
        assert_eq!(labels.len(), r.response_by_size.len());
        // Size 8 lands in class "1-8", size 64 in "33-64".
        assert!((r.response_by_size[0] - 100.0).abs() < 1e-12);
        assert!((r.response_by_size[3] - 100.0).abs() < 1e-12);
        assert_eq!(r.response_by_size[1], 0.0, "empty class reports 0");
    }

    #[test]
    fn empty_queue_classes_report_none() {
        // A GS-style run: every job global, the local class untouched.
        let mut m = Metrics::new(128, 1, 10);
        let j = job(&[8], 10.0, 0.0, SubmitQueue::Global);
        m.record_departure(SimTime::new(50.0), &j);
        let r = m.report(SimTime::new(100.0));
        assert_eq!(r.response_local, None, "no local jobs -> no local mean");
        assert!(r.response_global.is_some());
    }

    #[test]
    fn size_class_boundaries() {
        assert_eq!(size_class(1), 0);
        assert_eq!(size_class(8), 0);
        assert_eq!(size_class(9), 1);
        assert_eq!(size_class(16), 1);
        assert_eq!(size_class(17), 2);
        assert_eq!(size_class(32), 2);
        assert_eq!(size_class(64), 3);
        assert_eq!(size_class(65), 4);
        assert_eq!(size_class(128), 4);
    }

    #[test]
    fn series_recording_roundtrip() {
        let mut m = Metrics::new(16, 1, 5);
        m.record_series();
        let j = job(&[4], 3.0, 0.0, SubmitQueue::Global);
        m.record_departure(SimTime::new(50.0), &j);
        m.record_departure(SimTime::new(80.0), &j);
        let series = m.take_series();
        assert_eq!(series, vec![50.0, 80.0]);
        assert!(m.take_series().is_empty(), "take drains the buffer");
    }

    #[test]
    fn busy_never_negative_invariant() {
        let mut m = Metrics::new(10, 1, 5);
        m.record_allocate(SimTime::ZERO, 4);
        m.record_release(SimTime::new(1.0), 4);
        assert_eq!(m.busy_now(), 0.0);
    }
}
