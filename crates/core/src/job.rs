//! In-flight job state.

use coalloc_workload::JobSpec;
use desim::{Duration, SimTime};

/// Identifies a job within one simulation run (its arrival index).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct JobId(pub u64);

/// The queue a job was submitted to.
#[derive(Clone, Copy, PartialEq, Eq, Debug)]
pub enum SubmitQueue {
    /// The local queue of cluster `i` (LS: all jobs; LP: single-component
    /// jobs).
    Local(usize),
    /// The global queue (GS: all jobs; LP: multi-component jobs).
    Global,
}

/// Placements of up to this many components are stored inline in the
/// job's state — the paper's systems have at most five clusters and
/// unordered splits cap at four components, so in practice no placement
/// on the hot start path touches the heap.
const INLINE_ASSIGNMENTS: usize = 4;

/// `(cluster, processors)` pairs with inline storage for small
/// placements and a heap spill for wider ones. Equality sees only the
/// logical slice, so the two storage forms compare equal.
#[derive(Clone, Debug)]
enum Assignments {
    Inline { len: u8, buf: [(usize, u32); INLINE_ASSIGNMENTS] },
    Heap(Vec<(usize, u32)>),
}

impl Assignments {
    fn from_slice(pairs: &[(usize, u32)]) -> Self {
        if pairs.len() <= INLINE_ASSIGNMENTS {
            let mut buf = [(0usize, 0u32); INLINE_ASSIGNMENTS];
            buf[..pairs.len()].copy_from_slice(pairs);
            Assignments::Inline { len: pairs.len() as u8, buf }
        } else {
            Assignments::Heap(pairs.to_vec())
        }
    }

    fn from_vec(pairs: Vec<(usize, u32)>) -> Self {
        if pairs.len() <= INLINE_ASSIGNMENTS {
            Assignments::from_slice(&pairs)
        } else {
            Assignments::Heap(pairs)
        }
    }

    fn as_slice(&self) -> &[(usize, u32)] {
        match self {
            Assignments::Inline { len, buf } => &buf[..usize::from(*len)],
            Assignments::Heap(v) => v,
        }
    }
}

impl PartialEq for Assignments {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl Eq for Assignments {}

/// Where each component of a started job runs: `(cluster, processors)`
/// pairs over *distinct* clusters.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Placement {
    assignments: Assignments,
}

impl Placement {
    fn validate(assignments: &[(usize, u32)]) {
        assert!(!assignments.is_empty(), "a placement needs at least one component");
        assert!(assignments.iter().all(|&(_, p)| p > 0), "components are non-empty");
        // Quadratic distinctness scan: placements have at most one
        // component per cluster, so this stays tiny — and allocation-free,
        // which the hot start path relies on (starting a paper-scale job
        // touches no heap memory at all).
        for (i, &(c, _)) in assignments.iter().enumerate() {
            assert!(
                assignments[..i].iter().all(|&(d, _)| d != c),
                "components must go to distinct clusters"
            );
        }
    }

    /// Builds a placement from `(cluster, processors)` pairs.
    ///
    /// # Panics
    /// Panics if two components share a cluster (unordered requests place
    /// components on distinct clusters, §2.3) or any component is empty.
    pub fn new(assignments: Vec<(usize, u32)>) -> Self {
        Self::validate(&assignments);
        Placement { assignments: Assignments::from_vec(assignments) }
    }

    /// Builds a placement from a borrowed slice of pairs — the hot-path
    /// constructor: placements of at most four components (every real
    /// configuration) are stored inline with no heap allocation.
    ///
    /// # Panics
    /// Same validation as [`Placement::new`].
    pub fn from_slice(assignments: &[(usize, u32)]) -> Self {
        Self::validate(assignments);
        Placement { assignments: Assignments::from_slice(assignments) }
    }

    /// Builds a placement *without* the distinct-cluster check, so
    /// audit tests can hand the auditor an invalid placement that the
    /// public constructor would reject.
    #[cfg(test)]
    pub(crate) fn raw(assignments: Vec<(usize, u32)>) -> Self {
        Placement { assignments: Assignments::from_vec(assignments) }
    }

    /// The `(cluster, processors)` pairs.
    pub fn assignments(&self) -> &[(usize, u32)] {
        self.assignments.as_slice()
    }

    /// Total processors across components.
    pub fn total(&self) -> u32 {
        self.assignments.as_slice().iter().map(|&(_, p)| p).sum()
    }
}

/// One job from arrival to departure.
#[derive(Clone, Debug)]
pub struct ActiveJob {
    /// The sampled request and base service time.
    pub spec: JobSpec,
    /// Arrival (submission) time.
    pub arrival: SimTime,
    /// Which queue the job went to.
    pub queue: SubmitQueue,
    /// Assigned processors, set when the job starts.
    pub placement: Option<Placement>,
    /// Start time, set when the job starts.
    pub start: Option<SimTime>,
}

impl ActiveJob {
    /// A freshly arrived job.
    pub fn new(spec: JobSpec, arrival: SimTime, queue: SubmitQueue) -> Self {
        ActiveJob { spec, arrival, queue, placement: None, start: None }
    }

    /// The service time this job will hold its processors for: the base
    /// time, extended by `extension` if it spans multiple clusters (§2.4).
    ///
    /// Once the job is placed, the *actual* placement decides: a flexible
    /// request that landed in a single cluster does all its communication
    /// locally and is not extended. Before placement (and for the static
    /// request kinds, equivalently) the request's classification is used.
    ///
    /// Deprecated because the flat factor ignores the workload's spread
    /// penalty: a job spanning three or more clusters is silently
    /// under-extended whenever `spread_penalty > 0`. Use
    /// [`ActiveJob::occupancy_in`], which derives the factor from the
    /// actual span.
    #[deprecated(
        since = "0.3.0",
        note = "applies a flat factor regardless of span; use `occupancy_in`, which \
                charges `extension_factor(span)` and so honours the spread penalty"
    )]
    pub fn occupancy(&self, extension: f64) -> Duration {
        match &self.placement {
            Some(p) if p.assignments().len() > 1 => self.spec.base_service.scaled(extension),
            Some(_) => self.spec.base_service,
            None => self.spec.extended_service(extension),
        }
    }

    /// The occupancy under a full workload model, where the extension
    /// factor may grow with the number of clusters actually spanned
    /// (see [`coalloc_workload::Workload::extension_factor`]). Prefer
    /// this over [`ActiveJob::occupancy`] when a spread penalty is in
    /// play.
    pub fn occupancy_in(&self, workload: &coalloc_workload::Workload) -> Duration {
        let span = match &self.placement {
            Some(p) => p.assignments().len(),
            None => self.spec.request.num_components(),
        };
        self.spec.base_service.scaled(workload.extension_factor(span))
    }

    /// Whether the job has started.
    pub fn started(&self) -> bool {
        self.start.is_some()
    }
}

/// The table of all jobs seen by one simulation run, indexed by [`JobId`].
#[derive(Debug, Default)]
pub struct JobTable {
    jobs: Vec<ActiveJob>,
}

impl JobTable {
    /// An empty table.
    pub fn new() -> Self {
        JobTable { jobs: Vec::new() }
    }

    /// An empty table with room for `cap` jobs.
    pub fn with_capacity(cap: usize) -> Self {
        JobTable { jobs: Vec::with_capacity(cap) }
    }

    /// Inserts a job, returning its id.
    pub fn insert(&mut self, job: ActiveJob) -> JobId {
        let id = JobId(self.jobs.len() as u64);
        self.jobs.push(job);
        id
    }

    /// Immutable access.
    pub fn get(&self, id: JobId) -> &ActiveJob {
        &self.jobs[id.0 as usize]
    }

    /// Mutable access.
    pub fn get_mut(&mut self, id: JobId) -> &mut ActiveJob {
        &mut self.jobs[id.0 as usize]
    }

    /// Number of jobs ever inserted.
    pub fn len(&self) -> usize {
        self.jobs.len()
    }

    /// Whether no jobs have been inserted.
    pub fn is_empty(&self) -> bool {
        self.jobs.is_empty()
    }

    /// Marks a job started: records its placement and start time.
    pub fn mark_started(&mut self, id: JobId, placement: Placement, now: SimTime) {
        let job = self.get_mut(id);
        debug_assert!(!job.started(), "job started twice");
        debug_assert_eq!(
            placement.total(),
            job.spec.request.total(),
            "placement must cover the whole request"
        );
        job.placement = Some(placement);
        job.start = Some(now);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use coalloc_workload::JobRequest;

    fn spec(components: Vec<u32>, service: f64) -> JobSpec {
        JobSpec { request: JobRequest::new(components), base_service: Duration::new(service) }
    }

    #[test]
    fn placement_rejects_duplicate_clusters() {
        let ok = Placement::new(vec![(0, 8), (1, 8)]);
        assert_eq!(ok.total(), 16);
        let result = std::panic::catch_unwind(|| Placement::new(vec![(0, 8), (0, 8)]));
        assert!(result.is_err(), "duplicate cluster must panic");
    }

    #[test]
    #[allow(deprecated)]
    fn occupancy_extends_multi_jobs() {
        let single = ActiveJob::new(spec(vec![8], 100.0), SimTime::ZERO, SubmitQueue::Local(0));
        let multi = ActiveJob::new(spec(vec![8, 8], 100.0), SimTime::ZERO, SubmitQueue::Global);
        assert_eq!(single.occupancy(1.25).seconds(), 100.0);
        assert_eq!(multi.occupancy(1.25).seconds(), 125.0);
    }

    #[test]
    #[allow(deprecated)]
    fn flat_occupancy_under_extends_spread_jobs() {
        // The regression the deprecation guards: with a spread penalty,
        // the flat path charges 1.25 for a three-cluster job while the
        // span-aware path charges extension_factor(3) = 1.25 + penalty.
        let mut workload = coalloc_workload::Workload::das(16);
        workload.spread_penalty = 0.05;
        let mut job =
            ActiveJob::new(spec(vec![8, 8, 8], 100.0), SimTime::ZERO, SubmitQueue::Global);
        job.placement = Some(Placement::new(vec![(0, 8), (1, 8), (2, 8)]));
        let flat = job.occupancy(workload.extension).seconds();
        let spanned = job.occupancy_in(&workload).seconds();
        assert_eq!(flat, 125.0, "flat path ignores the third cluster");
        assert_eq!(spanned, 130.0, "span-aware path charges 1.25 + 0.05");
        assert!(flat < spanned, "the flat path silently under-extends");
        // With no spread penalty the two paths agree — the deprecation
        // changes nothing for the paper's constant-factor runs.
        workload.spread_penalty = 0.0;
        assert_eq!(job.occupancy(workload.extension), job.occupancy_in(&workload));
    }

    #[test]
    fn table_insert_and_start() {
        let mut t = JobTable::new();
        let id =
            t.insert(ActiveJob::new(spec(vec![4, 4], 10.0), SimTime::ZERO, SubmitQueue::Global));
        assert_eq!(id, JobId(0));
        assert!(!t.get(id).started());
        t.mark_started(id, Placement::new(vec![(0, 4), (3, 4)]), SimTime::new(5.0));
        assert!(t.get(id).started());
        assert_eq!(t.get(id).start, Some(SimTime::new(5.0)));
        assert_eq!(t.len(), 1);
    }

    #[test]
    #[should_panic]
    #[cfg(debug_assertions)] // the check is a debug_assert
    fn mismatched_placement_total_debug_panics() {
        let mut t = JobTable::new();
        let id =
            t.insert(ActiveJob::new(spec(vec![4, 4], 10.0), SimTime::ZERO, SubmitQueue::Global));
        t.mark_started(id, Placement::new(vec![(0, 4)]), SimTime::new(1.0));
    }
}
