//! Plain-text rendering of tables and figure data series, in the layout
//! of the paper's tables and gnuplot-style columns for its figures.

use crate::experiment::SweepPoint;

/// Renders an aligned plain-text table.
pub fn format_table(title: &str, headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    let mut header_line = String::new();
    for (h, w) in headers.iter().zip(&widths) {
        header_line.push_str(&format!("{h:>w$}  ", w = w));
    }
    out.push_str(header_line.trim_end());
    out.push('\n');
    out.push_str(&"-".repeat(header_line.trim_end().len()));
    out.push('\n');
    for row in rows {
        let mut line = String::new();
        for (cell, w) in row.iter().zip(&widths) {
            line.push_str(&format!("{cell:>w$}  ", w = w));
        }
        out.push_str(line.trim_end());
        out.push('\n');
    }
    out
}

/// One named data series of a figure: `(x, y)` points.
#[derive(Clone, Debug)]
pub struct Series {
    /// Legend label (e.g. "LS 16 gross").
    pub name: String,
    /// The data points.
    pub points: Vec<(f64, f64)>,
}

impl Series {
    /// Builds a response-time-vs-*measured-gross-utilization* series from
    /// sweep points, the paper's standard axes. Saturated points are
    /// dropped (their response time is unbounded in steady state).
    pub fn response_vs_gross(name: impl Into<String>, points: &[SweepPoint]) -> Self {
        Series {
            name: name.into(),
            points: points
                .iter()
                .filter(|p| !p.outcome.saturated)
                .map(|p| (p.outcome.gross_utilization, p.outcome.response.mean))
                .collect(),
        }
    }

    /// The same responses plotted against the *net* utilization (§4).
    pub fn response_vs_net(name: impl Into<String>, points: &[SweepPoint]) -> Self {
        Series {
            name: name.into(),
            points: points
                .iter()
                .filter(|p| !p.outcome.saturated)
                .map(|p| (p.outcome.net_utilization, p.outcome.response.mean))
                .collect(),
        }
    }
}

/// Renders figure data as gnuplot-style blocks: one `# name` header per
/// series, `x y` lines, blank-line separated.
pub fn format_figure(title: &str, series: &[Series]) -> String {
    let mut out = String::new();
    out.push_str(&format!("## {title}\n"));
    for s in series {
        out.push_str(&format!("# {}\n", s.name));
        for &(x, y) in &s.points {
            out.push_str(&format!("{x:.4} {y:.1}\n"));
        }
        out.push('\n');
    }
    out
}

/// Renders a sweep's replication statistics as an aligned table: target
/// and measured utilization, the mean response with its 95 % half-width
/// and relative error, how many replications the adaptive engine spent
/// at each point, and how many of those panicked (`fail` — nonzero only
/// when panic isolation swallowed replications; see
/// [`crate::experiment::FailedReplication`]).
pub fn sweep_stats_table(title: &str, points: &[SweepPoint]) -> String {
    let rows: Vec<Vec<String>> = points
        .iter()
        .map(|p| {
            let o = &p.outcome;
            let (resp, half, rel) = if o.saturated {
                ("saturated".to_string(), "-".to_string(), "-".to_string())
            } else if o.runs.is_empty() && !o.failures.is_empty() {
                ("failed".to_string(), "-".to_string(), "-".to_string())
            } else {
                let rel = o.response.relative_error();
                (
                    format!("{:.1}", o.response.mean),
                    if o.response.half_width.is_finite() {
                        format!("±{:.1}", o.response.half_width)
                    } else {
                        "±inf".to_string()
                    },
                    if rel.is_finite() {
                        format!("{:.1}%", 100.0 * rel)
                    } else {
                        "inf".to_string()
                    },
                )
            };
            vec![
                format!("{:.2}", p.target_utilization),
                format!("{:.3}", o.gross_utilization),
                resp,
                half,
                rel,
                format!("{}", o.runs.len()),
                format!("{}", o.failures.len()),
            ]
        })
        .collect();
    format_table(title, &["target", "gross", "response", "ci95", "rel_err", "reps", "fail"], &rows)
}

/// The x-position at which a series crosses a response-time level, by
/// linear interpolation — a crude but robust "maximal utilization seen on
/// the curve" summary for comparing policies.
pub fn utilization_at_response(series: &Series, level: f64) -> Option<f64> {
    for w in series.points.windows(2) {
        let ((x0, y0), (x1, y1)) = (w[0], w[1]);
        if (y0 <= level && y1 >= level) && y1 > y0 {
            return Some(x0 + (x1 - x0) * (level - y0) / (y1 - y0));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::experiment::ReplicatedOutcome;
    use desim::stats::Estimate;

    fn point(target: f64, gross: f64, net: f64, resp: f64, saturated: bool) -> SweepPoint {
        SweepPoint {
            target_utilization: target,
            outcome: ReplicatedOutcome {
                response: Estimate { mean: resp, half_width: 1.0, n: 3 },
                gross_utilization: gross,
                net_utilization: net,
                response_local: Some(resp),
                response_global: Some(resp),
                saturated,
                runs: vec![],
                failures: vec![],
            },
        }
    }

    #[test]
    fn table_alignment() {
        let t = format_table(
            "Table X",
            &["limit", "gross", "net"],
            &[
                vec!["16".into(), "0.693".into(), "0.569".into()],
                vec!["24".into(), "0.578".into(), "0.494".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines[0], "Table X");
        assert!(lines[1].contains("limit") && lines[1].contains("net"));
        assert!(lines[2].starts_with('-'));
        assert!(lines[3].contains("16") && lines[3].contains("0.693"));
        // Columns right-aligned: all rows have equal length.
        assert_eq!(lines[3].len(), lines[4].len());
    }

    #[test]
    fn figure_format_contains_series() {
        let s = Series { name: "LS 16".into(), points: vec![(0.3, 400.0), (0.5, 900.0)] };
        let text = format_figure("Fig 3", &[s]);
        assert!(text.contains("## Fig 3"));
        assert!(text.contains("# LS 16"));
        assert!(text.contains("0.3000 400.0"));
    }

    #[test]
    fn series_drops_saturated_points() {
        let pts =
            vec![point(0.3, 0.29, 0.25, 500.0, false), point(0.9, 0.62, 0.53, 50_000.0, true)];
        let s = Series::response_vs_gross("GS", &pts);
        assert_eq!(s.points.len(), 1);
        assert_eq!(s.points[0], (0.29, 500.0));
        let n = Series::response_vs_net("GS", &pts);
        assert_eq!(n.points[0], (0.25, 500.0));
    }

    #[test]
    fn sweep_stats_table_shows_precision_and_replications() {
        let pts =
            vec![point(0.3, 0.29, 0.25, 500.0, false), point(0.9, 0.62, 0.53, 50_000.0, true)];
        let text = sweep_stats_table("Sweep", &pts);
        assert!(text.contains("rel_err") && text.contains("reps"), "{text}");
        assert!(text.contains("500.0") && text.contains("±1.0"));
        // 1.0 / 500.0 = 0.2 % relative error.
        assert!(text.contains("0.2%"), "{text}");
        assert!(text.contains("saturated"), "{text}");
    }

    #[test]
    fn sweep_stats_table_surfaces_failed_replications() {
        let mut p = point(0.5, 0.0, 0.0, 0.0, false);
        p.outcome.response = Estimate { mean: 0.0, half_width: f64::INFINITY, n: 0 };
        p.outcome.failures =
            vec![crate::experiment::FailedReplication { rep: 0, seed: 17, cause: "boom".into() }];
        let text = sweep_stats_table("Sweep", &[p]);
        let header = text.lines().nth(1).expect("header line");
        assert!(header.contains("fail"), "{text}");
        // An all-failed point renders "failed" instead of a garbage mean,
        // and its failure count lands in the fail column.
        assert!(text.contains("failed"), "{text}");
        let row = text.lines().nth(3).expect("data row");
        assert!(row.trim_end().ends_with('1'), "{text}");
    }

    #[test]
    fn crossing_interpolation() {
        let s = Series { name: "x".into(), points: vec![(0.2, 100.0), (0.4, 300.0), (0.6, 900.0)] };
        let x = utilization_at_response(&s, 200.0).expect("crosses 200");
        assert!((x - 0.3).abs() < 1e-12);
        assert!(utilization_at_response(&s, 50.0).is_none());
        assert!(utilization_at_response(&s, 2000.0).is_none());
    }
}

/// Renders data series as a fixed-size ASCII scatter plot, one glyph per
/// series — enough to eyeball the response-time curves in a terminal
/// without leaving the harness.
pub fn ascii_plot(title: &str, series: &[Series], width: usize, height: usize) -> String {
    assert!(width >= 16 && height >= 4, "plot too small to be readable");
    const GLYPHS: &[char] = &['*', '+', 'o', 'x', '#', '@', '%', '&'];
    let points: Vec<(f64, f64)> = series.iter().flat_map(|s| s.points.iter().copied()).collect();
    let mut out = String::new();
    out.push_str(title);
    out.push('\n');
    if points.is_empty() {
        out.push_str("(no data)\n");
        return out;
    }
    let (mut x0, mut x1, mut y0, mut y1) = (f64::MAX, f64::MIN, f64::MAX, f64::MIN);
    for &(x, y) in &points {
        x0 = x0.min(x);
        x1 = x1.max(x);
        y0 = y0.min(y);
        y1 = y1.max(y);
    }
    if x1 <= x0 {
        x1 = x0 + 1.0;
    }
    if y1 <= y0 {
        y1 = y0 + 1.0;
    }
    let mut grid = vec![vec![' '; width]; height];
    for (si, s) in series.iter().enumerate() {
        let glyph = GLYPHS[si % GLYPHS.len()];
        for &(x, y) in &s.points {
            let col = (((x - x0) / (x1 - x0)) * (width - 1) as f64).round() as usize;
            let row = (((y - y0) / (y1 - y0)) * (height - 1) as f64).round() as usize;
            let row = height - 1 - row; // y grows upward
            grid[row.min(height - 1)][col.min(width - 1)] = glyph;
        }
    }
    out.push_str(&format!("{y1:>10.0} ┤"));
    out.push_str(&grid[0].iter().collect::<String>());
    out.push('\n');
    for row in grid.iter().take(height - 1).skip(1) {
        out.push_str(&format!("{:>10} ┤", ""));
        out.push_str(&row.iter().collect::<String>());
        out.push('\n');
    }
    out.push_str(&format!("{y0:>10.0} ┤"));
    out.push_str(&grid[height - 1].iter().collect::<String>());
    out.push('\n');
    out.push_str(&format!("{:>11}└{}\n", "", "─".repeat(width)));
    out.push_str(&format!(
        "{:>12}{x0:<10.3}{:>pad$}{x1:>10.3}\n",
        "",
        "",
        pad = width.saturating_sub(20)
    ));
    for (si, s) in series.iter().enumerate() {
        out.push_str(&format!("{:>12}{} {}\n", "", GLYPHS[si % GLYPHS.len()], s.name));
    }
    out
}

#[cfg(test)]
mod ascii_tests {
    use super::*;

    fn demo_series() -> Vec<Series> {
        vec![
            Series { name: "LS".into(), points: vec![(0.3, 400.0), (0.5, 800.0), (0.7, 3000.0)] },
            Series { name: "SC".into(), points: vec![(0.3, 350.0), (0.5, 600.0), (0.7, 1500.0)] },
        ]
    }

    #[test]
    fn plot_contains_axes_and_legend() {
        let text = ascii_plot("demo", &demo_series(), 40, 10);
        assert!(text.starts_with("demo\n"));
        assert!(text.contains("* LS"));
        assert!(text.contains("+ SC"));
        assert!(text.contains("3000"), "y max label:\n{text}");
        assert!(text.contains("0.300"), "x min label:\n{text}");
        assert!(text.contains("0.700"), "x max label:\n{text}");
        // Both glyphs actually plotted.
        assert!(text.contains('*') && text.contains('+'));
    }

    #[test]
    fn empty_series_is_graceful() {
        let text = ascii_plot("empty", &[], 40, 10);
        assert!(text.contains("(no data)"));
    }

    #[test]
    fn single_point_does_not_divide_by_zero() {
        let s = vec![Series { name: "p".into(), points: vec![(0.5, 100.0)] }];
        let text = ascii_plot("one", &s, 20, 5);
        assert!(text.contains('*'));
    }

    #[test]
    #[should_panic(expected = "too small")]
    fn tiny_plot_rejected() {
        ascii_plot("x", &[], 3, 2);
    }
}
