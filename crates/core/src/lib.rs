//! # coalloc-core — trace-based simulation of processor co-allocation
//! policies in multiclusters
//!
//! A faithful reimplementation of the simulator behind Bucur & Epema,
//! *Trace-Based Simulations of Processor Co-Allocation Policies in
//! Multiclusters* (HPDC 2003): rigid jobs, space sharing, unordered
//! requests placed Worst-Fit on distinct clusters, and the GS / LS / LP
//! multicluster scheduling policies compared against single-cluster FCFS
//! (SC).
//!
//! Start with [`SimConfig::das`] and [`SimBuilder`] for a single run
//! (`SimBuilder::new(&cfg).run()`), [`SystemSpec`] +
//! [`SimConfig::heterogeneous`] for non-DAS cluster geometries, or
//! [`experiment`] for the response-time-vs-utilization sweeps behind the
//! paper's figures and [`saturation`] for the maximal-utilization
//! measurements behind Table 3.

#![warn(missing_docs)]
#![warn(clippy::all)]

pub mod analysis;
pub mod audit;
pub mod cluster;
pub mod error;
pub mod experiment;
pub mod fault;
pub mod feed;
pub mod job;
pub mod metrics;
pub mod placement;
pub mod policy;
pub mod queue;
pub mod report;
pub mod saturation;
pub mod sim;
pub mod system;

pub use analysis::{
    fits_after, identical_jobs_max_utilization, max_identical_packing, packing_report,
    packing_rows, residual_idle, self_compatible, PackingRow,
};
pub use audit::{
    EventRecord, Interruption, InvariantAuditor, JsonlSink, NullObserver, PassTrigger,
    PlacementDecision, PlacementScope, Resize, SimObserver, Tee, Violation, ViolationKind,
};
pub use cluster::Cluster;
pub use error::CoallocError;
pub use experiment::{
    compare, compare_sweeps, point_digest, replication_seed, sweep, sweep_digest, sweep_on,
    sweep_on_cancellable, CancelReason, CancelToken, FailedReplication, RecoveryReport,
    ReplicatedOutcome, ResultStore, RoundReport, ScenarioCache, SweepCheckpoint, SweepConfig,
    SweepPoint, SweepStats, Verdict, WorkerPool, CHECKPOINT_VERSION,
};
pub use fault::{FaultEvent, FaultKind, FaultSpec, FaultTrace, InterruptPolicy, ResizePolicy};
pub use feed::{JobFeed, StochasticFeed, TraceFeed};
pub use job::{ActiveJob, JobId, JobTable, Placement, SubmitQueue};
pub use metrics::{Metrics, MetricsReport};
pub use placement::{
    place_flexible, place_on_cluster, place_ordered, place_request, place_scoped, place_unordered,
    PlacementRule,
};
pub use policy::{
    GlobalBackfill, GlobalScheduler, LocalPriority, LocalSchedulers, PolicyKind, PolicyOptions,
    Scheduler,
};
pub use queue::QueueDiscipline;
pub use saturation::{
    bisect_max_utilization, bisect_max_utilization_cancellable_on, bisect_max_utilization_on,
    bisect_max_utilization_replicated, maximal_utilization, ProbePlan, SaturationConfig,
    SaturationResult,
};
pub use sim::{
    mean_response, NetworkSpec, NetworkTopology, OccupancyModel, Session, SimBuilder, SimConfig,
    SimOutcome, Warmup,
};
pub use system::{MultiCluster, SystemSpec, SystemSpecError};
