//! Proves the Scheduler allocation-free contract with a counting global
//! allocator: in the steady-state event cycle — departure release,
//! queue re-enable, scheduling pass, including passes that *start* jobs
//! — the simulator performs **zero** heap allocations (placements of
//! paper-scale jobs are stored inline in the job's state).
//!
//! This is a single `#[test]` in its own integration-test binary on
//! purpose: the counter is process-global, so concurrently running
//! tests would pollute the measured sections.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

use coalloc_core::audit::NullObserver;
use coalloc_core::job::{ActiveJob, JobId, JobTable, SubmitQueue};
use coalloc_core::placement::PlacementRule;
use coalloc_core::policy::PolicyKind;
use coalloc_core::system::{MultiCluster, SystemSpec};
use coalloc_workload::{JobRequest, JobSpec, QueueRouting};
use desim::{Duration, RngStream, SimTime};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);
static FREES: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        FREES.fetch_add(1, Ordering::Relaxed);
        System.dealloc(ptr, layout)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

/// Runs `f` and returns `(result, allocations, frees)` performed by it.
fn counted<T>(f: impl FnOnce() -> T) -> (T, u64, u64) {
    let a0 = ALLOCS.load(Ordering::Relaxed);
    let f0 = FREES.load(Ordering::Relaxed);
    let out = f();
    let a1 = ALLOCS.load(Ordering::Relaxed);
    let f1 = FREES.load(Ordering::Relaxed);
    (out, a1 - a0, f1 - f0)
}

fn spec(components: &[u32]) -> JobSpec {
    JobSpec { request: JobRequest::new(components.to_vec()), base_service: Duration::new(100.0) }
}

fn submit(
    table: &mut JobTable,
    policy: &mut Box<dyn coalloc_core::policy::Scheduler>,
    components: &[u32],
    queue: SubmitQueue,
) -> JobId {
    let id = table.insert(ActiveJob::new(spec(components), SimTime::ZERO, queue));
    policy.enqueue(id, queue);
    id
}

/// Releases a started job's processors and runs the departure hook —
/// exactly what the event loop does on `SimEvent::Departure`.
fn depart(
    table: &JobTable,
    system: &mut MultiCluster,
    policy: &mut Box<dyn coalloc_core::policy::Scheduler>,
    id: JobId,
) {
    let placement = table.get(id).placement.as_ref().expect("job was started");
    system.release(placement);
    policy.on_departure();
}

#[test]
fn steady_state_event_cycle_is_allocation_free() {
    let mut obs = NullObserver;
    let now = SimTime::ZERO;

    // ---- GS: global queue over the 4×32 multicluster ----
    let mut system = MultiCluster::new(&[32, 32, 32, 32]);
    let mut policy = PolicyKind::Gs.build(
        &SystemSpec::das_multicluster(),
        QueueRouting::balanced(4),
        RngStream::new(7),
        PlacementRule::WorstFit,
    );
    let mut table = JobTable::new();
    let mut started: Vec<JobId> = Vec::with_capacity(16);

    // Warm-up (allocations allowed): fill the whole system, then queue a
    // job that cannot start; the pass that rejects it disables the queue
    // and warms every internal buffer.
    let filler = submit(&mut table, &mut policy, &[32, 32, 32, 32], SubmitQueue::Global);
    started.clear();
    policy.schedule_into(now, &mut system, &mut table, &mut obs, &mut started);
    assert_eq!(started, vec![filler]);
    let waiting = submit(&mut table, &mut policy, &[8], SubmitQueue::Global);
    started.clear();
    policy.schedule_into(now, &mut system, &mut table, &mut obs, &mut started);
    assert!(started.is_empty());

    // Steady state, section 1: a scheduling pass that starts nothing.
    let ((), a, f) = counted(|| {
        started.clear();
        policy.schedule_into(now, &mut system, &mut table, &mut obs, &mut started);
    });
    assert!(started.is_empty());
    assert_eq!((a, f), (0, 0), "GS no-start pass must not touch the heap");

    // Section 2: departure release + queue re-enable.
    let ((), a, f) = counted(|| depart(&table, &mut system, &mut policy, filler));
    assert_eq!((a, f), (0, 0), "GS departure release must not touch the heap");

    // Section 3: a pass that starts one job is also allocation-free —
    // the Placement is stored inline in the job's state.
    let ((), a, f) = counted(|| {
        started.clear();
        policy.schedule_into(now, &mut system, &mut table, &mut obs, &mut started);
    });
    assert_eq!(started, vec![waiting]);
    assert_eq!((a, f), (0, 0), "GS start pass must not touch the heap");

    // ---- LS: per-cluster local queues, disable/re-enable bookkeeping ----
    let mut system = MultiCluster::new(&[32, 32, 32, 32]);
    let mut policy = PolicyKind::Ls.build(
        &SystemSpec::das_multicluster(),
        QueueRouting::balanced(4),
        RngStream::new(7),
        PlacementRule::WorstFit,
    );
    let mut table = JobTable::new();

    // Warm-up: fill all four clusters from their local queues, then
    // block queue 0 so it gets disabled (warming the disable list).
    let fillers: Vec<JobId> =
        (0..4).map(|q| submit(&mut table, &mut policy, &[32], SubmitQueue::Local(q))).collect();
    started.clear();
    policy.schedule_into(now, &mut system, &mut table, &mut obs, &mut started);
    assert_eq!(started.len(), 4);
    let waiting = submit(&mut table, &mut policy, &[16], SubmitQueue::Local(0));
    started.clear();
    policy.schedule_into(now, &mut system, &mut table, &mut obs, &mut started);
    assert!(started.is_empty(), "queue 0 head does not fit its full cluster");

    // Steady state: departure on cluster 0 re-enables queue 0 in place…
    let ((), a, f) = counted(|| depart(&table, &mut system, &mut policy, fillers[0]));
    assert_eq!((a, f), (0, 0), "LS departure + re-enable must not touch the heap");

    // …and the next pass starts the waiting local job, touching no heap.
    let ((), a, f) = counted(|| {
        started.clear();
        policy.schedule_into(now, &mut system, &mut table, &mut obs, &mut started);
    });
    assert_eq!(started, vec![waiting]);
    assert_eq!((a, f), (0, 0), "LS start pass must not touch the heap");
}
